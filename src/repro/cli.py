"""Command-line interface: ``python -m repro`` / ``repro``.

Subcommands:

* ``run`` — simulate one video under one scheme and print the result;
* ``compare`` — run the Fig. 11 scheme comparison for selected videos;
* ``census`` — run the Fig. 7b content census;
* ``workloads`` — list the Table-1 video profiles;
* ``trace`` — capture a synthetic stream to a ``.npz`` trace, or run a
  saved trace (from any source) through a scheme;
* ``network`` — trace-driven delivery: stalls, ABR switches, and the
  radio's burst-vs-steady energy for a workload over a bandwidth
  trace;
* ``thermal`` — thermal-pressure drill: injected boost revocations,
  adaptive-ladder vs fixed-batch Race-to-Sleep governor;
* ``fleet`` — streaming population engine: score a heterogeneous
  session population (1M+ sessions, bounded memory) through the
  calibrated flow-level surrogate and report cohort distributions;
* ``realtime`` — emergent-impairment live session: bottleneck-queue
  link, delay-gradient congestion control, FEC/retransmission
  recovery, and the deadline degradation ladder;
* ``chaos`` — chaos campaign: sweep impairment regimes (bursty loss,
  RTT spikes, bandwidth cliffs) over the scheme matrix and the fleet
  population and score SLOs into exactly-mergeable aggregates.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .analysis import comparison_report, content_census, format_table
from .config import (
    BASELINE,
    BATCHING,
    FIG11_SCHEMES,
    GAB,
    MAB,
    RACE_TO_SLEEP,
    RACING,
    SimulationConfig,
)
from .core.pipeline import simulate
from .core.results import compare_schemes
from .units import to_mj
from .video import PAPER_WORKLOADS, SyntheticVideo, workload

_SCHEMES = {s.name.lower(): s for s in
            (BASELINE, BATCHING, RACING, RACE_TO_SLEEP, MAB, GAB)}
_SCHEMES["rts"] = RACE_TO_SLEEP


def _parse_videos(spec: str) -> List[str]:
    if spec.lower() == "all":
        return [p.key for p in PAPER_WORKLOADS]
    return [key.strip().upper() for key in spec.split(",") if key.strip()]


def _cmd_run(args: argparse.Namespace) -> int:
    scheme = _SCHEMES[args.scheme.lower()]
    result = simulate(workload(args.video), scheme, n_frames=args.frames,
                      seed=args.seed)
    print(f"{args.video} under {scheme.name}: "
          f"{result.energy.per_frame_mj(result.n_frames):.2f} mJ/frame, "
          f"{result.drops} drops, "
          f"S3 residency {result.deep_sleep_residency:.1%}")
    rows = [[name, to_mj(value), value / result.energy.total]
            for name, value in result.energy.as_dict().items()]
    print(format_table(["component", "mJ", "fraction"], rows,
                       title="\nEnergy breakdown"))
    if result.matches is not None:
        m = result.matches
        print(f"\nMACH: intra {m.intra / m.total:.1%}, "
              f"inter {m.inter / m.total:.1%}, "
              f"write savings {result.write_savings:.1%}, "
              f"DC read savings {result.read_savings:.1%}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    comparisons = []
    for key in _parse_videos(args.videos):
        results = [simulate(workload(key), scheme, n_frames=args.frames,
                            seed=args.seed)
                   for scheme in FIG11_SCHEMES]
        comparisons.append(compare_schemes(results))
        print(f"  {key} done", file=sys.stderr)
    print(comparison_report(comparisons))
    return 0


def _cmd_census(args: argparse.Namespace) -> int:
    config = SimulationConfig()
    rows = []
    for key in _parse_videos(args.videos):
        stream = SyntheticVideo(config.video, workload(key), seed=args.seed,
                                n_frames=args.frames)
        census = content_census(stream)
        rows.append([key, census.intra_fraction, census.inter_fraction,
                     census.none_fraction])
    print(format_table(["video", "intra", "inter", "none"], rows,
                       title="Content census (paper avg: .42/.15/.43)"))
    return 0


def _cmd_workloads(_args: argparse.Namespace) -> int:
    rows = [[p.key, p.name, p.description, p.n_frames]
            for p in PAPER_WORKLOADS]
    print(format_table(["key", "name", "description", "#frames"], rows,
                       title="Table 1 workloads"))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .video.trace import FrameTrace

    if args.action == "capture":
        config = SimulationConfig()
        stream = SyntheticVideo(config.video, workload(args.video),
                                seed=args.seed, n_frames=args.frames)
        trace = FrameTrace.from_frames(stream, config.video.width,
                                       config.video.height,
                                       config.video.block_size)
        trace.save(args.path)
        print(f"captured {len(trace)} frames of {args.video} "
              f"to {args.path}")
        return 0
    trace = FrameTrace.load(args.path)
    if args.action == "census":
        census = content_census(list(trace))
        print(f"{args.path}: {len(trace)} frames, "
              f"intra {census.intra_fraction:.1%} / "
              f"inter {census.inter_fraction:.1%} / "
              f"none {census.none_fraction:.1%}")
        return 0
    # action == "run"
    scheme = _SCHEMES[args.scheme.lower()]
    base = simulate(trace, BASELINE, seed=args.seed)
    result = simulate(trace, scheme, seed=args.seed)
    print(f"{args.path} under {scheme.name}: "
          f"{result.energy.total / base.energy.total:.3f}x baseline "
          f"energy, {result.drops} drops, "
          f"write savings {result.write_savings:.1%}")
    return 0


def _cmd_network(args: argparse.Namespace) -> int:
    from dataclasses import replace as dc_replace

    from .config import NetworkConfig
    from .network import deliver_for_config
    from .units import MBPS

    base = NetworkConfig(
        mode="trace",
        trace_kind="file" if args.trace_file else args.trace,
        trace_path=args.trace_file,
        mean_bandwidth=args.bandwidth_mbps * MBPS,
        trace_seed=args.seed,
        abr=args.abr,
    )
    video = SimulationConfig().video
    modes = (("steady", "burst") if args.mode == "both" else (args.mode,))
    rows = []
    for mode in modes:
        network = dc_replace(base, download_mode=mode)
        delivery = deliver_for_config(network, video,
                                      source=workload(args.video),
                                      n_frames=args.frames, seed=args.seed)
        radio = delivery.radio
        rows.append([
            mode,
            delivery.startup_seconds,
            delivery.stall_seconds,
            delivery.stall_events,
            delivery.switches,
            delivery.mean_rate / MBPS,
            radio.active_energy, radio.tail_energy,
            radio.idle_energy + radio.promotion_energy,
            radio.total,
        ])
    if args.trace_file:
        trace_name, mean_note = args.trace_file, ""
    else:
        trace_name = args.trace
        mean_note = f"{args.bandwidth_mbps:g} Mbps mean, "
    print(format_table(
        ["mode", "startup s", "stall s", "stalls", "switches",
         "Mbps", "active J", "tail J", "idle+promo J", "radio J"],
        rows,
        title=f"{args.video} over {trace_name!r} "
              f"({mean_note}ABR={args.abr}, {args.frames} frames)"))
    if len(rows) == 2 and rows[1][-1] < rows[0][-1]:
        saving = 1 - rows[1][-1] / rows[0][-1]
        print(f"\nburst downloads cut radio energy by {saving:.1%} "
              "(the modem's race-to-sleep)")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from dataclasses import replace as dc_replace

    from .config import FaultConfig, NetworkConfig
    from .core.session import Play, SessionSimulator
    from .units import MBPS

    scheme = _SCHEMES[args.scheme.lower()]
    network = NetworkConfig(
        mode="trace", trace_kind=args.trace,
        mean_bandwidth=args.bandwidth_mbps * MBPS,
        trace_seed=args.seed, abr=args.abr)
    faults = FaultConfig(
        segment_loss=args.loss,
        segment_corruption=args.corruption,
        segment_timeout_rate=args.timeout_rate,
        block_bit_error=args.ber,
        digest_collision=args.collisions,
        seed=args.fault_seed,
    )
    events = [Play(workload(args.video), n_frames=args.frames)]
    rows = []
    for label, fault_cfg in (("clean", FaultConfig()), ("faulty", faults)):
        cfg = dc_replace(SimulationConfig(), network=network,
                         faults=fault_cfg)
        session = SessionSimulator(scheme, cfg, seed=args.seed).run(events)
        delivery = session.deliveries[0] if session.deliveries else None
        run = session.segments[0]
        rows.append([
            label,
            session.stall_seconds,
            session.retries,
            delivery.failed_attempts if delivery else 0,
            session.abandoned_segments,
            session.concealed_blocks,
            run.injected_collisions,
            session.fallback_writes,
            session.network_energy,
            session.total_energy,
        ])
    print(format_table(
        ["run", "stall s", "retries", "failures", "abandoned",
         "concealed", "collisions", "fallbacks", "radio J", "total J"],
        rows,
        title=f"{args.video} under {scheme.name}, "
              f"loss={args.loss:g} corruption={args.corruption:g} "
              f"ber={args.ber:g} collisions={args.collisions:g} "
              f"({args.frames} frames)"))
    clean, faulty = rows
    extra = faulty[-1] - clean[-1]
    print(f"\nresilience cost: {extra:+.2f} J "
          f"({extra / clean[-1]:+.1%} vs clean) — zero silently-wrong "
          "blocks, every loss retried, concealed, or abandoned")
    return 0


def _cmd_thermal(args: argparse.Namespace) -> int:
    from dataclasses import replace as dc_replace

    from .config import ThermalConfig
    from .core.race_to_sleep import LADDER_STEPS
    from .units import MS

    scheme = _SCHEMES[args.scheme.lower()]
    duties = [float(d) for d in args.duties.split(",") if d.strip()]
    rows = []
    pairs = {}
    for duty in duties:
        for label, adaptive in (("adaptive", True), ("fixed", False)):
            thermal = ThermalConfig(
                enabled=True, adaptive=adaptive, seed=args.thermal_seed,
                event_interval=args.interval, cap_drop_rate=args.rate,
                cap_drop_duty=duty,
                delayed_transition_rate=args.delay_rate,
                transition_delay=args.delay_ms * MS)
            cfg = dc_replace(SimulationConfig(), thermal=thermal)
            cfg = dc_replace(cfg, network=dc_replace(
                cfg.network, preroll_frames=args.preroll))
            result = simulate(workload(args.video), scheme,
                              n_frames=args.frames, seed=args.seed,
                              config=cfg)
            pairs[(duty, label)] = result
            throttled = (result.throttle_seconds / result.elapsed
                         if result.elapsed else 0.0)
            rows.append([f"{duty:g}", label, result.drops, throttled,
                         result.degradation_steps,
                         result.frames_at_nominal,
                         result.deep_sleep_residency,
                         result.energy.total])
    print(format_table(
        ["duty", "governor", "drops", "throttled", "deg steps",
         "@nominal", "S3", "energy J"],
        rows,
        title=f"{args.video} under {scheme.name} with injected thermal "
              f"caps (rate={args.rate:g}, interval={args.interval:g} s, "
              f"wake-delay rate={args.delay_rate:g}, "
              f"{args.frames} frames)"))
    worst = max(duties)
    adaptive_run = pairs[(worst, "adaptive")]
    fixed_run = pairs[(worst, "fixed")]
    delta = ((adaptive_run.energy.total - fixed_run.energy.total)
             / fixed_run.energy.total)
    print(f"\ndegradation ladder: {' -> '.join(LADDER_STEPS)}")
    print(f"at duty {worst:g}: adaptive drops {adaptive_run.drops} vs "
          f"fixed {fixed_run.drops}, energy {delta:+.1%}")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    import json

    from .faults import ShardFaultConfig
    from .fleet import (
        PopulationSpec,
        SupervisorConfig,
        calibrate,
        default_population,
        load_or_calibrate,
        run_fleet,
        run_fleet_supervised,
    )

    if args.spec:
        with open(args.spec, "r", encoding="utf-8") as handle:
            spec = PopulationSpec.from_jsonable(json.load(handle))
    elif args.smoke:
        # A 1-device, 2-title population whose calibration runs in
        # seconds — the CI chaos-smoke target.
        from .fleet import DeviceClass, LognormalComponent, RegionSpec
        from .units import MBPS
        spec = PopulationSpec(
            device_classes=(DeviceClass(name="ref", scheme="gab"),),
            regions=(RegionSpec(
                name="town", cells=4, cell_capacity=40 * MBPS,
                bandwidth=(LognormalComponent(median=10 * MBPS,
                                              sigma=0.5),),
            ),),
            titles=("V1", "V8"),
            calib_frames=16,
            calib_seed=args.seed,
        )
    else:
        spec = default_population()
    sessions = min(args.sessions, 2000) if args.smoke else args.sessions
    shards = max(args.shards, 4) if args.chaos else args.shards

    def status(line: str) -> None:
        print(f"  {line} ...", file=sys.stderr)

    calibration = (load_or_calibrate(spec, args.calibration, progress=status)
                   if args.calibration else calibrate(spec, progress=status))

    supervised = args.chaos or args.workers is not None or args.checkpoint
    if not supervised:
        result = run_fleet(spec, sessions, seed=args.seed,
                           shards=shards,
                           contention=not args.no_contention,
                           calibration=calibration, progress=status)
        print(result.report())
        if args.json:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(result.to_jsonable(), handle, indent=2,
                          sort_keys=True)
                handle.write("\n")
            print(f"\nwrote report to {args.json}")
        return 0

    faults = None
    if args.chaos:
        # A seeded kill/stall/corrupt schedule dense enough that a
        # typical stripe plan absorbs several of each; bounded to the
        # first two attempts so the run always completes.
        faults = ShardFaultConfig(
            crash_rate=0.25, stall_rate=0.1, corrupt_rate=0.2,
            slow_rate=0.1, slow_seconds=0.3, max_faulty_attempts=2,
            seed=args.chaos_seed)
    supervisor = SupervisorConfig(
        workers=args.workers if args.workers is not None else 2,
        lease_seconds=1.0, heartbeat_seconds=0.15,
        max_retries=6, backoff_base=0.02, backoff_cap=0.25,
        speculation_min_seconds=0.3)
    run = run_fleet_supervised(
        spec, sessions, seed=args.seed, shards=shards,
        contention=not args.no_contention, calibration=calibration,
        faults=faults, supervisor=supervisor,
        checkpoint=args.checkpoint, progress=status)
    report = run.report
    print(run.result.report())
    print(f"\nsupervision: {report.crashes} crashes, "
          f"{report.lease_revocations} lease revocations, "
          f"{report.corrupt_rejected} corrupt partials rejected, "
          f"{report.speculations} speculations, "
          f"{report.retries} retries, "
          f"{report.resumed_stripes} stripes resumed from checkpoint")

    identical = True
    if args.chaos:
        status("chaos verdict: re-running serial shards=1 reference")
        reference = run_fleet(spec, sessions, seed=args.seed, shards=1,
                              contention=not args.no_contention,
                              calibration=calibration)
        identical = (json.dumps(reference.to_jsonable(), sort_keys=True)
                     == json.dumps(run.result.to_jsonable(),
                                   sort_keys=True))
        verdict = ("bit-identical to the undisturbed serial run"
                   if identical else
                   "DIVERGED from the undisturbed serial run")
        print(f"chaos: absorbed {report.faults_absorbed} faults; "
              f"result {verdict}")
    if args.json:
        payload = {
            "identical_to_serial": identical if args.chaos else None,
            "supervision": report.to_jsonable(),
            "fleet": run.result.to_jsonable(),
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote report to {args.json}")
    return 0 if identical else 1


def _cmd_realtime(args: argparse.Namespace) -> int:
    from dataclasses import replace as dc_replace

    from .config import FaultConfig, RealtimeConfig
    from .realtime import simulate_realtime
    from .units import MBPS, MS

    rt = RealtimeConfig(
        enabled=True,
        link_rate=args.rate_mbps * MBPS,
        propagation_delay=args.prop_ms * MS,
        latency_budget=args.budget_ms * MS,
        recovery=args.recovery,
        ladder=not args.no_ladder,
        seed=args.rt_seed,
    )
    cfg = dc_replace(SimulationConfig(), realtime=rt)
    if args.loss > 0:
        cfg = dc_replace(cfg, faults=FaultConfig(packet_loss=args.loss,
                                                 seed=args.fault_seed))
    result = simulate_realtime(cfg, n_frames=args.frames,
                               profile=workload(args.video))
    late = result.lateness
    rows = [
        ["frames delivered", f"{int(result.delivered.sum())}"
                             f"/{result.n_frames}"],
        ["deadline misses", f"{int(result.miss.sum())} "
                            f"({result.deadline_miss_fraction:.2%})"],
        ["p99 lateness", f"{result.p99_lateness() / MS:.2f} ms"],
        ["mean lateness", f"{(late.mean() if len(late) else 0.0) / MS:.3f}"
                          f" ms"],
        ["concealed blocks", f"{int(result.lost_blocks.sum())} "
                             f"({result.concealed_fraction:.3%})"],
        ["ladder", f"{result.downscaled_frames} downscaled, "
                   f"{result.frozen_frames} frozen, "
                   f"{result.skipped_frames} skipped"],
        ["recovery", f"{result.fec_frames} FEC frames, "
                     f"{result.retx_frames} retx frames, "
                     f"overhead {result.byte_overhead:.2%}"],
        ["emergent drops", f"{result.overflow_drops} overflow, "
                           f"{result.red_drops} RED, "
                           f"{result.injected_drops} injected"],
        ["send rate", f"{result.send_rate[-1] / MBPS:.2f} Mbps final "
                      f"(mean {result.send_rate.mean() / MBPS:.2f})"],
        ["energy", f"decode {result.decode_energy:.2f} J, "
                   f"sleep {result.sleep_energy:.2f} J, "
                   f"radio {result.radio_energy:.2f} J "
                   f"(recovery {result.recovery_energy:.3f} J)"],
    ]
    print(format_table(
        ["metric", "value"], rows,
        title=f"{args.video} realtime, {args.frames} frames @ "
              f"{args.rate_mbps:g} Mbps link, "
              f"{args.budget_ms:g} ms budget, "
              f"recovery={args.recovery}"))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from .realtime import run_chaos

    if args.smoke:
        sessions, frames, cap = 6, 300, 420
    else:
        sessions, frames, cap = args.sessions, args.frames, args.frame_cap

    result = run_chaos(sessions=sessions, n_frames=frames,
                       fleet_frame_cap=cap, seed=args.seed,
                       shards=args.shards)
    print(result.report())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(result.to_jsonable(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"\nwrote campaign to {args.json}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint import (
        Baseline,
        all_rules,
        lint_paths,
        load_baseline,
        render_sarif,
        write_baseline,
    )

    if args.list_rules:
        rows = [[r.id, r.name, r.scope, r.severity, r.family, r.description]
                for r in all_rules()]
        print(format_table(
            ["id", "name", "scope", "severity", "family", "guards"],
            rows, title="repro-lint rules"))
        return 0
    select = ([rule_id.strip().upper()
               for rule_id in args.select.split(",") if rule_id.strip()]
              if args.select else None)
    baseline = (load_baseline(args.baseline)
                if args.baseline and not args.update_baseline
                else Baseline.empty())
    jobs = args.jobs
    if jobs == 0:
        jobs = os.cpu_count() or 1
    report = lint_paths(args.paths or None, baseline=baseline,
                        select=select, cache_path=args.cache, jobs=jobs)
    if args.update_baseline:
        if not args.baseline:
            print("--update-baseline requires --baseline PATH",
                  file=sys.stderr)
            return 2
        write_baseline(Baseline.from_violations(report.violations),
                       args.baseline)
        print(f"wrote {len(report.violations)} finding(s) to "
              f"{args.baseline}")
        return 0
    if args.format == "json":
        output = report.render_json()
    elif args.format == "sarif":
        output = render_sarif(report)
    else:
        output = report.render_text()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(output + "\n")
    if args.sarif:
        with open(args.sarif, "w", encoding="utf-8") as handle:
            handle.write(render_sarif(report) + "\n")
    print(output)
    return 0 if report.ok else 1


def _cmd_validate(args: argparse.Namespace) -> int:
    from .validation import summarize, validate_against_paper

    checks = validate_against_paper(
        frames=args.frames, seed=args.seed,
        progress=lambda name: print(f"  checking {name} ...",
                                    file=sys.stderr))
    print(summarize(checks))
    return 0 if all(check.passed for check in checks) else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Energy simulator for 'Race-To-Sleep + Content "
                    "Caching + Display Caching' (MICRO-50 2017)")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one video under one scheme")
    run.add_argument("video", help="workload key, e.g. V8")
    run.add_argument("scheme", choices=sorted(_SCHEMES),
                     help="scheme name (baseline/batching/racing/"
                          "race-to-sleep/mab/gab)")
    run.add_argument("--frames", type=int, default=180)
    run.add_argument("--seed", type=int, default=0)
    run.set_defaults(func=_cmd_run)

    compare = sub.add_parser("compare",
                             help="Fig. 11 comparison across schemes")
    compare.add_argument("--videos", default="V1,V8,V14",
                         help="comma-separated keys or 'all'")
    compare.add_argument("--frames", type=int, default=120)
    compare.add_argument("--seed", type=int, default=0)
    compare.set_defaults(func=_cmd_compare)

    census = sub.add_parser("census", help="Fig. 7b content census")
    census.add_argument("--videos", default="all")
    census.add_argument("--frames", type=int, default=96)
    census.add_argument("--seed", type=int, default=0)
    census.set_defaults(func=_cmd_census)

    workloads = sub.add_parser("workloads", help="list Table 1 profiles")
    workloads.set_defaults(func=_cmd_workloads)

    trace = sub.add_parser("trace", help="capture or replay frame traces")
    trace.add_argument("action", choices=("capture", "census", "run"))
    trace.add_argument("path", help="trace file (.npz)")
    trace.add_argument("--video", default="V8",
                       help="workload to capture (capture only)")
    trace.add_argument("--scheme", default="gab",
                       help="scheme for 'run' (default gab)")
    trace.add_argument("--frames", type=int, default=120)
    trace.add_argument("--seed", type=int, default=0)
    trace.set_defaults(func=_cmd_trace)

    network = sub.add_parser(
        "network", help="trace-driven delivery: stalls, ABR, radio energy")
    network.add_argument("--video", default="V8",
                         help="workload key (default V8)")
    network.add_argument("--frames", type=int, default=3600,
                         help="frames to stream (default 3600 = 60 s)")
    network.add_argument("--trace", default="lte",
                         choices=("constant", "lte", "step"),
                         help="synthetic bandwidth trace kind")
    network.add_argument("--trace-file", default=None,
                         help="timestamp,bytes_per_sec trace file "
                              "(overrides --trace)")
    network.add_argument("--bandwidth-mbps", type=float, default=24.0,
                         help="mean link rate for synthetic traces")
    network.add_argument("--abr", default="bba",
                         choices=("fixed", "rate", "bba"))
    network.add_argument("--mode", default="both",
                         choices=("steady", "burst", "both"),
                         help="download scheduling (default: compare both)")
    network.add_argument("--seed", type=int, default=1)
    network.set_defaults(func=_cmd_network)

    faults = sub.add_parser(
        "faults", help="fault-injection drill: lossy delivery, bit "
                       "errors, digest collisions — clean vs faulty")
    faults.add_argument("--video", default="V8")
    faults.add_argument("--frames", type=int, default=600)
    faults.add_argument("--scheme", default="gab",
                        choices=sorted(_SCHEMES))
    faults.add_argument("--loss", type=float, default=0.05,
                        help="per-attempt segment loss probability")
    faults.add_argument("--corruption", type=float, default=0.02,
                        help="per-attempt segment corruption probability")
    faults.add_argument("--timeout-rate", type=float, default=0.01,
                        help="per-attempt stuck-download probability")
    faults.add_argument("--ber", type=float, default=1e-6,
                        help="decoded-block bit error rate")
    faults.add_argument("--collisions", type=float, default=1e-4,
                        help="injected digest-collision probability")
    faults.add_argument("--trace", default="lte",
                        choices=("constant", "lte", "step"))
    faults.add_argument("--bandwidth-mbps", type=float, default=24.0)
    faults.add_argument("--abr", default="bba",
                        choices=("fixed", "rate", "bba"))
    faults.add_argument("--seed", type=int, default=1)
    faults.add_argument("--fault-seed", type=int, default=0,
                        help="seed of the fault plan (content seed is "
                             "--seed)")
    faults.set_defaults(func=_cmd_faults)

    thermal = sub.add_parser(
        "thermal", help="thermal-pressure drill: injected boost "
                        "revocations, adaptive vs fixed RtS governor")
    thermal.add_argument("--video", default="V5")
    thermal.add_argument("--frames", type=int, default=96)
    thermal.add_argument("--scheme", default="race-to-sleep",
                         choices=sorted(_SCHEMES))
    thermal.add_argument("--duties", default="0.25,0.55,0.85",
                         help="comma list of cap-drop duty fractions")
    thermal.add_argument("--rate", type=float, default=1.0,
                         help="per-slot cap-drop probability")
    thermal.add_argument("--interval", type=float, default=1.0,
                         help="throttle-event slot length, s")
    thermal.add_argument("--delay-rate", type=float, default=0.5,
                         help="per-slot delayed-wake probability")
    thermal.add_argument("--delay-ms", type=float, default=8.0,
                         help="injected extra wake latency, ms")
    thermal.add_argument("--preroll", type=int, default=30,
                         help="startup pre-roll frames (small values "
                              "make batch formation deadline-bound)")
    thermal.add_argument("--seed", type=int, default=7)
    thermal.add_argument("--thermal-seed", type=int, default=7,
                         help="seed of the injected throttle plan "
                              "(content seed is --seed)")
    thermal.set_defaults(func=_cmd_thermal)

    fleet = sub.add_parser(
        "fleet", help="streaming population engine: cohort energy/"
                      "stall distributions for 1M+ sessions")
    fleet.add_argument("--spec", default=None,
                       help="population spec JSON (default: the "
                            "built-in reference population)")
    fleet.add_argument("--sessions", type=int, default=100_000,
                       help="population size (default 100000)")
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--shards", type=int, default=1,
                       help="chunk stripes folded independently; the "
                            "report is bit-identical for any value")
    fleet.add_argument("--no-contention", action="store_true",
                       help="give every session its private drawn "
                            "bandwidth (skip the cell model)")
    fleet.add_argument("--calibration", default=None,
                       help="surrogate calibration cache file "
                            "(created/validated on use)")
    fleet.add_argument("--workers", type=int, default=None,
                       help="run under the supervised shard service "
                            "with this many worker processes (0 = "
                            "inline, pool-free)")
    fleet.add_argument("--checkpoint", default=None,
                       help="persist completed stripes to this JSON "
                            "file and resume from it on rerun")
    fleet.add_argument("--chaos", action="store_true",
                       help="inject a seeded crash/stall/corrupt/slow "
                            "schedule, then assert the result is "
                            "bit-identical to the serial run "
                            "(exit 1 if not)")
    fleet.add_argument("--chaos-seed", type=int, default=0,
                       help="seed of the injected fault schedule")
    fleet.add_argument("--smoke", action="store_true",
                       help="reduced population + cheap calibration "
                            "(the CI chaos-smoke configuration)")
    fleet.add_argument("--json", default=None,
                       help="also write the FleetResult JSON here")
    fleet.set_defaults(func=_cmd_fleet)

    realtime = sub.add_parser(
        "realtime", help="emergent-impairment live session: bottleneck "
                         "queue, congestion control, FEC/retx, ladder")
    realtime.add_argument("--video", default="V8")
    realtime.add_argument("--frames", type=int, default=600)
    realtime.add_argument("--rate-mbps", type=float, default=8.0,
                          help="bottleneck link rate")
    realtime.add_argument("--prop-ms", type=float, default=20.0,
                          help="one-way propagation delay")
    realtime.add_argument("--budget-ms", type=float, default=150.0,
                          help="per-frame latency budget")
    realtime.add_argument("--recovery", default="adaptive",
                          choices=("fec", "retx", "adaptive"))
    realtime.add_argument("--no-ladder", action="store_true",
                          help="disable the deadline degradation ladder")
    realtime.add_argument("--loss", type=float, default=0.0,
                          help="injected per-packet loss on top of the "
                               "emergent queue loss")
    realtime.add_argument("--rt-seed", type=int, default=0,
                          help="seed of the realtime link/source draws")
    realtime.add_argument("--fault-seed", type=int, default=0,
                          help="seed of the injected packet-loss plan")
    realtime.set_defaults(func=_cmd_realtime)

    chaos = sub.add_parser(
        "chaos", help="chaos campaign: impairment regimes over the "
                      "matrix and the fleet, SLO scoring")
    chaos.add_argument("--sessions", type=int, default=32,
                       help="fleet sessions per regime")
    chaos.add_argument("--frames", type=int, default=360,
                       help="frames per matrix session")
    chaos.add_argument("--frame-cap", type=int, default=480,
                       help="frame cap per fleet session")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--shards", type=int, default=1,
                       help="job stripes folded independently; the "
                            "campaign is bit-identical for any value")
    chaos.add_argument("--smoke", action="store_true",
                       help="tiny CI-sized campaign (6 sessions, "
                            "300 frames)")
    chaos.add_argument("--json", default=None,
                       help="also write the ChaosResult JSON here")
    chaos.set_defaults(func=_cmd_chaos)

    lint = sub.add_parser(
        "lint", help="whole-program invariant checks: determinism, "
                     "units/dimensions, taint, round-trip, error "
                     "policy, API contract")
    lint.add_argument("paths", nargs="*",
                      help="files/directories (default: the installed "
                           "repro package)")
    lint.add_argument("--baseline", default=None,
                      help="baseline JSON of acknowledged findings")
    lint.add_argument("--update-baseline", action="store_true",
                      help="rewrite --baseline with the current findings")
    lint.add_argument("--select", default=None,
                      help="comma-separated rule ids (default: all)")
    lint.add_argument("--format", default="text",
                      choices=("text", "json", "sarif"))
    lint.add_argument("--output", default=None,
                      help="also write the report to this file")
    lint.add_argument("--sarif", default=None,
                      help="also write a SARIF 2.1.0 report here")
    lint.add_argument("--cache", default=None,
                      help="incremental-analysis cache file (per-file "
                           "results keyed by content fingerprint)")
    lint.add_argument("--jobs", type=int, default=None,
                      help="analyze files in N worker processes "
                           "(0 = one per CPU)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalogue and exit")
    lint.set_defaults(func=_cmd_lint)

    validate = sub.add_parser(
        "validate", help="check this build against the paper's claims")
    validate.add_argument("--frames", type=int, default=96)
    validate.add_argument("--seed", type=int, default=7)
    validate.set_defaults(func=_cmd_validate)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
