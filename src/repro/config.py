"""Configuration dataclasses for every simulated component.

Defaults follow the paper's Table 2 and the surrounding text:

* Video decoder (VD): 0.30 W @ 150 MHz, 0.69 W @ 300 MHz [Zhou et al.].
* Sleep states: S1 (light) and S3 (deep); waking costs 0.8 ms / 1.6 ms.
* DRAM: LPDDR3, 2 channels x 1 rank x 8 banks, 800 MHz, RoRaBaCoCh.
* Display: 3840x2160 @ 60 Hz, 0.12 W.
* MACH: 8 per-frame caches, 256 entries, 4-way, CRC32 digests.
* Display cache: 16 KB direct-mapped; MACH buffer: 96 KB / 2 K entries.

Energy constants that the paper never states in absolute terms (per
Act/Pre pair, per 64-byte burst, background power) are calibrated so
that the *baseline* energy breakdown matches Fig. 1a / Fig. 11 shape;
see ``PaperCalibration`` and DESIGN.md section 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from .errors import ConfigError
from .units import MBPS, MHZ, MS, MW, NS, W, kib

CACHE_LINE_BYTES = 64
BYTES_PER_PIXEL = 3  # RGB, as in the Android framebuffer the paper assumes.

#: Native resolution the paper simulates (4K UHD).
NATIVE_WIDTH = 3840
NATIVE_HEIGHT = 2160

#: Default scaled-down simulation resolution (see DESIGN.md section 2).
DEFAULT_SIM_WIDTH = 192
DEFAULT_SIM_HEIGHT = 108


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class VideoConfig:
    """Geometry of the simulated video stream."""

    width: int = DEFAULT_SIM_WIDTH
    height: int = DEFAULT_SIM_HEIGHT
    fps: float = 60.0
    block_size: int = 4  # decoded macroblock (mab) edge, in pixels
    gop_length: int = 30  # frames per I-to-I group of pictures
    b_frames_per_gop: int = 8

    def __post_init__(self) -> None:
        _require(self.width > 0 and self.height > 0, "resolution must be positive")
        _require(self.block_size > 0, "block size must be positive")
        _require(
            self.width % self.block_size == 0 and self.height % self.block_size == 0,
            f"{self.width}x{self.height} must divide into {self.block_size}px blocks",
        )
        _require(self.fps > 0, "fps must be positive")
        _require(self.gop_length >= 1, "GOP must contain at least one frame")

    @property
    def blocks_per_row(self) -> int:
        return self.width // self.block_size

    @property
    def blocks_per_col(self) -> int:
        return self.height // self.block_size

    @property
    def blocks_per_frame(self) -> int:
        return self.blocks_per_row * self.blocks_per_col

    @property
    def block_bytes(self) -> int:
        """Decoded bytes in one mab (48 B for the paper's 4x4 RGB blocks)."""
        return self.block_size * self.block_size * BYTES_PER_PIXEL

    @property
    def frame_bytes(self) -> int:
        return self.width * self.height * BYTES_PER_PIXEL

    @property
    def frame_interval(self) -> float:
        """Seconds between display refreshes (16.6 ms at 60 fps)."""
        return 1.0 / self.fps

    @property
    def scale_to_native(self) -> float:
        """Multiplier from simulated pixels to 4K pixels (for MB/mJ reports)."""
        return (NATIVE_WIDTH * NATIVE_HEIGHT) / float(self.width * self.height)


@dataclass(frozen=True)
class PowerStateConfig:
    """The SoC power states available to the VD (paper Fig. 2a).

    ``p_active`` power depends on the operating frequency and lives in
    :class:`DecoderConfig`; this class holds the idle and sleep states
    plus the transition cost table.  Transition *latency* is paid when
    waking (S -> P); transition *energy* covers the full round trip.
    """

    p_idle_power: float = 320 * MW  # powered-on but not decoding ("short slack")
    s1_power: float = 50 * MW
    s3_power: float = 3 * MW
    s1_wake_latency: float = 0.8 * MS
    s3_wake_latency: float = 1.6 * MS
    s1_transition_energy: float = 0.45e-3  # J per round trip
    s3_transition_energy: float = 1.2e-3  # J per round trip

    #: Transitions to/from the boosted P-state cost more (the paper's
    #: Fig. 4c: "the energy in transitions increases ... because the
    #: operating frequency is increased").  Applied when racing.
    racing_transition_factor: float = 2.6

    def __post_init__(self) -> None:
        _require(self.s3_power <= self.s1_power <= self.p_idle_power,
                 "deeper states must consume less power")
        _require(self.s1_wake_latency <= self.s3_wake_latency,
                 "deep sleep must be slower to wake")

    def sleep_breakeven(self, state: str) -> float:
        """Minimum slack (s) for which entering ``state`` saves energy.

        Sleeping for ``t`` instead of idling saves
        ``t * (p_idle - p_state) - transition_energy``; the breakeven also
        must cover the wake latency so the next frame is not delayed.
        """
        if state == "S1":
            energy_breakeven = self.s1_transition_energy / (
                self.p_idle_power - self.s1_power)
            return max(energy_breakeven, self.s1_wake_latency)
        if state == "S3":
            energy_breakeven = self.s3_transition_energy / (
                self.p_idle_power - self.s3_power)
            return max(energy_breakeven, self.s3_wake_latency)
        raise ConfigError(f"unknown sleep state: {state!r}")


@dataclass(frozen=True)
class DecoderConfig:
    """Hardware video decoder (VD) timing and power (Table 2)."""

    low_freq: float = 150 * MHZ
    high_freq: float = 300 * MHZ
    low_freq_power: float = 0.30 * W
    high_freq_power: float = 0.69 * W
    power_states: PowerStateConfig = field(default_factory=PowerStateConfig)

    # Decode-work model: cycles = base + per-frame cycles by type,
    # scaled by the frame's complexity multiplier.  Per-*frame* (not
    # per-block) so decode time models the real 4K stream regardless of
    # the scaled simulation resolution.  Calibrated so that at 150 MHz
    # the frame-time CDF reproduces the paper's Fig. 2b region mix
    # (~4 % drops / 12 % short-slack / 37 % S1 / 40 % S3).
    cycles_per_frame_i: float = 2.333e6
    cycles_per_frame_p: float = 1.980e6
    cycles_per_frame_b: float = 1.882e6
    base_cycles: float = 24000.0

    # Conventional VD cache used during decode computation (Fig. 7a).
    cache_bytes: int = kib(32)
    cache_ways: int = 4

    # Reference-read traffic model: P/B motion compensation re-reads
    # this fraction of a frame's lines from the reference buffers; the
    # conventional VD cache absorbs ``ref_cache_hit_rate`` of them
    # (Fig. 7a: compute-phase accesses cache well).
    ref_read_fraction: float = 0.35
    ref_cache_hit_rate: float = 0.80

    def __post_init__(self) -> None:
        _require(self.low_freq < self.high_freq, "low frequency must be lower")
        _require(self.low_freq_power < self.high_freq_power,
                 "higher frequency must cost more power")

    def frequency(self, racing: bool) -> float:
        return self.high_freq if racing else self.low_freq

    def active_power(self, racing: bool) -> float:
        return self.high_freq_power if racing else self.low_freq_power


@dataclass(frozen=True)
class DramConfig:
    """LPDDR3 organization, timing, and calibrated energy (Table 2)."""

    channels: int = 2
    ranks_per_channel: int = 1
    banks_per_rank: int = 8
    row_bytes: int = 2048
    line_bytes: int = CACHE_LINE_BYTES
    io_freq: float = 800 * MHZ  # 1.6 GT/s DDR
    t_cl: float = 12 * NS
    t_rp: float = 18 * NS
    t_rcd: float = 18 * NS

    #: Effective row-buffer hold time under multi-master contention:
    #: the controller "can hold a row up to a limited time-duration to
    #: avoid starving requests to other rows" (paper Sec. 3.2, Fig. 5a).
    #: The value is chosen between the VD's per-line intervals at
    #: 150 MHz (~34 ns) and 300 MHz (~17 ns), which is precisely what
    #: makes the low-frequency decoder lose its rows between accesses
    #: while the racing decoder keeps them — the paper's Fig. 5a.
    row_max_open: float = 26 * NS

    #: FR-FCFS-style scheduling window: requests arriving within the
    #: same quantum are served row-hit-first, so concurrent streams do
    #: not thrash a bank at single-access granularity.  0 disables the
    #: batching (strict arrival order).
    scheduler_quantum: float = 600 * NS

    # Calibrated energy constants (see module docstring).
    act_pre_energy: float = 20e-9  # J per activate+precharge pair
    burst_energy: float = 2.35e-9  # J per 64-byte read or write burst
    background_power: float = 115 * MW

    #: Self-refresh power as a fraction of active background power
    #: (LPDDR3 datasheets put IDD6 at roughly 1/10th of IDD3N).  Used
    #: when a PSR-capable panel lets the DRAM sleep during pauses.
    self_refresh_fraction: float = 0.12

    def __post_init__(self) -> None:
        _require(self.channels >= 1 and self.banks_per_rank >= 1,
                 "need at least one channel and bank")
        _require(0.0 <= self.self_refresh_fraction <= 1.0,
                 "self-refresh fraction must be in [0, 1]")
        for name in ("row_bytes", "line_bytes"):
            value = getattr(self, name)
            _require(value > 0 and value & (value - 1) == 0,
                     f"{name} must be a power of two")
        _require(self.line_bytes <= self.row_bytes, "line must fit in a row")

    @property
    def total_banks(self) -> int:
        return self.channels * self.ranks_per_channel * self.banks_per_rank

    @property
    def lines_per_row(self) -> int:
        return self.row_bytes // self.line_bytes


@dataclass(frozen=True)
class DisplayConfig:
    """Display controller (DC) parameters (Table 2)."""

    refresh_hz: float = 60.0
    power: float = 0.12 * W
    display_cache_bytes: int = kib(16)
    display_cache_static_power: float = 3.6 * MW
    display_cache_dynamic_power: float = 0.5 * MW

    def __post_init__(self) -> None:
        _require(self.refresh_hz > 0, "refresh rate must be positive")

    @property
    def refresh_interval(self) -> float:
        return 1.0 / self.refresh_hz

    def scaled_cache_bytes(self, video: "VideoConfig",
                           line_bytes: int = CACHE_LINE_BYTES) -> int:
        """Display-cache capacity scaled to the sim resolution.

        Same rationale as :meth:`MachConfig.scaled_for`: 16 KB against a
        24 MB 4K frame becomes a proportionally smaller cache against a
        scaled frame, floored at four lines (the short-range straddle
        reuse the cache exists for survives even at that size).
        """
        ratio = 1.0 / video.scale_to_native
        if ratio >= 1.0:
            return self.display_cache_bytes
        lines = max(16, int(round(self.display_cache_bytes * ratio / line_bytes)))
        lines = 1 << (lines.bit_length() - 1)
        return lines * line_bytes


@dataclass(frozen=True)
class MachConfig:
    """MACH content cache at the VD plus the DC-side MACH buffer."""

    num_machs: int = 8  # one per recent frame (paper picks 8)
    entries_per_mach: int = 256
    ways: int = 4
    digest_scheme: str = "crc32"
    use_gradient: bool = True  # gab (True) vs mab (False) tagging
    pointer_bytes: int = 4
    digest_bytes: int = 4
    base_bytes: int = BYTES_PER_PIXEL  # gab base = first pixel (3 bytes)
    coalescing: bool = True

    # CO-MACH deep-hashing extension (paper Sec. 6.3).
    co_mach: bool = False
    co_mach_entries: int = 256

    # MACH buffer at the display controller.
    buffer_entries: int = 2048

    # Table 2 power numbers (CACTI-derived in the paper).
    mach_static_power: float = 1.9 * MW
    mach_dynamic_power: float = 3.8 * MW
    buffer_static_power: float = 24 * MW
    buffer_dynamic_power: float = 1.4 * MW
    co_mach_extra_power: float = 1.4 * MW

    def __post_init__(self) -> None:
        _require(self.num_machs >= 1, "need at least one MACH")
        _require(self.entries_per_mach % self.ways == 0,
                 "entries must divide into ways")
        sets = self.entries_per_mach // self.ways
        _require(sets & (sets - 1) == 0, "MACH set count must be a power of two")

    @property
    def sets_per_mach(self) -> int:
        return self.entries_per_mach // self.ways

    @property
    def total_entries(self) -> int:
        return self.num_machs * self.entries_per_mach

    def scaled_for(self, video: "VideoConfig") -> "MachConfig":
        """Capacity-scale the MACH structures to the sim resolution.

        The paper sizes MACH (8 x 256 entries), the MACH buffer (2 K
        entries), and the display cache (16 KB) against 4K frames of
        ~518 K blocks.  A scaled simulation has proportionally fewer
        distinct blocks per frame, so keeping the *absolute* capacities
        would remove all cache pressure; instead the entry counts are
        scaled by the block ratio (rounded to power-of-two set counts),
        preserving the capacity-to-content ratio that the paper's
        realized match rates depend on.
        """
        ratio = 1.0 / video.scale_to_native
        if ratio >= 1.0:
            return self

        def scale_entries(entries: int, minimum: int) -> int:
            scaled = max(minimum, int(round(entries * ratio)))
            sets = max(1, scaled // self.ways)
            sets = 1 << (sets.bit_length() - 1)  # round down to pow2
            return sets * self.ways

        scaled_entries = scale_entries(self.entries_per_mach, 8 * self.ways)
        # The paper sizes the MACH buffer to hold every dumped entry
        # (2 K = 8 x 256); preserve that relation after scaling.
        scaled_buffer = max(self.num_machs * scaled_entries,
                            int(round(self.buffer_entries * ratio)))
        return replace(
            self,
            entries_per_mach=scaled_entries,
            buffer_entries=scaled_buffer,
            co_mach_entries=scale_entries(self.co_mach_entries, self.ways),
        )


#: Default DASH-style bitrate ladder for 4K-native content (rungs are
#: 1.5 / 4 / 8 / 16 / 30 megabits per second, stored as bytes/s).
DEFAULT_LADDER = tuple(x * MBPS for x in (1.5, 4.0, 8.0, 16.0, 30.0))


@dataclass(frozen=True)
class RadioConfig:
    """Modem power-state machine (LTE RRC/DRX-shaped, Table-less).

    The modem is **active** while bits flow, holds a high-power
    **tail** for ``tail_seconds`` after the last bit (the inactivity
    timer), then demotes to **idle**; promotion back out of idle costs
    latency and energy.  Defaults are in the range LTE measurement
    studies report (~1.1 W active, ~0.6 W tail, ~10 mW idle, ~260 ms
    promotion).
    """

    active_power: float = 1.10 * W
    tail_power: float = 0.62 * W
    idle_power: float = 12 * MW
    tail_seconds: float = 2.5
    promotion_latency: float = 0.26  # s per idle -> active promotion
    promotion_energy: float = 0.55  # J per idle -> active promotion

    def __post_init__(self) -> None:
        _require(self.idle_power <= self.tail_power <= self.active_power,
                 "deeper radio states must consume less power")
        _require(self.tail_seconds >= 0, "tail timer cannot be negative")
        _require(self.promotion_latency >= 0 and self.promotion_energy >= 0,
                 "promotion costs cannot be negative")


@dataclass(frozen=True)
class NetworkConfig:
    """Streaming-source model.

    Two modes:

    * ``mode="chunked"`` (legacy) — the arithmetic stub: a fixed
      pre-roll plus periodic chunk deliveries, no bandwidth
      variability and no radio energy.  The paper observes YouTube
      buffering every 400-500 ms; the default delivers half a second
      of frames every half second.
    * ``mode="trace"`` — the full delivery model
      (:mod:`repro.network`): segments fetched over a bandwidth trace
      under an ABR policy, with stalls emerging from playback-buffer
      occupancy and the modem's burst energy accounted by
      :class:`RadioConfig`.
    """

    chunk_interval: float = 0.45  # s between deliveries (chunked mode)
    preroll_frames: int = 120  # frames buffered before playback starts
    max_buffered_frames: int = 600

    # -- delivery-model (mode="trace") parameters -----------------------
    mode: str = "chunked"  # 'chunked' | 'trace'
    trace_kind: str = "lte"  # 'constant' | 'lte' | 'step' | 'file'
    trace_path: Optional[str] = None  # for trace_kind == 'file'
    mean_bandwidth: float = 24 * MBPS  # bytes/s, synthetic generators
    trace_seed: int = 1
    segment_seconds: float = 1.0
    ladder: Tuple[float, ...] = DEFAULT_LADDER  # bytes/s, ascending
    abr: str = "bba"  # 'fixed' | 'rate' | 'bba'
    abr_fixed_rung: int = 0  # rung for abr == 'fixed'
    download_mode: str = "burst"  # 'steady' | 'burst'
    low_watermark_seconds: float = 3.0  # burst mode: refill trigger
    radio: RadioConfig = field(default_factory=RadioConfig)

    def __post_init__(self) -> None:
        _require(self.chunk_interval > 0, "chunk interval must be positive")
        _require(self.preroll_frames >= 1, "need at least one pre-rolled frame")
        _require(self.preroll_frames <= self.max_buffered_frames,
                 "pre-roll cannot exceed the buffer capacity")
        _require(self.mode in ("chunked", "trace"),
                 f"unknown network mode: {self.mode!r}")
        _require(self.trace_kind in ("constant", "lte", "step", "file"),
                 f"unknown trace kind: {self.trace_kind!r}")
        if self.trace_kind == "file":
            _require(self.trace_path is not None,
                     "trace_kind='file' needs a trace_path")
        _require(self.mean_bandwidth > 0, "mean bandwidth must be positive")
        _require(self.segment_seconds > 0,
                 "segment duration must be positive")
        _require(len(self.ladder) >= 1 and self.ladder[0] > 0
                 and all(b > a for a, b in zip(self.ladder, self.ladder[1:])),
                 "ladder must be ascending and positive")
        _require(self.abr in ("fixed", "rate", "bba"),
                 f"unknown ABR policy: {self.abr!r}")
        _require(0 <= self.abr_fixed_rung < len(self.ladder),
                 "fixed ABR rung must index the ladder")
        _require(self.download_mode in ("steady", "burst"),
                 f"unknown download mode: {self.download_mode!r}")
        _require(self.low_watermark_seconds >= 0,
                 "low watermark cannot be negative")

    def buffer_seconds(self, fps: float) -> float:
        """Playback-buffer capacity in content seconds."""
        return self.max_buffered_frames / fps

    def preroll_seconds(self, fps: float) -> float:
        """Startup pre-roll in content seconds."""
        return self.preroll_frames / fps


@dataclass(frozen=True)
class FaultConfig:
    """Fault injection rates and the resilience knobs that absorb them.

    All rates default to zero, so a default ``FaultConfig`` is inert:
    every code path that consults it reproduces the fault-free
    behaviour bit-for-bit.  Injection is driven by a pure-function
    schedule (:class:`repro.faults.FaultPlan`) seeded by ``seed``, so
    two runs with the same config see byte-identical faults.

    Injection knobs:

    * ``segment_loss`` — probability a segment download attempt dies
      mid-transfer (the bytes already moved still cost radio energy);
    * ``segment_corruption`` — probability a fully downloaded segment
      fails its checksum on arrival and must be re-fetched;
    * ``segment_timeout_rate`` — probability a download hangs until
      the per-attempt timeout expires;
    * ``block_bit_error`` — per-*bit* error rate in decoded
      macroblocks (a 48-byte block flips with ~384x this rate);
    * ``digest_collision`` — per-lookup probability that a MACH match
      is actually a hash collision pointing at the wrong content;
    * ``packet_loss`` — realtime mode only: per-packet erasure rate on
      top of whatever the bottleneck queue drops emergently (models
      radio-layer losses past the bottleneck; the packet still
      traverses the queue, so for a given send pattern injection
      composes without perturbing which packets the queue drops —
      closed-loop, the congestion controller reacts to the extra
      loss exactly as a real sender would).

    Resilience knobs:

    * ``max_retries`` / ``retry_backoff`` / ``segment_timeout`` — the
      delivery retry loop: exponential backoff between attempts, a
      wall-clock cap per attempt, and a bounded attempt count after
      which the segment is abandoned (played as a concealed freeze);
    * ``panic_after_failures`` — consecutive failed attempts before
      the ABR panics down to the lowest ladder rung;
    * ``verify_digests`` — MACH integrity fallback: a detected
      collision stores the full block instead of a wrong pointer, so
      content caching is never silently incorrect.
    """

    segment_loss: float = 0.0
    segment_corruption: float = 0.0
    segment_timeout_rate: float = 0.0
    block_bit_error: float = 0.0
    digest_collision: float = 0.0
    packet_loss: float = 0.0  # realtime mode: per-packet erasure rate
    seed: int = 0

    max_retries: int = 3
    retry_backoff: float = 0.25  # s; doubles per failed attempt
    segment_timeout: float = 20.0  # s per download attempt
    panic_after_failures: int = 2
    verify_digests: bool = True

    def __post_init__(self) -> None:
        for name in ("segment_loss", "segment_corruption",
                     "segment_timeout_rate", "digest_collision",
                     "packet_loss"):
            value = getattr(self, name)
            _require(0.0 <= value <= 1.0, f"{name} must be in [0, 1]")
        _require(self.segment_loss + self.segment_corruption
                 + self.segment_timeout_rate <= 1.0,
                 "segment fault rates must sum to at most 1")
        _require(0.0 <= self.block_bit_error <= 1.0,
                 "block_bit_error must be in [0, 1]")
        _require(self.max_retries >= 0, "max_retries cannot be negative")
        _require(self.retry_backoff >= 0, "retry_backoff cannot be negative")
        _require(self.segment_timeout > 0, "segment_timeout must be positive")
        _require(self.panic_after_failures >= 1,
                 "panic_after_failures must be >= 1")

    @property
    def injects_delivery(self) -> bool:
        return (self.segment_loss > 0 or self.segment_corruption > 0
                or self.segment_timeout_rate > 0)

    @property
    def enabled(self) -> bool:
        """Any non-zero injection rate (resilience knobs alone are inert)."""
        return (self.injects_delivery or self.block_bit_error > 0
                or self.digest_collision > 0 or self.packet_loss > 0)


@dataclass(frozen=True)
class ThermalConfig:
    """Thermal / power-budget pressure on the VD boost clock.

    Default-disabled and fully inert: with ``enabled=False`` every code
    path that consults it reproduces the thermal-free behaviour
    bit-for-bit.  When enabled, a lumped-RC junction-temperature model
    (:class:`repro.thermal.ThermalModel`) is driven by the per-phase
    power the pipeline already tracks, and the boost frequency is
    revoked while the junction is hot or the sustained-power EMA sits
    above ``sustained_power_cap`` — plus ``FaultPlan``-style injected
    throttle events seeded by ``seed``.

    Injection knobs (all rates default to zero):

    * ``cap_drop_rate`` / ``cap_drop_duty`` — per ``event_interval``
      slot, probability that the platform revokes boost for
      ``cap_drop_duty`` of the slot.  Windows nest: a higher duty
      strictly contains the lower-duty window for the same (seed,
      slot), so throttle pressure is structurally monotone in duty.
    * ``stuck_dvfs_rate`` — probability a slot pins DVFS at nominal
      even after the governor requests boost (firmware stuck-at).
    * ``delayed_transition_rate`` / ``transition_delay`` — probability
      a sleep wake-up in the slot pays ``transition_delay`` extra
      before the decoder can run (slow frequency ramp).

    The governor response lives in
    :class:`repro.core.race_to_sleep.AdaptiveRtSGovernor`; set
    ``adaptive=False`` to keep the fixed-plan governor under the same
    injected pressure (the degradation baseline).
    """

    enabled: bool = False
    adaptive: bool = True

    # -- lumped-RC junction model --------------------------------------
    ambient_c: float = 30.0  # deg C ambient / skin-coupled sink
    thermal_resistance: float = 18.0  # K/W junction -> ambient
    thermal_capacitance: float = 0.9  # J/K lumped thermal mass
    throttle_temp_c: float = 70.0  # deg C: revoke boost at/above this
    release_temp_c: float = 65.0  # deg C: restore boost at/below this

    # -- sustained-power cap -------------------------------------------
    sustained_power_cap: float = 0.0  # W over cap_window EMA; 0 = off
    cap_window: float = 4.0  # s EMA time constant

    # -- injected throttle events --------------------------------------
    seed: int = 0
    event_interval: float = 2.0  # s per injection decision slot
    cap_drop_rate: float = 0.0
    cap_drop_duty: float = 0.5
    stuck_dvfs_rate: float = 0.0
    delayed_transition_rate: float = 0.0
    transition_delay: float = 8.0 * MS  # s extra latency per affected wake

    def __post_init__(self) -> None:
        _require(self.thermal_resistance > 0 and self.thermal_capacitance > 0,
                 "thermal RC constants must be positive")
        _require(self.release_temp_c <= self.throttle_temp_c,
                 "hysteresis release must not exceed the throttle trip")
        _require(self.ambient_c < self.throttle_temp_c,
                 "ambient must sit below the throttle trip")
        _require(self.sustained_power_cap >= 0,
                 "sustained power cap cannot be negative")
        _require(self.cap_window > 0, "cap window must be positive")
        _require(self.event_interval > 0, "event interval must be positive")
        for name in ("cap_drop_rate", "cap_drop_duty", "stuck_dvfs_rate",
                     "delayed_transition_rate"):
            value = getattr(self, name)
            _require(0.0 <= value <= 1.0, f"{name} must be in [0, 1]")
        _require(self.transition_delay >= 0,
                 "transition delay cannot be negative")

    @property
    def injects(self) -> bool:
        """Any non-zero injected-event rate."""
        return (self.cap_drop_rate > 0 or self.stuck_dvfs_rate > 0
                or self.delayed_transition_rate > 0)


@dataclass(frozen=True)
class RealtimeConfig:
    """Live/interactive video mode: emergent-impairment link + recovery.

    Default-disabled and fully inert: with ``enabled=False`` nothing in
    the paper-mode pipeline consults this config, so results stay
    bit-identical to the pre-realtime tree.  When enabled,
    :mod:`repro.realtime` simulates a camera-to-display loop with a
    hard per-frame latency budget instead of a playback buffer:

    * a deterministic **bottleneck-queue link** (token-bucket service
      at ``link_rate``, a finite ``queue_bytes`` buffer with droptail
      and RED-style early drops, ``propagation_delay`` each way) so
      loss and queueing delay are *emergent* from offered load —
      ``FaultConfig.packet_loss`` injection composes on top;
    * a **delay/loss congestion controller** (GCC-style queue-delay
      gradient plus loss backoff) pacing the per-frame send rate;
    * per-frame **FEC (XOR parity groups) vs bounded retransmission**,
      chosen against the deadline when ``recovery="adaptive"``;
    * a **deadline-miss degradation ladder**
      (:class:`repro.core.race_to_sleep.DeadlineLadder`):
      nominal → downscale → freeze → skip, least-degraded-first.

    ``rate_schedule`` / ``delay_schedule`` are piecewise-constant
    impairment timelines: ``(t, x)`` pairs meaning "from time ``t``,
    the link rate is scaled by ``x``" (resp. "``x`` seconds are added
    to the one-way propagation delay").  The chaos harness
    (:mod:`repro.realtime.chaos`) builds its regimes from these.
    """

    enabled: bool = False
    latency_budget: float = 0.150  # s capture-to-delivery deadline
    mtu_bytes: int = 1200  # payload bytes per packet

    # -- bottleneck link ----------------------------------------------
    link_rate: float = 8 * MBPS  # bytes/s bottleneck service rate
    queue_bytes: int = 96_000  # bottleneck buffer depth in bytes
    propagation_delay: float = 0.020  # s one-way, queue excluded
    red_min_fill: float = 0.55  # queue fill where early drop starts
    red_max_fill: float = 0.95  # queue fill of max early-drop prob
    red_max_drop: float = 0.25  # early-drop prob at red_max_fill
    rate_schedule: Tuple[Tuple[float, float], ...] = ()  # (s, multiplier)
    delay_schedule: Tuple[Tuple[float, float], ...] = ()  # (s, extra s)

    # -- congestion controller ----------------------------------------
    start_rate: float = 4 * MBPS  # bytes/s initial send rate
    min_rate: float = 0.4 * MBPS  # bytes/s controller floor
    max_rate: float = 20 * MBPS  # bytes/s controller ceiling
    gradient_threshold: float = 1.5 * MS  # s/frame queue-delay slope trip
    delay_target: float = 0.040  # s standing queue delay that trips backoff
    increase_factor: float = 1.04  # multiplicative probe when clear
    decrease_factor: float = 0.85  # multiplicative overuse backoff
    loss_threshold: float = 0.05  # loss fraction that forces backoff

    # -- recovery -----------------------------------------------------
    recovery: str = "adaptive"  # 'fec' | 'retx' | 'adaptive'
    fec_group: int = 8  # data packets per XOR parity group
    max_retx: int = 2  # retransmission attempts per lost packet
    retx_rtt_factor: float = 0.5  # extra RTTs of backoff per re-attempt

    # -- degradation ladder -------------------------------------------
    ladder: bool = True
    downscale_factor: float = 0.55  # frame-bytes factor at 'downscale'
    freeze_fraction: float = 0.06  # frame-bytes factor at 'freeze'

    seed: int = 0  # seeds emergent RED drops and size jitter

    def __post_init__(self) -> None:
        _require(self.latency_budget > 0, "latency budget must be positive")
        _require(self.mtu_bytes >= 64, "mtu_bytes must be >= 64")
        _require(self.link_rate > 0, "link rate must be positive")
        _require(self.queue_bytes >= self.mtu_bytes,
                 "queue must hold at least one packet")
        _require(self.propagation_delay >= 0,
                 "propagation delay cannot be negative")
        _require(0.0 <= self.red_min_fill < self.red_max_fill <= 1.0,
                 "need 0 <= red_min_fill < red_max_fill <= 1")
        _require(0.0 <= self.red_max_drop <= 1.0,
                 "red_max_drop must be in [0, 1]")
        for name in ("rate_schedule", "delay_schedule"):
            schedule = getattr(self, name)
            times = [t for t, _ in schedule]
            _require(times == sorted(times) and all(t >= 0 for t in times),
                     f"{name} times must be sorted and non-negative")
        _require(all(x >= 0 for _, x in self.rate_schedule),
                 "rate multipliers cannot be negative")
        _require(all(x >= 0 for _, x in self.delay_schedule),
                 "extra delays cannot be negative")
        _require(0 < self.min_rate <= self.start_rate <= self.max_rate,
                 "need 0 < min_rate <= start_rate <= max_rate")
        _require(self.gradient_threshold > 0,
                 "gradient threshold must be positive")
        _require(self.delay_target > 0,
                 "delay target must be positive")
        _require(self.increase_factor >= 1.0,
                 "increase factor must be >= 1")
        _require(0.0 < self.decrease_factor < 1.0,
                 "decrease factor must be in (0, 1)")
        _require(0.0 < self.loss_threshold <= 1.0,
                 "loss threshold must be in (0, 1]")
        _require(self.recovery in ("fec", "retx", "adaptive"),
                 f"unknown recovery mode: {self.recovery!r}")
        _require(self.fec_group >= 1, "fec_group must be >= 1")
        _require(self.max_retx >= 0, "max_retx cannot be negative")
        _require(self.retx_rtt_factor >= 0,
                 "retx_rtt_factor cannot be negative")
        _require(0.0 < self.freeze_fraction < self.downscale_factor < 1.0,
                 "need 0 < freeze_fraction < downscale_factor < 1")


@dataclass(frozen=True)
class SchemeConfig:
    """One of the paper's evaluated schemes (Fig. 11 legend).

    ``batch_size`` = 1 disables batching; ``racing`` selects the high VD
    frequency; ``content_cache`` is ``None`` / ``"mab"`` / ``"gab"``;
    ``display_caching`` enables the display cache + MACH buffer; ``dcc``
    stacks intra-block delta colour compression on the write path.
    """

    name: str
    batch_size: int = 1
    racing: bool = False
    content_cache: str | None = None
    display_caching: bool = False
    dcc: bool = False

    def __post_init__(self) -> None:
        _require(self.batch_size >= 1, "batch size must be >= 1")
        _require(self.content_cache in (None, "mab", "gab"),
                 f"unknown content cache mode: {self.content_cache!r}")
        if self.display_caching:
            _require(self.content_cache is not None,
                     "display caching requires MACH on the VD side")

    @property
    def uses_mach(self) -> bool:
        return self.content_cache is not None


@dataclass(frozen=True)
class PaperCalibration:
    """Calibrated knobs that tie emergent behaviour to the paper's shape.

    See DESIGN.md section 5 for the target list.  These are *not* free
    parameters tweaked per experiment — they are fixed here once and
    every benchmark runs with them.
    """

    # Spread of the per-frame complexity multiplier (lognormal sigma),
    # which fans frame decode times into the paper's region I-IV mix.
    complexity_sigma: float = 0.12

    # Background (non-video) memory traffic, as a fraction of the
    # video-path line rate; models CPU/GPU masters that steal rows.
    other_traffic_fraction: float = 0.07

    # The DC scans the frame buffer over this fraction of the refresh
    # interval (the blanking interval takes the rest).
    display_scan_duty: float = 0.85


@dataclass(frozen=True)
class SimulationConfig:
    """Top-level configuration for an end-to-end run."""

    video: VideoConfig = field(default_factory=VideoConfig)
    decoder: DecoderConfig = field(default_factory=DecoderConfig)
    dram: DramConfig = field(default_factory=DramConfig)
    display: DisplayConfig = field(default_factory=DisplayConfig)
    mach: MachConfig = field(default_factory=MachConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    faults: FaultConfig = field(default_factory=FaultConfig)
    thermal: ThermalConfig = field(default_factory=ThermalConfig)
    realtime: RealtimeConfig = field(default_factory=RealtimeConfig)
    calibration: PaperCalibration = field(default_factory=PaperCalibration)
    seed: int = 0

    def with_scheme_mach(self, scheme: SchemeConfig) -> MachConfig:
        """MACH configuration adjusted for ``scheme`` (mab vs gab)."""
        if scheme.content_cache is None:
            return self.mach
        return replace(self.mach, use_gradient=scheme.content_cache == "gab")


# --- the six schemes of Fig. 11 ---------------------------------------

BASELINE = SchemeConfig(name="Baseline")
BATCHING = SchemeConfig(name="Batching", batch_size=16)
RACING = SchemeConfig(name="Racing", racing=True)
RACE_TO_SLEEP = SchemeConfig(name="Race-to-Sleep", batch_size=16, racing=True)
MAB = SchemeConfig(name="MAB", batch_size=16, racing=True,
                   content_cache="mab", display_caching=True)
GAB = SchemeConfig(name="GAB", batch_size=16, racing=True,
                   content_cache="gab", display_caching=True)
GAB_DCC = SchemeConfig(name="GAB+DCC", batch_size=16, racing=True,
                       content_cache="gab", display_caching=True, dcc=True)
DCC_ONLY = SchemeConfig(name="DCC", batch_size=16, racing=True, dcc=True)

#: The evaluation order used by Fig. 11 (L, B, R, S, M, G).
FIG11_SCHEMES = (BASELINE, BATCHING, RACING, RACE_TO_SLEEP, MAB, GAB)
