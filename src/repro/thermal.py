"""Thermal / power-budget pressure on the VD boost clock.

Race-to-Sleep's zero-drop guarantee rests on the 300 MHz boost always
being grantable, but sustained boost is exactly what a handheld SoC's
thermal and power-delivery limits revoke first.  This module supplies
the *pressure* side of that story:

* a **lumped-RC junction model** — ``T' = T_target + (T - T_target) *
  exp(-dt / RC)`` with ``T_target = ambient + P * R`` — driven by the
  per-phase VD power the pipeline already tracks, with hysteresis
  between ``throttle_temp_c`` and ``release_temp_c``;
* a **sustained-power cap** — an exponential moving average of the
  same power signal compared against ``sustained_power_cap``;
* **injected throttle events** in the :class:`repro.faults.FaultPlan`
  style: a pure-function schedule (:class:`ThermalPlan`) hashed from
  ``(seed, site, slot)`` that revokes boost for a duty fraction of a
  slot (``cap_drop_*``), pins DVFS at nominal for whole slots
  (``stuck_dvfs_rate``), or delays sleep wake-ups
  (``delayed_transition_rate`` / ``transition_delay``).

Determinism matters as much here as in fault injection: the injected
schedule is order-free (a pure function of wall-clock time), and the
RC/EMA state advances only through :meth:`ThermalModel.advance_to`,
which the pipeline drives from its own deterministic event sequence.
Two runs with the same config therefore see byte-identical throttling.

Window nesting gives structural monotonicity: the revocation window of
slot ``k`` is ``[k*I, k*I + duty*I)`` with the accept/reject uniform
independent of ``duty``, so a stricter (higher-duty, higher-rate)
config's revoked set is a superset of a milder one's for the same seed.

The *response* side — the graceful-degradation ladder — lives in
:class:`repro.core.race_to_sleep.AdaptiveRtSGovernor`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from .config import ThermalConfig
from .errors import ThermalError
from .faults import hash_u01

# Injection-site discriminators (same role as in repro.faults: the same
# slot index must not correlate across event kinds).
_SITE_CAP_DROP = 0xCA9D
_SITE_STUCK_DVFS = 0x57CC
_SITE_WAKE_DELAY = 0xDE1A

#: The sustained-power EMA must fall back below this fraction of the
#: cap before boost returns (hysteresis against chatter at the cap).
_CAP_RELEASE_FRACTION = 0.95

#: Longest RC/EMA integration piece, as a fraction of the shorter model
#: time constant — keeps the piecewise-sampled throttle state close to
#: the continuous hysteresis crossings.
_MAX_PIECE_FRACTION = 0.25


@dataclass(frozen=True)
class ThermalPlan:
    """Pure-function injected-throttle schedule (``FaultPlan``'s sibling).

    Every query is deterministic in ``(config.seed, site, slot)`` where
    ``slot = floor(time / event_interval)``; the plan holds no mutable
    state and can be queried for any time in any order.
    """

    config: ThermalConfig

    @classmethod
    def from_config(cls, config: ThermalConfig) -> Optional["ThermalPlan"]:
        """A plan for ``config``, or ``None`` when nothing is injected."""
        return cls(config) if config.injects else None

    def _slot(self, time: float) -> int:
        return int(time / self.config.event_interval) if time > 0 else 0

    def cap_drop_seconds(self, slot: int) -> float:
        """Length of the boost-revocation window opening ``slot``."""
        cfg = self.config
        if cfg.cap_drop_rate <= 0 or cfg.cap_drop_duty <= 0:
            return 0.0
        u = hash_u01(cfg.seed, _SITE_CAP_DROP, slot)
        if u < cfg.cap_drop_rate:
            return cfg.event_interval * cfg.cap_drop_duty
        return 0.0

    def stuck_at_nominal(self, slot: int) -> bool:
        """Whole-slot firmware stuck-at: boost requests are ignored."""
        cfg = self.config
        if cfg.stuck_dvfs_rate <= 0:
            return False
        return hash_u01(cfg.seed, _SITE_STUCK_DVFS, slot) < cfg.stuck_dvfs_rate

    def boost_revoked(self, time: float) -> bool:
        """Does an injected event deny boost at ``time``?"""
        slot = self._slot(time)
        if self.stuck_at_nominal(slot):
            return True
        offset = time - slot * self.config.event_interval
        return offset < self.cap_drop_seconds(slot)

    def wake_delay(self, time: float) -> float:
        """Extra wake latency (s) injected on a sleep exit at ``time``."""
        cfg = self.config
        if cfg.delayed_transition_rate <= 0:
            return 0.0
        u = hash_u01(cfg.seed, _SITE_WAKE_DELAY, self._slot(time))
        return cfg.transition_delay if u < cfg.delayed_transition_rate else 0.0

    def next_boundary(self, time: float) -> float:
        """First injected-schedule edge strictly after ``time``.

        Edges are slot starts and cap-drop window ends; between two
        consecutive edges :meth:`boost_revoked` is constant, which is
        what lets :meth:`ThermalModel.advance_to` integrate throttle
        time exactly.
        """
        interval = self.config.event_interval
        slot = self._slot(time)
        window_end = slot * interval + self.cap_drop_seconds(slot)
        if time < window_end - 1e-15:
            return window_end
        return (slot + 1) * interval

    def revoked_overlap(self, start: float, end: float) -> float:
        """Exact injected-revocation time within ``[start, end)``."""
        if end <= start:
            return 0.0
        interval = self.config.event_interval
        total = 0.0
        slot = self._slot(start)
        while slot * interval < end:
            slot_start = slot * interval
            window_end = slot_start + (
                interval if self.stuck_at_nominal(slot)
                else self.cap_drop_seconds(slot))
            lo = max(start, slot_start)
            hi = min(end, window_end)
            if hi > lo:
                total += hi - lo
            slot += 1
        return total


@dataclass(frozen=True)
class ThermalSnapshot:
    """Read-only view of a :class:`ThermalModel` at its current time."""

    time: float  # s, how far the model has been advanced
    temp_c: float  # deg C junction temperature
    ema_power: float  # W sustained-power moving average
    throttled: bool  # boost currently denied by temp/cap state
    throttle_seconds: float  # s of boost revocation integrated so far


class ThermalModel:
    """Stateful junction-temperature / power-budget tracker.

    The pipeline owns one per run and drives it forward with
    :meth:`advance_to` at every power-phase boundary (decode, idle,
    sleep); :meth:`boost_available` is what the governor and the decode
    loop consult.  Queries never mutate RC/EMA state, so planning a
    wake and then paying for it observe the same world.
    """

    def __init__(self, config: ThermalConfig) -> None:
        if not config.enabled:
            raise ThermalError("ThermalModel requires an enabled ThermalConfig")
        self.config = config
        self.plan = ThermalPlan.from_config(config)
        self.time = 0.0
        self.temp_c = config.ambient_c
        self.ema_power = 0.0
        self._hot = False
        self._cap_throttled = False
        self.throttle_seconds = 0.0
        rc_tau = config.thermal_resistance * config.thermal_capacitance
        self._max_piece = _MAX_PIECE_FRACTION * min(rc_tau, config.cap_window)

    # -- queries (pure w.r.t. RC/EMA state) -----------------------------

    def _state_throttled(self) -> bool:
        return self._hot or self._cap_throttled

    def boost_available(self, time: float) -> bool:
        """May the VD run at the boost frequency around ``time``?

        Temperature and cap hysteresis are sampled from the state the
        model has been advanced to; injected events are evaluated at
        ``time`` itself (they are pure functions of wall clock).
        """
        if self._state_throttled():
            return False
        if self.plan is not None and self.plan.boost_revoked(time):
            return False
        return True

    def wake_delay(self, time: float) -> float:
        """Injected extra latency for a sleep exit completing at ``time``."""
        return self.plan.wake_delay(time) if self.plan is not None else 0.0

    def planning_margin(self) -> float:
        """Wake-latency padding a careful governor should plan for.

        When delayed transitions are being injected at all, any wake
        may pay ``transition_delay``; planning for the worst case is
        deterministic and costs only earlier wake-ups.
        """
        cfg = self.config
        if cfg.delayed_transition_rate > 0:
            return cfg.transition_delay
        return 0.0

    def snapshot(self) -> ThermalSnapshot:
        return ThermalSnapshot(
            time=self.time,
            temp_c=self.temp_c,
            ema_power=self.ema_power,
            throttled=self._state_throttled(),
            throttle_seconds=self.throttle_seconds,
        )

    # -- state advancement ---------------------------------------------

    def advance_to(self, time: float, power: float) -> None:
        """Integrate forward to ``time`` (absolute seconds) at a
        constant ``power`` draw in watts.

        Splits the span at injected-schedule edges (so revocation time
        integrates exactly) and at ``_MAX_PIECE_FRACTION`` of the model
        time constants (so hysteresis state tracks the RC/EMA curves
        closely); within each piece the exponentials are applied in
        closed form.
        """
        if time < self.time - 1e-9:
            raise ThermalError(
                f"thermal model driven backwards: {time} < {self.time}")
        cfg = self.config
        rc_tau = cfg.thermal_resistance * cfg.thermal_capacitance
        target = cfg.ambient_c + power * cfg.thermal_resistance
        while self.time < time - 1e-12:
            piece_end = min(time, self.time + self._max_piece)
            if self.plan is not None:
                piece_end = min(piece_end, self.plan.next_boundary(self.time))
            dt = piece_end - self.time
            if dt <= 0:  # numerical guard: force progress
                piece_end = time
                dt = piece_end - self.time
            midpoint = self.time + dt * 0.5
            if self._state_throttled() or (
                    self.plan is not None
                    and self.plan.boost_revoked(midpoint)):
                self.throttle_seconds += dt
            self.temp_c = target + (self.temp_c - target) * math.exp(
                -dt / rc_tau)
            self.ema_power = power + (self.ema_power - power) * math.exp(
                -dt / cfg.cap_window)
            if self.temp_c >= cfg.throttle_temp_c:
                self._hot = True
            elif self.temp_c <= cfg.release_temp_c:
                self._hot = False
            if cfg.sustained_power_cap > 0:
                if self.ema_power > cfg.sustained_power_cap:
                    self._cap_throttled = True
                elif self.ema_power <= (cfg.sustained_power_cap
                                        * _CAP_RELEASE_FRACTION):
                    self._cap_throttled = False
            self.time = piece_end
