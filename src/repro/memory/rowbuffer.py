"""Scalar per-bank row-buffer state machine.

This is the reference model for the open-page-with-timeout policy; the
memory controller uses a vectorized equivalent (validated against this
one in tests).  A bank access activates a row unless the same row is
already open *and* was last touched within ``row_max_open`` seconds —
the controller force-precharges idle rows after that window to avoid
starving other requestors (paper Sec. 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import DramConfig


@dataclass
class BankState:
    """One bank: currently open row and the time it was last accessed."""

    open_row: int = -1
    last_access: float = float("-inf")

    def access(self, row: int, time: float, max_open: float) -> bool:
        """Process an access; returns True if it required an activate."""
        hit = (
            row == self.open_row
            and (time - self.last_access) <= max_open
        )
        self.open_row = row
        self.last_access = time
        return not hit


class RowBufferModel:
    """All banks of the device, for scalar/reference simulation."""

    def __init__(self, config: DramConfig) -> None:
        self.config = config
        self.banks = [BankState() for _ in range(config.total_banks)]
        self.activations = 0
        self.accesses = 0

    def access(self, bank: int, row: int, time: float) -> bool:
        """Access (bank, row) at ``time``; returns True on activation."""
        activated = self.banks[bank].access(
            row, time, self.config.row_max_open)
        self.activations += int(activated)
        self.accesses += 1
        return activated

    @property
    def hit_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return 1.0 - self.activations / self.accesses
