"""Physical address mapping (RoRaBaCoCh) and the region map.

The paper's memory controller interleaves addresses as Row : Rank :
Bank : Column : Channel, MSB to LSB (Table 2).  With the channel in the
lowest bits above the line offset, consecutive cache lines alternate
channels; with columns below the bank bits, a sequential stream sweeps
an entire row before moving to the next bank — the streaming-friendly
layout whose row locality Race-to-Sleep exploits (Fig. 5a).

:class:`RegionMap` carves the physical space into the buffers the video
pipeline uses (encoded stream, frame-buffer pool, MACH dumps, other
agents) so that traffic generators can produce concrete line addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..config import DramConfig
from ..errors import MemoryModelError


def _log2(value: int, name: str) -> int:
    if value <= 0 or value & (value - 1):
        raise MemoryModelError(f"{name} must be a power of two, got {value}")
    return value.bit_length() - 1


class AddressMapper:
    """Vectorized byte-address -> (global bank, row) translation."""

    def __init__(self, config: DramConfig) -> None:
        self.config = config
        self._line_bits = _log2(config.line_bytes, "line_bytes")
        self._channel_bits = _log2(config.channels, "channels")
        self._column_bits = _log2(config.lines_per_row, "lines_per_row")
        self._bank_bits = _log2(config.banks_per_rank, "banks_per_rank")
        self._rank_bits = _log2(config.ranks_per_channel, "ranks_per_channel")

    def map_lines(self, addresses: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Map byte addresses to (global_bank, row) arrays.

        The global bank id folds channel, rank, and bank into one
        integer in ``[0, total_banks)`` so downstream code can treat
        banks uniformly.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        lines = addresses >> self._line_bits
        channel = lines & (self.config.channels - 1)
        rest = lines >> self._channel_bits
        rest = rest >> self._column_bits  # column bits do not change the bank
        bank = rest & (self.config.banks_per_rank - 1)
        rest >>= self._bank_bits
        rank = rest & (self.config.ranks_per_channel - 1)
        row = rest >> self._rank_bits
        global_bank = (
            (rank * self.config.channels + channel) * self.config.banks_per_rank
            + bank
        )
        return global_bank, row

    def map_line(self, address: int) -> Tuple[int, int]:
        """Scalar convenience wrapper around :meth:`map_lines`."""
        banks, rows = self.map_lines(np.asarray([address], dtype=np.int64))
        return int(banks[0]), int(rows[0])


@dataclass(frozen=True)
class Region:
    """A named, contiguous chunk of physical address space."""

    name: str
    base: int
    size: int

    def address(self, offset: int) -> int:
        if not 0 <= offset < self.size:
            raise MemoryModelError(
                f"offset {offset:#x} outside region {self.name!r} "
                f"of size {self.size:#x}")
        return self.base + offset

    @property
    def end(self) -> int:
        return self.base + self.size


class RegionMap:
    """The video pipeline's memory layout.

    Regions are placed back to back starting at zero, padded to row
    boundaries so that different agents never share a DRAM row (they do
    still share *banks*, which is where interleaving thrash comes from).
    """

    def __init__(self, config: DramConfig) -> None:
        self._config = config
        self._regions: Dict[str, Region] = {}
        self._cursor = 0

    def add(self, name: str, size: int) -> Region:
        if name in self._regions:
            raise MemoryModelError(f"region {name!r} already defined")
        row = self._config.row_bytes * self._config.channels
        padded = (size + row - 1) // row * row
        region = Region(name, self._cursor, padded)
        self._regions[name] = region
        self._cursor += padded
        return region

    def __getitem__(self, name: str) -> Region:
        try:
            return self._regions[name]
        except KeyError:
            raise MemoryModelError(f"unknown region {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._regions

    @property
    def total_size(self) -> int:
        return self._cursor
