"""Vectorized memory controller.

Consumes timestamped line-granular accesses from all agents (VD writes
and reads, DC reads, background masters), merges them in time, and
plays them against the per-bank open-row-with-timeout model to count
activations and bursts.  Bank state persists across calls, so the
pipeline can feed one window (e.g. one frame interval) at a time.

The whole computation is numpy: accesses are lex-sorted by (bank,
time); within each bank's run an access hits iff the previous access in
that bank touched the same row within the timeout.  Only the first
access of each bank run consults the carried-over bank state — one
gather and one scatter over SoA per-bank arrays.  Equivalence with the scalar
:class:`~repro.memory.rowbuffer.RowBufferModel` is asserted in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from ..config import DramConfig
from ..errors import MemoryModelError
from .address import AddressMapper


@dataclass
class AccessStats:
    """Aggregate DRAM activity counters."""

    activations: int = 0
    read_bursts: int = 0
    write_bursts: int = 0
    by_agent: Dict[str, int] = field(default_factory=dict)
    acts_by_agent: Dict[str, int] = field(default_factory=dict)

    @property
    def bursts(self) -> int:
        return self.read_bursts + self.write_bursts

    @property
    def row_hit_rate(self) -> float:
        if not self.bursts:
            return 0.0
        return 1.0 - self.activations / self.bursts

    def merge(self, other: "AccessStats") -> "AccessStats":
        merged_agents = dict(self.by_agent)
        for agent, count in other.by_agent.items():
            merged_agents[agent] = merged_agents.get(agent, 0) + count
        merged_acts = dict(self.acts_by_agent)
        for agent, count in other.acts_by_agent.items():
            merged_acts[agent] = merged_acts.get(agent, 0) + count
        return AccessStats(
            activations=self.activations + other.activations,
            read_bursts=self.read_bursts + other.read_bursts,
            write_bursts=self.write_bursts + other.write_bursts,
            by_agent=merged_agents,
            acts_by_agent=merged_acts,
        )


class MemoryController:
    """Stateful controller accumulating :class:`AccessStats`."""

    def __init__(self, config: DramConfig) -> None:
        self.config = config
        self.mapper = AddressMapper(config)
        self.stats = AccessStats()
        # Per-bank state as SoA arrays (open row, last-touch time) so
        # window boundaries are one gather + one scatter, not a Python
        # loop of :class:`BankState` calls.
        self._open_rows = np.full(config.total_banks, -1, dtype=np.int64)
        self._last_access = np.full(
            config.total_banks, -np.inf, dtype=np.float64)

    def process_window(
        self,
        times: np.ndarray,
        addresses: np.ndarray,
        is_write: np.ndarray,
        agents: Dict[str, np.ndarray] | None = None,
    ) -> int:
        """Process one time window of accesses; returns activations added.

        Args:
            times: seconds, one per access (any order).
            addresses: byte addresses, line-aligned not required.
            is_write: boolean per access.
            agents: optional {agent name -> boolean mask} used only for
                per-agent burst attribution in the stats.
        """
        times = np.asarray(times, dtype=np.float64)
        addresses = np.asarray(addresses, dtype=np.int64)
        is_write = np.asarray(is_write, dtype=bool)
        if not (len(times) == len(addresses) == len(is_write)):
            raise MemoryModelError("access arrays must have equal length")
        if len(times) == 0:
            return 0

        banks, rows = self.mapper.map_lines(addresses)
        if self.config.scheduler_quantum > 0:
            # FR-FCFS batching: within one scheduling quantum on one
            # bank, row hits are served together (row-hit-first).  The
            # three integer keys pack into one int64 when their ranges
            # allow (they always do at simulator scale), halving the
            # lexsort passes over the window.
            quanta = (times / self.config.scheduler_quantum).astype(np.int64)
            quanta_span = int(quanta.max()) + 1 if len(quanta) else 1
            row_span = int(rows.max()) + 1 if len(rows) else 1
            if self.config.total_banks * quanta_span * row_span < (1 << 62):
                key = (banks * quanta_span + quanta) * row_span + rows
                order = np.lexsort((times, key))
            else:
                order = np.lexsort((times, rows, quanta, banks))
        else:
            order = np.lexsort((times, banks))
        sorted_banks = banks[order]
        sorted_rows = rows[order]
        sorted_times = times[order]

        same_bank = np.empty(len(order), dtype=bool)
        same_bank[0] = False
        same_bank[1:] = sorted_banks[1:] == sorted_banks[:-1]

        hits = same_bank.copy()
        hits[1:] &= sorted_rows[1:] == sorted_rows[:-1]
        hits[1:] &= (sorted_times[1:] - sorted_times[:-1]
                     <= self.config.row_max_open)

        # Run boundaries consult the persistent bank state: after the
        # sort each bank is one contiguous run, so the starts gather
        # and the ends scatter touch every bank at most once.
        run_starts = np.flatnonzero(~same_bank)
        start_banks = sorted_banks[run_starts]
        hits[run_starts] = (
            (sorted_rows[run_starts] == self._open_rows[start_banks])
            & (sorted_times[run_starts] - self._last_access[start_banks]
               <= self.config.row_max_open))
        run_ends = np.append(run_starts[1:] - 1, len(order) - 1)
        end_banks = sorted_banks[run_ends]
        self._open_rows[end_banks] = sorted_rows[run_ends]
        self._last_access[end_banks] = sorted_times[run_ends]

        activations = int((~hits).sum())
        self.stats.activations += activations
        writes = int(is_write.sum())
        self.stats.write_bursts += writes
        self.stats.read_bursts += len(times) - writes
        if agents:
            # Attribute each activation to the agent whose access
            # triggered it (un-sort the hit mask back to arrival order).
            acts_in_order = np.empty(len(order), dtype=bool)
            acts_in_order[order] = ~hits
            for name, mask in agents.items():
                mask = np.asarray(mask, dtype=bool)
                self.stats.by_agent[name] = (
                    self.stats.by_agent.get(name, 0) + int(mask.sum()))
                self.stats.acts_by_agent[name] = (
                    self.stats.acts_by_agent.get(name, 0)
                    + int(acts_in_order[mask].sum()))
        return activations

    def reset(self) -> None:
        self.stats = AccessStats()
        self._open_rows.fill(-1)
        self._last_access.fill(-np.inf)
