"""Memory energy integration.

Three components, following the paper's Fig. 11 split:

* **Act/Pre** — per activate+precharge pair (the component racing
  shrinks, Fig. 5b);
* **burst** — per 64-byte data transfer;
* **background** — standby/refresh power integrated over wall time.

The per-event constants are calibrated in :class:`repro.config.DramConfig`
(see DESIGN.md section 5); the *counts* come from the controller.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import DramConfig
from .controller import AccessStats


@dataclass(frozen=True)
class MemoryEnergy:
    """Joules spent in each memory component over a run."""

    act_pre: float
    burst: float
    background: float

    @property
    def total(self) -> float:
        return self.act_pre + self.burst + self.background

    @property
    def dynamic(self) -> float:
        """The traffic-dependent part (what MACH can save)."""
        return self.act_pre + self.burst

    def scaled(self, factor: float) -> "MemoryEnergy":
        """Rescale the dynamic parts (e.g. sim resolution -> 4K)."""
        return MemoryEnergy(
            act_pre=self.act_pre * factor,
            burst=self.burst * factor,
            background=self.background,
        )


def memory_energy(config: DramConfig, stats: AccessStats,
                  elapsed: float) -> MemoryEnergy:
    """Energy for ``stats`` worth of traffic over ``elapsed`` seconds."""
    return MemoryEnergy(
        act_pre=stats.activations * config.act_pre_energy,
        burst=stats.bursts * config.burst_energy,
        background=config.background_power * elapsed,
    )
