"""LPDDR3 memory subsystem: address mapping, row-buffer dynamics, and
energy accounting."""

from .address import AddressMapper, Region, RegionMap
from .controller import AccessStats, MemoryController
from .energy import MemoryEnergy, memory_energy
from .lpddr3 import burst_duration, peak_bandwidth
from .rowbuffer import BankState

__all__ = [
    "AddressMapper",
    "Region",
    "RegionMap",
    "AccessStats",
    "MemoryController",
    "MemoryEnergy",
    "memory_energy",
    "burst_duration",
    "peak_bandwidth",
    "BankState",
]
