"""Derived LPDDR3 timing quantities.

The raw device parameters live in :class:`repro.config.DramConfig`;
this module computes the handful of derived numbers the simulator and
its tests need.
"""

from __future__ import annotations

from ..config import DramConfig


def peak_bandwidth(config: DramConfig) -> float:
    """Peak transfer rate in bytes/second across all channels.

    LPDDR3 is DDR: two transfers per I/O clock on a 32-bit (4-byte)
    channel interface.
    """
    transfers_per_second = 2.0 * config.io_freq
    return transfers_per_second * 4.0 * config.channels


def burst_duration(config: DramConfig) -> float:
    """Seconds one 64-byte burst occupies a channel's data bus."""
    bytes_per_second = 2.0 * config.io_freq * 4.0
    return config.line_bytes / bytes_per_second


def row_cycle_time(config: DramConfig) -> float:
    """Approximate activate-to-activate latency (tRCD + tCL + tRP)."""
    return config.t_rcd + config.t_cl + config.t_rp
