"""Vectorized macroblock (mab) grid operations.

A decoded frame is a ``(height, width, 3)`` uint8 image; the simulator
works on its ``(n_blocks, block_bytes)`` matrix form, where each row is
one ``b x b`` RGB block flattened in pixel-raster order (the paper's
4x4 blocks flatten to 48 bytes).  Blocks are ordered in frame-raster
order, matching the sequential write pattern of a real decoder.
"""

from __future__ import annotations

import numpy as np

from ..errors import GeometryError


def split_blocks(image: np.ndarray, block_size: int) -> np.ndarray:
    """Split an ``(H, W, 3)`` image into an ``(n, b*b*3)`` block matrix."""
    image = np.asarray(image)
    if image.ndim != 3 or image.shape[2] != 3:
        raise GeometryError(f"expected (H, W, 3) image, got {image.shape}")
    height, width, _ = image.shape
    if height % block_size or width % block_size:
        raise GeometryError(
            f"{height}x{width} does not divide into {block_size}px blocks")
    rows = height // block_size
    cols = width // block_size
    # (rows, b, cols, b, 3) -> (rows, cols, b, b, 3) -> flatten blocks
    tiled = image.reshape(rows, block_size, cols, block_size, 3)
    tiled = tiled.transpose(0, 2, 1, 3, 4)
    return np.ascontiguousarray(
        tiled.reshape(rows * cols, block_size * block_size * 3))


def join_blocks(blocks: np.ndarray, width: int, height: int,
                block_size: int) -> np.ndarray:
    """Inverse of :func:`split_blocks`: block matrix -> (H, W, 3) image."""
    blocks = np.asarray(blocks)
    rows = height // block_size
    cols = width // block_size
    if height % block_size or width % block_size:
        raise GeometryError(
            f"{height}x{width} does not divide into {block_size}px blocks")
    if blocks.shape != (rows * cols, block_size * block_size * 3):
        raise GeometryError(
            f"block matrix shape {blocks.shape} does not match "
            f"{width}x{height}/{block_size}")
    tiled = blocks.reshape(rows, cols, block_size, block_size, 3)
    tiled = tiled.transpose(0, 2, 1, 3, 4)
    return np.ascontiguousarray(tiled.reshape(height, width, 3))


def block_bases(blocks: np.ndarray) -> np.ndarray:
    """First (top-left) pixel of every block: the gab base (n, 3)."""
    blocks = np.asarray(blocks)
    if blocks.ndim != 2 or blocks.shape[1] % 3:
        raise GeometryError(f"expected (n, 3k) block matrix, got {blocks.shape}")
    return blocks[:, :3].copy()
