"""Group-of-pictures (GOP) structure.

Real encoders emit a repeating I / P / B pattern; the frame type drives
both the decode-work model (I frames are the heavy ones) and reference
behaviour.  We generate the classic pattern where each GOP opens with
an I frame and B frames are spread between P anchors, e.g. for
``gop_length=12, b_frames=8``::

    I B B P B B P B B P B B | I ...
"""

from __future__ import annotations

from typing import Iterator, List

from ..errors import ConfigError
from .frame import FrameType


def gop_pattern(gop_length: int, b_frames: int) -> List[FrameType]:
    """The frame-type pattern of one GOP.

    ``b_frames`` B frames are distributed as evenly as possible among
    the ``gop_length - 1`` non-I slots; the rest become P frames.
    """
    if gop_length < 1:
        raise ConfigError("GOP length must be >= 1")
    if b_frames < 0 or b_frames > gop_length - 1:
        raise ConfigError(
            f"cannot fit {b_frames} B frames in a GOP of {gop_length}")
    pattern = [FrameType.I]
    slots = gop_length - 1
    if slots == 0:
        return pattern
    # Mark exactly b_frames slots as B, spread evenly (Bresenham-style).
    is_b = [
        (slot + 1) * b_frames // slots > slot * b_frames // slots
        for slot in range(slots)
    ]
    # Keep a trailing P anchor: a GOP must not end on a dangling B.
    if is_b and is_b[-1] and not all(is_b):
        swap = max(i for i, b in enumerate(is_b) if not b)
        is_b[-1], is_b[swap] = is_b[swap], is_b[-1]
    pattern.extend(FrameType.B if b else FrameType.P for b in is_b)
    return pattern


def gop_frame_types(n_frames: int, gop_length: int,
                    b_frames: int) -> Iterator[FrameType]:
    """Yield the frame type of each of ``n_frames`` stream frames."""
    pattern = gop_pattern(gop_length, b_frames)
    for index in range(n_frames):
        yield pattern[index % gop_length]
