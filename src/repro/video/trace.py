"""Frame traces: capture, store, and replay decoded-block streams.

The paper gathers macroblock traces from real videos with FFmpeg + Pin;
this module is the equivalent interchange layer.  A
:class:`FrameTrace` holds a sequence of decoded frames in block-matrix
form plus their metadata, can be saved to / loaded from a compressed
``.npz`` file, and replays as the same iterator interface
:func:`repro.simulate` consumes — so externally produced content
(converted camera footage, codec output, real decoded video) can drive
every experiment in place of the synthetic generator.

Helpers are provided to build traces from raw image stacks and from
this package's own block codec.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Union

import numpy as np

from ..config import VideoConfig
from ..errors import GeometryError
from .block import split_blocks
from .frame import DecodedFrame, FrameType

_TYPE_CODES = {FrameType.I: 0, FrameType.P: 1, FrameType.B: 2}
_CODE_TYPES = {code: ftype for ftype, code in _TYPE_CODES.items()}

#: Trace container format version (stored in the file).
TRACE_VERSION = 1


@dataclass
class FrameTrace:
    """An in-memory stream of decoded frames with metadata."""

    width: int
    height: int
    block_size: int
    blocks: np.ndarray  # (n_frames, blocks_per_frame, block_bytes) uint8
    frame_types: np.ndarray  # (n_frames,) uint8 codes
    complexity: np.ndarray  # (n_frames,) float64
    encoded_bits: np.ndarray  # (n_frames,) int64

    def __post_init__(self) -> None:
        if self.blocks.ndim != 3 or self.blocks.dtype != np.uint8:
            raise GeometryError(
                "blocks must be (frames, n, k) uint8, got "
                f"{self.blocks.shape} {self.blocks.dtype}")
        n_frames = self.blocks.shape[0]
        for name in ("frame_types", "complexity", "encoded_bits"):
            if len(getattr(self, name)) != n_frames:
                raise GeometryError(f"{name} must have one entry per frame")
        expected_blocks = (self.width // self.block_size) * (
            self.height // self.block_size)
        if self.blocks.shape[1] != expected_blocks:
            raise GeometryError(
                f"{self.blocks.shape[1]} blocks per frame does not match "
                f"{self.width}x{self.height}/{self.block_size}")

    # -- stream interface ---------------------------------------------------

    def __len__(self) -> int:
        return int(self.blocks.shape[0])

    def __iter__(self) -> Iterator[DecodedFrame]:
        return self.frames()

    def frames(self) -> Iterator[DecodedFrame]:
        """Replay the trace as :class:`DecodedFrame` objects."""
        for index in range(len(self)):
            yield DecodedFrame(
                index=index,
                frame_type=_CODE_TYPES[int(self.frame_types[index])],
                blocks=self.blocks[index],
                complexity=float(self.complexity[index]),
                encoded_bits=int(self.encoded_bits[index]),
            )

    @property
    def video_config(self) -> VideoConfig:
        """A :class:`VideoConfig` matching the trace geometry."""
        return VideoConfig(width=self.width, height=self.height,
                           block_size=self.block_size)

    # -- persistence -----------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Write the trace as a compressed ``.npz``."""
        np.savez_compressed(
            Path(path),
            version=np.asarray(TRACE_VERSION),
            geometry=np.asarray([self.width, self.height, self.block_size]),
            blocks=self.blocks,
            frame_types=self.frame_types,
            complexity=self.complexity,
            encoded_bits=self.encoded_bits,
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FrameTrace":
        """Read a trace written by :meth:`save`."""
        with np.load(Path(path)) as data:
            version = int(data["version"])
            if version != TRACE_VERSION:
                raise GeometryError(
                    f"unsupported trace version {version} "
                    f"(this build reads {TRACE_VERSION})")
            width, height, block_size = (int(v) for v in data["geometry"])
            return cls(
                width=width, height=height, block_size=block_size,
                blocks=data["blocks"],
                frame_types=data["frame_types"],
                complexity=data["complexity"],
                encoded_bits=data["encoded_bits"],
            )

    # -- constructors ------------------------------------------------------------

    @classmethod
    def from_frames(cls, frames: Iterable[DecodedFrame], width: int,
                    height: int, block_size: int = 4) -> "FrameTrace":
        """Capture any DecodedFrame stream (e.g. the synthetic generator)."""
        collected: List[DecodedFrame] = list(frames)
        if not collected:
            raise GeometryError("cannot build a trace from zero frames")
        blocks = np.stack([frame.blocks for frame in collected])
        return cls(
            width=width, height=height, block_size=block_size,
            blocks=blocks,
            frame_types=np.asarray(
                [_TYPE_CODES[f.frame_type] for f in collected],
                dtype=np.uint8),
            complexity=np.asarray([f.complexity for f in collected]),
            encoded_bits=np.asarray([f.encoded_bits for f in collected],
                                    dtype=np.int64),
        )

    @classmethod
    def from_images(cls, images: Sequence[np.ndarray], block_size: int = 4,
                    frame_types: Optional[Sequence[FrameType]] = None,
                    bits_per_pixel: float = 0.6) -> "FrameTrace":
        """Build a trace from ``(H, W, 3)`` uint8 images.

        This is the adoption path for real content: decode frames with
        any external tool, load them as arrays, and feed them here.
        Complexity defaults to 1.0 (uniform decode work) and encoded
        size to a flat bits-per-pixel model; both can be refined by
        editing the arrays afterwards.
        """
        if not images:
            raise GeometryError("need at least one image")
        height, width = images[0].shape[:2]
        blocks = np.stack([split_blocks(image, block_size)
                           for image in images])
        if frame_types is None:
            types = np.ones(len(images), dtype=np.uint8)  # all P
            types[0] = 0  # leading I frame
        else:
            types = np.asarray([_TYPE_CODES[t] for t in frame_types],
                               dtype=np.uint8)
        bits = int(width * height * bits_per_pixel)
        return cls(
            width=width, height=height, block_size=block_size,
            blocks=blocks,
            frame_types=types,
            complexity=np.ones(len(images)),
            encoded_bits=np.full(len(images), bits, dtype=np.int64),
        )
