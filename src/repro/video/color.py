"""Colour-space conversion (RGB <-> YCbCr, BT.601 full range).

The paper assumes RGB frame buffers (the Android gralloc default) but
notes the technique "is generic and can be applied to all the other
colour spaces as well (e.g., YUV, YCbCr)" (Sec. 4).  This module
provides the conversion so census and MACH studies can be repeated in
YCbCr, where chroma is smoother and gradient blocks match even more
readily.

Conversions use the full-range BT.601 integer approximation (the JPEG
convention); ``rgb_to_ycbcr`` followed by ``ycbcr_to_rgb`` round-trips
within +/-1 per channel, which tests assert.
"""

from __future__ import annotations

import numpy as np

from ..errors import GeometryError


def _as_pixels(data: np.ndarray) -> np.ndarray:
    data = np.asarray(data)
    if data.dtype != np.uint8:
        raise GeometryError(f"expected uint8 pixels, got {data.dtype}")
    if data.shape[-1] == 3:
        return data
    if data.ndim == 2 and data.shape[1] % 3 == 0:
        return data  # block matrix: interpret groups of 3 as pixels
    raise GeometryError(f"cannot interpret shape {data.shape} as RGB data")


def rgb_to_ycbcr(rgb: np.ndarray) -> np.ndarray:
    """Convert RGB to full-range YCbCr (uint8 in, uint8 out).

    Accepts ``(..., 3)`` images or ``(n, 3k)`` block matrices; the
    output has the same shape with channels replaced in place.
    """
    data = _as_pixels(rgb)
    shape = data.shape
    flat = data.reshape(-1, 3).astype(np.float64)
    r, g, b = flat[:, 0], flat[:, 1], flat[:, 2]
    y = 0.299 * r + 0.587 * g + 0.114 * b
    cb = 128.0 - 0.168736 * r - 0.331264 * g + 0.5 * b
    cr = 128.0 + 0.5 * r - 0.418688 * g - 0.081312 * b
    out = np.stack([y, cb, cr], axis=1)
    return np.clip(np.round(out), 0, 255).astype(np.uint8).reshape(shape)


def ycbcr_to_rgb(ycbcr: np.ndarray) -> np.ndarray:
    """Inverse of :func:`rgb_to_ycbcr` (within +/-1 per channel)."""
    data = _as_pixels(ycbcr)
    shape = data.shape
    flat = data.reshape(-1, 3).astype(np.float64)
    y, cb, cr = flat[:, 0], flat[:, 1] - 128.0, flat[:, 2] - 128.0
    r = y + 1.402 * cr
    g = y - 0.344136 * cb - 0.714136 * cr
    b = y + 1.772 * cb
    out = np.stack([r, g, b], axis=1)
    return np.clip(np.round(out), 0, 255).astype(np.uint8).reshape(shape)


def luma(rgb: np.ndarray) -> np.ndarray:
    """The Y channel only, keeping the spatial shape minus channels."""
    data = _as_pixels(rgb)
    flat = data.reshape(-1, 3).astype(np.float64)
    y = 0.299 * flat[:, 0] + 0.587 * flat[:, 1] + 0.114 * flat[:, 2]
    return np.clip(np.round(y), 0, 255).astype(np.uint8).reshape(
        data.shape[:-1] if data.shape[-1] == 3
        else (data.shape[0], data.shape[1] // 3))
