"""Frame datatypes shared by the synthesizer, codec, and pipeline."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np


class FrameType(Enum):
    """Encoded frame type; determines decode work and reference use."""

    I = "I"  # noqa: E741 - the codec's own name for intra frames
    P = "P"
    B = "B"

    @property
    def is_reference_free(self) -> bool:
        """I frames are self-contained (footnote 1 of the paper)."""
        return self is FrameType.I


@dataclass
class DecodedFrame:
    """One decoded frame, in block-matrix form.

    Attributes:
        index: position in the stream (0-based).
        frame_type: I/P/B.
        blocks: ``(n_blocks, block_bytes)`` uint8 matrix in raster order.
        complexity: relative decode-work multiplier for this frame
            (1.0 = an average P frame); feeds the VD timing model.
        encoded_bits: modelled size of the *encoded* frame, which the
            VD must read from the streaming buffer before decoding.
    """

    index: int
    frame_type: FrameType
    blocks: np.ndarray
    complexity: float
    encoded_bits: int

    @property
    def n_blocks(self) -> int:
        return int(self.blocks.shape[0])

    @property
    def block_bytes(self) -> int:
        return int(self.blocks.shape[1])

    @property
    def decoded_bytes(self) -> int:
        return self.n_blocks * self.block_bytes

    @property
    def encoded_bytes(self) -> int:
        return (self.encoded_bits + 7) // 8
