"""Video substrate: frames, macroblocks, synthesis, and a block codec."""

from .block import block_bases, join_blocks, split_blocks
from .color import luma, rgb_to_ycbcr, ycbcr_to_rgb
from .frame import DecodedFrame, FrameType
from .gop import gop_frame_types
from .synthesis import SyntheticVideo, VideoProfile
from .trace import FrameTrace
from .workloads import PAPER_WORKLOADS, workload, workload_keys

__all__ = [
    "block_bases",
    "join_blocks",
    "split_blocks",
    "luma",
    "rgb_to_ycbcr",
    "ycbcr_to_rgb",
    "DecodedFrame",
    "FrameType",
    "gop_frame_types",
    "SyntheticVideo",
    "VideoProfile",
    "FrameTrace",
    "PAPER_WORKLOADS",
    "workload",
    "workload_keys",
]
