"""The paper's 16 workload videos (Table 1), as synthetic profiles.

The real YouTube clips are unavailable, so each entry keeps the paper's
name, description, and frame count, with similarity/complexity knobs
chosen to match the narrative the paper attaches to each video:

* V1 (SES Astra test card) — synthetic patterns, lots of flat colour.
* V2 (timelapse) / V3 (macro-lens fur and water) — heavy pixel noise;
  the paper singles out V3 as a video where stand-alone Racing *loses*
  energy, which falls out of its higher decode complexity here.
* V4 (NASA webcam) — near-static scene but complex frames: the paper
  notes batching barely helps V4 because of short slacks.
* V5-V8 (movie trailers) — frequent scene cuts; V8 (Skyfall) is the
  paper's best GAB case (33 % energy saving), so it gets the strongest
  gradient-style similarity (dark scenes whose blocks differ only by a
  brightness base).
* V9-V16 (game captures) — flat-shaded surfaces and HUDs; V9 is the
  paper's MAB regression case (overheads exceed savings), modelled as
  content that matches almost only *after* gradient normalization
  (high ``p_offset``, wide flat palette).

The per-profile knobs are calibrated jointly so the 16-video aggregate
census lands at the paper's 42 % intra / 15 % inter / 43 % no-match.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..errors import ConfigError
from .synthesis import VideoProfile

PAPER_WORKLOADS: Tuple[VideoProfile, ...] = (
    VideoProfile(
        key="V1", name="SES Astra", description="TV test video",
        n_frames=6507,
        f_common=0.62, f_unique=0.05, f_flat=0.5, p_offset=0.28,
        flat_palette=4, common_pool=24, p_update=0.03, scene_len=150,
        complexity_mean=0.97,
    ),
    VideoProfile(
        key="V2", name="Honey Bees", description="Timelapse @ 120 fps",
        n_frames=5461,
        f_common=0.45, f_unique=0.05, f_flat=0.24, p_offset=0.42,
        flat_palette=8, common_pool=36, p_update=0.14, scene_len=70,
        complexity_mean=0.99,
    ),
    VideoProfile(
        key="V3", name="Puppies Bath", description="Home video; macro lens",
        n_frames=3593,
        f_common=0.41, f_unique=0.04, f_flat=0.18, p_offset=0.48,
        flat_palette=10, common_pool=40, p_update=0.18, scene_len=110,
        complexity_mean=1.04,
    ),
    VideoProfile(
        key="V4", name="NASA", description="NASA WebCam",
        n_frames=1758,
        f_common=0.53, f_unique=0.08, f_flat=0.32, p_offset=0.32,
        flat_palette=6, common_pool=26, p_update=0.02, scene_len=240,
        complexity_mean=1.04,
    ),
    VideoProfile(
        key="V5", name="Elysium", description="2013 movie trailer",
        n_frames=3176,
        f_common=0.53, f_unique=0.05, f_flat=0.3, p_offset=0.44,
        flat_palette=7, common_pool=30, p_update=0.1, scene_len=42,
        complexity_mean=1.0,
    ),
    VideoProfile(
        key="V6", name="Gone Girl", description="2014 movie trailer",
        n_frames=3591,
        f_common=0.5, f_unique=0.05, f_flat=0.28, p_offset=0.46,
        flat_palette=8, common_pool=30, p_update=0.11, scene_len=40,
        complexity_mean=1.02,
    ),
    VideoProfile(
        key="V7", name="Interstellar", description="2014 movie trailer",
        n_frames=2429,
        f_common=0.54, f_unique=0.05, f_flat=0.33, p_offset=0.42,
        flat_palette=6, common_pool=28, p_update=0.09, scene_len=45,
        complexity_mean=1.0,
    ),
    VideoProfile(
        key="V8", name="007 Skyfall", description="2012 movie trailer",
        n_frames=3676,
        f_common=0.61, f_unique=0.06, f_flat=0.4, p_offset=0.48,
        flat_palette=5, common_pool=22, p_update=0.07, scene_len=48,
        complexity_mean=0.96,
    ),
    VideoProfile(
        key="V9", name="Batman Origins", description="Adventure game video",
        n_frames=4702,
        f_common=0.55, f_unique=0.05, f_flat=0.32, p_offset=0.93,
        flat_palette=28, common_pool=30, p_update=0.09, scene_len=90,
        complexity_mean=1.0,
    ),
    VideoProfile(
        key="V10", name="Battlefield", description="Shooter game video",
        n_frames=2899,
        f_common=0.53, f_unique=0.06, f_flat=0.3, p_offset=0.44,
        flat_palette=7, common_pool=28, p_update=0.11, scene_len=80,
        complexity_mean=1.01,
    ),
    VideoProfile(
        key="V11", name="Call of Duty", description="Action game video",
        n_frames=5799,
        f_common=0.54, f_unique=0.06, f_flat=0.32, p_offset=0.42,
        flat_palette=7, common_pool=28, p_update=0.1, scene_len=85,
        complexity_mean=1.01,
    ),
    VideoProfile(
        key="V12", name="Crysis 3", description="Survival game video",
        n_frames=10147,
        f_common=0.48, f_unique=0.05, f_flat=0.26, p_offset=0.46,
        flat_palette=8, common_pool=34, p_update=0.12, scene_len=95,
        complexity_mean=1.01,
    ),
    VideoProfile(
        key="V13", name="Dear Esther", description="Exploration game video",
        n_frames=1699,
        f_common=0.58, f_unique=0.06, f_flat=0.36, p_offset=0.38,
        flat_palette=5, common_pool=24, p_update=0.04, scene_len=130,
        complexity_mean=0.97,
    ),
    VideoProfile(
        key="V14", name="Metro LastNight", description="Atmospheric game video",
        n_frames=4981,
        f_common=0.56, f_unique=0.06, f_flat=0.33, p_offset=0.46,
        flat_palette=6, common_pool=26, p_update=0.07, scene_len=100,
        complexity_mean=0.99,
    ),
    VideoProfile(
        key="V15", name="Tomb Raider", description="Protagonist game video",
        n_frames=5981,
        f_common=0.54, f_unique=0.06, f_flat=0.31, p_offset=0.41,
        flat_palette=6, common_pool=28, p_update=0.09, scene_len=90,
        complexity_mean=1.0,
    ),
    VideoProfile(
        key="V16", name="Watch Dogs", description="Hacking game video",
        n_frames=3806,
        f_common=0.53, f_unique=0.05, f_flat=0.32, p_offset=0.44,
        flat_palette=7, common_pool=28, p_update=0.1, scene_len=88,
        complexity_mean=1.0,
    ),
)

_BY_KEY: Dict[str, VideoProfile] = {p.key: p for p in PAPER_WORKLOADS}


def workload(key: str) -> VideoProfile:
    """Look up a Table-1 video by its key ('V1'..'V16')."""
    try:
        return _BY_KEY[key.upper()]
    except KeyError:
        raise ConfigError(
            f"unknown workload {key!r}; known: {sorted(_BY_KEY)}") from None


def workload_keys() -> Tuple[str, ...]:
    """All Table-1 video keys in order."""
    return tuple(p.key for p in PAPER_WORKLOADS)
