"""Synthetic video generator with controllable content similarity.

The paper's three techniques consume only (a) per-frame decode work and
(b) the exact-content / gradient-content similarity structure of the
decoded macroblocks.  Since the original 16 YouTube videos are not
available, this module synthesizes block streams whose similarity
statistics are controlled per video profile and calibrated against the
paper's measured aggregates (Fig. 2b regions, Fig. 7b census).

Content model
-------------
Every block of a frame belongs to one of three content classes:

* **common** — drawn from a small per-scene pool of textures; many
  blocks share each (texture, base) combination, producing the paper's
  *intra-frame* matches.  Texture 0 is the flat (zero-gradient) block;
  flat blocks with different colours match under gab but not mab,
  which is what makes the top gab digest dominate (Fig. 9b).
* **unique** — a per-position persistent texture: it appears once per
  frame but recurs across frames, producing *inter-frame* matches.
* **noise** — re-randomized every frame: never matches (film grain,
  water, fur).

A block's stored texture always has a zero first pixel (it *is* the
gradient block); the rendered content is ``texture + base`` with uint8
wraparound, so ``content - content[first pixel]`` exactly recovers the
texture.  Applying a random base with probability ``p_offset`` creates
content that matches under gab but not under mab.

Scenes last ``scene_len`` frames; a scene cut regenerates all pools
(a burst of no-match blocks, like a real cut).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from ..config import VideoConfig
from ..errors import ConfigError
from .frame import DecodedFrame, FrameType
from .gop import gop_pattern

#: Modelled encoded density (bits per *pixel*) by frame type, before the
#: per-frame complexity multiplier.  Ballpark H.264 4K rates.
_BITS_PER_PIXEL = {FrameType.I: 1.6, FrameType.P: 0.55, FrameType.B: 0.30}


@dataclass(frozen=True)
class VideoProfile:
    """Per-video content and complexity characteristics (Table 1).

    The similarity knobs (``f_common``, ``f_unique``, ``f_flat``,
    ``p_offset``) shape the Fig. 7b census; ``complexity_mean`` and
    ``complexity_sigma`` shape the Fig. 2b decode-time regions.
    """

    key: str
    name: str
    description: str
    n_frames: int  # the paper's Table 1 frame count, at full length

    f_common: float = 0.45  # fraction of blocks from the shared pool
    f_unique: float = 0.12  # fraction with per-position persistent content
    f_flat: float = 0.30  # of common blocks, fraction that are flat colour
    p_offset: float = 0.45  # P(common texture used with a random base)
    flat_palette: int = 6  # distinct flat colours per scene
    common_pool: int = 28  # textures in the shared pool
    zipf_s: float = 1.50  # popularity skew across the texture pool
    p_update: float = 0.12  # per-frame content churn of non-noise blocks
    scene_len: int = 90  # frames between scene cuts

    complexity_mean: float = 1.0  # decode-work multiplier (1.0 = average)
    complexity_sigma: float = 0.0  # extra per-video lognormal spread

    def __post_init__(self) -> None:
        if not 0.0 <= self.f_common <= 1.0:
            raise ConfigError("f_common must be in [0, 1]")
        if not 0.0 <= self.f_unique <= 1.0 - self.f_common:
            raise ConfigError("f_common + f_unique must not exceed 1")
        if self.scene_len < 1:
            raise ConfigError("scene_len must be >= 1")
        if self.common_pool < 1 or self.flat_palette < 1:
            raise ConfigError("pools must be non-empty")

    @property
    def f_noise(self) -> float:
        return 1.0 - self.f_common - self.f_unique


# Block content classes.
_COMMON, _UNIQUE, _NOISE = 0, 1, 2


def _smooth_textures(rng: np.random.Generator, count: int, block_bytes: int,
                     step: int) -> np.ndarray:
    """Gradient textures built as byte-wise random walks.

    The first pixel is forced to zero so each texture *is* its own
    gradient block (``content = texture + base`` reconstructs exactly).
    """
    steps = rng.integers(-step, step + 1, size=(count, block_bytes),
                         dtype=np.int16)
    walk = np.cumsum(steps, axis=1).astype(np.uint8)  # mod-256 drift
    walk[:, :3] = 0
    return walk


class SyntheticVideo:
    """Iterable stream of :class:`DecodedFrame` for one profile.

    The stream is deterministic for a given (profile, config, seed).
    """

    def __init__(self, config: VideoConfig, profile: VideoProfile,
                 seed: int = 0, n_frames: Optional[int] = None,
                 complexity_sigma: float = 0.12) -> None:
        self.config = config
        self.profile = profile
        self.n_frames = profile.n_frames if n_frames is None else n_frames
        if self.n_frames < 1:
            raise ConfigError("need at least one frame")
        self._seed = seed
        self._sigma = math.hypot(complexity_sigma, profile.complexity_sigma)
        self._pattern = gop_pattern(config.gop_length,
                                    config.b_frames_per_gop)

    def __iter__(self) -> Iterator[DecodedFrame]:
        return self.frames()

    def __len__(self) -> int:
        return self.n_frames

    # -- generation -----------------------------------------------------

    def frames(self) -> Iterator[DecodedFrame]:
        """Generate the frame stream."""
        cfg, prof = self.config, self.profile
        rng = np.random.default_rng(self._seed)
        n = cfg.blocks_per_frame
        k = cfg.block_bytes
        state = _SceneState(rng, prof, n, k)
        for index in range(self.n_frames):
            if index % prof.scene_len == 0:
                state.new_scene()
            else:
                state.churn()
            frame_type = self._pattern[index % cfg.gop_length]
            complexity = self._complexity(rng, frame_type)
            encoded_bits = self._encoded_bits(frame_type, complexity)
            yield DecodedFrame(
                index=index,
                frame_type=frame_type,
                blocks=state.render(),
                complexity=complexity,
                encoded_bits=encoded_bits,
            )

    def _complexity(self, rng: np.random.Generator,
                    frame_type: FrameType) -> float:
        """Per-frame decode-work multiplier (lognormal around the mean).

        Type-neutral by design: the decoder's timing model applies its
        own per-type cycle costs on top of this multiplier.
        """
        del frame_type  # complexity is orthogonal to the frame type
        spread = float(rng.lognormal(mean=0.0, sigma=self._sigma))
        return self.profile.complexity_mean * spread

    def _encoded_bits(self, frame_type: FrameType, complexity: float) -> int:
        pixels = self.config.width * self.config.height
        return int(pixels * _BITS_PER_PIXEL[frame_type] * complexity)


class _SceneState:
    """Mutable per-scene block assignment and content pools."""

    def __init__(self, rng: np.random.Generator, profile: VideoProfile,
                 n_blocks: int, block_bytes: int) -> None:
        self._rng = rng
        self._profile = profile
        self._n = n_blocks
        self._k = block_bytes
        # Filled by new_scene():
        self._classes = np.zeros(n_blocks, dtype=np.int8)
        self._texture_idx = np.zeros(n_blocks, dtype=np.int64)
        self._bases = np.zeros((n_blocks, 3), dtype=np.uint8)
        self._common_textures = np.zeros((1, block_bytes), dtype=np.uint8)
        self._canonical_bases = np.zeros((1, 3), dtype=np.uint8)
        self._flat_colors = np.zeros((1, 3), dtype=np.uint8)
        self._unique_textures = np.zeros((n_blocks, block_bytes),
                                         dtype=np.uint8)

    # -- scene lifecycle -------------------------------------------------

    def new_scene(self) -> None:
        """Regenerate pools and reassign every block (a scene cut)."""
        rng, prof, n, k = self._rng, self._profile, self._n, self._k
        pool = prof.common_pool
        # Textures are smooth random walks: neighbouring bytes differ by
        # small steps, like real shaded surfaces, so intra-block delta
        # compression (DCC) sees realistic compressibility.
        self._common_textures = _smooth_textures(rng, pool, k, step=5)
        self._common_textures[0] = 0  # texture 0 is the flat block
        self._canonical_bases = rng.integers(
            0, 256, size=(pool, 3), dtype=np.uint8)
        self._flat_colors = rng.integers(
            0, 256, size=(prof.flat_palette, 3), dtype=np.uint8)
        self._unique_textures = _smooth_textures(rng, n, k, step=11)
        self._classes = rng.choice(
            np.array([_COMMON, _UNIQUE, _NOISE], dtype=np.int8),
            size=n,
            p=[prof.f_common, prof.f_unique, prof.f_noise],
        )
        self._reroll(np.ones(n, dtype=bool))

    def churn(self) -> None:
        """Re-roll a ``p_update`` fraction of non-noise blocks."""
        update = self._rng.random(self._n) < self._profile.p_update
        self._reroll(update)

    def _reroll(self, mask: np.ndarray) -> None:
        """Assign fresh (texture, base) choices for the masked blocks."""
        rng, prof = self._rng, self._profile
        common = mask & (self._classes == _COMMON)
        n_common = int(common.sum())
        if n_common:
            # Texture 0 (flat) gets probability f_flat; the remaining
            # textures follow a Zipf popularity (a few hot textures and
            # a long tail, like real scene content — this is what gives
            # the MACH realistic capacity pressure and the Fig. 9b
            # top-digest concentration).
            ranks = np.arange(1, prof.common_pool, dtype=np.float64)
            tail = ranks ** (-prof.zipf_s) if len(ranks) else ranks
            weights = np.empty(prof.common_pool)
            weights[0] = prof.f_flat
            if len(tail):
                weights[1:] = (1.0 - prof.f_flat) * tail / tail.sum()
            weights /= weights.sum()
            choice = rng.choice(prof.common_pool, size=n_common, p=weights)
            self._texture_idx[common] = choice
            bases = self._canonical_bases[choice].copy()
            offset = rng.random(n_common) < prof.p_offset
            bases[offset] = rng.integers(
                0, 256, size=(int(offset.sum()), 3), dtype=np.uint8)
            flat = choice == 0
            n_flat = int(flat.sum())
            if n_flat:
                palette = rng.integers(0, prof.flat_palette, size=n_flat)
                bases[flat] = self._flat_colors[palette]
            self._bases[common] = bases
        unique = mask & (self._classes == _UNIQUE)
        n_unique = int(unique.sum())
        if n_unique:
            # A re-rolled unique block gets brand-new persistent content.
            self._unique_textures[unique] = rng.integers(
                0, 256, size=(n_unique, self._k), dtype=np.uint8)

    # -- rendering ---------------------------------------------------------

    def render(self) -> np.ndarray:
        """Materialize the current frame's block matrix."""
        rng, n, k = self._rng, self._n, self._k
        blocks = np.empty((n, k), dtype=np.uint8)
        common = self._classes == _COMMON
        if common.any():
            textures = self._common_textures[self._texture_idx[common]]
            bases = np.tile(self._bases[common], (1, k // 3))
            blocks[common] = textures + bases  # uint8 wraparound by design
        unique = self._classes == _UNIQUE
        if unique.any():
            blocks[unique] = self._unique_textures[unique]
        noise = self._classes == _NOISE
        n_noise = int(noise.sum())
        if n_noise:
            blocks[noise] = rng.integers(
                0, 256, size=(n_noise, k), dtype=np.uint8)
        return blocks
