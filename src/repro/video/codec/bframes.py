"""Bidirectional (B-frame) coding on top of the block codec.

The paper's footnote 1: "B/P frames consist of all types (I/P/B) mabs
and have references to the previous/next I/P frames".  This module adds
that structure: a :class:`SequenceEncoder` buffers frames into
mini-GOPs ``anchor, B..B, anchor``, encodes the trailing anchor first
(coding order differs from display order), then predicts each B
macroblock from the past anchor, the future anchor, or their average —
whichever wins — falling back to intra coding.

A :class:`SequenceDecoder` mirrors the bitstream exactly; round trips
are bit-exact against the encoder's own reconstruction, like the base
codec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ...errors import CodecError
from ..frame import FrameType
from .decoder import Decoder
from .encoder import MACROBLOCK, EncodedFrame, Encoder, _clip_to_u8
from .entropy import BitReader, BitWriter, decode_coefficients
from .motion import diamond_search, motion_compensate
from .quant import dequantize, quant_table
from .zigzag import unzigzag

_B_MAGIC = 2  # frame-type code for B in the stream header

_MODE_SKIP = 0
_MODE_FWD = 1
_MODE_BWD = 2
_MODE_BI = 3
_MODE_INTRA = 4


@dataclass
class SequencedFrame:
    """One encoded frame plus its position in display order."""

    display_index: int
    encoded: EncodedFrame


class SequenceEncoder:
    """Encoder producing I/P/B mini-GOP streams in coding order.

    Args:
        quality: quantizer quality in [1, 100].
        gop_length: distance between I frames (in display order).
        b_frames: B frames between consecutive anchors (0 = plain I/P).
        search_range: motion search window in pixels.
    """

    def __init__(self, quality: int = 60, gop_length: int = 12,
                 b_frames: int = 2, search_range: int = 7) -> None:
        if b_frames < 0:
            raise CodecError("b_frames must be non-negative")
        self.quality = quality
        self.b_frames = b_frames
        self._anchor_encoder = Encoder(quality=quality,
                                       gop_length=max(
                                           1, gop_length // (b_frames + 1)),
                                       search_range=search_range)
        self.search_range = search_range
        self._table = quant_table(quality)
        self._pending: List[Tuple[int, np.ndarray]] = []
        self._previous_anchor: Optional[np.ndarray] = None
        self._display_index = 0

    # -- public API --------------------------------------------------------

    def push(self, image: np.ndarray) -> List[SequencedFrame]:
        """Feed one display-order frame; returns frames ready to emit.

        Output order is coding order: the future anchor precedes the B
        frames that reference it.
        """
        index = self._display_index
        self._display_index += 1
        self._pending.append((index, np.asarray(image)))
        if len(self._pending) < self.b_frames + 1 and (
                self._previous_anchor is not None):
            return []
        return self._emit_minigop()

    def flush(self) -> List[SequencedFrame]:
        """Emit whatever is buffered (trailing frames become anchors)."""
        emitted: List[SequencedFrame] = []
        while self._pending:
            emitted.extend(self._emit_minigop(force=True))
        return emitted

    # -- internals ---------------------------------------------------------------

    def _emit_minigop(self, force: bool = False) -> List[SequencedFrame]:
        if not self._pending:
            return []
        if self._previous_anchor is None:
            # The very first frame is always an anchor.
            index, image = self._pending.pop(0)
            encoded = self._anchor_encoder.encode_frame(image)
            self._previous_anchor = self._anchor_encoder.reference
            return [SequencedFrame(index, encoded)]
        if not force and len(self._pending) < self.b_frames + 1:
            return []
        # The last buffered frame becomes the anchor; the rest are Bs.
        *b_inputs, (anchor_index, anchor_image) = self._pending
        self._pending = []
        past = self._previous_anchor
        assert past is not None
        anchor_encoded = self._anchor_encoder.encode_frame(anchor_image)
        future = self._anchor_encoder.reference
        assert future is not None
        emitted = [SequencedFrame(anchor_index, anchor_encoded)]
        for index, image in b_inputs:
            emitted.append(SequencedFrame(
                index, self._encode_b(image, past, future)))
        self._previous_anchor = future
        return emitted

    def _encode_b(self, image: np.ndarray, past: np.ndarray,
                  future: np.ndarray) -> EncodedFrame:
        image = np.asarray(image)
        if image.shape != past.shape:
            raise CodecError("B frame geometry mismatch with references")
        height, width = image.shape
        writer = BitWriter()
        writer.write_ue(_B_MAGIC)
        writer.write_ue(width // MACROBLOCK)
        writer.write_ue(height // MACROBLOCK)
        writer.write_ue(self.quality)
        intra = inter = skip = 0
        for top in range(0, height, MACROBLOCK):
            for left in range(0, width, MACROBLOCK):
                block = image[top:top + MACROBLOCK, left:left + MACROBLOCK]
                mode, mvs, predictor = self._choose_b_mode(
                    block, past, future, top, left)
                if mode == _MODE_SKIP:
                    writer.write_ue(_MODE_SKIP)
                    skip += 1
                    continue
                writer.write_ue(mode)
                if mode in (_MODE_FWD, _MODE_BI):
                    writer.write_se(mvs[0][0])
                    writer.write_se(mvs[0][1])
                if mode in (_MODE_BWD, _MODE_BI):
                    writer.write_se(mvs[1][0])
                    writer.write_se(mvs[1][1])
                if mode == _MODE_INTRA:
                    residual = block.astype(np.float64) - 128.0
                    intra += 1
                else:
                    residual = (block.astype(np.float64)
                                - predictor.astype(np.float64))
                    inter += 1
                self._anchor_encoder._code_residual(writer, residual)
        return EncodedFrame(FrameType.B, writer.getvalue(), width, height,
                            writer.bit_length, intra, inter, skip)

    def _choose_b_mode(
            self, block: np.ndarray, past: np.ndarray, future: np.ndarray,
            top: int, left: int,
    ) -> Tuple[int, Tuple[Optional[Tuple[int, int]],
                          Optional[Tuple[int, int]]],
               Optional[np.ndarray]]:
        """Pick the cheapest predictor for one macroblock."""
        fwd_mv = diamond_search(past, block, top, left, self.search_range)
        bwd_mv = diamond_search(future, block, top, left, self.search_range)
        fwd = motion_compensate(past, top, left, fwd_mv, MACROBLOCK)
        bwd = motion_compensate(future, top, left, bwd_mv, MACROBLOCK)
        bi = ((fwd.astype(np.uint16) + bwd.astype(np.uint16) + 1)
              // 2).astype(np.uint8)

        def sad(predictor: np.ndarray) -> int:
            return int(np.abs(block.astype(np.int32)
                              - predictor.astype(np.int32)).sum())

        candidates = [
            (_MODE_FWD, (fwd_mv, None), fwd, sad(fwd)),
            (_MODE_BWD, (None, bwd_mv), bwd, sad(bwd)),
            (_MODE_BI, (fwd_mv, bwd_mv), bi, sad(bi)),
        ]
        mode, mvs, predictor, cost = min(candidates, key=lambda c: c[3])
        if cost == 0 and mode == _MODE_FWD and fwd_mv == (0, 0):
            return _MODE_SKIP, (None, None), fwd
        intra_cost = int(np.abs(block.astype(np.int32)
                                - int(block.mean())).sum())
        if intra_cost < cost:
            return _MODE_INTRA, (None, None), None
        return mode, mvs, predictor


class SequenceDecoder:
    """Decoder for :class:`SequenceEncoder` streams (coding order in,
    display order out via :meth:`reorder`)."""

    def __init__(self) -> None:
        self._anchor_decoder = Decoder()
        self._past: Optional[np.ndarray] = None
        self._future: Optional[np.ndarray] = None

    def decode(self, encoded: EncodedFrame) -> np.ndarray:
        """Decode one coding-order frame to pixels."""
        if encoded.frame_type is FrameType.B:
            if self._past is None or self._future is None:
                raise CodecError("B frame arrived without two anchors")
            return self._decode_b(encoded.data)
        image = self._anchor_decoder.decode_frame(encoded.data)
        self._past, self._future = self._future, image
        return image

    def _decode_b(self, data: bytes) -> np.ndarray:
        assert self._past is not None and self._future is not None
        reader = BitReader(data)
        if reader.read_ue() != _B_MAGIC:
            raise CodecError("not a B-frame bitstream")
        width = reader.read_ue() * MACROBLOCK
        height = reader.read_ue() * MACROBLOCK
        table = quant_table(reader.read_ue())
        image = np.empty((height, width), dtype=np.uint8)
        for top in range(0, height, MACROBLOCK):
            for left in range(0, width, MACROBLOCK):
                image[top:top + MACROBLOCK, left:left + MACROBLOCK] = (
                    self._decode_b_macroblock(reader, table, top, left))
        return image

    def _decode_b_macroblock(self, reader: BitReader, table: np.ndarray,
                             top: int, left: int) -> np.ndarray:
        past, future = self._past, self._future
        mode = reader.read_ue()
        if mode == _MODE_SKIP:
            return motion_compensate(past, top, left, (0, 0), MACROBLOCK)
        fwd_mv = bwd_mv = None
        if mode in (_MODE_FWD, _MODE_BI):
            fwd_mv = (reader.read_se(), reader.read_se())
        if mode in (_MODE_BWD, _MODE_BI):
            bwd_mv = (reader.read_se(), reader.read_se())
        if mode == _MODE_FWD:
            predictor = motion_compensate(past, top, left, fwd_mv,
                                          MACROBLOCK).astype(np.float64)
        elif mode == _MODE_BWD:
            predictor = motion_compensate(future, top, left, bwd_mv,
                                          MACROBLOCK).astype(np.float64)
        elif mode == _MODE_BI:
            fwd = motion_compensate(past, top, left, fwd_mv, MACROBLOCK)
            bwd = motion_compensate(future, top, left, bwd_mv, MACROBLOCK)
            predictor = ((fwd.astype(np.uint16) + bwd.astype(np.uint16) + 1)
                         // 2).astype(np.float64)
        elif mode == _MODE_INTRA:
            predictor = np.full((MACROBLOCK, MACROBLOCK), 128.0)
        else:
            raise CodecError(f"unknown B macroblock mode {mode}")
        residual = self._read_residual(reader, table)
        return _clip_to_u8(predictor + residual)

    @staticmethod
    def _read_residual(reader: BitReader, table: np.ndarray) -> np.ndarray:
        from .dct import idct2
        recon = np.empty((MACROBLOCK, MACROBLOCK), dtype=np.float64)
        size = 8
        for top in range(0, MACROBLOCK, size):
            for left in range(0, MACROBLOCK, size):
                vector = decode_coefficients(reader, size * size)
                recon[top:top + size, left:left + size] = idct2(
                    dequantize(unzigzag(vector, size), table))
        return recon


def encode_sequence(images: Sequence[np.ndarray], quality: int = 60,
                    gop_length: int = 12,
                    b_frames: int = 2) -> List[SequencedFrame]:
    """Encode a whole clip; returns coding-order SequencedFrames."""
    encoder = SequenceEncoder(quality=quality, gop_length=gop_length,
                              b_frames=b_frames)
    out: List[SequencedFrame] = []
    for image in images:
        out.extend(encoder.push(image))
    out.extend(encoder.flush())
    return out


def decode_sequence(frames: Sequence[SequencedFrame]) -> List[np.ndarray]:
    """Decode a coding-order stream back to display order."""
    decoder = SequenceDecoder()
    decoded: List[Tuple[int, np.ndarray]] = []
    for frame in frames:
        decoded.append((frame.display_index, decoder.decode(frame.encoded)))
    decoded.sort(key=lambda pair: pair[0])
    return [image for _, image in decoded]
