"""Block motion estimation and compensation (diamond search).

P frames reconstruct each macroblock from a motion-shifted region of
the previous *reconstructed* frame (paper Sec. 2.2, step 4).  The
estimator is the classic two-stage diamond search over SAD cost.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

_LARGE_DIAMOND = ((0, 0), (0, 2), (0, -2), (2, 0), (-2, 0),
                  (1, 1), (1, -1), (-1, 1), (-1, -1))
_SMALL_DIAMOND = ((0, 0), (0, 1), (0, -1), (1, 0), (-1, 0))


def _sad(reference: np.ndarray, block: np.ndarray, top: int, left: int) -> float:
    size = block.shape[0]
    region = reference[top:top + size, left:left + size]
    return float(np.abs(region.astype(np.int32) - block.astype(np.int32)).sum())


def diamond_search(reference: np.ndarray, block: np.ndarray, top: int,
                   left: int, search_range: int = 7) -> Tuple[int, int]:
    """Best (dy, dx) motion vector for ``block`` anchored at (top, left).

    Runs the large-diamond pattern until the centre wins, then refines
    with the small diamond.  Candidates outside the frame or the search
    window are skipped; (0, 0) is always evaluated.
    """
    height, width = reference.shape
    size = block.shape[0]

    def in_bounds(dy: int, dx: int) -> bool:
        return (abs(dy) <= search_range and abs(dx) <= search_range
                and 0 <= top + dy <= height - size
                and 0 <= left + dx <= width - size)

    best = (0, 0)
    best_cost = _sad(reference, block, top, left)
    # Large diamond until the centre is the minimum.
    while True:
        center = best
        for dy, dx in _LARGE_DIAMOND:
            cand = (center[0] + dy, center[1] + dx)
            if cand == center or not in_bounds(*cand):
                continue
            cost = _sad(reference, block, top + cand[0], left + cand[1])
            if cost < best_cost:
                best, best_cost = cand, cost
        if best == center:
            break
    # Small-diamond refinement.
    center = best
    for dy, dx in _SMALL_DIAMOND:
        cand = (center[0] + dy, center[1] + dx)
        if cand == center or not in_bounds(*cand):
            continue
        cost = _sad(reference, block, top + cand[0], left + cand[1])
        if cost < best_cost:
            best, best_cost = cand, cost
    return best


def motion_compensate(reference: np.ndarray, top: int, left: int,
                      motion: Tuple[int, int], size: int) -> np.ndarray:
    """The predictor block: reference shifted by the motion vector."""
    dy, dx = motion
    return reference[top + dy:top + dy + size, left + dx:left + dx + size]
