"""Zigzag coefficient scan order (JPEG/H.264 style)."""

from __future__ import annotations

from functools import lru_cache

import numpy as np


@lru_cache(maxsize=None)
def zigzag_order(n: int) -> np.ndarray:
    """Flat indices of an ``(n, n)`` block in zigzag scan order.

    Diagonals are traversed alternately up-right and down-left so that
    low-frequency coefficients come first.
    """
    coords = []
    for diag in range(2 * n - 1):
        cells = [(i, diag - i) for i in range(n) if 0 <= diag - i < n]
        if diag % 2 == 0:
            cells.reverse()  # even diagonals run bottom-left -> top-right
        coords.extend(cells)
    rows, cols = zip(*coords)
    return np.asarray(rows) * n + np.asarray(cols)


def zigzag(block: np.ndarray) -> np.ndarray:
    """Scan an ``(n, n)`` block into a zigzag-ordered vector."""
    n = block.shape[-1]
    return block.reshape(*block.shape[:-2], n * n)[..., zigzag_order(n)]


def unzigzag(vector: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`zigzag`."""
    out = np.empty_like(vector)
    out[..., zigzag_order(n)] = vector
    return out.reshape(*vector.shape[:-1], n, n)
