"""Orthonormal 2-D DCT-II used by the block codec.

The transform is expressed as ``C @ X @ C.T`` with a precomputed basis
matrix, which is exact, fast for the codec's 8x8 blocks, and trivially
invertible (``C.T @ Y @ C``).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np


@lru_cache(maxsize=None)
def dct_matrix(n: int) -> np.ndarray:
    """The orthonormal DCT-II basis matrix of size ``n``."""
    k = np.arange(n).reshape(-1, 1)
    i = np.arange(n).reshape(1, -1)
    basis = np.cos(np.pi * (2 * i + 1) * k / (2 * n))
    basis[0] *= 1.0 / np.sqrt(2.0)
    return basis * np.sqrt(2.0 / n)


def dct2(block: np.ndarray) -> np.ndarray:
    """2-D DCT-II of one or more ``(n, n)`` blocks (batched on axis 0)."""
    block = np.asarray(block, dtype=np.float64)
    basis = dct_matrix(block.shape[-1])
    return basis @ block @ basis.T


def idct2(coeffs: np.ndarray) -> np.ndarray:
    """Inverse of :func:`dct2`."""
    coeffs = np.asarray(coeffs, dtype=np.float64)
    basis = dct_matrix(coeffs.shape[-1])
    return basis.T @ coeffs @ basis
