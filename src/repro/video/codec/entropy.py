"""Entropy coding: bit I/O and Exp-Golomb codes (H.264 style).

Quantized coefficient blocks are coded as a count of non-zero
coefficients followed by (zero-run, level) pairs in zigzag order —
unsigned Exp-Golomb for runs/counts, signed Exp-Golomb for levels and
motion vectors.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from ...errors import CodecError


class BitWriter:
    """Append-only bit buffer, MSB-first within each byte."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._bitpos = 0  # bits already used in the last byte

    def write_bit(self, bit: int) -> None:
        if self._bitpos == 0:
            self._bytes.append(0)
        if bit:
            self._bytes[-1] |= 0x80 >> self._bitpos
        self._bitpos = (self._bitpos + 1) % 8

    def write_bits(self, value: int, width: int) -> None:
        """Write ``width`` bits of ``value``, MSB first."""
        for shift in range(width - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_ue(self, value: int) -> None:
        """Unsigned Exp-Golomb."""
        if value < 0:
            raise CodecError(f"ue() argument must be non-negative: {value}")
        code = value + 1
        width = code.bit_length()
        self.write_bits(0, width - 1)  # leading zeros
        self.write_bits(code, width)

    def write_se(self, value: int) -> None:
        """Signed Exp-Golomb: 0, 1, -1, 2, -2 ... -> 0, 1, 2, 3, 4 ..."""
        mapped = 2 * value - 1 if value > 0 else -2 * value
        self.write_ue(mapped)

    @property
    def bit_length(self) -> int:
        used = len(self._bytes) * 8
        if self._bitpos:
            used -= 8 - self._bitpos
        return used

    def getvalue(self) -> bytes:
        return bytes(self._bytes)


class BitReader:
    """Sequential reader matching :class:`BitWriter`'s layout."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # absolute bit position

    def read_bit(self) -> int:
        byte_index, bit_index = divmod(self._pos, 8)
        if byte_index >= len(self._data):
            raise CodecError("bitstream exhausted")
        self._pos += 1
        return (self._data[byte_index] >> (7 - bit_index)) & 1

    def read_bits(self, width: int) -> int:
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def read_ue(self) -> int:
        zeros = 0
        while self.read_bit() == 0:
            zeros += 1
            if zeros > 64:
                raise CodecError("malformed Exp-Golomb code")
        return ((1 << zeros) | self.read_bits(zeros)) - 1

    def read_se(self) -> int:
        mapped = self.read_ue()
        if mapped % 2:
            return (mapped + 1) // 2
        return -(mapped // 2)

    @property
    def bit_position(self) -> int:
        return self._pos


def encode_coefficients(writer: BitWriter, zigzagged: np.ndarray) -> None:
    """Code one zigzag-ordered coefficient vector as run/level pairs."""
    nonzero = np.flatnonzero(zigzagged)
    writer.write_ue(len(nonzero))
    previous = -1
    for position in nonzero:
        writer.write_ue(int(position - previous - 1))  # zero run
        writer.write_se(int(zigzagged[position]))
        previous = int(position)


def decode_coefficients(reader: BitReader, length: int) -> np.ndarray:
    """Inverse of :func:`encode_coefficients`."""
    vector = np.zeros(length, dtype=np.int32)
    count = reader.read_ue()
    position = -1
    for _ in range(count):
        position += reader.read_ue() + 1
        if position >= length:
            raise CodecError("coefficient index past end of block")
        vector[position] = reader.read_se()
    return vector


def ue_bit_cost(values: Iterable[int]) -> int:
    """Bit cost of unsigned Exp-Golomb coding the given values."""
    total = 0
    for value in values:
        total += 2 * (value + 1).bit_length() - 1
    return total


def se_bit_cost(values: Iterable[int]) -> int:
    """Bit cost of signed Exp-Golomb coding the given values."""
    mapped: List[int] = [2 * v - 1 if v > 0 else -2 * v for v in values]
    return ue_bit_cost(mapped)
