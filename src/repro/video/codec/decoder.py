"""The functional decoder matching :mod:`.encoder` bit-exactly.

``Decoder(conceal_errors=True)`` adds macroblock error concealment: a
corrupt bitstream no longer raises, it degrades.  When a macroblock
fails to parse, the reader has lost sync (Exp-Golomb codes carry no
resynchronization markers below the frame header), so the decoder
conceals the remainder of the frame — copying the co-located region
from the reference frame, or mid-gray when no reference exists — and
counts what it concealed.  This mirrors what hardware decoders do with
a damaged slice, and it is the functional-codec counterpart of the
block-level concealment the energy pipeline applies under
:class:`repro.faults.FaultPlan` bit-error injection.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...errors import CodecError
from ..frame import FrameType
from .dct import idct2
from .encoder import MACROBLOCK, TRANSFORM, _clip_to_u8
from .entropy import BitReader, decode_coefficients
from .motion import motion_compensate
from .quant import dequantize, quant_table
from .zigzag import unzigzag

_MODE_SKIP = 0
_MODE_INTER = 1
_MODE_INTRA = 2

#: Concealment fill when no reference frame exists (mid-gray).
_NO_REFERENCE_FILL = 128


class Decoder:
    """Stateful decoder for the I/P stream produced by :class:`Encoder`.

    Args:
        conceal_errors: instead of raising on a corrupt bitstream,
            conceal the damaged macroblocks from the reference frame
            and keep going.  ``concealed_macroblocks`` and
            ``concealed_frames`` count the damage absorbed.
    """

    def __init__(self, conceal_errors: bool = False) -> None:
        self._reference: Optional[np.ndarray] = None
        self.conceal_errors = conceal_errors
        self.concealed_macroblocks = 0
        self.concealed_frames = 0

    def decode_frame(self, data: bytes) -> np.ndarray:
        """Decode one frame; returns the reconstructed uint8 image."""
        reader = BitReader(data)
        try:
            frame_type = (FrameType.I if reader.read_ue() == 0
                          else FrameType.P)
            width = reader.read_ue() * MACROBLOCK
            height = reader.read_ue() * MACROBLOCK
            quality = reader.read_ue()
            table = quant_table(quality, TRANSFORM)
        except CodecError:
            # The header itself is damaged: geometry is unknowable, so
            # concealment can only repeat the whole reference frame.
            if not self.conceal_errors or self._reference is None:
                raise
            image = self._reference.copy()
            self._count_concealment(image.shape[0] * image.shape[1]
                                    // (MACROBLOCK * MACROBLOCK))
            return image
        if self.conceal_errors and self._reference is not None \
                and (height, width) != self._reference.shape:
            # Geometry changed mid-stream: the header bits are lies.
            image = self._reference.copy()
            self._count_concealment(image.shape[0] * image.shape[1]
                                    // (MACROBLOCK * MACROBLOCK))
            return image
        if frame_type is FrameType.P and self._reference is None:
            if not self.conceal_errors:
                raise CodecError("P frame arrived before any I frame")
            # A bit flip can turn the first I frame's type field into P;
            # with nothing to predict from, conceal the frame as gray.
            image = np.full((height, width), _NO_REFERENCE_FILL,
                            dtype=np.uint8)
            self._count_concealment(height * width
                                    // (MACROBLOCK * MACROBLOCK))
            self._reference = image
            return image
        image = np.empty((height, width), dtype=np.uint8)
        concealing = False
        frame_damaged = False
        for top in range(0, height, MACROBLOCK):
            for left in range(0, width, MACROBLOCK):
                if not concealing:
                    try:
                        recon = (
                            self._read_residual(reader, table) + 128.0
                            if frame_type is FrameType.I
                            else self._decode_p_macroblock(
                                reader, table, top, left))
                        if recon.shape != (MACROBLOCK, MACROBLOCK):
                            # A corrupt motion vector walked off the
                            # reference: the predictor came back short.
                            raise CodecError("macroblock out of bounds")
                    except (CodecError, ValueError):
                        # ValueError: shape mismatch from a corrupt
                        # motion vector's truncated predictor.
                        if not self.conceal_errors:
                            raise
                        # Sync is gone: conceal from here to frame end.
                        concealing = True
                        frame_damaged = True
                if concealing:
                    recon = self._conceal_macroblock(top, left)
                    self.concealed_macroblocks += 1
                image[top:top + MACROBLOCK, left:left + MACROBLOCK] = (
                    recon if recon.dtype == np.uint8 else _clip_to_u8(recon))
        if frame_damaged:
            self.concealed_frames += 1
        self._reference = image
        return image

    def _count_concealment(self, macroblocks: int) -> None:
        self.concealed_macroblocks += macroblocks
        self.concealed_frames += 1
        # The repeated frame becomes the new reference implicitly
        # (self._reference is unchanged — it *is* the output).

    def _conceal_macroblock(self, top: int, left: int) -> np.ndarray:
        """Temporal concealment: co-located reference content (or gray)."""
        if self._reference is not None:
            return motion_compensate(
                self._reference, top, left, (0, 0), MACROBLOCK).copy()
        return np.full((MACROBLOCK, MACROBLOCK), _NO_REFERENCE_FILL,
                       dtype=np.uint8)

    def _decode_p_macroblock(self, reader: BitReader, table: np.ndarray,
                             top: int, left: int) -> np.ndarray:
        assert self._reference is not None
        mode = reader.read_ue()
        if mode == _MODE_SKIP:
            return motion_compensate(
                self._reference, top, left, (0, 0), MACROBLOCK).copy()
        if mode == _MODE_INTRA:
            return self._read_residual(reader, table) + 128.0
        if mode == _MODE_INTER:
            motion = (reader.read_se(), reader.read_se())
            predictor = motion_compensate(
                self._reference, top, left, motion, MACROBLOCK)
            return self._read_residual(reader, table) + predictor.astype(
                np.float64)
        raise CodecError(f"unknown macroblock mode {mode}")

    @staticmethod
    def _read_residual(reader: BitReader, table: np.ndarray) -> np.ndarray:
        recon = np.empty((MACROBLOCK, MACROBLOCK), dtype=np.float64)
        for top in range(0, MACROBLOCK, TRANSFORM):
            for left in range(0, MACROBLOCK, TRANSFORM):
                vector = decode_coefficients(reader, TRANSFORM * TRANSFORM)
                levels = unzigzag(vector, TRANSFORM)
                recon[top:top + TRANSFORM, left:left + TRANSFORM] = idct2(
                    dequantize(levels, table))
        return recon
