"""The functional decoder matching :mod:`.encoder` bit-exactly."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...errors import CodecError
from ..frame import FrameType
from .dct import idct2
from .encoder import MACROBLOCK, TRANSFORM, _clip_to_u8
from .entropy import BitReader, decode_coefficients
from .motion import motion_compensate
from .quant import dequantize, quant_table
from .zigzag import unzigzag

_MODE_SKIP = 0
_MODE_INTER = 1
_MODE_INTRA = 2


class Decoder:
    """Stateful decoder for the I/P stream produced by :class:`Encoder`."""

    def __init__(self) -> None:
        self._reference: Optional[np.ndarray] = None

    def decode_frame(self, data: bytes) -> np.ndarray:
        """Decode one frame; returns the reconstructed uint8 image."""
        reader = BitReader(data)
        frame_type = FrameType.I if reader.read_ue() == 0 else FrameType.P
        width = reader.read_ue() * MACROBLOCK
        height = reader.read_ue() * MACROBLOCK
        quality = reader.read_ue()
        table = quant_table(quality, TRANSFORM)
        if frame_type is FrameType.P and self._reference is None:
            raise CodecError("P frame arrived before any I frame")
        image = np.empty((height, width), dtype=np.uint8)
        for top in range(0, height, MACROBLOCK):
            for left in range(0, width, MACROBLOCK):
                if frame_type is FrameType.I:
                    recon = self._read_residual(reader, table) + 128.0
                else:
                    recon = self._decode_p_macroblock(reader, table, top, left)
                image[top:top + MACROBLOCK, left:left + MACROBLOCK] = (
                    recon if recon.dtype == np.uint8 else _clip_to_u8(recon))
        self._reference = image
        return image

    def _decode_p_macroblock(self, reader: BitReader, table: np.ndarray,
                             top: int, left: int) -> np.ndarray:
        assert self._reference is not None
        mode = reader.read_ue()
        if mode == _MODE_SKIP:
            return motion_compensate(
                self._reference, top, left, (0, 0), MACROBLOCK).copy()
        if mode == _MODE_INTRA:
            return self._read_residual(reader, table) + 128.0
        if mode == _MODE_INTER:
            motion = (reader.read_se(), reader.read_se())
            predictor = motion_compensate(
                self._reference, top, left, motion, MACROBLOCK)
            return self._read_residual(reader, table) + predictor.astype(
                np.float64)
        raise CodecError(f"unknown macroblock mode {mode}")

    @staticmethod
    def _read_residual(reader: BitReader, table: np.ndarray) -> np.ndarray:
        recon = np.empty((MACROBLOCK, MACROBLOCK), dtype=np.float64)
        for top in range(0, MACROBLOCK, TRANSFORM):
            for left in range(0, MACROBLOCK, TRANSFORM):
                vector = decode_coefficients(reader, TRANSFORM * TRANSFORM)
                levels = unzigzag(vector, TRANSFORM)
                recon[top:top + TRANSFORM, left:left + TRANSFORM] = idct2(
                    dequantize(levels, table))
        return recon
