"""Quantization for the block codec.

Uses the JPEG luminance matrix scaled by a quality factor, the standard
IJG mapping: quality 50 uses the table as-is, higher qualities shrink
the steps, lower qualities grow them.
"""

from __future__ import annotations

import numpy as np

from ...errors import CodecError

#: JPEG Annex K luminance quantization table (8x8).
JPEG_LUMA_QUANT = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float64,
)


def quant_table(quality: int, block_size: int = 8) -> np.ndarray:
    """Quantization steps for the given quality in [1, 100]."""
    if not 1 <= quality <= 100:
        raise CodecError(f"quality must be in [1, 100], got {quality}")
    scale = 5000.0 / quality if quality < 50 else 200.0 - 2.0 * quality
    table = np.floor((JPEG_LUMA_QUANT * scale + 50.0) / 100.0)
    table = np.clip(table, 1.0, 255.0)
    if block_size != 8:
        # Resample the 8x8 table to other transform sizes.
        idx = (np.arange(block_size) * 8) // block_size
        table = table[np.ix_(idx, idx)]
    return table


def quantize(coeffs: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Quantize DCT coefficients to integers (round-to-nearest)."""
    return np.round(coeffs / table).astype(np.int32)


def dequantize(levels: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Reconstruct coefficient estimates from quantized levels."""
    return levels.astype(np.float64) * table
