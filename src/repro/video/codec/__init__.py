"""A small functional block codec (DCT + quant + Exp-Golomb + motion).

The paper derives decode-work and macroblock traces from FFmpeg; this
package provides the equivalent substrate: a real (if compact) hybrid
video codec with I/P frames, 8x8 transforms, and diamond-search motion
estimation.  It round-trips bit-exactly against its own reconstruction
and is exercised by tests and the trace-generation example.
"""

from .bframes import (
    SequencedFrame,
    SequenceDecoder,
    SequenceEncoder,
    decode_sequence,
    encode_sequence,
)
from .decoder import Decoder
from .encoder import EncodedFrame, Encoder
from .motion import diamond_search, motion_compensate

__all__ = [
    "SequencedFrame",
    "SequenceDecoder",
    "SequenceEncoder",
    "decode_sequence",
    "encode_sequence",
    "Decoder",
    "EncodedFrame",
    "Encoder",
    "diamond_search",
    "motion_compensate",
]
