"""The block encoder: a compact hybrid (transform + motion) codec.

Structure follows the classic H.26x recipe at reduced scope:

* 16x16 macroblocks, each transformed as four 8x8 DCT blocks;
* I frames code every macroblock intra (no spatial prediction — the
  shifted pixels are transformed directly);
* P frames choose per macroblock between SKIP (copy the reference),
  INTER (diamond-search motion vector + coded residual), and INTRA;
* quantized coefficients are Exp-Golomb run/level coded.

The encoder reconstructs exactly what the decoder will, and uses that
reconstruction as the next reference, so encoder and decoder stay
bit-identical over arbitrarily long sequences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ...errors import CodecError
from ..frame import FrameType
from .dct import dct2, idct2
from .entropy import BitWriter, encode_coefficients
from .motion import diamond_search, motion_compensate
from .quant import dequantize, quant_table, quantize
from .zigzag import zigzag

MACROBLOCK = 16
TRANSFORM = 8

_MODE_SKIP = 0
_MODE_INTER = 1
_MODE_INTRA = 2


@dataclass
class EncodedFrame:
    """One encoded frame plus the statistics the simulator consumes."""

    frame_type: FrameType
    data: bytes
    width: int
    height: int
    bits: int
    intra_mabs: int
    inter_mabs: int
    skip_mabs: int

    @property
    def total_mabs(self) -> int:
        return self.intra_mabs + self.inter_mabs + self.skip_mabs


class Encoder:
    """Stateful encoder producing an I/P stream.

    Args:
        quality: quantizer quality in [1, 100] (higher = better).
        gop_length: distance between I frames.
        search_range: motion search window, in pixels.
    """

    def __init__(self, quality: int = 60, gop_length: int = 12,
                 search_range: int = 7) -> None:
        self.quality = quality
        self.gop_length = gop_length
        self.search_range = search_range
        self._table = quant_table(quality, TRANSFORM)
        self._reference: Optional[np.ndarray] = None
        self._frame_index = 0

    def encode_frame(self, image: np.ndarray,
                     force_type: Optional[FrameType] = None) -> EncodedFrame:
        """Encode one grayscale ``(H, W)`` uint8 frame."""
        image = self._check_image(image)
        frame_type = force_type or self._next_type()
        if frame_type is FrameType.B:
            raise CodecError("this codec emits I/P streams only")
        if frame_type is FrameType.P and self._reference is None:
            frame_type = FrameType.I
        if frame_type is FrameType.I:
            encoded, reconstructed = self._encode_intra(image)
        else:
            encoded, reconstructed = self._encode_inter(image)
        self._reference = reconstructed
        self._frame_index += 1
        return encoded

    @property
    def reference(self) -> Optional[np.ndarray]:
        """The reconstructed previous frame (what the decoder will hold)."""
        return None if self._reference is None else self._reference.copy()

    # -- internals ---------------------------------------------------------

    def _next_type(self) -> FrameType:
        if self._frame_index % self.gop_length == 0:
            return FrameType.I
        return FrameType.P

    @staticmethod
    def _check_image(image: np.ndarray) -> np.ndarray:
        image = np.asarray(image)
        if image.ndim != 2 or image.dtype != np.uint8:
            raise CodecError(
                f"expected (H, W) uint8 frame, got {image.shape} {image.dtype}")
        if image.shape[0] % MACROBLOCK or image.shape[1] % MACROBLOCK:
            raise CodecError(
                f"frame {image.shape} must divide into {MACROBLOCK}px macroblocks")
        return image

    def _encode_intra(
            self, image: np.ndarray) -> Tuple[EncodedFrame, np.ndarray]:
        height, width = image.shape
        writer = BitWriter()
        self._write_header(writer, FrameType.I, width, height)
        reconstructed = np.empty_like(image)
        mabs = 0
        for top in range(0, height, MACROBLOCK):
            for left in range(0, width, MACROBLOCK):
                block = image[top:top + MACROBLOCK, left:left + MACROBLOCK]
                recon = self._code_residual(writer, block.astype(np.float64) - 128.0)
                reconstructed[top:top + MACROBLOCK, left:left + MACROBLOCK] = (
                    _clip_to_u8(recon + 128.0))
                mabs += 1
        encoded = EncodedFrame(FrameType.I, writer.getvalue(), width, height,
                               writer.bit_length, mabs, 0, 0)
        return encoded, reconstructed

    def _encode_inter(
            self, image: np.ndarray) -> Tuple[EncodedFrame, np.ndarray]:
        assert self._reference is not None
        reference = self._reference
        height, width = image.shape
        writer = BitWriter()
        self._write_header(writer, FrameType.P, width, height)
        reconstructed = np.empty_like(image)
        intra = inter = skip = 0
        for top in range(0, height, MACROBLOCK):
            for left in range(0, width, MACROBLOCK):
                block = image[top:top + MACROBLOCK, left:left + MACROBLOCK]
                motion = diamond_search(reference, block, top, left,
                                        self.search_range)
                predictor = motion_compensate(
                    reference, top, left, motion, MACROBLOCK)
                residual = block.astype(np.float64) - predictor.astype(np.float64)
                sad_inter = float(np.abs(residual).sum())
                sad_intra = float(
                    np.abs(block.astype(np.float64) - block.mean()).sum())
                if sad_inter == 0.0 and motion == (0, 0):
                    writer.write_ue(_MODE_SKIP)
                    recon = predictor.astype(np.uint8)
                    skip += 1
                elif sad_intra < sad_inter:
                    writer.write_ue(_MODE_INTRA)
                    coded = self._code_residual(
                        writer, block.astype(np.float64) - 128.0)
                    recon = _clip_to_u8(coded + 128.0)
                    intra += 1
                else:
                    writer.write_ue(_MODE_INTER)
                    writer.write_se(motion[0])
                    writer.write_se(motion[1])
                    coded = self._code_residual(writer, residual)
                    recon = _clip_to_u8(coded + predictor.astype(np.float64))
                    inter += 1
                reconstructed[top:top + MACROBLOCK, left:left + MACROBLOCK] = recon
        encoded = EncodedFrame(FrameType.P, writer.getvalue(), width, height,
                               writer.bit_length, intra, inter, skip)
        return encoded, reconstructed

    def _write_header(self, writer: BitWriter, frame_type: FrameType,
                      width: int, height: int) -> None:
        writer.write_ue(0 if frame_type is FrameType.I else 1)
        writer.write_ue(width // MACROBLOCK)
        writer.write_ue(height // MACROBLOCK)
        writer.write_ue(self.quality)

    def _code_residual(self, writer: BitWriter,
                       residual: np.ndarray) -> np.ndarray:
        """Transform-code a 16x16 residual; returns its reconstruction."""
        recon = np.empty_like(residual)
        for top in range(0, MACROBLOCK, TRANSFORM):
            for left in range(0, MACROBLOCK, TRANSFORM):
                sub = residual[top:top + TRANSFORM, left:left + TRANSFORM]
                levels = quantize(dct2(sub), self._table)
                encode_coefficients(writer, zigzag(levels))
                recon[top:top + TRANSFORM, left:left + TRANSFORM] = idct2(
                    dequantize(levels, self._table))
        return recon


def _clip_to_u8(values: np.ndarray) -> np.ndarray:
    return np.clip(np.round(values), 0, 255).astype(np.uint8)
