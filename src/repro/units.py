"""Unit constants and helpers used throughout the simulator.

The simulator's canonical units are:

* time    — seconds (float)
* energy  — joules (float)
* power   — watts (float)
* size    — bytes (int)
* rate    — hertz (float)

These helpers exist so that configuration values can be written in the
units the paper uses (milliseconds, millijoules, milliwatts, kilobytes)
without sprinkling magic ``1e-3`` factors through the code.
"""

from __future__ import annotations

# --- time -------------------------------------------------------------
NS = 1e-9
US = 1e-6
MS = 1e-3
SECOND = 1.0

# --- power / energy ---------------------------------------------------
MW = 1e-3
W = 1.0
UJ = 1e-6
MJ = 1e-3
J = 1.0

# --- size -------------------------------------------------------------
KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024

# --- frequency --------------------------------------------------------
KHZ = 1e3
MHZ = 1e6
GHZ = 1e9

# --- data rate (canonical: bytes per second; links and ladders are
# conventionally quoted in bits per second, hence the /8) --------------
KBPS = 1e3 / 8.0
MBPS = 1e6 / 8.0


def ns(value: float) -> float:
    """Convert nanoseconds to seconds."""
    return value * NS


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * US


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * MS


def mw(value: float) -> float:
    """Convert milliwatts to watts."""
    return value * MW


def mj(value: float) -> float:
    """Convert millijoules to joules."""
    return value * MJ


def kib(value: float) -> int:
    """Convert kibibytes to bytes."""
    return int(value * KIB)


def mib(value: float) -> int:
    """Convert mebibytes to bytes."""
    return int(value * MIB)


def mhz(value: float) -> float:
    """Convert megahertz to hertz."""
    return value * MHZ


def mbps(value: float) -> float:
    """Convert megabits per second to bytes per second."""
    return value * MBPS


def to_ms(seconds: float) -> float:
    """Express a duration in milliseconds (for reports)."""
    return seconds / MS


def to_mj(joules: float) -> float:
    """Express an energy in millijoules (for reports)."""
    return joules / MJ


def to_mib(nbytes: float) -> float:
    """Express a size in mebibytes (for reports)."""
    return nbytes / MIB
