"""Gradient blocks (gab): the paper's Sec. 4.3 transform.

A gradient block is a macroblock minus its first (top-left) pixel,
channel-wise, with uint8 wraparound.  Two blocks that differ only by a
uniform colour shift have identical gabs, so tagging MACH with gab
digests finds strictly more matches than mab digests — most notably,
*every* flat block collapses onto the all-zero gab (Fig. 9b).

The transform is exactly invertible: ``from_gradient(to_gradient(x))``
is the identity, bit for bit.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import GeometryError


def _check(blocks: np.ndarray) -> np.ndarray:
    blocks = np.asarray(blocks)
    if blocks.dtype != np.uint8:
        raise GeometryError(f"blocks must be uint8, got {blocks.dtype}")
    if blocks.ndim != 2 or blocks.shape[1] % 3:
        raise GeometryError(
            f"expected (n, 3k) RGB block matrix, got {blocks.shape}")
    return blocks


def to_gradient(blocks: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Split blocks into (gabs, bases).

    Returns:
        gabs: same shape as ``blocks``, each block minus its base pixel
            (mod 256); the first pixel of every gab is zero.
        bases: ``(n, 3)`` — each block's first pixel.
    """
    blocks = _check(blocks)
    bases = blocks[:, :3].copy()
    repeated = np.tile(bases, (1, blocks.shape[1] // 3))
    gabs = blocks - repeated  # uint8 wraparound is the intended ring math
    return gabs, bases


def from_gradient(gabs: np.ndarray, bases: np.ndarray) -> np.ndarray:
    """Reconstruct original blocks from (gabs, bases) exactly."""
    gabs = _check(gabs)
    bases = np.asarray(bases, dtype=np.uint8)
    if bases.shape != (gabs.shape[0], 3):
        raise GeometryError(
            f"bases shape {bases.shape} does not match {gabs.shape[0]} blocks")
    repeated = np.tile(bases, (1, gabs.shape[1] // 3))
    return gabs + repeated
