"""Viewing sessions: playlists, pauses, seeks, and rebuffering.

The paper evaluates continuous playback of single clips; a real viewing
session strings clips together, pauses (the decoder sleeps deep while
the display keeps repeating the frozen frame), and seeks (the streaming
buffer flushes and must re-fill before playback resumes).  This module
composes :func:`repro.simulate` runs into such a session and accounts
for the inter-segment states:

* **pause** — VD in S3, memory background on, display scanning the
  frozen frame out of the frame buffer every refresh;
* **rebuffer** (after a seek or at a cold start) — same electrical
  state as a pause, plus user-visible stall time while the network
  re-fills the pre-roll.

How stalls are computed depends on ``config.network.mode``:

* ``"chunked"`` (legacy) — a fixed pre-roll arithmetic stub;
* ``"trace"`` — each :class:`Play` runs a trace-driven delivery
  (:mod:`repro.network`): stalls emerge from playback-buffer
  occupancy, frame availability inside the decode pipeline comes from
  the realized arrivals (capping the Race-to-Sleep batch at the
  downloaded-but-undecoded frames), and the modem's burst energy is
  accounted in ``network_energy``.

The session-level result aggregates energy, drops, and stall time —
the three axes a streaming vendor actually balances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Union

from ..config import SchemeConfig, SimulationConfig
from ..video.synthesis import VideoProfile
from .pipeline import simulate
from .results import RunResult


@dataclass(frozen=True)
class Play:
    """Play ``n_frames`` of a source (a profile or trace)."""

    source: Any  # VideoProfile, FrameTrace, or sized DecodedFrame iterable
    n_frames: Optional[int] = None
    seek: bool = False  # a seek precedes this segment: flush + rebuffer


@dataclass(frozen=True)
class Pause:
    """The viewer pauses for ``duration`` seconds."""

    duration: float


SessionEvent = Union[Play, Pause]


@dataclass
class SessionResult:
    """Aggregated outcome of one viewing session."""

    playback_energy: float = 0.0  # J
    pause_energy: float = 0.0  # J
    rebuffer_energy: float = 0.0  # J
    network_energy: float = 0.0  # J of modem energy (trace mode only)
    playback_seconds: float = 0.0
    pause_seconds: float = 0.0
    stall_seconds: float = 0.0
    drops: int = 0
    #: Fault-resilience census (all zero on a clean session).
    retries: int = 0
    abandoned_segments: int = 0
    concealed_blocks: int = 0
    fallback_writes: int = 0
    #: Thermal-pressure census (all zero with ThermalConfig disabled).
    throttle_seconds: float = 0.0  # s of playback with boost revoked
    degradation_steps: int = 0  # summed governor ladder levels
    frames_at_nominal: int = 0  # racing frames decoded at the low freq
    segments: List[RunResult] = field(default_factory=list)
    deliveries: List[Any] = field(default_factory=list)

    @property
    def total_energy(self) -> float:
        return (self.playback_energy + self.pause_energy
                + self.rebuffer_energy + self.network_energy)

    @property
    def total_seconds(self) -> float:
        return (self.playback_seconds + self.pause_seconds
                + self.stall_seconds)

    @property
    def average_power(self) -> float:
        return (self.total_energy / self.total_seconds
                if self.total_seconds else 0.0)


class SessionSimulator:
    """Runs a list of session events under one scheme.

    ``panel_self_refresh=True`` models a PSR-capable display (the
    hybrid frame-buffer direction of the paper's display-optimization
    related work): during a pause the panel serves the frozen frame
    from its own buffer, the DC stops scanning DRAM, and the DRAM can
    drop into self-refresh (``DramConfig.self_refresh_fraction`` of
    its background power).
    """

    def __init__(self, scheme: SchemeConfig,
                 config: Optional[SimulationConfig] = None,
                 seed: int = 0, panel_self_refresh: bool = False) -> None:
        self.scheme = scheme
        self.config = config or SimulationConfig()
        self.seed = seed
        self.panel_self_refresh = panel_self_refresh

    # -- idle-state power -------------------------------------------------------

    def _frozen_frame_power(self) -> float:
        """System power while displaying a frozen frame.

        Without PSR: DC panel power + memory background + VD deep
        sleep, plus the dynamic memory cost of re-scanning the frame
        every refresh (the display cannot cache a whole frame).  With
        PSR the rescan traffic disappears and the DRAM self-refreshes.
        """
        cfg = self.config
        video, dram = cfg.video, cfg.dram
        if self.panel_self_refresh:
            return (cfg.display.power
                    + dram.background_power * dram.self_refresh_fraction
                    + cfg.decoder.power_states.s3_power)
        scale = video.scale_to_native
        lines = video.frame_bytes / dram.line_bytes
        rows = video.frame_bytes / dram.row_bytes
        per_refresh = (lines * dram.burst_energy
                       + rows * dram.act_pre_energy) * scale
        return (cfg.display.power
                + dram.background_power
                + cfg.decoder.power_states.s3_power
                + per_refresh * cfg.display.refresh_hz)

    def _rebuffer_seconds(self) -> float:
        """Stall until the pre-roll refills (legacy chunked stub)."""
        network = self.config.network
        chunk_frames = max(1, round(network.chunk_interval
                                    * self.config.video.fps))
        chunks_needed = -(-network.preroll_frames // chunk_frames)
        return chunks_needed * network.chunk_interval

    # -- helpers ----------------------------------------------------------------

    @staticmethod
    def _event_frames(event: Play) -> Optional[int]:
        """Resolve how many frames a Play will run (None = unknown)."""
        if event.n_frames is not None:
            return event.n_frames
        if isinstance(event.source, VideoProfile):
            return event.source.n_frames
        try:
            return len(event.source)
        except TypeError:
            return None

    # -- execution -----------------------------------------------------------------

    def run(self, events: Sequence[SessionEvent]) -> SessionResult:
        """Simulate the whole session."""
        from ..network.delivery import (  # local: keep core importable alone
            DeliveredNetworkModel,
            deliver_for_config,
        )

        result = SessionResult()
        idle_power = self._frozen_frame_power()
        use_delivery = self.config.network.mode == "trace"
        segment_seed = self.seed
        for event in events:
            if isinstance(event, Pause):
                result.pause_seconds += event.duration
                result.pause_energy += event.duration * idle_power
                continue
            if not isinstance(event, Play):
                raise TypeError(f"unknown session event: {event!r}")
            count = self._event_frames(event)
            if count == 0:
                continue  # a zero-length Play is a no-op
            cold_start = event.seek or not result.segments
            network_model = None
            if use_delivery and count is not None:
                profile = (event.source
                           if isinstance(event.source, VideoProfile)
                           else None)
                delivery = deliver_for_config(
                    self.config.network, self.config.video,
                    source=profile, n_frames=count, seed=segment_seed,
                    faults=(self.config.faults
                            if self.config.faults.enabled else None))
                network_model = DeliveredNetworkModel(delivery, count)
                result.deliveries.append(delivery)
                result.network_energy += delivery.radio.total
                result.retries += delivery.retries
                result.abandoned_segments += delivery.abandoned_segments
                # Mid-stream rebuffers always count; the startup wait
                # only on a flush (cold start or seek) — a seamless
                # clip-to-clip transition prefetches across the joint.
                stall = delivery.stall_seconds
                if cold_start:
                    stall += delivery.startup_seconds
                result.stall_seconds += stall
                result.rebuffer_energy += stall * idle_power
            elif cold_start:
                stall = self._rebuffer_seconds()
                result.stall_seconds += stall
                result.rebuffer_energy += stall * idle_power
            run = simulate(event.source, self.scheme,
                           n_frames=event.n_frames, config=self.config,
                           seed=segment_seed, network_model=network_model)
            segment_seed += 1
            result.segments.append(run)
            result.playback_energy += run.energy.total
            result.playback_seconds += run.elapsed
            result.drops += run.drops
            result.concealed_blocks += run.concealed_blocks
            result.fallback_writes += run.fallback_writes
            result.throttle_seconds += run.throttle_seconds
            result.degradation_steps += run.degradation_steps
            result.frames_at_nominal += run.frames_at_nominal
        return result


def simulate_session(events: Sequence[SessionEvent], scheme: SchemeConfig,
                     config: Optional[SimulationConfig] = None,
                     seed: int = 0,
                     panel_self_refresh: bool = False) -> SessionResult:
    """Convenience wrapper around :class:`SessionSimulator`."""
    simulator = SessionSimulator(scheme, config, seed,
                                 panel_self_refresh=panel_self_refresh)
    return simulator.run(events)
