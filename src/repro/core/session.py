"""Viewing sessions: playlists, pauses, seeks, and rebuffering.

The paper evaluates continuous playback of single clips; a real viewing
session strings clips together, pauses (the decoder sleeps deep while
the display keeps repeating the frozen frame), and seeks (the streaming
buffer flushes and must re-fill before playback resumes).  This module
composes :func:`repro.simulate` runs into such a session and accounts
for the inter-segment states:

* **pause** — VD in S3, memory background on, display scanning the
  frozen frame out of the frame buffer every refresh;
* **rebuffer** (after a seek or at a cold start) — same electrical
  state as a pause, plus user-visible stall time while the network
  re-fills the pre-roll.

The session-level result aggregates energy, drops, and stall time —
the three axes a streaming vendor actually balances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from ..config import SchemeConfig, SimulationConfig
from .pipeline import simulate
from .results import RunResult


@dataclass(frozen=True)
class Play:
    """Play ``n_frames`` of a source (a profile or trace)."""

    source: object
    n_frames: Optional[int] = None
    seek: bool = False  # a seek precedes this segment: flush + rebuffer


@dataclass(frozen=True)
class Pause:
    """The viewer pauses for ``duration`` seconds."""

    duration: float


SessionEvent = Union[Play, Pause]


@dataclass
class SessionResult:
    """Aggregated outcome of one viewing session."""

    playback_energy: float = 0.0
    pause_energy: float = 0.0
    rebuffer_energy: float = 0.0
    playback_seconds: float = 0.0
    pause_seconds: float = 0.0
    stall_seconds: float = 0.0
    drops: int = 0
    segments: List[RunResult] = field(default_factory=list)

    @property
    def total_energy(self) -> float:
        return (self.playback_energy + self.pause_energy
                + self.rebuffer_energy)

    @property
    def total_seconds(self) -> float:
        return (self.playback_seconds + self.pause_seconds
                + self.stall_seconds)

    @property
    def average_power(self) -> float:
        return (self.total_energy / self.total_seconds
                if self.total_seconds else 0.0)


#: Self-refresh DRAM power, as a fraction of active background power.
_SELF_REFRESH_FRACTION = 0.12


class SessionSimulator:
    """Runs a list of session events under one scheme.

    ``panel_self_refresh=True`` models a PSR-capable display (the
    hybrid frame-buffer direction of the paper's display-optimization
    related work): during a pause the panel serves the frozen frame
    from its own buffer, the DC stops scanning DRAM, and the DRAM can
    drop into self-refresh.
    """

    def __init__(self, scheme: SchemeConfig,
                 config: Optional[SimulationConfig] = None,
                 seed: int = 0, panel_self_refresh: bool = False) -> None:
        self.scheme = scheme
        self.config = config or SimulationConfig()
        self.seed = seed
        self.panel_self_refresh = panel_self_refresh

    # -- idle-state power -------------------------------------------------------

    def _frozen_frame_power(self) -> float:
        """System power while displaying a frozen frame.

        Without PSR: DC panel power + memory background + VD deep
        sleep, plus the dynamic memory cost of re-scanning the frame
        every refresh (the display cannot cache a whole frame).  With
        PSR the rescan traffic disappears and the DRAM self-refreshes.
        """
        cfg = self.config
        video, dram = cfg.video, cfg.dram
        if self.panel_self_refresh:
            return (cfg.display.power
                    + dram.background_power * _SELF_REFRESH_FRACTION
                    + cfg.decoder.power_states.s3_power)
        scale = video.scale_to_native
        lines = video.frame_bytes / dram.line_bytes
        rows = video.frame_bytes / dram.row_bytes
        per_refresh = (lines * dram.burst_energy
                       + rows * dram.act_pre_energy) * scale
        return (cfg.display.power
                + dram.background_power
                + cfg.decoder.power_states.s3_power
                + per_refresh * cfg.display.refresh_hz)

    def _rebuffer_seconds(self) -> float:
        """Stall until the pre-roll refills after a flush."""
        network = self.config.network
        chunk_frames = max(1, round(network.chunk_interval
                                    * self.config.video.fps))
        chunks_needed = -(-network.preroll_frames // chunk_frames)
        return chunks_needed * network.chunk_interval

    # -- execution -----------------------------------------------------------------

    def run(self, events: Sequence[SessionEvent]) -> SessionResult:
        """Simulate the whole session."""
        result = SessionResult()
        idle_power = self._frozen_frame_power()
        segment_seed = self.seed
        for event in events:
            if isinstance(event, Pause):
                result.pause_seconds += event.duration
                result.pause_energy += event.duration * idle_power
                continue
            if not isinstance(event, Play):
                raise TypeError(f"unknown session event: {event!r}")
            if event.seek or not result.segments:
                stall = self._rebuffer_seconds()
                result.stall_seconds += stall
                result.rebuffer_energy += stall * idle_power
            run = simulate(event.source, self.scheme,
                           n_frames=event.n_frames, config=self.config,
                           seed=segment_seed)
            segment_seed += 1
            result.segments.append(run)
            result.playback_energy += run.energy.total
            result.playback_seconds += run.elapsed
            result.drops += run.drops
        return result


def simulate_session(events: Sequence[SessionEvent], scheme: SchemeConfig,
                     config: Optional[SimulationConfig] = None,
                     seed: int = 0,
                     panel_self_refresh: bool = False) -> SessionResult:
    """Convenience wrapper around :class:`SessionSimulator`."""
    simulator = SessionSimulator(scheme, config, seed,
                                 panel_self_refresh=panel_self_refresh)
    return simulator.run(events)
