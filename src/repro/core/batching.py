"""Streaming-buffer model and batch admission (paper Sec. 3.1).

The network stack delivers encoded frames in periodic chunks (YouTube
buffers every 400-500 ms); the decoder can only batch what is already
buffered.  Race-to-Sleep "does not need to wait for 8 frames to start —
it is adaptive to network performance and can leverage any number of
frames that are already buffered" (Sec. 3.3), which is exactly what
:meth:`NetworkModel.frames_available` enables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol

from ..config import NetworkConfig


class FrameSource(Protocol):
    """Anything that can say when encoded frames are buffered.

    Implemented by :class:`NetworkModel` (the legacy chunked stub) and
    :class:`repro.network.DeliveredNetworkModel` (arrivals from a
    trace-driven delivery run); the governor and pipeline accept
    either.
    """

    def frames_available(self, time: float) -> int: ...

    def time_when_available(self, count: int) -> float: ...


def batch_ready_time(source: FrameSource, next_frame: int, batch: int,
                     buffers_free_time: float) -> float:
    """When a ``batch``-frame decode starting at ``next_frame`` can run.

    ``buffers_free_time`` is the absolute time (canonical seconds)
    when enough frame-buffer slots will have drained.  The batch needs
    its frames buffered by the network *and* enough frame-buffer slots
    drained; both governors (fixed and adaptive) plan against this
    time, the adaptive one re-evaluating it per candidate batch depth
    while walking the degradation ladder.
    """
    return max(source.time_when_available(next_frame + batch),
               buffers_free_time)


@dataclass(frozen=True)
class NetworkModel:
    """Deterministic chunked frame-arrival process."""

    config: NetworkConfig
    fps: float
    total_frames: int

    @property
    def chunk_frames(self) -> int:
        """Frames delivered per chunk interval."""
        return max(1, int(round(self.config.chunk_interval * self.fps)))

    def frames_available(self, time: float) -> int:
        """Encoded frames buffered by ``time`` (starting at t=0)."""
        if time < 0:
            return 0
        chunks = int(time / self.config.chunk_interval)
        available = self.config.preroll_frames + chunks * self.chunk_frames
        return min(self.total_frames, available)

    def time_when_available(self, count: int) -> float:
        """Earliest time at which ``count`` frames are buffered."""
        count = min(count, self.total_frames)
        if count <= self.config.preroll_frames:
            return 0.0
        needed_chunks = math.ceil(
            (count - self.config.preroll_frames) / self.chunk_frames)
        return needed_chunks * self.config.chunk_interval
