"""MACH — the MAcroblock caCHe (paper Sec. 4).

One MACH is built *per frame* while that frame decodes: a 256-entry
4-way set-associative cache mapping a block digest to the address where
that block's bytes live in a frame buffer.  When the frame finishes,
its MACH freezes and joins a ring of the ``num_machs`` most recent
frames; lookups consult the current frame first (intra matches) and
then the frozen ring, newest first (inter matches).

The CO-MACH extension (Sec. 6.3) stores a CRC16 auxiliary field next to
each entry: a CRC32 tag hit with a CRC16 mismatch is a detected
collision, and the colliding entry is kept in a small side cache tagged
by the full 48-bit digest.  Without CO-MACH a CRC32 collision silently
reuses the wrong block — the tracker still counts those so Fig. 12d can
report them.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from enum import Enum
from functools import cached_property
from typing import Deque, Dict, Optional, Sequence, Tuple

import numpy as np

from ..cache import SetAssociativeCache
from ..config import MachConfig
from ..errors import SchedulingError

_AUX_MASK = 0xFFFF
_TAG_MASK = 0xFFFFFFFF


class MatchKind(Enum):
    """Where a block's content was found (Fig. 7b categories)."""

    INTRA = "intra"
    INTER = "inter"
    NONE = "none"


@dataclass
class MachStats:
    """Running match statistics across a run."""

    intra: int = 0
    inter: int = 0
    none: int = 0
    detected_collisions: int = 0
    silent_collisions: int = 0
    co_mach_hits: int = 0
    #: Injected digest collisions (fault injection, not natural CRC32
    #: aliasing) and how the write path resolved them: a verified
    #: fallback stores the full block, an unverified one silently
    #: reuses the wrong content.
    injected_collisions: int = 0
    fallback_writes: int = 0
    match_counter: Counter = field(default_factory=Counter)

    @property
    def total(self) -> int:
        return self.intra + self.inter + self.none

    @property
    def match_rate(self) -> float:
        if not self.total:
            return 0.0
        return (self.intra + self.inter) / self.total

    def record(self, kind: MatchKind, digest: int) -> None:
        if kind is MatchKind.INTRA:
            self.intra += 1
            self.match_counter[digest] += 1
        elif kind is MatchKind.INTER:
            self.inter += 1
            self.match_counter[digest] += 1
        else:
            self.none += 1

    def record_batch(self, intra: int, inter: int, none: int,
                     matched_digests: Sequence[int],
                     matched_counts: Sequence[int]) -> None:
        """Bulk equivalent of per-block :meth:`record` calls.

        ``matched_digests`` must be ordered by first match occurrence
        within the batch so that ``match_counter`` keeps the exact
        insertion order the scalar loop would have produced.
        """
        self.intra += intra
        self.inter += inter
        self.none += none
        if len(matched_digests):
            self.match_counter.update(
                dict(zip(matched_digests, matched_counts)))

    def top_match_share(self, top_n: int = 1) -> float:
        """Fraction of all matches owned by the ``top_n`` digests (Fig. 9b)."""
        matches = self.intra + self.inter
        if not matches:
            return 0.0
        return sum(c for _, c in self.match_counter.most_common(top_n)) / matches


@dataclass(frozen=True)
class FrozenMach:
    """An immutable, finished per-frame MACH (what gets dumped)."""

    frame_index: int
    table: Dict[int, Tuple[int, int]]  # digest -> (address, aux)
    digests: np.ndarray  # uint64 array of resident digests

    @property
    def entries(self) -> int:
        return len(self.table)

    @cached_property
    def columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(digests, addresses, aux)`` as aligned int64 arrays.

        Computed lazily from ``table`` (the batched write path seeds it
        directly from the arrays it already holds).
        """
        count = len(self.table)
        dig = np.fromiter(self.table.keys(), dtype=np.int64, count=count)
        vals = np.fromiter(
            (v for entry in self.table.values() for v in entry),
            dtype=np.int64, count=2 * count).reshape(count, 2)
        return dig, vals[:, 0].copy(), vals[:, 1].copy()


class FrameMach:
    """The MACH of the frame currently being decoded.

    ``unbounded=True`` replaces the set-associative structure with a
    plain dict — the capacity-free oracle used as the "optimal" bar in
    Fig. 9a.
    """

    def __init__(self, config: MachConfig, frame_index: int,
                 unbounded: bool = False) -> None:
        self.config = config
        self.frame_index = frame_index
        self.unbounded = unbounded
        if unbounded:
            self._dict: Optional[Dict[int, Tuple[int, int]]] = {}
            self._cache: Optional[SetAssociativeCache] = None
        else:
            self._dict = None
            self._cache = SetAssociativeCache(
                sets=config.sets_per_mach, ways=config.ways)
        self._co_mach: Optional[SetAssociativeCache] = None
        if config.co_mach and not unbounded:
            co_sets = max(1, config.co_mach_entries // config.ways)
            # Round the CO-MACH set count down to a power of two.
            co_sets = 1 << (co_sets.bit_length() - 1)
            self._co_mach = SetAssociativeCache(sets=co_sets, ways=config.ways)

    def lookup(self, digest: int, aux: int,
               stats: Optional[MachStats] = None) -> Optional[int]:
        """Find ``digest`` in this MACH; returns the block address or None.

        ``aux`` is the CRC16 auxiliary used for CO-MACH collision
        detection; pass 0 when the digest scheme has no aux bits.
        """
        if self._dict is not None:
            entry = self._dict.get(digest)
        else:
            assert self._cache is not None
            _, entry = self._cache.lookup(digest)
        if entry is not None:
            address, stored_aux = entry
            if stored_aux == aux or not self.config.co_mach:
                if stored_aux != aux and stats is not None:
                    stats.silent_collisions += 1
                return address
            # Detected CRC32 collision: fall back to CO-MACH.
            if stats is not None:
                stats.detected_collisions += 1
            if self._co_mach is not None:
                deep_tag = (aux << 32) | digest
                _, co_entry = self._co_mach.lookup(deep_tag)
                if co_entry is not None:
                    if stats is not None:
                        stats.co_mach_hits += 1
                    return int(co_entry)
            return None
        if self._co_mach is not None:
            deep_tag = (aux << 32) | digest
            _, co_entry = self._co_mach.lookup(deep_tag)
            if co_entry is not None:
                if stats is not None:
                    stats.co_mach_hits += 1
                return int(co_entry)
        return None

    def insert(self, digest: int, address: int, aux: int) -> None:
        """Record that the block with ``digest`` now lives at ``address``."""
        if self._dict is not None:
            self._dict[digest] = (address, aux)
            return
        assert self._cache is not None
        if self.config.co_mach:
            existing = self._cache.peek(digest)
            if existing is not None and existing[1] != aux:
                # Collided with a resident entry: spill to CO-MACH.
                if self._co_mach is not None:
                    self._co_mach.insert((aux << 32) | digest, address)
                return
        self._cache.insert(digest, (address, aux))

    def freeze(self) -> FrozenMach:
        """Finish the frame: snapshot resident entries immutably."""
        if self._dict is not None:
            table = dict(self._dict)
        else:
            assert self._cache is not None
            table = {digest: value for digest, value in self._cache.items()}
        digests = np.fromiter(table.keys(), dtype=np.uint64, count=len(table))
        return FrozenMach(self.frame_index, table, digests)


class MachRing:
    """The current MACH plus the frozen ring of recent frames."""

    def __init__(self, config: MachConfig, unbounded: bool = False) -> None:
        self.config = config
        self.unbounded = unbounded
        self.stats = MachStats()
        self._current: Optional[FrameMach] = None
        self._frozen: Deque[FrozenMach] = deque(maxlen=max(config.num_machs - 1, 0))
        self._batch_view: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    def ensure_idle(self) -> None:
        """Raise unless the previous frame's MACH was ended/ingested."""
        if self._current is not None:
            raise SchedulingError("previous frame was never ended")

    def begin_frame(self, frame_index: int) -> None:
        self.ensure_idle()
        self._current = FrameMach(self.config, frame_index, self.unbounded)

    def lookup(self, digest: int, aux: int = 0) -> Tuple[MatchKind, Optional[int]]:
        """Search current-then-frozen; returns (kind, address)."""
        current = self._require_current()
        address = current.lookup(digest, aux, self.stats)
        if address is not None:
            return MatchKind.INTRA, address
        for frozen in reversed(self._frozen):  # newest frame first
            entry = frozen.table.get(digest)
            if entry is not None:
                stored_address, stored_aux = entry
                if stored_aux != aux and self.config.co_mach:
                    self.stats.detected_collisions += 1
                    continue
                if stored_aux != aux:
                    self.stats.silent_collisions += 1
                return MatchKind.INTER, stored_address
        return MatchKind.NONE, None

    def insert(self, digest: int, address: int, aux: int = 0) -> None:
        self._require_current().insert(digest, address, aux)

    def end_frame(self) -> FrozenMach:
        """Freeze the current frame's MACH and rotate it into the ring."""
        frozen = self._require_current().freeze()
        if self._frozen.maxlen:
            self._frozen.append(frozen)
            self._batch_view = None
        self._current = None
        return frozen

    def ingest_frozen(self, frozen: FrozenMach) -> None:
        """Rotate an externally built frame MACH into the ring.

        The batched write path classifies a whole frame at once and
        never materializes a :class:`FrameMach`; it hands the finished
        snapshot straight to the ring.  The same begin/end scheduling
        invariant applies.
        """
        self.ensure_idle()
        if self._frozen.maxlen:
            self._frozen.append(frozen)
            self._batch_view = None

    def lookup_batch(
            self, digests: np.ndarray,
            aux: np.ndarray) -> Tuple[np.ndarray, np.ndarray, bool]:
        """Frozen-ring lookup of many digests at once, without stats.

        Returns ``(found, addresses, clean)`` where ``found`` marks
        digests resident in at least one frozen frame, ``addresses``
        holds the match address from the *newest* such frame (the one
        the scalar walk would return), and ``clean`` is False when any
        consulted entry's CRC16 aux disagrees with the query's — the
        collision paths (silent match or CO-MACH skip) that the caller
        must replay through the scalar loop instead.

        Pure: ring state and stats are untouched.
        """
        n = len(digests)
        found = np.zeros(n, dtype=bool)
        addresses = np.zeros(n, dtype=np.int64)
        view = self._batch_view
        if view is None:
            parts_d, parts_a, parts_x = [], [], []
            # Newest first, so ties on digest resolve to the newest
            # frame after the stable argsort below.
            for frozen in reversed(self._frozen):
                if not frozen.table:
                    continue
                dig, addr, auxes = frozen.columns
                parts_d.append(dig)
                parts_a.append(addr)
                parts_x.append(auxes)
            if parts_d:
                all_d = np.concatenate(parts_d)
                order = np.argsort(all_d, kind="stable")
                view = (all_d[order], np.concatenate(parts_a)[order],
                        np.concatenate(parts_x)[order])
            else:
                empty = np.empty(0, dtype=np.int64)
                view = (empty, empty, empty)
            self._batch_view = view
        ring_d, ring_a, ring_x = view
        if not len(ring_d):
            return found, addresses, True
        pos = np.searchsorted(ring_d, digests, side="left")
        pos = np.minimum(pos, len(ring_d) - 1)
        found = ring_d[pos] == digests
        addresses[found] = ring_a[pos[found]]
        clean = bool(np.array_equal(ring_x[pos[found]], aux[found]))
        return found, addresses, clean

    def _require_current(self) -> FrameMach:
        if self._current is None:
            raise SchedulingError("no frame in progress; call begin_frame()")
        return self._current

    @property
    def frozen_frames(self) -> Tuple[int, ...]:
        return tuple(f.frame_index for f in self._frozen)


def split_digest(deep_digest: int) -> Tuple[int, int]:
    """Split a 48-bit deep digest into (crc32 tag, crc16 aux)."""
    return deep_digest & _TAG_MASK, (deep_digest >> 32) & _AUX_MASK
