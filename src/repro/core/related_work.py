"""History-based slack-prediction DVFS — the related-work baseline.

The paper contrasts Race-to-Sleep with prior schemes ([57], [66] in its
bibliography) that *slow the decoder down* to just meet each frame's
deadline, predicting the next frame's decode time from history.  Those
schemes save VD energy but "these benefits come at the cost of
frame-drops" (Sec. 7): an unpredicted heavy frame (a scene cut, a big
I frame) decodes too slowly at the down-scaled frequency and misses its
deadline.

This module implements that policy faithfully enough to reproduce the
argument: a windowed-maximum predictor, a continuous DVFS range between
the paper's two frequency points (power interpolated on the measured
150/300 MHz curve), and a frame-level simulation that reports energy
and drops, comparable against the main pipeline's VD-side accounting.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from ..config import DecoderConfig, SimulationConfig
from ..decoder.power import PowerTracker, plan_slack
from ..decoder.timing import decode_cycles
from ..video.synthesis import SyntheticVideo, VideoProfile


def power_at_frequency(config: DecoderConfig, frequency: float) -> float:
    """VD power at an arbitrary frequency.

    Interpolates on a power-law fit through the paper's two measured
    points (0.30 W @ 150 MHz, 0.69 W @ 300 MHz) — the effective
    exponent of the voltage/frequency scaling curve.
    """
    exponent = math.log(config.high_freq_power / config.low_freq_power,
                        config.high_freq / config.low_freq)
    return config.low_freq_power * (
        frequency / config.low_freq) ** exponent


class SlackPredictor:
    """Windowed-maximum predictor of the next frame's decode cycles.

    Predicting the maximum of the recent window (instead of the mean)
    is the conservative variant; it still cannot see a scene cut
    coming, which is precisely the failure mode the paper exploits.
    """

    def __init__(self, window: int = 8, margin: float = 1.05) -> None:
        self.window = window
        self.margin = margin
        self._history: Deque[float] = deque(maxlen=window)

    def predict(self) -> Optional[float]:
        """Predicted cycles for the next frame (None before history)."""
        if not self._history:
            return None
        return max(self._history) * self.margin

    def observe(self, cycles: float) -> None:
        self._history.append(cycles)


@dataclass
class SlackDvfsResult:
    """Outcome of a slack-prediction DVFS run (VD side only)."""

    n_frames: int
    drops: int
    vd_energy: float  # J: execution + slack + transitions
    mean_frequency: float

    @property
    def drop_rate(self) -> float:
        return self.drops / self.n_frames if self.n_frames else 0.0


def simulate_slack_dvfs(
    profile: VideoProfile,
    n_frames: int,
    config: Optional[SimulationConfig] = None,
    seed: int = 0,
    predictor_window: int = 8,
    margin: float = 1.05,
    min_frequency: Optional[float] = None,
) -> SlackDvfsResult:
    """Run the history-based DVFS decoder over one video.

    Every frame, the governor picks the lowest frequency (within the
    VD's range) at which the *predicted* decode work still meets the
    16.6 ms deadline; the frame then takes however long its *actual*
    work needs at that frequency.  Slack goes to the same sleep states
    as the main pipeline; mispredictions become frame drops.
    """
    cfg = config or SimulationConfig()
    decoder = cfg.decoder
    # Down-scaling schemes run below the nominal operating point; half
    # the low frequency is a generous floor.
    floor = (min_frequency if min_frequency is not None
             else decoder.low_freq / 2)
    interval = cfg.video.frame_interval
    stream = SyntheticVideo(cfg.video, profile, seed=seed, n_frames=n_frames,
                            complexity_sigma=cfg.calibration.complexity_sigma)
    predictor = SlackPredictor(predictor_window, margin)
    tracker = PowerTracker(decoder.power_states)

    drops = 0
    freq_sum = 0.0
    backlog = 0.0  # decode time beyond the slot, carried forward
    for frame in stream:
        cycles = decode_cycles(frame, decoder)
        predicted = predictor.predict()
        if predicted is None:
            frequency = decoder.high_freq  # warm-up: be safe
        else:
            needed = predicted / (interval - 1e-4)
            frequency = min(decoder.high_freq, max(floor, needed))
        duration = cycles / frequency
        freq_sum += frequency
        tracker.record_execution(duration, power_at_frequency(decoder,
                                                              frequency))
        # Deadline check including any backlog from earlier overruns.
        finish = backlog + duration
        if finish > interval:
            drops += 1
            backlog = finish - interval
        else:
            slack = interval - finish
            tracker.record_slack(plan_slack(slack, decoder.power_states))
            backlog = 0.0
        predictor.observe(cycles)

    return SlackDvfsResult(
        n_frames=n_frames,
        drops=drops,
        vd_energy=tracker.total_energy,
        mean_frequency=freq_sum / n_frames if n_frames else 0.0,
    )
