"""MACH beyond playback: the paper's Sec. 6.4 extension pipelines.

The paper closes by observing that the MACH idea applies to any
frame-based producer/consumer IP pair that communicates through memory:

* the **recording** pipeline — camera frames flow through memory to the
  video encoder, which additionally re-reads the previous frame for
  motion estimation;
* the **graphics** pipeline — the GPU renders frames through memory to
  the display at 60+ fps.

This module implements that generalization: a
:class:`ProducerConsumerPipeline` runs any frame stream through the
content-caching write path and the display-caching read path, counting
the memory traffic a MACH-equipped IP pair saves versus the raw flow.
:class:`RecordingPipeline` and :class:`RenderPipeline` bind the two
concrete shapes the paper names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..config import GAB, SchemeConfig, SimulationConfig
from ..video.frame import DecodedFrame
from .readpath import DisplayReadEngine
from .writeback import WritebackEngine, WritebackResult


@dataclass
class PipelineTrafficReport:
    """Producer/consumer memory traffic, with and without MACH."""

    frames: int
    raw_write_bytes: int
    mach_write_bytes: int
    raw_read_lines: int
    mach_read_lines: int

    @property
    def write_savings(self) -> float:
        if not self.raw_write_bytes:
            return 0.0
        return 1.0 - self.mach_write_bytes / self.raw_write_bytes

    @property
    def read_savings(self) -> float:
        if not self.raw_read_lines:
            return 0.0
        return 1.0 - self.mach_read_lines / self.raw_read_lines

    @property
    def total_savings(self) -> float:
        """Combined producer+consumer line-traffic saving."""
        line = 64
        raw = self.raw_write_bytes / line + self.raw_read_lines
        mach = self.mach_write_bytes / line + self.mach_read_lines
        return 1.0 - mach / raw if raw else 0.0


class ProducerConsumerPipeline:
    """A frame producer and consumer joined by MACH-managed memory.

    Args:
        config: simulation configuration (geometry + MACH parameters).
        consumer_reads_per_frame: how many frame-sized scans the
            consumer performs per produced frame (1 for a display, 2
            for an encoder that also reads its motion reference).
        scheme: the MACH stack to apply (defaults to the paper's GAB).
    """

    def __init__(self, config: Optional[SimulationConfig] = None,
                 consumer_reads_per_frame: int = 1,
                 scheme: SchemeConfig = GAB) -> None:
        self.config = config or SimulationConfig()
        if consumer_reads_per_frame < 1:
            raise ValueError("consumer must read each frame at least once")
        self.consumer_reads = consumer_reads_per_frame
        self.scheme = scheme

    def run(self, frames: Iterable[DecodedFrame]) -> PipelineTrafficReport:
        """Push ``frames`` through the pipeline and tally the traffic."""
        cfg = self.config
        video = cfg.video
        mach = cfg.with_scheme_mach(self.scheme).scaled_for(video)
        line = cfg.dram.line_bytes
        writer = WritebackEngine(video, mach, self.scheme, line)
        reader = DisplayReadEngine(cfg.display, mach, video, line)
        slot_stride = 1 << 24  # generous virtual slot spacing

        window = (0.0, video.frame_interval)
        previous: Optional[WritebackResult] = None
        count = 0
        mach_write_bytes = 0
        for frame in frames:
            result = writer.process_frame(frame, frame.index * slot_stride)
            mach_write_bytes += result.bytes_written
            scans = [result]
            if self.consumer_reads >= 2 and previous is not None:
                scans.append(previous)  # the encoder's motion reference
            for target in scans:
                reader.scan(target, window)
            previous = result
            count += 1

        raw_lines_per_scan = -(-video.frame_bytes // line)
        raw_scans = count + (max(count - 1, 0)
                             if self.consumer_reads >= 2 else 0)
        return PipelineTrafficReport(
            frames=count,
            raw_write_bytes=count * video.frame_bytes,
            mach_write_bytes=mach_write_bytes,
            raw_read_lines=raw_scans * raw_lines_per_scan,
            mach_read_lines=reader.stats.mem_reads,
        )


class RecordingPipeline(ProducerConsumerPipeline):
    """Camera -> memory -> video encoder (Sec. 6.4).

    The encoder reads the current frame and its motion-estimation
    reference, so the consumer side weighs twice as heavily as in
    playback.
    """

    def __init__(self, config: Optional[SimulationConfig] = None,
                 scheme: SchemeConfig = GAB) -> None:
        super().__init__(config, consumer_reads_per_frame=2, scheme=scheme)


class RenderPipeline(ProducerConsumerPipeline):
    """GPU -> memory -> display (Sec. 6.4's graphics use case)."""

    def __init__(self, config: Optional[SimulationConfig] = None,
                 scheme: SchemeConfig = GAB) -> None:
        super().__init__(config, consumer_reads_per_frame=1, scheme=scheme)
