"""The paper's contribution: MACH content caching, display caching, and
the Race-to-Sleep pipeline that ties every substrate together."""

from .energy import EnergyBreakdown
from .gradient import from_gradient, to_gradient
from .mach import FrameMach, FrozenMach, MachRing, MatchKind
from .pipeline import simulate
from .pipelines import RecordingPipeline, RenderPipeline
from .related_work import simulate_slack_dvfs
from .results import RunResult, SchemeComparison, compare_schemes
from .session import Pause, Play, SessionResult, simulate_session

__all__ = [
    "EnergyBreakdown",
    "from_gradient",
    "to_gradient",
    "FrameMach",
    "FrozenMach",
    "MachRing",
    "MatchKind",
    "simulate",
    "RecordingPipeline",
    "RenderPipeline",
    "simulate_slack_dvfs",
    "RunResult",
    "SchemeComparison",
    "compare_schemes",
    "Pause",
    "Play",
    "SessionResult",
    "simulate_session",
]
