"""System energy breakdown — the nine stacked parts of Fig. 11.

The paper splits each scheme's energy into: DC, memory background, VD
processing, sleep, short slack, memory burst, memory Act/Pre, power
state transitions, and MAB/GAB (MACH) overheads.  This module holds
that breakdown and builds it from the power tracker, the memory
counters, and the always-on component powers.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict

from ..config import DisplayConfig, MachConfig, SchemeConfig
from ..decoder.power import PowerState, PowerTracker
from ..memory.energy import MemoryEnergy
from ..units import to_mj


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules per component over one playback run (Fig. 11 legend)."""

    dc: float = 0.0
    mem_background: float = 0.0
    vd_processing: float = 0.0
    sleep: float = 0.0
    short_slack: float = 0.0
    mem_burst: float = 0.0
    mem_act_pre: float = 0.0
    transition: float = 0.0
    mach_overhead: float = 0.0

    @property
    def total(self) -> float:
        return sum(getattr(self, f.name) for f in fields(self))

    @property
    def memory_total(self) -> float:
        return self.mem_background + self.mem_burst + self.mem_act_pre

    @property
    def vd_total(self) -> float:
        return (self.vd_processing + self.sleep + self.short_slack
                + self.transition)

    def as_dict(self) -> Dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def normalized_to(self, baseline: "EnergyBreakdown") -> Dict[str, float]:
        """Each component as a fraction of ``baseline``'s total."""
        total = baseline.total
        return {name: value / total for name, value in self.as_dict().items()}

    def per_frame_mj(self, n_frames: int) -> float:
        """Average millijoules per frame."""
        return to_mj(self.total / n_frames) if n_frames else 0.0


def build_breakdown(
    tracker: PowerTracker,
    memory: MemoryEnergy,
    display: DisplayConfig,
    mach: MachConfig,
    scheme: SchemeConfig,
    elapsed: float,
) -> EnergyBreakdown:
    """Assemble the run's breakdown from component accounting.

    ``memory`` must already be rescaled to native (4K) traffic volume;
    everything else is computed from real component powers and the
    run's wall-clock ``elapsed`` time.
    """
    mach_power = 0.0
    if scheme.uses_mach:
        mach_power += mach.mach_static_power + mach.mach_dynamic_power
        if scheme.display_caching:
            mach_power += (mach.buffer_static_power
                           + mach.buffer_dynamic_power
                           + display.display_cache_static_power
                           + display.display_cache_dynamic_power)
        if mach.co_mach:
            mach_power += mach.co_mach_extra_power
    return EnergyBreakdown(
        dc=display.power * elapsed,
        mem_background=memory.background,
        vd_processing=tracker.energy_by_state[PowerState.EXECUTION],
        sleep=(tracker.energy_by_state[PowerState.S1]
               + tracker.energy_by_state[PowerState.S3]),
        short_slack=tracker.energy_by_state[PowerState.SHORT_SLACK],
        mem_burst=memory.burst,
        mem_act_pre=memory.act_pre,
        transition=tracker.energy_by_state[PowerState.TRANSITION],
        mach_overhead=mach_power * elapsed,
    )
