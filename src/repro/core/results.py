"""Run results and cross-scheme comparison containers."""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..decoder.power import PowerState
from ..memory.controller import AccessStats
from .energy import EnergyBreakdown
from .readpath import ReadStats
from .writeback import FrameMatches


@dataclass
class FrameTimeline:
    """Per-frame time/energy splits, the substance of Figs. 2 and 4.

    All arrays are indexed by frame.  Slack decisions made after a
    batch are attributed evenly to the batch's frames, which is how the
    paper presents per-frame transition overheads under batching.
    """

    decode_time: np.ndarray  # s per frame
    exec_energy: np.ndarray  # J per frame
    idle_time: np.ndarray  # s per frame
    s1_time: np.ndarray  # s per frame
    s3_time: np.ndarray  # s per frame
    transition_time: np.ndarray  # s per frame
    idle_energy: np.ndarray  # J per frame
    s1_energy: np.ndarray  # J per frame
    s3_energy: np.ndarray  # J per frame
    transition_energy: np.ndarray  # J per frame
    finish: np.ndarray  # s, absolute decode-finish times
    deadline: np.ndarray  # s, absolute display deadlines
    dropped: np.ndarray

    @classmethod
    def empty(cls, n: int) -> "FrameTimeline":
        zeros = lambda: np.zeros(n, dtype=np.float64)  # noqa: E731
        return cls(
            decode_time=zeros(), exec_energy=zeros(), idle_time=zeros(),
            s1_time=zeros(), s3_time=zeros(), transition_time=zeros(),
            idle_energy=zeros(), s1_energy=zeros(), s3_energy=zeros(),
            transition_energy=zeros(), finish=zeros(), deadline=zeros(),
            dropped=np.zeros(n, dtype=bool),
        )

    @property
    def total_time(self) -> np.ndarray:
        """Per-frame wall time across all accounted states."""
        return (self.decode_time + self.idle_time + self.s1_time
                + self.s3_time + self.transition_time)

    @property
    def total_energy(self) -> np.ndarray:
        return (self.exec_energy + self.idle_energy + self.s1_energy
                + self.s3_energy + self.transition_energy)

    def to_jsonable(self) -> Dict[str, list]:
        """Plain-list form for JSON checkpoints (floats round-trip
        exactly: json emits repr, and ``float(repr(x)) == x``)."""
        return {f.name: getattr(self, f.name).tolist()
                for f in fields(self)}

    @classmethod
    def from_jsonable(cls, data: Dict[str, list]) -> "FrameTimeline":
        kwargs = {
            f.name: np.asarray(
                data[f.name],
                dtype=bool if f.name == "dropped" else np.float64)
            for f in fields(cls)
        }
        return cls(**kwargs)


@dataclass
class RunResult:
    """Everything one (video, scheme) simulation produced."""

    profile_key: str
    scheme_name: str
    n_frames: int
    elapsed: float
    energy: EnergyBreakdown
    drops: int
    residency: Dict[PowerState, float]
    transitions: int
    timeline: FrameTimeline
    matches: Optional[FrameMatches]  # aggregate census; None for raw schemes
    write_bytes: int  # total frame-buffer bytes written
    raw_write_bytes: int  # what RAW layout would have written
    read_stats: Optional[ReadStats]
    mem_stats: AccessStats
    peak_footprint_native_mb: float
    silent_collisions: int = 0
    detected_collisions: int = 0
    #: Fault-injection resilience counters (zero on clean runs).
    concealed_blocks: int = 0
    injected_collisions: int = 0
    fallback_writes: int = 0
    #: Thermal-pressure counters (zero when ThermalConfig is disabled).
    throttle_seconds: float = 0.0  # s of the run with boost revoked
    degradation_steps: int = 0  # summed ladder levels across wake plans
    frames_at_nominal: int = 0  # racing frames decoded at the low freq

    @property
    def activations(self) -> int:
        return self.mem_stats.activations

    @property
    def bursts(self) -> int:
        return self.mem_stats.bursts

    @property
    def drop_rate(self) -> float:
        return self.drops / self.n_frames if self.n_frames else 0.0

    @property
    def write_savings(self) -> float:
        """Fractional VD-side write saving vs RAW (Fig. 9a)."""
        if not self.raw_write_bytes:
            return 0.0
        return 1.0 - self.write_bytes / self.raw_write_bytes

    @property
    def read_savings(self) -> float:
        """Fractional DC-side access saving vs RAW (Fig. 10e)."""
        return self.read_stats.savings if self.read_stats else 0.0

    @property
    def deep_sleep_residency(self) -> float:
        return self.residency.get(PowerState.S3, 0.0)

    def summary(self) -> Dict[str, float]:
        """Flat dict of headline metrics (for tables and reports)."""
        return {
            "energy_mj_per_frame": self.energy.per_frame_mj(self.n_frames),
            "drop_rate": self.drop_rate,
            "s3_residency": self.deep_sleep_residency,
            "write_savings": self.write_savings,
            "read_savings": self.read_savings,
            "transitions": float(self.transitions),
        }

    # -- JSON checkpointing -------------------------------------------------
    #
    # The runner persists finished jobs across crashes, so a RunResult
    # must survive a JSON round trip *bit-identically*: json floats are
    # emitted as repr and ``float(repr(x)) == x`` for every finite
    # float, so no precision is lost anywhere below.

    def to_jsonable(self) -> Dict[str, object]:
        """Lossless plain-data form (dicts/lists/scalars only)."""
        return {
            "profile_key": self.profile_key,
            "scheme_name": self.scheme_name,
            "n_frames": self.n_frames,
            "elapsed": self.elapsed,
            "energy": self.energy.as_dict(),
            "drops": self.drops,
            "residency": {s.name: v for s, v in self.residency.items()},
            "transitions": self.transitions,
            "timeline": self.timeline.to_jsonable(),
            "matches": (None if self.matches is None else {
                "intra": self.matches.intra,
                "inter": self.matches.inter,
                "none": self.matches.none,
            }),
            "write_bytes": self.write_bytes,
            "raw_write_bytes": self.raw_write_bytes,
            "read_stats": (None if self.read_stats is None else {
                f.name: getattr(self.read_stats, f.name)
                for f in fields(self.read_stats)
            }),
            "mem_stats": {
                "activations": self.mem_stats.activations,
                "read_bursts": self.mem_stats.read_bursts,
                "write_bursts": self.mem_stats.write_bursts,
                "by_agent": dict(self.mem_stats.by_agent),
                "acts_by_agent": dict(self.mem_stats.acts_by_agent),
            },
            "peak_footprint_native_mb": self.peak_footprint_native_mb,
            "silent_collisions": self.silent_collisions,
            "detected_collisions": self.detected_collisions,
            "concealed_blocks": self.concealed_blocks,
            "injected_collisions": self.injected_collisions,
            "fallback_writes": self.fallback_writes,
            "throttle_seconds": self.throttle_seconds,
            "degradation_steps": self.degradation_steps,
            "frames_at_nominal": self.frames_at_nominal,
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, Any]) -> "RunResult":
        """Inverse of :meth:`to_jsonable`."""
        matches = data["matches"]
        read_stats = data["read_stats"]
        mem = data["mem_stats"]
        return cls(
            profile_key=data["profile_key"],
            scheme_name=data["scheme_name"],
            n_frames=data["n_frames"],
            elapsed=data["elapsed"],
            energy=EnergyBreakdown(**data["energy"]),
            drops=data["drops"],
            residency={PowerState[name]: v
                       for name, v in data["residency"].items()},
            transitions=data["transitions"],
            timeline=FrameTimeline.from_jsonable(data["timeline"]),
            matches=None if matches is None else FrameMatches(**matches),
            write_bytes=data["write_bytes"],
            raw_write_bytes=data["raw_write_bytes"],
            read_stats=(None if read_stats is None
                        else ReadStats(**read_stats)),
            mem_stats=AccessStats(
                activations=mem["activations"],
                read_bursts=mem["read_bursts"],
                write_bursts=mem["write_bursts"],
                by_agent=dict(mem["by_agent"]),
                acts_by_agent=dict(mem["acts_by_agent"]),
            ),
            peak_footprint_native_mb=data["peak_footprint_native_mb"],
            silent_collisions=data.get("silent_collisions", 0),
            detected_collisions=data.get("detected_collisions", 0),
            concealed_blocks=data.get("concealed_blocks", 0),
            injected_collisions=data.get("injected_collisions", 0),
            fallback_writes=data.get("fallback_writes", 0),
            throttle_seconds=data.get("throttle_seconds", 0.0),
            degradation_steps=data.get("degradation_steps", 0),
            frames_at_nominal=data.get("frames_at_nominal", 0),
        )


@dataclass
class SchemeComparison:
    """Results of several schemes on one video, baseline-normalized."""

    profile_key: str
    results: List[RunResult] = field(default_factory=list)

    @property
    def baseline(self) -> RunResult:
        return self.results[0]

    def normalized_energy(self) -> Dict[str, float]:
        """Total energy of each scheme relative to the first (baseline)."""
        base = self.baseline.energy.total
        return {r.scheme_name: r.energy.total / base for r in self.results}

    def normalized_components(self) -> Dict[str, Dict[str, float]]:
        """Per-component stacks relative to baseline total (Fig. 11 bars)."""
        base = self.baseline.energy
        return {
            r.scheme_name: r.energy.normalized_to(base) for r in self.results
        }

    def savings(self, scheme_name: str) -> float:
        normalized = self.normalized_energy()
        return 1.0 - normalized[scheme_name]


def compare_schemes(results: Sequence[RunResult]) -> SchemeComparison:
    """Bundle same-video results; the first result is the baseline."""
    if not results:
        raise ValueError("need at least one result")
    keys = {r.profile_key for r in results}
    if len(keys) != 1:
        raise ValueError(f"results span multiple videos: {sorted(keys)}")
    return SchemeComparison(profile_key=results[0].profile_key,
                            results=list(results))
