"""Frame-buffer layouts (paper Fig. 9c).

Three layouts for a decoded frame in memory:

* **RAW** (Fig. 9c i) — blocks stored back to back; what the baseline
  and plain Race-to-Sleep write.
* **POINTER** (Fig. 9c ii) — a dense pointer table (4 B per block
  position) plus a compacted data region holding only unique blocks;
  matched blocks are just pointers at their donor's storage.
* **POINTER_DIGEST** (Fig. 9c iii) — same, but *inter*-frame matches
  are recorded as digests (resolved by the DC's MACH buffer) and a
  bitmap distinguishes the two record types.  This is the layout the
  display-caching scheme consumes.

A :class:`FrameLayout` carries the per-block record arrays plus the
region geometry, which is everything the display read path needs to
synthesize its memory accesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

import numpy as np

from ..errors import LayoutError


class LayoutMode(IntEnum):
    RAW = 0
    POINTER = 1
    POINTER_DIGEST = 2


class RecordKind(IntEnum):
    """Per-block record in the pointer table."""

    STORED = 0  # no match: full block lives in the data region
    POINTER = 1  # intra (or inter, in POINTER mode) match: 4-byte pointer
    DIGEST = 2  # inter match by digest (POINTER_DIGEST mode only)


@dataclass
class FrameLayout:
    """Concrete placement of one decoded frame inside its buffer slot."""

    frame_index: int
    mode: LayoutMode
    n_blocks: int
    block_bytes: int
    kinds: np.ndarray  # uint8 RecordKind per block
    pointers: np.ndarray  # int64 block-data address (own or donor); -1 for DIGEST
    digests: np.ndarray  # uint64 digest per block (0 where unused)
    bases_present: bool  # gab layouts carry a 3-byte base per block
    table_base: int
    bases_base: int
    data_base: int
    data_bytes: int  # bytes of unique block data actually stored
    dump_base: int
    dump_bytes: int  # dumped MACH (digest + pointer per entry)
    pointer_bytes: int = 4
    base_bytes: int = 3

    def __post_init__(self) -> None:
        for name in ("kinds", "pointers", "digests"):
            if len(getattr(self, name)) != self.n_blocks:
                raise LayoutError(f"{name} must have one entry per block")
        if self.mode is LayoutMode.RAW and self.bases_present:
            raise LayoutError("RAW layout carries no bases")

    # -- geometry -----------------------------------------------------------

    @property
    def bitmap_bytes(self) -> int:
        """One bit per block distinguishing pointer vs digest records."""
        if self.mode is LayoutMode.POINTER_DIGEST:
            return (self.n_blocks + 7) // 8
        return 0

    @property
    def table_bytes(self) -> int:
        if self.mode is LayoutMode.RAW:
            return 0
        return self.n_blocks * self.pointer_bytes + self.bitmap_bytes

    @property
    def bases_bytes(self) -> int:
        return self.n_blocks * self.base_bytes if self.bases_present else 0

    @property
    def metadata_bytes(self) -> int:
        return self.table_bytes + self.bases_bytes + self.dump_bytes

    @property
    def total_bytes(self) -> int:
        """The frame's memory footprint under this layout."""
        return self.metadata_bytes + self.data_bytes

    @property
    def raw_bytes(self) -> int:
        """What the same frame costs in RAW layout (the baseline)."""
        return self.n_blocks * self.block_bytes

    @property
    def savings(self) -> float:
        """Fractional space saving versus RAW (negative = overhead)."""
        return 1.0 - self.total_bytes / self.raw_bytes

    # -- per-kind views -------------------------------------------------------

    def count(self, kind: RecordKind) -> int:
        return int((self.kinds == int(kind)).sum())

    def mask(self, kind: RecordKind) -> np.ndarray:
        return self.kinds == np.uint8(int(kind))
