"""Structure-of-arrays kernels for the per-frame hot path.

The write path classifies every decoded block against a per-frame LRU
set-associative MACH (:mod:`repro.core.mach`).  The scalar reference
walks blocks one at a time; these kernels compute the *identical*
classification in a handful of numpy passes by exploiting two
properties:

* **LRU inclusion** — after any touch sequence, a ``ways``-way LRU set
  holds exactly the ``ways`` most recently touched distinct keys, and
  the touch sequence is known a priori (every non-inter block touches
  its set exactly once, whether it hits or inserts).  A touch therefore
  hits iff the number of *distinct* keys touched in its set since the
  previous touch of the same key is at most ``ways - 1`` — the classic
  stack-distance property.
* **Distinct-in-window counting** — the number of distinct keys in a
  window ``(p, t)`` of one set's touch sequence equals the window
  length minus the number of same-key occurrence links lying entirely
  inside the window, and with windows that are themselves occurrence
  links this reduces to an offline *count-smaller-to-the-left* query
  over the next-occurrence array, solved by a vectorized mergesort.

Everything here is exact: :func:`lru_touch_classify` is
property-tested against the scalar :class:`~repro.cache.setassoc.\
SetAssociativeCache` replay, and the write engine asserts bit-identical
frame layouts in the equivalence suite.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["count_smaller_left", "lru_touch_classify", "LruClassification"]


_BASE_WIDTH = 32

#: Cached strictly-lower-triangular masks for the mergesort base case.
_TRI_MASKS: dict = {}


def _tri_mask(base: int) -> np.ndarray:
    mask = _TRI_MASKS.get(base)
    if mask is None:
        mask = np.tri(base, base, -1, dtype=bool)
        _TRI_MASKS[base] = mask
    return mask


def count_smaller_left(values: np.ndarray, bound: int = 0) -> np.ndarray:
    """For each element, count strictly-smaller elements to its left.

    ``values`` must be one-dimensional with *distinct* entries (the
    callers guarantee distinctness by construction).  Runs a bottom-up
    mergesort where each level counts, for every element of a right
    half, the elements of the matching left half that are smaller —
    fully vectorized via a packed-key searchsorted per level, with the
    smallest levels collapsed into one triangular broadcast.

    ``bound``, when positive, promises ``0 <= values < bound`` and
    skips the rank-compression pass.
    """
    v = np.asarray(values)
    m = len(v)
    out = np.zeros(m, dtype=np.int64)
    if m < 2:
        return out
    if bound > 0:
        ranks = v.astype(np.int64, copy=False)
        span = int(bound)
    else:
        # Rank-compress to distinct ints in [0, m) so keys pack safely.
        ranks = np.empty(m, dtype=np.int64)
        ranks[np.argsort(v, kind="stable")] = np.arange(m, dtype=np.int64)
        span = m

    size = 1 << (m - 1).bit_length()
    # Pack (value, original index) into one int64: sorting packed keys
    # sorts by value (values are distinct), and comparing packed keys
    # compares values exactly.  Padding sentinels sort above every real
    # key and stay small enough that the per-row offsets below cannot
    # overflow.
    sentinel = np.int64(span) * size
    packed = np.full(size, sentinel, dtype=np.int64)
    packed[:m] = ranks * size + np.arange(m, dtype=np.int64)
    idx_mask = size - 1

    # Base case: one (blocks, B, B) triangular broadcast replaces the
    # first log2(B) merge levels, whose per-level numpy overhead would
    # otherwise dominate.
    base = min(_BASE_WIDTH, size)
    blocks = packed.reshape(-1, base)
    tri = _tri_mask(base)
    counts = ((blocks[:, None, :] < blocks[:, :, None]) & tri).sum(axis=2)
    flat = blocks.ravel()
    real = flat < sentinel
    out[flat[real] & idx_mask] = counts.ravel()[real]
    packed = np.sort(blocks, axis=1).ravel()

    width = base
    while width < size:
        rows = packed.reshape(-1, 2 * width)
        lefts = rows[:, :width]
        rights = rows[:, width:]
        # Batched searchsorted: rows are sorted and an increasing
        # per-row offset keeps the flattened left array globally sorted.
        offset = np.arange(rows.shape[0], dtype=np.int64) * (2 * sentinel)
        flat_left = (lefts + offset[:, None]).ravel()
        flat_query = (rights + offset[:, None]).ravel()
        level = np.searchsorted(flat_left, flat_query, side="left")
        level -= np.arange(rows.shape[0], dtype=np.int64).repeat(width) * width
        right_keys = rights.ravel()
        real = right_keys < sentinel
        # Each element appears as a right-half key at most once per
        # level, so plain fancy indexing accumulates safely.
        out[right_keys[real] & idx_mask] += level[real]
        width *= 2
        if width < size:
            packed = np.sort(rows, axis=1).ravel()
    return out


class LruClassification:
    """Result of :func:`lru_touch_classify` (original touch order)."""

    __slots__ = ("hits", "provider", "resident_touch", "resident_rank")

    def __init__(self, hits: np.ndarray, provider: np.ndarray,
                 resident_touch: np.ndarray,
                 resident_rank: np.ndarray) -> None:
        #: bool per touch: True = the touch hit a resident entry.
        self.hits = hits
        #: int64 per touch: index of the touch whose *insert* provided
        #: the value a hit observed (-1 for misses).
        self.provider = provider
        #: touch indices of the inserts resident when the sequence
        #: ended, ordered (set ascending, most-recent first).
        self.resident_touch = resident_touch
        #: recency rank (0 = MRU) of each resident entry within its set.
        self.resident_rank = resident_rank


def lru_touch_classify(sets: np.ndarray, keys: np.ndarray,
                       ways: int) -> LruClassification:
    """Replay a touch sequence through per-set LRU caches, vectorized.

    Args:
        sets: int64 set index per touch, in access order.
        keys: int64 key per touch (a key maps to exactly one set).
        ways: associativity of every set (``ways >= 1``).

    Returns:
        A :class:`LruClassification` with hit/provider arrays aligned
        to the input order plus the final resident entries.

    Semantics match an insert-on-miss LRU exactly: every touch makes
    its key most-recently-used; a miss inserts the key (evicting the
    LRU entry of a full set); a hit returns the value stored by the
    key's most recent *insert*.
    """
    sets = np.asarray(sets, dtype=np.int64)
    keys = np.asarray(keys, dtype=np.int64)
    m = len(keys)
    hits = np.zeros(m, dtype=bool)
    provider = np.full(m, -1, dtype=np.int64)
    if m == 0:
        empty = np.empty(0, dtype=np.int64)
        return LruClassification(hits, provider, empty, empty)

    # Group touches by set, keeping time order inside each set; all
    # window arithmetic below runs in these grouped coordinates, where
    # every set occupies one contiguous position range.
    by_set = np.argsort(sets, kind="stable")
    keys_g = keys[by_set]

    # Same-key occurrence chains (a key lives in one set, so chains
    # never cross a set boundary).
    chain = np.argsort(keys_g, kind="stable")
    chain_keys = keys_g[chain]
    linked = chain_keys[1:] == chain_keys[:-1]

    sentinel_base = np.int64(m)
    nxt = sentinel_base + np.arange(m, dtype=np.int64)  # distinct sentinels
    nxt[chain[:-1][linked]] = chain[1:][linked]
    prv = np.full(m, -1, dtype=np.int64)
    prv[chain[1:][linked]] = chain[:-1][linked]

    # Stack distance: a touch at grouped position t with previous
    # occurrence p hits iff the window (p, t) holds <= ways-1 distinct
    # keys.  distinct = window length - links inside the window, and
    # links inside = (links ending before t) - (links from positions
    # <= p ending before t); the second term is count-smaller-left of
    # the next-occurrence array evaluated at p, because the window
    # bound t *is* p's next occurrence.  Only link positions (finite
    # next) contribute to or issue these queries, so the quadratic
    # structure is computed over the compressed link array.
    is_link = nxt < m
    link_next = nxt[is_link]
    csl_link = count_smaller_left(link_next, bound=m)
    link_rank = np.cumsum(is_link) - 1  # position -> index among links
    t_pos = np.arange(m, dtype=np.int64)
    has_prev = prv >= 0
    q_t = t_pos[has_prev]
    q_p = prv[has_prev]
    # links-ending-before(t): the finite next-values are exactly the
    # positions that have a previous occurrence — q_t itself, which is
    # ascending and distinct — so the count below q_t[i] is just i.
    ends_before = np.arange(len(q_t), dtype=np.int64)
    inside = ends_before - csl_link[link_rank[q_p]]
    distinct = (q_t - q_p - 1) - inside
    hits_g = np.zeros(m, dtype=bool)
    hits_g[q_t] = distinct <= ways - 1

    # Provider: along each chain, the latest miss (insert) at or before
    # the previous occurrence — a segmented running maximum.
    stored_chain = ~hits_g[chain]
    seg_id = np.concatenate(([0], np.cumsum(~linked)))
    offset = seg_id * (m + 1)
    cand = np.where(stored_chain, chain, -1)
    run_max = np.maximum.accumulate(cand + offset) - offset
    prov_prev = np.concatenate(([np.int64(-1)], run_max[:-1]))
    prov_prev[np.concatenate(([True], ~linked))] = -1
    prov_g = np.full(m, -1, dtype=np.int64)
    prov_g[chain] = prov_prev
    # A hit's provider is the insert at its previous occurrence's
    # running maximum *including* that occurrence itself.
    prov_at = np.full(m, -1, dtype=np.int64)
    prov_at[chain] = run_max
    hit_positions = t_pos[hits_g]
    provider_g = prov_at[prv[hit_positions]]

    hits[by_set] = hits_g
    prov_full = np.full(m, -1, dtype=np.int64)
    prov_full[hit_positions] = by_set[provider_g]
    provider[by_set] = prov_full

    # Final contents: per set, the `ways` most recent distinct keys =
    # the most recent `ways` chain-last occurrences, newest first.
    last_mask = nxt >= m
    last_pos = t_pos[last_mask]
    last_sets = sets[by_set][last_mask]
    order = np.lexsort((-last_pos, last_sets))
    sorted_sets = last_sets[order]
    new_set = np.empty(len(order), dtype=bool)
    if len(order):
        new_set[0] = True
        new_set[1:] = sorted_sets[1:] != sorted_sets[:-1]
    starts = np.flatnonzero(new_set)
    rank = np.arange(len(order), dtype=np.int64)
    if len(order):
        rank -= np.repeat(starts, np.diff(np.append(starts, len(order))))
    resident = rank < ways
    res_pos = last_pos[order][resident]
    resident_touch = by_set[prov_at[res_pos]]
    resident_rank = rank[resident]
    return LruClassification(hits, provider, resident_touch, resident_rank)
