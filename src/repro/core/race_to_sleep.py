"""Race-to-Sleep governor (paper Sec. 3).

The governor decides, after each decoded batch, when the VD must wake
again.  It balances three constraints:

* **deadline safety** — the next undecoded frame must still meet its
  display deadline, with a conservative decode-time estimate and the
  deep-sleep wake latency as margin (this is what eliminates drops);
* **batch formation** — waking earlier than necessary fragments sleep,
  so the governor prefers to wait until a full batch of frames is both
  buffered by the network and admissible into frame buffers;
* **progress** — it never plans a wake in the past.

With ``batch_size=1`` and the per-slot call times of the baseline, the
same machinery degrades to the paper's frame-by-frame decoding.

:class:`AdaptiveRtSGovernor` layers a graceful-degradation ladder on
top for runs under thermal pressure (:mod:`repro.thermal`), where the
boost frequency the plain governor's safety margin assumes can be
revoked mid-session:

0. boost granted — plan exactly like the fixed governor (and grow the
   batch depth back toward the scheme's);
1. boost revoked — re-plan the wake against the *nominal*-frequency
   decode estimate, padded by the injected wake-delay bound;
2. the full batch cannot form by the nominal-safe start — halve the
   batch depth until it can (slack reclaimed from batch formation);
3. even an immediate wake misses the S3 margin — drop the deep-sleep
   wake latency from the margin and forbid S3 for the coming slack;
4. the deadline is unmeetable under every adjustment — concede: wake
   immediately, decode what is available, and let the display conceal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from ..config import DecoderConfig, SchemeConfig
from .batching import FrameSource, batch_ready_time

if TYPE_CHECKING:  # import cycle: repro.thermal imports repro.config only
    from ..thermal import ThermalModel

#: Safety factor applied to the worst frame-type cycle count when
#: estimating how long the next frame could take to decode.
_DECODE_ESTIMATE_SAFETY = 1.6


@dataclass(frozen=True)
class GovernorPlan:
    """One wake decision."""

    wake_time: float  # s, absolute simulation time of the wake
    reason: str  # 'deadline' | 'batch-ready' | 'immediate'


@dataclass(frozen=True)
class AdaptivePlan(GovernorPlan):
    """One wake decision made under thermal pressure.

    Extends :class:`GovernorPlan` with what the degradation ladder
    decided: how many frames the coming batch may hold, whether decode
    should request boost, whether the slack before the wake may use
    deep sleep, and which ladder step produced the plan.
    """

    batch_cap: int  # frames the coming batch may decode
    racing: bool  # request the boost frequency at wake
    allow_s3: bool  # may the pre-wake slack enter S3
    step: int  # ladder step 0-4 (0 = undegraded)


class RaceToSleepGovernor:
    """Wake-time planning for a given scheme."""

    def __init__(self, scheme: SchemeConfig, decoder: DecoderConfig,
                 network: FrameSource, frame_interval: float,
                 display_lead: int) -> None:
        self.scheme = scheme
        self.decoder = decoder
        self.network = network
        self.frame_interval = frame_interval
        self.display_lead = display_lead

    # -- timing primitives -------------------------------------------------

    def call_time(self, frame_index: int) -> float:
        """Baseline per-frame VD invocation time (Fig. 1b step 2)."""
        return frame_index * self.frame_interval

    def deadline(self, frame_index: int) -> float:
        """When the display will ask for ``frame_index``."""
        return (frame_index + self.display_lead) * self.frame_interval

    def conservative_decode_time(self, racing: Optional[bool] = None) -> float:
        """Pessimistic single-frame decode estimate for safety margins.

        ``racing`` overrides the scheme's frequency choice — the
        adaptive governor re-estimates at nominal when boost is
        revoked; ``None`` keeps the scheme's own setting.
        """
        worst_cycles = (self.decoder.base_cycles
                        + self.decoder.cycles_per_frame_i
                        * _DECODE_ESTIMATE_SAFETY)
        if racing is None:
            racing = self.scheme.racing
        freq = self.decoder.frequency(racing)
        return worst_cycles / freq

    def latest_safe_start(self, frame_index: int,
                          racing: Optional[bool] = None,
                          wake_latency: Optional[float] = None,
                          extra_margin: float = 0.0) -> float:
        """Decode of ``frame_index`` must start by this time.

        ``wake_latency`` (canonical seconds) defaults to the S3 exit
        (the deepest sleep the slack may use); ``extra_margin`` pads
        for hazards the estimate does not cover (the adaptive governor
        passes the injected wake-delay bound).
        """
        if wake_latency is None:
            wake_latency = self.decoder.power_states.s3_wake_latency
        return (self.deadline(frame_index)
                - self.conservative_decode_time(racing)
                - wake_latency - extra_margin)

    # -- wake planning ------------------------------------------------------

    def plan_wake(self, now: float, next_frame: int,
                  batch_buffers_free_time: float) -> GovernorPlan:
        """Choose when to wake for the batch starting at ``next_frame``.

        ``batch_buffers_free_time`` is the absolute time (canonical
        seconds) when enough frame-buffer slots will have drained for
        a full batch (computed by the pipeline from the display
        schedule).
        """
        if self.scheme.batch_size == 1:
            wake = max(now, self.call_time(next_frame))
            return GovernorPlan(wake, "immediate")
        batch_ready = batch_ready_time(self.network, next_frame,
                                       self.scheme.batch_size,
                                       batch_buffers_free_time)
        safe = self.latest_safe_start(next_frame)
        wake = max(now, min(batch_ready, safe))
        reason = "deadline" if safe < batch_ready else "batch-ready"
        return GovernorPlan(wake, reason)


#: Ladder-step names, indexed by :attr:`AdaptivePlan.step`.
LADDER_STEPS = ("boost", "nominal-replan", "shrink-batch",
                "shallow-sleep", "concede")


class AdaptiveRtSGovernor(RaceToSleepGovernor):
    """Race-to-Sleep with the graceful-degradation ladder.

    Consulted exactly like the fixed governor but aware of a
    :class:`~repro.thermal.ThermalModel`: while boost is granted it
    reproduces the fixed plan bit-for-bit (and recovers batch depth
    one step per plan, AIMD-style); while boost is revoked it walks
    the ladder documented in the module docstring.

    ``degradation_steps`` accumulates the ladder step of every plan,
    so a session that never degrades reports 0 and deeper/longer
    degradation reports more.
    """

    def __init__(self, scheme: SchemeConfig, decoder: DecoderConfig,
                 network: FrameSource, frame_interval: float,
                 display_lead: int, thermal: "ThermalModel") -> None:
        super().__init__(scheme, decoder, network, frame_interval,
                         display_lead)
        self.thermal = thermal
        self.batch_cap = scheme.batch_size
        self.degradation_steps = 0
        self.max_step = 0

    def plan_wake_adaptive(
            self, now: float, next_frame: int,
            buffers_free_time_for: Callable[[int], float]) -> AdaptivePlan:
        """Ladder-aware :meth:`plan_wake`.

        ``buffers_free_time_for(batch)`` must return when enough
        frame-buffer slots will have drained for a ``batch``-frame
        decode — the ladder re-evaluates it at each candidate depth.
        """
        psc = self.decoder.power_states
        margin_extra = self.thermal.planning_margin()
        if self.thermal.boost_available(now):
            # Step 0: undegraded.  The fixed plan at the current depth
            # (padded by the wake-delay bound, which can strike racing
            # wakes too); recover one frame of depth per calm plan.
            self.batch_cap = min(self.scheme.batch_size, self.batch_cap + 1)
            batch_ready = batch_ready_time(
                self.network, next_frame, self.batch_cap,
                buffers_free_time_for(self.batch_cap))
            safe = self.latest_safe_start(next_frame,
                                          extra_margin=margin_extra)
            wake = max(now, min(batch_ready, safe))
            reason = "deadline" if safe < batch_ready else "batch-ready"
            return AdaptivePlan(wake, reason, self.batch_cap, True, True, 0)

        # Step 1: boost revoked — replan against the nominal estimate,
        # padded by the injected wake-delay bound.
        step = 1
        safe = self.latest_safe_start(next_frame, racing=False,
                                      extra_margin=margin_extra)
        cap = self.batch_cap
        batch_ready = batch_ready_time(self.network, next_frame, cap,
                                       buffers_free_time_for(cap))
        # Step 2: the batch cannot form by the safe start — halve the
        # depth until it can (or until single-frame decoding).
        while cap > 1 and batch_ready > safe:
            cap = max(1, cap // 2)
            step = 2
            batch_ready = batch_ready_time(self.network, next_frame, cap,
                                           buffers_free_time_for(cap))
        self.batch_cap = cap
        allow_s3 = True
        if safe < now:
            # Step 3: behind even waking now — deep sleep's wake
            # latency no longer fits the margin, so forbid S3 and
            # re-derive the safe start with the S1 exit.
            step = 3
            allow_s3 = False
            safe = self.latest_safe_start(
                next_frame, racing=False,
                wake_latency=psc.s1_wake_latency, extra_margin=margin_extra)
            if safe < now:
                # Step 4: concede.  Wake immediately, decode what is
                # buffered, and let the display conceal the miss.
                step = 4
        wake = max(now, min(batch_ready, safe))
        self.degradation_steps += step
        self.max_step = max(self.max_step, step)
        return AdaptivePlan(wake, LADDER_STEPS[step], cap, False,
                            allow_s3, step)


#: Realtime deadline-ladder step names, indexed by the step the
#: :class:`DeadlineLadder` picks for a frame.
REALTIME_LADDER_STEPS = ("nominal", "downscale", "freeze", "skip")


class DeadlineLadder:
    """Deadline-miss degradation ladder for the realtime mode.

    Where :class:`AdaptiveRtSGovernor` degrades *scheduling* (batch
    depth, sleep depth) under thermal pressure, this ladder degrades
    the *frame itself* when the link cannot deliver it inside the
    latency budget — the realtime sibling of the same
    least-degraded-first contract:

    0. **nominal** — the full-size frame is predicted to arrive by the
       deadline; send it untouched;
    1. **downscale** — shrink the encode to ``downscale_factor`` of
       the target bytes (lower resolution / coarser quantizer);
    2. **freeze** — send only a ``freeze_fraction``-sized refresh so
       the display repeats the previous frame without drifting;
    3. **skip** — send nothing and let the queue drain; the display
       repeats the previous frame.

    ``predict(bytes_factor)`` must return the predicted completion
    time of a frame encoded at that fraction of the target size; the
    ladder walks the steps in order and stops at the first one whose
    prediction meets the deadline, so a frame is never degraded more
    than the link state warrants.
    """

    def __init__(self, downscale_factor: float,
                 freeze_fraction: float) -> None:
        self._factors = (1.0, downscale_factor, freeze_fraction)
        self.downscaled = 0
        self.frozen = 0
        self.skipped = 0
        self.degradation_steps = 0

    def choose(self, deadline: float,
               predict: Callable[[float], float]) -> tuple[int, float]:
        """Least-degraded step whose prediction meets ``deadline``.

        Returns ``(step, bytes_factor)``; ``bytes_factor`` is 0.0 for
        a skipped frame.
        """
        for step, factor in enumerate(self._factors):
            if predict(factor) <= deadline:
                break
        else:
            step, factor = 3, 0.0
        self.degradation_steps += step
        if step == 1:
            self.downscaled += 1
        elif step == 2:
            self.frozen += 1
        elif step == 3:
            self.skipped += 1
        return step, factor
