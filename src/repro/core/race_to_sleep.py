"""Race-to-Sleep governor (paper Sec. 3).

The governor decides, after each decoded batch, when the VD must wake
again.  It balances three constraints:

* **deadline safety** — the next undecoded frame must still meet its
  display deadline, with a conservative decode-time estimate and the
  deep-sleep wake latency as margin (this is what eliminates drops);
* **batch formation** — waking earlier than necessary fragments sleep,
  so the governor prefers to wait until a full batch of frames is both
  buffered by the network and admissible into frame buffers;
* **progress** — it never plans a wake in the past.

With ``batch_size=1`` and the per-slot call times of the baseline, the
same machinery degrades to the paper's frame-by-frame decoding.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import DecoderConfig, SchemeConfig
from .batching import FrameSource

#: Safety factor applied to the worst frame-type cycle count when
#: estimating how long the next frame could take to decode.
_DECODE_ESTIMATE_SAFETY = 1.6


@dataclass(frozen=True)
class GovernorPlan:
    """One wake decision."""

    wake_time: float  # s, absolute simulation time of the wake
    reason: str  # 'deadline' | 'batch-ready' | 'immediate'


class RaceToSleepGovernor:
    """Wake-time planning for a given scheme."""

    def __init__(self, scheme: SchemeConfig, decoder: DecoderConfig,
                 network: FrameSource, frame_interval: float,
                 display_lead: int) -> None:
        self.scheme = scheme
        self.decoder = decoder
        self.network = network
        self.frame_interval = frame_interval
        self.display_lead = display_lead

    # -- timing primitives -------------------------------------------------

    def call_time(self, frame_index: int) -> float:
        """Baseline per-frame VD invocation time (Fig. 1b step 2)."""
        return frame_index * self.frame_interval

    def deadline(self, frame_index: int) -> float:
        """When the display will ask for ``frame_index``."""
        return (frame_index + self.display_lead) * self.frame_interval

    def conservative_decode_time(self) -> float:
        """Pessimistic single-frame decode estimate for safety margins."""
        worst_cycles = (self.decoder.base_cycles
                        + self.decoder.cycles_per_frame_i
                        * _DECODE_ESTIMATE_SAFETY)
        freq = self.decoder.frequency(self.scheme.racing)
        return worst_cycles / freq

    def latest_safe_start(self, frame_index: int) -> float:
        """Decode of ``frame_index`` must start by this time."""
        wake_margin = self.decoder.power_states.s3_wake_latency
        return (self.deadline(frame_index)
                - self.conservative_decode_time() - wake_margin)

    # -- wake planning ------------------------------------------------------

    def plan_wake(self, now: float, next_frame: int,
                  batch_buffers_free_time: float) -> GovernorPlan:
        """Choose when to wake for the batch starting at ``next_frame``.

        ``batch_buffers_free_time`` is when enough frame-buffer slots
        will have drained for a full batch (computed by the pipeline
        from the display schedule).
        """
        if self.scheme.batch_size == 1:
            wake = max(now, self.call_time(next_frame))
            return GovernorPlan(wake, "immediate")
        last_of_batch = next_frame + self.scheme.batch_size - 1
        batch_ready = max(
            self.network.time_when_available(last_of_batch + 1),
            batch_buffers_free_time,
        )
        safe = self.latest_safe_start(next_frame)
        wake = max(now, min(batch_ready, safe))
        reason = "deadline" if safe < batch_ready else "batch-ready"
        return GovernorPlan(wake, reason)
