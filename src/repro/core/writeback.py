"""VD write path: content caching engine (paper Sec. 4).

For every decoded block the engine computes a digest (of the block or
of its gradient form), consults the MACH ring, and either

* stores the block (no match) — appending its bytes to the frame's
  compacted data region and inserting the digest into the current
  frame's MACH, or
* records a 4-byte pointer (intra match, or inter match in POINTER
  layout), or
* records the digest itself (inter match in POINTER_DIGEST layout),
  to be resolved by the display's MACH buffer.

The engine also emits the frame's line-granular write traffic
(coalesced or not) and the frozen MACH dump.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..compression.dcc import compressed_sizes
from ..config import MachConfig, SchemeConfig, VideoConfig
from ..faults import FaultPlan
from ..hashing.crc import crc_pair_blocks
from ..hashing.digest import get_scheme
from ..video.frame import DecodedFrame
from .coalesce import sequential_lines, uncoalesced_stream_lines
from .gradient import to_gradient
from .layout import FrameLayout, LayoutMode, RecordKind
from .mach import FrozenMach, MachRing, MachStats, MatchKind
from .soa import lru_touch_classify

_DUMP_ENTRY_BYTES = 8  # digest (4) + pointer (4)


@dataclass(frozen=True)
class FrameMatches:
    """Per-frame census of MACH outcomes."""

    intra: int
    inter: int
    none: int

    @property
    def total(self) -> int:
        return self.intra + self.inter + self.none

    @property
    def match_rate(self) -> float:
        return (self.intra + self.inter) / self.total if self.total else 0.0


@dataclass
class WritebackResult:
    """Everything one frame's writeback produced."""

    layout: FrameLayout
    write_lines: np.ndarray  # line addresses in write order
    matches: FrameMatches
    dump: Optional[FrozenMach]
    bytes_written: int


def slot_bytes_needed(video: VideoConfig, mach: MachConfig,
                      scheme: SchemeConfig) -> int:
    """Worst-case bytes one frame can occupy in its buffer slot."""
    n = video.blocks_per_frame
    size = video.frame_bytes  # all blocks stored, uncompacted
    if scheme.uses_mach:
        size += n * mach.pointer_bytes + (n + 7) // 8  # table + bitmap
        if scheme.content_cache == "gab":
            size += n * mach.base_bytes
        size += mach.entries_per_mach * _DUMP_ENTRY_BYTES
    return size


class WritebackEngine:
    """Stateful per-video write path for one scheme."""

    def __init__(self, video: VideoConfig, mach: MachConfig,
                 scheme: SchemeConfig, line_bytes: int = 64,
                 unbounded_mach: bool = False,
                 fault_plan: Optional[FaultPlan] = None,
                 vectorized: bool = True) -> None:
        self.video = video
        self.mach_config = mach
        self.scheme = scheme
        self.line_bytes = line_bytes
        #: Use the SoA frame kernel where it is bit-exact; the scalar
        #: per-block loop remains both the fallback (fault injection,
        #: CRC collisions) and the reference the kernel is tested
        #: against.  Callers that consume the frozen dump's *iteration
        #: order* (the eager MACH-buffer prefetch) must pass False: the
        #: kernel emits the same dump entries in recency order rather
        #: than the scalar (set, way-slot) order.
        self.vectorized = vectorized
        self.ring: Optional[MachRing] = (
            MachRing(mach, unbounded=unbounded_mach)
            if scheme.uses_mach else None)
        self._scheme_obj = get_scheme(mach.digest_scheme)
        self._use_gradient = scheme.content_cache == "gab"
        self._digest_layout = (LayoutMode.POINTER_DIGEST
                               if scheme.display_caching else LayoutMode.POINTER)
        # Fault injection: a plan whose digest_collision rate is
        # non-zero turns some matches into hash collisions.  With
        # verification on, the engine compares the actual bytes (a
        # cheap on-chip compare the paper's CRC32 scheme omits),
        # detects the lie, and stores the full block instead of a
        # wrong pointer — content caching is never silently incorrect.
        self._fault_plan = (fault_plan if fault_plan is not None
                            and fault_plan.config.digest_collision > 0
                            else None)
        self._verify = (fault_plan.config.verify_digests
                        if fault_plan is not None else True)

    # -- public API -----------------------------------------------------------

    def process_frame(self, frame: DecodedFrame,
                      slot_base: int) -> WritebackResult:
        """Write one decoded frame into its buffer slot."""
        if self.ring is None:
            return self._process_raw(frame, slot_base)
        return self._process_mach(frame, slot_base)

    @property
    def stats(self) -> Optional[MachStats]:
        """Aggregate MACH statistics (None for raw schemes)."""
        return self.ring.stats if self.ring is not None else None

    # -- raw / DCC path ---------------------------------------------------------

    def _process_raw(self, frame: DecodedFrame,
                     slot_base: int) -> WritebackResult:
        n = frame.n_blocks
        if self.scheme.dcc:
            sizes = compressed_sizes(frame.blocks)
            offsets = np.concatenate(
                [[0], np.cumsum(sizes[:-1], dtype=np.int64)])
            data_bytes = int(sizes.sum())
        else:
            offsets = np.arange(n, dtype=np.int64) * frame.block_bytes
            data_bytes = frame.decoded_bytes
        pointers = slot_base + offsets
        layout = FrameLayout(
            frame_index=frame.index,
            mode=LayoutMode.RAW,
            n_blocks=n,
            block_bytes=frame.block_bytes,
            kinds=np.zeros(n, dtype=np.uint8),
            pointers=pointers,
            digests=np.zeros(n, dtype=np.uint64),
            bases_present=False,
            table_base=slot_base,
            bases_base=slot_base,
            data_base=slot_base,
            data_bytes=data_bytes,
            dump_base=slot_base + data_bytes,
            dump_bytes=0,
        )
        write_lines = sequential_lines(slot_base, data_bytes, self.line_bytes)
        matches = FrameMatches(intra=0, inter=0, none=n)
        return WritebackResult(layout, write_lines, matches, None, data_bytes)

    # -- MACH path ---------------------------------------------------------------

    def _digest_frame(self, frame: DecodedFrame) -> Tuple[np.ndarray, np.ndarray]:
        """Digests (+CRC16 aux where available) for every block."""
        if self._use_gradient:
            tag_input, _ = to_gradient(frame.blocks)
        else:
            tag_input = frame.blocks
        name = self.mach_config.digest_scheme
        if name in ("crc32", "crc48"):
            crc32s, crc16s = crc_pair_blocks(tag_input)
            tags = crc32s.astype(np.int64)
            aux = crc16s.astype(np.int64)
        else:
            tags = self._scheme_obj.digest_blocks(tag_input).astype(np.int64)
            aux = np.zeros(len(tags), dtype=np.int64)
        return tags, aux

    def _dcc_sizes(self, frame: DecodedFrame) -> Optional[np.ndarray]:
        if not self.scheme.dcc:
            return None
        return compressed_sizes(
            to_gradient(frame.blocks)[0] if self._use_gradient
            else frame.blocks)

    def _process_mach(self, frame: DecodedFrame,
                      slot_base: int) -> WritebackResult:
        assert self.ring is not None
        ring = self.ring
        tags, aux = self._digest_frame(frame)
        dcc_sizes = self._dcc_sizes(frame)
        if self.vectorized and self._fault_plan is None:
            ring.ensure_idle()
            found, addresses, clean = ring.lookup_batch(tags, aux)
            if clean and self._aux_consistent(tags, aux):
                return self._process_mach_kernel(
                    frame, slot_base, tags, aux, dcc_sizes, found, addresses)
        return self._process_mach_scalar(
            frame, slot_base, tags, aux, dcc_sizes)

    @staticmethod
    def _aux_consistent(tags: np.ndarray, aux: np.ndarray) -> bool:
        """True when no digest appears with two different CRC16 auxes.

        A natural CRC32 collision inside the frame would make the
        scalar loop take a collision path (silent match or CO-MACH
        spill); such frames replay through the scalar reference.
        """
        if not aux.any():
            return True
        pair = np.sort((tags << np.int64(16)) | aux)
        same_tag = (pair[1:] >> np.int64(16)) == (pair[:-1] >> np.int64(16))
        return not np.any(same_tag & (pair[1:] != pair[:-1]))

    def _layout_bases(self, frame: DecodedFrame,
                      slot_base: int) -> Tuple[int, int, int]:
        n = frame.n_blocks
        mach = self.mach_config
        table_bytes = n * mach.pointer_bytes
        if self._digest_layout is LayoutMode.POINTER_DIGEST:
            table_bytes += (n + 7) // 8
        bases_bytes = n * mach.base_bytes if self._use_gradient else 0
        table_base = slot_base
        bases_base = table_base + table_bytes
        data_base = bases_base + bases_bytes
        return table_base, bases_base, data_base

    def _process_mach_scalar(self, frame: DecodedFrame, slot_base: int,
                             tags: np.ndarray, aux: np.ndarray,
                             dcc_sizes: Optional[np.ndarray]) -> WritebackResult:
        """Reference per-block walk (also the fault/collision path)."""
        assert self.ring is not None
        ring = self.ring
        n = frame.n_blocks
        block_bytes = frame.block_bytes
        table_base, bases_base, data_base = self._layout_bases(
            frame, slot_base)

        kinds = np.empty(n, dtype=np.uint8)
        pointers = np.empty(n, dtype=np.int64)
        digests_out = np.zeros(n, dtype=np.uint64)

        before = (ring.stats.intra, ring.stats.inter, ring.stats.none)
        ring.begin_frame(frame.index)
        cursor = data_base
        digest_mode = self._digest_layout is LayoutMode.POINTER_DIGEST
        fault_plan = self._fault_plan
        for i in range(n):
            digest = int(tags[i])
            kind, address = ring.lookup(digest, int(aux[i]))
            if (kind is not MatchKind.NONE and fault_plan is not None
                    and fault_plan.digest_collision(frame.index, i)):
                # Injected collision: the digest matched but the bytes
                # would not have.
                ring.stats.injected_collisions += 1
                if self._verify:
                    ring.stats.fallback_writes += 1
                    kind, address = MatchKind.NONE, None
                else:
                    ring.stats.silent_collisions += 1
            ring.stats.record(kind, digest)
            if kind is MatchKind.NONE:
                kinds[i] = int(RecordKind.STORED)
                pointers[i] = cursor
                ring.insert(digest, cursor, int(aux[i]))
                cursor += (int(dcc_sizes[i]) if dcc_sizes is not None
                           else block_bytes)
            elif kind is MatchKind.INTRA or not digest_mode:
                kinds[i] = int(RecordKind.POINTER)
                pointers[i] = address
            else:
                kinds[i] = int(RecordKind.DIGEST)
                pointers[i] = address  # kept for MACH-buffer miss fallback
                digests_out[i] = digest
            # Only stored (unique) blocks enter the frame's MACH —
            # "the decoder only needs to write the unique content and
            # the pointers" (Sec. 1).  Recurring content therefore keeps
            # matching in *older* frames' MACHs (inter), which is what
            # makes the digest-indexed share of Fig. 10d large.
        dump = ring.end_frame()
        after = (ring.stats.intra, ring.stats.inter, ring.stats.none)
        matches = FrameMatches(
            intra=after[0] - before[0],
            inter=after[1] - before[1],
            none=after[2] - before[2],
        )
        return self._finish_mach(
            frame, kinds, pointers, digests_out,
            table_base, bases_base, data_base,
            cursor - data_base, dump, matches)

    def _process_mach_kernel(self, frame: DecodedFrame, slot_base: int,
                             tags: np.ndarray, aux: np.ndarray,
                             dcc_sizes: Optional[np.ndarray],
                             found: np.ndarray,
                             addresses: np.ndarray) -> WritebackResult:
        """SoA classification of a whole frame at once.

        Preconditions (checked by the dispatcher): no fault plan, no
        CRC16 aux disagreement against the frozen ring or within the
        frame.  Under those, every block found in the frozen ring is
        INTER (a frozen digest can never also be resident in the
        current MACH), and the remaining blocks replay an LRU touch
        sequence that :func:`repro.core.soa.lru_touch_classify` solves
        in closed form — bit-identical to the scalar walk.
        """
        assert self.ring is not None
        ring = self.ring
        n = frame.n_blocks
        mach = self.mach_config
        table_base, bases_base, data_base = self._layout_bases(
            frame, slot_base)
        digest_mode = self._digest_layout is LayoutMode.POINTER_DIGEST

        kinds = np.empty(n, dtype=np.uint8)
        pointers = np.empty(n, dtype=np.int64)
        digests_out = np.zeros(n, dtype=np.uint64)

        touch_idx = np.flatnonzero(~found)
        touch_keys = tags[touch_idx]
        if ring.unbounded:
            # Oracle MACH: first occurrence stores, the rest hit it.
            _, first_pos, inverse = np.unique(
                touch_keys, return_index=True, return_inverse=True)
            hits = np.ones(len(touch_idx), dtype=bool)
            hits[first_pos] = False
            provider_block = touch_idx[first_pos[inverse[hits]]]
            stored_idx = touch_idx[~hits]
            resident_idx = stored_idx  # insertion (= block) order
        else:
            cls = lru_touch_classify(
                touch_keys & np.int64(mach.sets_per_mach - 1),
                touch_keys, mach.ways)
            hits = cls.hits
            provider_block = touch_idx[cls.provider[hits]]
            stored_idx = touch_idx[~hits]
            resident_idx = touch_idx[cls.resident_touch]

        # Stored blocks pack into the data region in block order.
        stored_sizes = (dcc_sizes[stored_idx].astype(np.int64)
                        if dcc_sizes is not None
                        else np.full(len(stored_idx), frame.block_bytes,
                                     dtype=np.int64))
        ends = np.cumsum(stored_sizes)
        data_bytes = int(ends[-1]) if len(ends) else 0
        pointers[stored_idx] = data_base + ends - stored_sizes
        kinds[stored_idx] = int(RecordKind.STORED)

        intra_idx = touch_idx[hits]
        kinds[intra_idx] = int(RecordKind.POINTER)
        pointers[intra_idx] = pointers[provider_block]

        inter_idx = np.flatnonzero(found)
        pointers[inter_idx] = addresses[inter_idx]
        if digest_mode:
            kinds[inter_idx] = int(RecordKind.DIGEST)
            digests_out[inter_idx] = tags[inter_idx].astype(np.uint64)
        else:
            kinds[inter_idx] = int(RecordKind.POINTER)

        # Stats, reproducing the scalar loop's Counter insertion order
        # (first match occurrence in block order).
        n_intra = len(intra_idx)
        n_inter = len(inter_idx)
        matched = found.copy()
        matched[intra_idx] = True
        matched_tags = tags[matched]
        if len(matched_tags):
            order = np.argsort(matched_tags, kind="stable")
            sorted_tags = matched_tags[order]
            starts = np.flatnonzero(np.concatenate(
                ([True], sorted_tags[1:] != sorted_tags[:-1])))
            counts = np.diff(np.append(starts, len(sorted_tags)))
            # The stable sort keeps block order within equal tags, so
            # order[starts] is each tag's first match occurrence.
            first_order = np.argsort(order[starts])
            matched_digests = sorted_tags[starts[first_order]].tolist()
            matched_counts = counts[first_order].tolist()
        else:
            matched_digests, matched_counts = [], []
        ring.stats.record_batch(
            n_intra, n_inter, len(stored_idx), matched_digests,
            matched_counts)

        table = {
            int(digest): (int(address), int(auxv))
            for digest, address, auxv in zip(
                tags[resident_idx].tolist(),
                pointers[resident_idx].tolist(),
                aux[resident_idx].tolist())
        }
        dump = FrozenMach(
            frame.index, table,
            np.fromiter(table.keys(), dtype=np.uint64, count=len(table)))
        # Seed the lazy column view from arrays already in hand (fancy
        # indexing copies, so nothing aliases the layout arrays).
        dump.__dict__["columns"] = (
            tags[resident_idx], pointers[resident_idx], aux[resident_idx])
        ring.ingest_frozen(dump)

        matches = FrameMatches(
            intra=n_intra, inter=n_inter, none=len(stored_idx))
        return self._finish_mach(
            frame, kinds, pointers, digests_out,
            table_base, bases_base, data_base, data_bytes, dump, matches)

    def _finish_mach(self, frame: DecodedFrame, kinds: np.ndarray,
                     pointers: np.ndarray, digests_out: np.ndarray,
                     table_base: int, bases_base: int, data_base: int,
                     data_bytes: int, dump: FrozenMach,
                     matches: FrameMatches) -> WritebackResult:
        dump_base = data_base + data_bytes
        dump_bytes = dump.entries * _DUMP_ENTRY_BYTES
        layout = FrameLayout(
            frame_index=frame.index,
            mode=self._digest_layout,
            n_blocks=frame.n_blocks,
            block_bytes=frame.block_bytes,
            kinds=kinds,
            pointers=pointers,
            digests=digests_out,
            bases_present=self._use_gradient,
            table_base=table_base,
            bases_base=bases_base,
            data_base=data_base,
            data_bytes=data_bytes,
            dump_base=dump_base,
            dump_bytes=dump_bytes,
            pointer_bytes=self.mach_config.pointer_bytes,
            base_bytes=self.mach_config.base_bytes,
        )
        write_lines = self._write_lines(layout)
        return WritebackResult(layout, write_lines, matches, dump,
                               layout.total_bytes)

    def _write_lines(self, layout: FrameLayout) -> np.ndarray:
        """Line-granular write addresses for the whole frame."""
        line = self.line_bytes
        if self.mach_config.coalescing:
            parts = [
                sequential_lines(layout.table_base, layout.table_bytes, line),
                sequential_lines(layout.bases_base, layout.bases_bytes, line),
                sequential_lines(layout.data_base, layout.data_bytes, line),
                sequential_lines(layout.dump_base, layout.dump_bytes, line),
            ]
            return np.concatenate(parts)
        # Uncoalesced ablation: one line write per pointer/base, and one
        # (or two, straddling) per stored block.
        stored = layout.mask(RecordKind.STORED)
        parts = [
            uncoalesced_stream_lines(
                layout.table_base, layout.pointer_bytes, layout.n_blocks, line),
            uncoalesced_stream_lines(
                layout.bases_base, layout.base_bytes,
                layout.n_blocks if layout.bases_present else 0, line),
        ]
        stored_addrs = layout.pointers[stored]
        if len(stored_addrs):
            first = (stored_addrs // line) * line
            last = ((stored_addrs + layout.block_bytes - 1) // line) * line
            parts.append(first)
            parts.append(last[last != first])
        parts.append(
            sequential_lines(layout.dump_base, layout.dump_bytes, line))
        return np.concatenate(parts)
