"""Write coalescing (paper Sec. 4.4, "Coalescing").

Pointers (4 B), bases (3 B), and blocks (48 B) are all smaller than a
64-byte cache line; issuing each as its own memory request would be
wasteful.  The VD keeps one 64-byte staging buffer per output stream
and drains a buffer only when full, so a sequential stream of small
writes costs ``ceil(total_bytes / 64)`` line writes.

The *uncoalesced* ablation charges one line write per item, which is
what the sensitivity benches compare against.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np


@lru_cache(maxsize=4096)
def _sequential_lines_cached(base: int, nbytes: int,
                             line_bytes: int) -> np.ndarray:
    first = base // line_bytes
    last = (base + nbytes - 1) // line_bytes
    lines = np.arange(first, last + 1, dtype=np.int64) * line_bytes
    lines.setflags(write=False)
    return lines


def sequential_lines(base: int, nbytes: int, line_bytes: int = 64) -> np.ndarray:
    """Line addresses covering ``[base, base + nbytes)`` once each.

    Returns a cached **read-only** array: frame layouts revisit the
    same (base, span) pairs every buffer-pool cycle, so the arange is
    memoized.  Callers treat the result as immutable.
    """
    if nbytes <= 0:
        return np.empty(0, dtype=np.int64)
    return _sequential_lines_cached(base, nbytes, line_bytes)


def coalesced_stream_lines(base: int, item_bytes: int, count: int,
                           line_bytes: int = 64) -> np.ndarray:
    """Line writes for ``count`` items drained through a staging buffer."""
    return sequential_lines(base, item_bytes * count, line_bytes)


def uncoalesced_stream_lines(base: int, item_bytes: int, count: int,
                             line_bytes: int = 64) -> np.ndarray:
    """One line write per item (the no-coalescing ablation).

    Items that straddle a line boundary cost two writes, exactly as a
    real write-combining-free path would issue them.
    """
    if count <= 0:
        return np.empty(0, dtype=np.int64)
    starts = base + np.arange(count, dtype=np.int64) * item_bytes
    ends = starts + item_bytes - 1
    first = (starts // line_bytes) * line_bytes
    second = (ends // line_bytes) * line_bytes
    straddles = second != first
    return np.concatenate([first, second[straddles]])


def block_span_lines(addresses: np.ndarray, block_bytes: int,
                     line_bytes: int = 64) -> np.ndarray:
    """Line addresses each block read/write touches, in block order.

    Blocks are ``block_bytes`` long and not line-aligned, so each spans
    one or two lines; the result interleaves them in access order
    (first lines, then the straddle lines right after their block).
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    if len(addresses) == 0:
        return np.empty(0, dtype=np.int64)
    first = (addresses // line_bytes) * line_bytes
    last = ((addresses + block_bytes - 1) // line_bytes) * line_bytes
    straddles = last != first
    # Interleave: block i contributes first[i] (+ last[i] if straddling).
    counts = 1 + straddles.astype(np.int64)
    out = np.empty(int(counts.sum()), dtype=np.int64)
    positions = np.cumsum(counts) - counts
    out[positions] = first
    out[positions[straddles] + 1] = last[straddles]
    return out


def fragmentation_count(addresses: np.ndarray, block_bytes: int,
                        line_bytes: int = 64) -> int:
    """How many blocks straddle a line boundary (two requests each)."""
    addresses = np.asarray(addresses, dtype=np.int64)
    if len(addresses) == 0:
        return 0
    first = addresses // line_bytes
    last = (addresses + block_bytes - 1) // line_bytes
    return int((last != first).sum())
