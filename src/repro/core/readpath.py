"""DC read path (paper Sec. 5).

A display scan over a MACH-compacted frame walks the pointer/digest
table in raster order and fetches each block record:

* STORED / POINTER records fetch the block's 48 bytes, which straddle
  one or two 64-byte lines (*request fragmentation*); the display cache
  absorbs refetches of recently-touched lines (intra matches, straddle
  partners).
* DIGEST records resolve through the MACH buffer; a buffer miss costs a
  translation read into the in-memory MACH dump plus the block fetch.

The engine emits the timestamped memory reads that actually escaped to
DRAM, plus the statistics behind Figs. 10c/10d/10e.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..config import DisplayConfig, MachConfig, VideoConfig
from ..display.display_cache import simulate_direct_mapped_array
from ..display.mach_buffer import MachBuffer
from .coalesce import sequential_lines
from .layout import FrameLayout, LayoutMode, RecordKind
from .writeback import WritebackResult


@dataclass
class ReadStats:
    """Aggregate DC-side read accounting across a run."""

    frames: int = 0
    raw_equivalent_lines: int = 0  # what a RAW scan would have read
    meta_reads: int = 0  # pointer table + bitmap + bases
    pointer_records: int = 0
    digest_records: int = 0
    fragmented_records: int = 0
    block_line_requests: int = 0  # before the display cache
    dc_hits: int = 0
    mb_hits: int = 0
    mb_misses: int = 0
    translation_reads: int = 0
    prefetch_reads: int = 0
    mem_reads: int = 0  # everything that reached DRAM

    @property
    def savings(self) -> float:
        """Fractional DC memory-access saving vs the RAW scan (Fig. 10e)."""
        if not self.raw_equivalent_lines:
            return 0.0
        return 1.0 - self.mem_reads / self.raw_equivalent_lines

    @property
    def digest_fraction(self) -> float:
        """Fraction of block records indexed by digest (Fig. 10d)."""
        total = self.pointer_records + self.digest_records
        return self.digest_records / total if total else 0.0

    @property
    def fragmentation_rate(self) -> float:
        """Fraction of pointer records issuing two requests (Sec. 5.2)."""
        if not self.pointer_records:
            return 0.0
        return self.fragmented_records / self.pointer_records


@dataclass(frozen=True)
class ScanResult:
    """Memory reads of one frame scan."""

    times: np.ndarray
    addresses: np.ndarray

    @property
    def count(self) -> int:
        return len(self.times)


class DisplayReadEngine:
    """Stateful DC read path for one playback run."""

    def __init__(
        self,
        display: DisplayConfig,
        mach: MachConfig,
        video: VideoConfig,
        line_bytes: int = 64,
        use_display_cache: bool = True,
        use_mach_buffer: bool = True,
        buffer_policy: str = "lazy",
    ) -> None:
        self.display = display
        self.mach = mach
        self.video = video
        self.line_bytes = line_bytes
        self.use_display_cache = use_display_cache
        self.use_mach_buffer = use_mach_buffer
        self.stats = ReadStats()
        self.buffer = MachBuffer(mach.buffer_entries, policy=buffer_policy)
        self._dc_slots = display.scaled_cache_bytes(video, line_bytes) // line_bytes
        self._dc_state = np.full(self._dc_slots, -1, dtype=np.int64)

    # -- public API -------------------------------------------------------------

    def scan(self, writeback: WritebackResult,
             window: Tuple[float, float]) -> ScanResult:
        """Scan one frame out of memory; returns the DRAM reads issued."""
        layout = writeback.layout
        self.stats.frames += 1
        self.stats.raw_equivalent_lines += self._raw_lines(layout)
        if layout.mode is LayoutMode.RAW:
            return self._scan_raw(layout, window)
        return self._scan_mach(writeback, window)

    # -- raw path ----------------------------------------------------------------

    def _raw_lines(self, layout: FrameLayout) -> int:
        """Lines a RAW scan of this content needs (the Fig. 10e baseline)."""
        raw_bytes = layout.raw_bytes
        return -(-raw_bytes // self.line_bytes)

    def _scan_raw(self, layout: FrameLayout,
                  window: Tuple[float, float]) -> ScanResult:
        addresses = sequential_lines(
            layout.data_base, layout.data_bytes, self.line_bytes)
        self.stats.mem_reads += len(addresses)
        return self._timed(addresses, window)

    # -- MACH path ------------------------------------------------------------------

    def _scan_mach(self, writeback: WritebackResult,
                   window: Tuple[float, float]) -> ScanResult:
        layout = writeback.layout
        line = self.line_bytes
        stats = self.stats

        # Eager policy: prefetch the newly dumped MACH before scanning.
        prefetch_addrs = np.empty(0, dtype=np.int64)
        if (self.use_mach_buffer and self.buffer.policy == "eager"
                and writeback.dump is not None):
            fetched = self.buffer.prefetch_dump(writeback.dump.digests)
            dump_lines = sequential_lines(
                layout.dump_base, layout.dump_bytes, line)
            # Each prefetched entry also fetches its block (~one line).
            prefetch_addrs = np.concatenate([
                dump_lines,
                np.asarray(
                    [layout.data_base + i * line for i in range(fetched)],
                    dtype=np.int64),
            ])
            stats.prefetch_reads += len(prefetch_addrs)

        # Metadata: the table (and bases) are streamed alongside blocks.
        meta_addrs = np.concatenate([
            sequential_lines(layout.table_base, layout.table_bytes, line),
            sequential_lines(layout.bases_base, layout.bases_bytes, line),
        ])
        stats.meta_reads += len(meta_addrs)

        # Block records, in raster order.
        ptr_mask = layout.kinds != np.uint8(int(RecordKind.DIGEST))
        digest_mask = ~ptr_mask
        stats.pointer_records += int(ptr_mask.sum())
        stats.digest_records += int(digest_mask.sum())

        ptr_addrs = layout.pointers[ptr_mask]
        first = (ptr_addrs // line) * line
        last = ((ptr_addrs + layout.block_bytes - 1) // line) * line
        straddle = last != first
        stats.fragmented_records += int(straddle.sum())
        # Per-record line sequence: first line, then the straddle line.
        counts = 1 + straddle.astype(np.int64)
        block_lines = np.empty(int(counts.sum()), dtype=np.int64)
        positions = np.cumsum(counts) - counts
        block_lines[positions] = first
        block_lines[positions[straddle] + 1] = last[straddle]
        stats.block_line_requests += len(block_lines)

        if self.use_display_cache:
            hits = simulate_direct_mapped_array(
                block_lines // line, self._dc_slots, self._dc_state)
            stats.dc_hits += int(hits.sum())
            block_miss_lines = block_lines[~hits]
        else:
            block_miss_lines = block_lines

        # Digest records through the MACH buffer.
        digest_values = layout.digests[digest_mask]
        extra_addrs: List[np.ndarray] = []
        if len(digest_values):
            if self.use_mach_buffer:
                hits_mask, missed = self.buffer.process_frame(digest_values)
                stats.mb_hits += int(hits_mask.sum())
                stats.mb_misses += len(digest_values) - int(hits_mask.sum())
                if len(missed):
                    # Each miss: one translation read into the dump, plus
                    # the block fetch at the donor address.
                    stats.translation_reads += len(missed)
                    extra_addrs.append(sequential_lines(
                        layout.dump_base, len(missed) * line, line))
                    donor = layout.pointers[digest_mask]
                    missed_mask = ~hits_mask
                    extra_addrs.append(
                        (donor[missed_mask] // line) * line)
            else:
                # Ablation: no MACH buffer — every digest record costs a
                # translation read and a block fetch.
                stats.mb_misses += len(digest_values)
                stats.translation_reads += len(digest_values)
                extra_addrs.append(sequential_lines(
                    layout.dump_base, len(digest_values) * line, line))
                extra_addrs.append(
                    (layout.pointers[digest_mask] // line) * line)

        parts = [prefetch_addrs, meta_addrs, block_miss_lines]
        parts.extend(extra_addrs)
        addresses = np.concatenate(parts)
        stats.mem_reads += len(addresses)
        return self._timed(addresses, window)

    # -- helpers -----------------------------------------------------------------

    @staticmethod
    def _timed(addresses: np.ndarray,
               window: Tuple[float, float]) -> ScanResult:
        start, end = window
        n = len(addresses)
        times = (np.linspace(start, end, n, endpoint=False)
                 if n else np.empty(0, dtype=np.float64))
        return ScanResult(times=times, addresses=addresses)
