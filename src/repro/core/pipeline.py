"""End-to-end playback simulation (the paper's Fig. 1b flow).

One :func:`simulate` call plays one video through one scheme:

1. the network model buffers encoded frames;
2. the Race-to-Sleep governor wakes the VD, which decodes a batch —
   generating encoded-stream reads, reference reads, and the content-
   caching write path's frame-buffer writes;
3. slack after each batch goes to the deepest profitable sleep state;
4. the display controller scans a frame out at every vsync through the
   display-caching read path, detecting drops;
5. every memory access (plus background masters) flows through the
   LPDDR3 row-buffer model;
6. the run is integrated into the nine-part energy breakdown.

Timing is event-driven at frame granularity; memory traffic carries
per-access timestamps so DRAM row interleaving is faithful.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..config import (
    SchemeConfig,
    SimulationConfig,
)
from ..decoder.power import (
    PowerState,
    PowerTracker,
    SleepDecision,
    plan_slack,
)
from ..decoder.vd import VideoDecoder
from ..display.controller import DisplayController
from ..faults import FaultPlan, conceal_blocks
from ..display.framebuffer import FrameBufferPool
from ..thermal import ThermalModel
from ..memory.address import RegionMap
from ..memory.controller import MemoryController
from ..memory.energy import memory_energy
from ..video.frame import DecodedFrame, FrameType
from ..video.synthesis import SyntheticVideo, VideoProfile
from ..video.trace import FrameTrace
from .batching import FrameSource, NetworkModel
from .energy import build_breakdown
from .race_to_sleep import AdaptiveRtSGovernor, RaceToSleepGovernor
from .readpath import DisplayReadEngine
from .results import FrameTimeline, RunResult
from .writeback import (
    FrameMatches,
    WritebackEngine,
    WritebackResult,
    slot_bytes_needed,
)

#: Refresh intervals between a frame's decode slot and its display: the
#: VD is called in slot f and the frame must be in the buffer by the
#: next vsync (paper Sec. 2.1 — a 16 ms decode budget per frame).
DISPLAY_LEAD = 1


def _uniform_times(rng: np.random.Generator, start: float, end: float,
                   count: int) -> np.ndarray:
    """Randomized arrival times over a window, order preserved.

    Per-macroblock decode times (and DC line-buffer refills) vary, so a
    stream's accesses drift across its window instead of marching on a
    fixed grid; using uniform order statistics keeps the stream's
    density while preventing artificial bank-sweep phase-lock between
    agents.
    """
    if count <= 0:
        return np.empty(0, dtype=np.float64)
    times = rng.uniform(start, end, size=count)
    times.sort()
    return times


class _TrafficLog:
    """Accumulates timestamped accesses from all agents."""

    def __init__(self) -> None:
        self._times: List[np.ndarray] = []
        self._addresses: List[np.ndarray] = []
        self._writes: List[np.ndarray] = []
        self._agents: List[str] = []

    def add(self, agent: str, times: np.ndarray, addresses: np.ndarray,
            is_write: bool) -> None:
        if len(times) == 0:
            return
        self._times.append(np.asarray(times, dtype=np.float64))
        self._addresses.append(np.asarray(addresses, dtype=np.int64))
        self._writes.append(
            np.full(len(times), is_write, dtype=bool))
        self._agents.append(agent)

    def drain(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                             Dict[str, np.ndarray]]:
        if not self._times:
            empty = np.empty(0)
            return empty, empty.astype(np.int64), empty.astype(bool), {}
        times = np.concatenate(self._times)
        addresses = np.concatenate(self._addresses)
        writes = np.concatenate(self._writes)
        masks: Dict[str, np.ndarray] = {}
        cursor = 0
        bounds: Dict[str, List[Tuple[int, int]]] = {}
        for agent, chunk in zip(self._agents, self._times):
            bounds.setdefault(agent, []).append((cursor, cursor + len(chunk)))
            cursor += len(chunk)
        for agent, spans in bounds.items():
            mask = np.zeros(len(times), dtype=bool)
            for start, end in spans:
                mask[start:end] = True
            masks[agent] = mask
        return times, addresses, writes, masks


def _resolve_source(
    source: VideoSource, cfg: SimulationConfig, n_frames: Optional[int],
    seed: int,
) -> Tuple[Iterable[DecodedFrame], int, str, SimulationConfig]:
    """Turn the ``source`` argument into (stream, count, key, config).

    Accepts a :class:`VideoProfile` (the synthetic generator path), a
    :class:`~repro.video.trace.FrameTrace` (recorded/real content — its
    geometry overrides the configured one), or any sized iterable of
    :class:`DecodedFrame`.
    """
    from ..video.trace import FrameTrace  # local: avoid import cycle

    if isinstance(source, VideoProfile):
        count = n_frames if n_frames is not None else source.n_frames
        stream = SyntheticVideo(
            cfg.video, source, seed=seed, n_frames=count,
            complexity_sigma=cfg.calibration.complexity_sigma)
        return stream, count, source.key, cfg
    if isinstance(source, FrameTrace):
        count = len(source)
        if n_frames is not None:
            count = min(count, n_frames)
        cfg = replace(cfg, video=source.video_config)
        return source, count, "trace", cfg
    # A generic sized iterable of DecodedFrame.
    count = len(source)
    if n_frames is not None:
        count = min(count, n_frames)
    key = getattr(source, "key", "stream")
    return source, count, key, cfg


#: What :func:`simulate` accepts as content: a Table-1 profile, a
#: captured trace, or any sized iterable of decoded frames.
VideoSource = Union[VideoProfile, FrameTrace, Sequence[DecodedFrame]]


def simulate(
    source: VideoSource,
    scheme: SchemeConfig,
    n_frames: Optional[int] = None,
    config: Optional[SimulationConfig] = None,
    seed: int = 0,
    unbounded_mach: bool = False,
    use_display_cache: bool = True,
    use_mach_buffer: bool = True,
    buffer_policy: str = "lazy",
    network_model: Optional[FrameSource] = None,
    vectorized: bool = True,
    block_loss_overlay: Optional[Mapping[int, np.ndarray]] = None,
) -> RunResult:
    """Simulate playback of ``source`` under ``scheme``.

    Args:
        source: what to play — a :class:`VideoProfile` (Table 1 entry
            or custom), a :class:`~repro.video.trace.FrameTrace`, or
            any sized iterable of :class:`DecodedFrame`.
        scheme: which technique stack to run (e.g. ``config.GAB``).
        n_frames: frames to play (defaults to the source's full count).
        config: simulation configuration (defaults are the paper's).
        seed: RNG seed for content and background traffic.
        unbounded_mach: replace MACH with the capacity-free oracle
            ("optimal" in Fig. 9a).
        use_display_cache / use_mach_buffer: ablation switches for the
            display read path (Fig. 10e's "original layout" bar).
        buffer_policy: MACH-buffer fill policy ('lazy' or 'eager').
        network_model: frame-arrival source; defaults to the chunked
            :class:`NetworkModel` stub from ``config.network``.  Pass
            a :class:`repro.network.DeliveredNetworkModel` to drive
            availability (and hence the Race-to-Sleep batch cap) from
            a trace-driven delivery run.
        vectorized: use the batched SoA write-path kernel (default).
            ``False`` forces the retained scalar per-block reference
            everywhere — the two settings produce bit-identical
            results, which the equivalence suite asserts.
        block_loss_overlay: per-frame macroblock indices lost upstream
            of the decoder (the realtime mode's unrecovered packets,
            :meth:`repro.realtime.RealtimeResult.block_overlay`).
            They conceal through the same path as injected bit errors
            — the union of both sources, so composing them never
            reshuffles either schedule.  ``None`` (default) is inert.

    Returns:
        A :class:`RunResult` with the energy breakdown and statistics.
    """
    cfg = config or SimulationConfig()
    stream, count, profile_key, cfg = _resolve_source(
        source, cfg, n_frames, seed)
    video_cfg = cfg.video
    mach_cfg = cfg.with_scheme_mach(scheme)
    # Hardware power/overhead numbers use the paper-spec MACH; the
    # behavioural structures are capacity-scaled to the sim resolution.
    sim_mach_cfg = mach_cfg.scaled_for(video_cfg)

    # --- memory layout -----------------------------------------------------
    regions = RegionMap(cfg.dram)
    network_region = regions.add("network", 1 << 20)
    # Displayed frames stay resident while still referenced: as motion
    # references for the next frame's decode (all schemes), and as MACH
    # pointer donors for up to num_machs frames (MACH schemes).
    retention = mach_cfg.num_machs if scheme.uses_mach else 1
    slots = scheme.batch_size + 2 + retention
    slot_bytes = slot_bytes_needed(video_cfg, sim_mach_cfg, scheme)
    row_span = cfg.dram.row_bytes * cfg.dram.channels
    slot_bytes = (slot_bytes + row_span - 1) // row_span * row_span
    pool_span = slots * (slot_bytes
                         + row_span * FrameBufferPool.PHASE_SLOTS)
    fb_region = regions.add("framebuffers", pool_span)
    other_region = regions.add("other", 4 << 20)

    # The simulated traffic is a 1/scale sample of the native stream, so
    # the time-domain controller parameters (row-open timeout and the
    # FR-FCFS quantum) are stretched by the same factor to preserve the
    # interleaving statistics (DESIGN.md section 2).
    scale = video_cfg.scale_to_native
    dram_cfg = replace(
        cfg.dram,
        row_max_open=cfg.dram.row_max_open * scale,
        scheduler_quantum=cfg.dram.scheduler_quantum * scale,
    )
    memory = MemoryController(dram_cfg)

    # --- components -----------------------------------------------------------
    network = (network_model if network_model is not None
               else NetworkModel(cfg.network, video_cfg.fps, count))
    # Thermal pressure (inert by default): junction temperature, the
    # sustained-power cap, and injected throttle events can revoke the
    # boost frequency mid-session; the adaptive governor degrades
    # gracefully, the fixed one discovers the revocation at decode.
    thermal = ThermalModel(cfg.thermal) if cfg.thermal.enabled else None
    adaptive: Optional[AdaptiveRtSGovernor] = None
    if (thermal is not None and cfg.thermal.adaptive and scheme.racing
            and scheme.batch_size > 1):
        adaptive = AdaptiveRtSGovernor(scheme, cfg.decoder, network,
                                       video_cfg.frame_interval,
                                       DISPLAY_LEAD, thermal)
    governor: RaceToSleepGovernor = (
        adaptive if adaptive is not None
        else RaceToSleepGovernor(scheme, cfg.decoder, network,
                                 video_cfg.frame_interval, DISPLAY_LEAD))
    pool = FrameBufferPool(fb_region.base, slot_bytes, slots,
                           retention=retention, phase_span=row_span)
    vd = VideoDecoder(cfg.decoder, video_cfg, cfg.dram.line_bytes)
    # Fault injection (inert by default): bit errors conceal from the
    # previous frame, digest collisions trigger the MACH verify
    # fallback.  The plan is a pure function of the fault seed, so a
    # faulted run is exactly as deterministic as a clean one.
    fault_plan = FaultPlan.from_config(cfg.faults)
    # The eager MACH-buffer prefetch consumes the frozen dump's
    # iteration order, which the batched kernel emits in recency rather
    # than way-slot order — that one configuration keeps the scalar
    # write path.
    writeback = WritebackEngine(
        video_cfg, sim_mach_cfg, scheme, cfg.dram.line_bytes,
        unbounded_mach=unbounded_mach, fault_plan=fault_plan,
        vectorized=vectorized and not (
            use_mach_buffer and buffer_policy == "eager"))
    display = DisplayController(cfg.display, cfg.calibration.display_scan_duty)
    reader = DisplayReadEngine(
        cfg.display, sim_mach_cfg, video_cfg, cfg.dram.line_bytes,
        use_display_cache=use_display_cache,
        use_mach_buffer=use_mach_buffer,
        buffer_policy=buffer_policy,
    )
    tracker = PowerTracker(cfg.decoder.power_states)
    psc = cfg.decoder.power_states
    transition_scale = (psc.racing_transition_factor
                        if scheme.racing else 1.0)

    def slack_scale(at: float) -> float:
        """Transition-energy scale for a sleep entered around ``at``.

        Racing pays the inflated transition cost only while boost is
        actually granted; without a thermal model this is the static
        per-scheme factor (bit-identical to the pre-thermal path)."""
        if thermal is None:
            return transition_scale
        if scheme.racing and thermal.boost_available(at):
            return psc.racing_transition_factor
        return 1.0

    def advance_thermal_slack(decision: SleepDecision, upto: float) -> None:
        """Drive the thermal model over a slack decision's power mix."""
        if thermal is None:
            return
        total = decision.total_time
        if total <= 0:
            return
        if decision.state is PowerState.S1:
            sleep_power = psc.s1_power
        elif decision.state is PowerState.S3:
            sleep_power = psc.s3_power
        else:
            sleep_power = 0.0
        average = (decision.idle_time * psc.p_idle_power
                   + decision.sleep_time * sleep_power
                   + decision.transition_energy) / total
        thermal.advance_to(upto, average)
    traffic = _TrafficLog()
    rng = np.random.default_rng(seed + 0x5EED)
    timeline = FrameTimeline.empty(count)

    completed: Dict[int, WritebackResult] = {}
    finish_times: Dict[int, float] = {}
    skipped: set = set()
    state = {"display_cursor": 0, "last_shown": None}

    def deadline(index: int) -> float:
        return governor.deadline(index)

    raw_frame_lines = video_cfg.frame_bytes / cfg.dram.line_bytes

    def scan_window_for(vsync: float, line_count: int) -> Tuple[float, float]:
        """The DC fetches at its fixed line rate, so a compacted frame
        finishes early instead of stretching over the whole refresh."""
        full = video_cfg.frame_interval * cfg.calibration.display_scan_duty
        density = min(1.0, line_count / raw_frame_lines)
        return vsync, vsync + full * max(density, 0.05)

    def advance_display(upto: float) -> None:
        """Process every vsync whose refresh begins at or before ``upto``."""
        while state["display_cursor"] < count:
            v = state["display_cursor"]
            vsync = deadline(v)
            if vsync > upto + 1e-12:
                break
            window = (vsync, vsync
                      + video_cfg.frame_interval
                      * cfg.calibration.display_scan_duty)
            ready = v in finish_times and finish_times[v] <= vsync + 1e-12
            display.record_refresh(v, ready)
            if ready:
                scan = reader.scan(completed[v], window)
                burst_window = scan_window_for(vsync, scan.count)
                traffic.add("dc",
                            _uniform_times(rng, burst_window[0],
                                           burst_window[1], scan.count),
                            scan.addresses, is_write=False)
                pool.mark_displayed(v)
                state["last_shown"] = v
                timeline.dropped[v] = False
            else:
                timeline.dropped[v] = True
                if v in finish_times:
                    # Decoded too late to be shown: retire immediately.
                    pool.mark_displayed(v)
                else:
                    skipped.add(v)
                shown = state["last_shown"]
                if shown is not None:
                    rescan = reader.scan(completed[shown], window)
                    burst_window = scan_window_for(vsync, rescan.count)
                    traffic.add("dc",
                                _uniform_times(rng, burst_window[0],
                                               burst_window[1],
                                               rescan.count),
                                rescan.addresses, is_write=False)
            state["display_cursor"] += 1

    def batch_buffers_free_time(next_frame: int, now: float,
                                batch_size: Optional[int] = None) -> float:
        """When a ``batch_size`` batch's worth of slots will be free."""
        if batch_size is None:
            batch_size = scheme.batch_size
        free = pool.slots - pool.live_count
        need = min(batch_size, count - next_frame) - free
        if need <= 0:
            return now
        live = pool.live_indices
        if need > len(live):
            need = len(live)
        victim = live[need - 1]
        return deadline(victim + pool.retention)

    # --- main decode loop ---------------------------------------------------------
    frames_iter = iter(stream)
    now = 0.0
    next_frame = 0
    last_batch_size = 1
    raw_write_bytes = 0
    total_write_bytes = 0
    match_totals = [0, 0, 0]
    prev_blocks = None  # last decoded frame's content, for concealment
    concealed_total = 0
    frames_at_nominal = 0  # racing frames forced to the low frequency

    while next_frame < count:
        advance_display(now)
        if thermal is not None:
            # Catch up over stall jumps the tracker does not record.
            thermal.advance_to(now, psc.p_idle_power)
        if adaptive is not None:
            def buffers_free_for(candidate: int) -> float:
                return batch_buffers_free_time(next_frame, now, candidate)
            plan = adaptive.plan_wake_adaptive(now, next_frame,
                                               buffers_free_for)
            batch_cap = plan.batch_cap
            allow_s3 = plan.allow_s3
        else:
            plan = governor.plan_wake(
                now, next_frame, batch_buffers_free_time(next_frame, now))
            batch_cap = scheme.batch_size
            allow_s3 = True
        if plan.wake_time > now + 1e-12:
            slack = plan.wake_time - now
            decision = plan_slack(slack, cfg.decoder.power_states,
                                  slack_scale(now), allow_s3=allow_s3)
            tracker.record_slack(decision)
            _attribute_slack(timeline, decision, next_frame, cfg,
                             batch=last_batch_size)
            advance_thermal_slack(decision, plan.wake_time)
            now = plan.wake_time
            advance_display(now)
            if thermal is not None and decision.transition_time > 0:
                delay = thermal.wake_delay(now)
                if delay > 0:
                    # Injected slow frequency ramp out of sleep: the VD
                    # sits powered-on idle before decode can start.
                    # Both governors pay it; only the adaptive one
                    # planned its wake early enough to absorb it.
                    stall = SleepDecision(PowerState.SHORT_SLACK, 0.0,
                                          delay, 0.0, 0.0)
                    tracker.record_slack(stall)
                    _attribute_slack(timeline, stall, next_frame, cfg,
                                     batch=last_batch_size)
                    thermal.advance_to(now + delay, psc.p_idle_power)
                    now += delay
                    advance_display(now)

        available = network.frames_available(now) - next_frame
        free = pool.slots - pool.live_count
        batch = min(batch_cap, available, free, count - next_frame)
        if batch < 1:
            # Stalled on the network or on buffer drain: jump to the
            # earliest event that unblocks us.
            unblock = max(
                network.time_when_available(next_frame + 1),
                batch_buffers_free_time(next_frame, now, batch_cap)
                if free < 1 else now,
            )
            now = max(unblock, now + video_cfg.frame_interval / 4)
            continue

        for _ in range(batch):
            frame = next(frames_iter)
            index = frame.index
            start = now
            if scheme.batch_size == 1:
                start = max(start, governor.call_time(index))
                if start > now + 1e-12:
                    decision = plan_slack(start - now,
                                          cfg.decoder.power_states,
                                          slack_scale(now))
                    tracker.record_slack(decision)
                    _attribute_slack(timeline, decision, index, cfg)
                    advance_thermal_slack(decision, start)
            racing_now = scheme.racing
            if thermal is not None and scheme.racing:
                racing_now = thermal.boost_available(start)
                if not racing_now:
                    frames_at_nominal += 1
            duration = vd.decode_duration(frame, racing_now)
            power = cfg.decoder.active_power(racing_now)
            finish = start + duration
            if thermal is not None:
                thermal.advance_to(finish, power)
            slot = pool.admit(index)

            reference_base = None
            if frame.frame_type is not FrameType.I and index > 0:
                previous = index - 1
                if pool.is_live(previous):
                    reference_base = pool.slot(previous).base
            reads = vd.read_traffic(
                frame, start, finish,
                encoded_base=network_region.base
                + (index * 4096) % (network_region.size // 2),
                reference_base=reference_base,
                rng=rng,
            )
            traffic.add("vd_read", reads.times, reads.addresses,
                        is_write=False)

            if fault_plan is not None or block_loss_overlay is not None:
                corrupt = (fault_plan.corrupt_block_indices(
                    index, frame.n_blocks, frame.block_bytes)
                    if fault_plan is not None
                    else np.empty(0, dtype=np.int64))
                if block_loss_overlay is not None:
                    lost = block_loss_overlay.get(index)
                    if lost is not None and len(lost):
                        corrupt = np.union1d(
                            corrupt, np.asarray(lost, dtype=np.int64))
                if len(corrupt):
                    # Copy before concealing: the stream may derive
                    # later frames from this buffer, and the source
                    # content must not inherit the receiver's damage.
                    frame.blocks = frame.blocks.copy()
                    concealed_total += conceal_blocks(
                        frame.blocks, corrupt, prev_blocks)
                    # Concealment re-reads each co-located block from
                    # the previous frame's buffer: extra memory
                    # traffic the fault-free path never pays.
                    if index > 0 and pool.is_live(index - 1):
                        conceal_base = pool.slot(index - 1).base
                        line = cfg.dram.line_bytes
                        conceal_addrs = (conceal_base
                                         + (corrupt * frame.block_bytes)
                                         // line * line)
                        traffic.add(
                            "vd_read",
                            _uniform_times(rng, start, finish,
                                           len(conceal_addrs)),
                            conceal_addrs, is_write=False)
            prev_blocks = frame.blocks

            result = writeback.process_frame(frame, slot.base)
            write_times = _uniform_times(rng, start, finish,
                                         len(result.write_lines))
            traffic.add("vd_write", write_times, result.write_lines,
                        is_write=True)
            pool.set_footprint(index, result.bytes_written)
            completed[index] = result
            finish_times[index] = finish
            raw_write_bytes += result.layout.raw_bytes
            total_write_bytes += result.bytes_written
            match_totals[0] += result.matches.intra
            match_totals[1] += result.matches.inter
            match_totals[2] += result.matches.none

            tracker.record_execution(duration, power)
            timeline.decode_time[index] = duration
            timeline.exec_energy[index] = duration * power
            timeline.finish[index] = finish
            timeline.deadline[index] = deadline(index)

            if index in skipped:
                pool.mark_displayed(index)  # stale frame: retire at once
            now = finish
            advance_display(now)
        next_frame += batch
        last_batch_size = batch

    # Flush the remaining display schedule and trailing slack.
    end_time = deadline(count - 1) + video_cfg.frame_interval
    if end_time > now:
        decision = plan_slack(end_time - now, cfg.decoder.power_states,
                              slack_scale(now))
        tracker.record_slack(decision)
        _attribute_slack(timeline, decision, count, cfg,
                         batch=last_batch_size)
        advance_thermal_slack(decision, end_time)
        now = end_time
    advance_display(end_time)

    # --- background masters ---------------------------------------------------------
    frame_lines = video_cfg.frame_bytes // cfg.dram.line_bytes
    bg_per_interval = (2 * frame_lines
                       * cfg.calibration.other_traffic_fraction)
    bg_count = int(bg_per_interval * end_time / video_cfg.frame_interval)
    if bg_count:
        # CPU/GPU masters fetch in short sequential runs (cache refills),
        # not isolated random lines.
        run = 16
        n_runs = max(1, bg_count // run)
        run_starts = np.sort(rng.uniform(0.0, end_time, size=n_runs))
        line_time = 8e-9 * scale  # back-to-back line transfers, scaled
        bg_times = (run_starts[:, None]
                    + np.arange(run)[None, :] * line_time).ravel()
        region_lines = other_region.size // cfg.dram.line_bytes
        bg_line_starts = rng.integers(0, region_lines - run, size=n_runs)
        bg_lines = (bg_line_starts[:, None] + np.arange(run)[None, :]).ravel()
        bg_addrs = other_region.base + bg_lines * cfg.dram.line_bytes
        traffic.add("other", bg_times, bg_addrs, is_write=False)

    # --- memory + energy integration ----------------------------------------------
    times, addresses, writes, masks = traffic.drain()
    memory.process_window(times, addresses, writes, masks)
    mem_energy = memory_energy(dram_cfg, memory.stats, end_time).scaled(
        video_cfg.scale_to_native)
    breakdown = build_breakdown(tracker, mem_energy, cfg.display, mach_cfg,
                                scheme, end_time)

    mach_stats = writeback.stats
    matches = FrameMatches(*match_totals) if scheme.uses_mach else None
    return RunResult(
        profile_key=profile_key,
        scheme_name=scheme.name,
        n_frames=count,
        elapsed=end_time,
        energy=breakdown,
        drops=display.stats.drops,
        residency={s: tracker.residency(s) for s in PowerState},
        transitions=tracker.transitions,
        timeline=timeline,
        matches=matches,
        write_bytes=total_write_bytes,
        raw_write_bytes=raw_write_bytes,
        read_stats=reader.stats if scheme.uses_mach else None,
        mem_stats=memory.stats,
        peak_footprint_native_mb=pool.peak_footprint
        * video_cfg.scale_to_native / (1 << 20),
        silent_collisions=mach_stats.silent_collisions if mach_stats else 0,
        detected_collisions=(mach_stats.detected_collisions
                             if mach_stats else 0),
        concealed_blocks=concealed_total,
        injected_collisions=(mach_stats.injected_collisions
                             if mach_stats else 0),
        fallback_writes=mach_stats.fallback_writes if mach_stats else 0,
        throttle_seconds=(thermal.throttle_seconds
                          if thermal is not None else 0.0),
        degradation_steps=(adaptive.degradation_steps
                           if adaptive is not None else 0),
        frames_at_nominal=frames_at_nominal,
    )


def _attribute_slack(timeline: FrameTimeline, decision: SleepDecision,
                     upto_frame: int, cfg: SimulationConfig,
                     batch: int = 1) -> None:
    """Attribute a slack decision across the batch just decoded.

    The paper presents per-frame overheads with a batch's slack and
    transition cost shared by its frames (Fig. 2d: "transition
    overheads per frame ... reduced by 16x"), so the decision is split
    evenly over the ``batch`` frames ending at ``upto_frame - 1``.
    """
    end = min(upto_frame, len(timeline.decode_time))
    start = max(0, end - max(batch, 1))
    if end <= start:
        return
    share = 1.0 / (end - start)
    psc = cfg.decoder.power_states
    indices = slice(start, end)
    if decision.state is PowerState.S1:
        timeline.s1_time[indices] += decision.sleep_time * share
        timeline.s1_energy[indices] += (
            decision.sleep_time * psc.s1_power * share)
    elif decision.state is PowerState.S3:
        timeline.s3_time[indices] += decision.sleep_time * share
        timeline.s3_energy[indices] += (
            decision.sleep_time * psc.s3_power * share)
    timeline.idle_time[indices] += decision.idle_time * share
    timeline.idle_energy[indices] += (
        decision.idle_time * psc.p_idle_power * share)
    timeline.transition_time[indices] += decision.transition_time * share
    timeline.transition_energy[indices] += decision.transition_energy * share
