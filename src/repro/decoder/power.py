"""VD power-state machine (paper Fig. 2a).

States: active P-states (P0 high / P1 low frequency), powered idle
("short slack" — on, but doing nothing), S1 sleep, and S3 deep sleep.
Entering a sleep state only pays off when the available slack exceeds
both the wake latency and the energy breakeven; :func:`plan_slack`
makes that decision exactly the way the paper describes ("before moving
to S1 or S3, if the decoder finds it does not have enough sleep time to
offset the transition energy, it would not transition").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict

from ..config import PowerStateConfig


class PowerState(Enum):
    """Where the VD's time goes; mirrors the Fig. 2b/2c stack legend."""

    EXECUTION = "execution"
    SHORT_SLACK = "short_slack"
    TRANSITION = "transition"
    S1 = "s1"
    S3 = "s3"


@dataclass(frozen=True)
class SleepDecision:
    """How one slack interval is spent."""

    state: PowerState  # SHORT_SLACK, S1, or S3
    sleep_time: float  # seconds actually asleep
    idle_time: float  # seconds powered-on idle
    transition_time: float  # s of wake latency paid inside the slack
    transition_energy: float  # J per sleep/wake round trip

    @property
    def total_time(self) -> float:
        return self.sleep_time + self.idle_time + self.transition_time


def plan_slack(slack: float, config: PowerStateConfig,
               transition_scale: float = 1.0,
               allow_s3: bool = True) -> SleepDecision:
    """Choose the deepest profitable sleep state for ``slack`` seconds.

    The wake latency is paid at the end of the slack window so the next
    frame starts on time; the remainder is spent asleep.  If even S1
    does not break even, the whole slack is powered-on idle.

    ``transition_scale`` inflates the transition energies (racing pays
    :attr:`PowerStateConfig.racing_transition_factor`); the breakeven
    test uses the scaled cost, so an expensive transition must still
    pay for itself.

    ``allow_s3=False`` caps the sleep depth at S1 — the adaptive
    governor's shallow-sleep ladder step, for slack windows whose
    deadline margin can no longer absorb the deep-sleep exit latency.
    """
    if slack < 0:
        raise ValueError(f"slack must be non-negative, got {slack}")
    s3_energy = config.s3_transition_energy * transition_scale
    s1_energy = config.s1_transition_energy * transition_scale
    s3_breakeven = max(s3_energy / (config.p_idle_power - config.s3_power),
                       config.s3_wake_latency)
    s1_breakeven = max(s1_energy / (config.p_idle_power - config.s1_power),
                       config.s1_wake_latency)
    if allow_s3 and slack >= s3_breakeven:
        wake = config.s3_wake_latency
        return SleepDecision(PowerState.S3, slack - wake, 0.0, wake,
                             s3_energy)
    if slack >= s1_breakeven:
        wake = config.s1_wake_latency
        return SleepDecision(PowerState.S1, slack - wake, 0.0, wake,
                             s1_energy)
    return SleepDecision(PowerState.SHORT_SLACK, 0.0, slack, 0.0, 0.0)


@dataclass
class PowerTracker:
    """Accumulates VD time and energy per power state over a run."""

    config: PowerStateConfig
    time_by_state: Dict[PowerState, float] = field(
        default_factory=lambda: {state: 0.0 for state in PowerState})
    energy_by_state: Dict[PowerState, float] = field(
        default_factory=lambda: {state: 0.0 for state in PowerState})
    transitions: int = 0

    def record_execution(self, duration: float, power: float) -> None:
        """Active decode: ``duration`` seconds at ``power`` watts."""
        self.time_by_state[PowerState.EXECUTION] += duration
        self.energy_by_state[PowerState.EXECUTION] += duration * power

    def record_slack(self, decision: SleepDecision) -> None:
        """Apply a :func:`plan_slack` decision to the accounting."""
        cfg = self.config
        if decision.state is PowerState.S1:
            sleep_power = cfg.s1_power
        elif decision.state is PowerState.S3:
            sleep_power = cfg.s3_power
        else:
            sleep_power = 0.0  # no sleeping happened
        if decision.sleep_time:
            self.time_by_state[decision.state] += decision.sleep_time
            self.energy_by_state[decision.state] += (
                decision.sleep_time * sleep_power)
        if decision.idle_time:
            self.time_by_state[PowerState.SHORT_SLACK] += decision.idle_time
            self.energy_by_state[PowerState.SHORT_SLACK] += (
                decision.idle_time * cfg.p_idle_power)
        if decision.transition_time:
            self.time_by_state[PowerState.TRANSITION] += decision.transition_time
            self.energy_by_state[PowerState.TRANSITION] += (
                decision.transition_energy)
            self.transitions += 1

    @property
    def total_time(self) -> float:
        return sum(self.time_by_state.values())

    @property
    def total_energy(self) -> float:
        return sum(self.energy_by_state.values())

    def residency(self, state: PowerState) -> float:
        """Fraction of tracked time spent in ``state``."""
        total = self.total_time
        return self.time_by_state[state] / total if total else 0.0
