"""Conventional VD cache study (paper Fig. 7a).

Reproduces the observation that motivates MACH: growing the decoder's
conventional cache helps the *compute-phase* accesses (motion
compensation exhibits address locality) but does nothing for the
*writeback stream*, which touches every output address exactly once
per frame.  We replay both access classes through a set-associative
cache at several capacities and report per-class miss rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..cache import SetAssociativeCache
from ..config import VideoConfig
from ..errors import CacheError


@dataclass(frozen=True)
class CacheStudyResult:
    """Miss rates for one cache capacity."""

    capacity_bytes: int
    compute_miss_rate: float
    writeback_miss_rate: float


def _compute_trace(video: VideoConfig, frames: int, line_bytes: int,
                   rng: np.random.Generator) -> np.ndarray:
    """Motion-compensation reads: overlapping windows into the reference.

    Adjacent macroblocks reference overlapping regions of the previous
    frame (motion vectors are small), so consecutive windows share most
    of their lines — the address locality a conventional cache exploits.
    """
    frame_lines = video.frame_bytes // line_bytes
    window = 16  # reference window, in lines
    trace: List[np.ndarray] = []
    for _ in range(frames):
        # Window start advances ~2 lines per block with small jitter.
        n_windows = video.blocks_per_frame // 8
        jitter = rng.integers(-2, 3, size=n_windows)
        starts = np.clip(
            np.arange(n_windows) * 2 + jitter, 0, frame_lines - window)
        lines = (starts[:, None] + np.arange(window)[None, :]).ravel()
        trace.append(lines)
    return np.concatenate(trace)


def _writeback_trace(video: VideoConfig, frames: int,
                     line_bytes: int) -> np.ndarray:
    """Decoded-frame writes: every line of a fresh buffer, once."""
    frame_lines = video.frame_bytes // line_bytes
    trace = [
        np.arange(frame_lines, dtype=np.int64) + frame_index * frame_lines
        for frame_index in range(frames)
    ]
    return np.concatenate(trace)


def _miss_rate(lines: np.ndarray, capacity_bytes: int, ways: int,
               line_bytes: int) -> float:
    total_lines = capacity_bytes // line_bytes
    if total_lines < ways:
        raise CacheError(
            f"capacity {capacity_bytes} too small for {ways} ways")
    cache = SetAssociativeCache(sets=total_lines // ways, ways=ways)
    for line in lines:
        cache.access(int(line))
    return cache.stats.miss_rate


def vd_cache_study(
    video: VideoConfig,
    capacities: Sequence[int],
    frames: int = 4,
    ways: int = 4,
    line_bytes: int = 64,
    seed: int = 0,
) -> List[CacheStudyResult]:
    """Run the Fig. 7a sweep and return one result per capacity."""
    rng = np.random.default_rng(seed)
    compute = _compute_trace(video, frames, line_bytes, rng)
    writeback = _writeback_trace(video, frames, line_bytes)
    results = []
    for capacity in capacities:
        results.append(CacheStudyResult(
            capacity_bytes=capacity,
            compute_miss_rate=_miss_rate(compute, capacity, ways, line_bytes),
            writeback_miss_rate=_miss_rate(
                writeback, capacity, ways, line_bytes),
        ))
    return results
