"""Per-frame decode-work model.

Decode cycles scale with the block count, the frame type (I frames
reconstruct every block from intra prediction and carry the densest
coefficients), and the frame's complexity multiplier from the stream
generator.  Constants are calibrated so the 150 MHz frame-time CDF
reproduces the paper's Fig. 2b region mix; see DESIGN.md section 5.
"""

from __future__ import annotations

from ..config import DecoderConfig
from ..video.frame import DecodedFrame, FrameType

_CYCLE_FIELD = {
    FrameType.I: "cycles_per_frame_i",
    FrameType.P: "cycles_per_frame_p",
    FrameType.B: "cycles_per_frame_b",
}


def decode_cycles(frame: DecodedFrame, config: DecoderConfig) -> float:
    """VD cycles needed to decode ``frame``.

    The cycle model is per-frame (calibrated against the 4K stream the
    paper decodes), so the scaled simulation resolution changes traffic
    volume but never frame timing.
    """
    per_frame = getattr(config, _CYCLE_FIELD[frame.frame_type])
    return config.base_cycles + per_frame * frame.complexity


def decode_time(frame: DecodedFrame, config: DecoderConfig,
                racing: bool) -> float:
    """Seconds to decode ``frame`` at the scheme's VD frequency."""
    return decode_cycles(frame, config) / config.frequency(racing)
