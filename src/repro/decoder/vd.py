"""Video decoder facade: timing plus read-side memory traffic.

The VD touches memory three ways while decoding a frame (Fig. 1b):

1. it streams the *encoded* frame out of the network buffer (step 3);
2. motion compensation re-reads *reference* pixels from previously
   decoded frame buffers (step 4) — mostly absorbed by the VD's
   conventional cache;
3. it writes the decoded frame back (step 6) — produced by the
   content-caching write engine in :mod:`repro.core.writeback`, not
   here.

This module generates the timestamped line accesses for (1) and (2),
spread uniformly over the decode window, which is what the DRAM
row-buffer model needs to see realistic interleaving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..config import DecoderConfig, VideoConfig
from ..video.frame import DecodedFrame, FrameType
from .timing import decode_time


@dataclass(frozen=True)
class ReadTraffic:
    """Line-granular read accesses within one decode window."""

    times: np.ndarray
    addresses: np.ndarray

    @property
    def count(self) -> int:
        return len(self.times)


class VideoDecoder:
    """Stateless helper bound to the decoder and video configuration."""

    def __init__(self, decoder: DecoderConfig, video: VideoConfig,
                 line_bytes: int = 64) -> None:
        self.decoder = decoder
        self.video = video
        self.line_bytes = line_bytes

    def decode_duration(self, frame: DecodedFrame, racing: bool) -> float:
        """Seconds the VD is busy with ``frame``."""
        return decode_time(frame, self.decoder, racing)

    def encoded_lines(self, frame: DecodedFrame) -> int:
        """Lines of encoded bitstream the VD streams in.

        The simulation stores content at a scaled resolution, so the
        encoded size (modelled at native 4K) is scaled down to keep all
        traffic streams in the same units.
        """
        scaled_bytes = frame.encoded_bytes / self.video.scale_to_native
        return max(1, int(round(scaled_bytes / self.line_bytes)))

    def reference_lines(self, frame: DecodedFrame) -> int:
        """Reference-read lines that *miss* the conventional VD cache."""
        if frame.frame_type is FrameType.I:
            return 0
        frame_lines = self.video.frame_bytes // self.line_bytes
        misses = (frame_lines * self.decoder.ref_read_fraction
                  * (1.0 - self.decoder.ref_cache_hit_rate))
        return int(round(misses))

    def read_traffic(
        self,
        frame: DecodedFrame,
        start: float,
        finish: float,
        encoded_base: int,
        reference_base: Optional[int],
        rng: np.random.Generator,
    ) -> ReadTraffic:
        """Encoded-stream and reference reads for one decode window.

        Encoded reads are sequential from ``encoded_base``; reference
        reads are short sequential runs at random offsets inside the
        reference frame buffer (motion-compensation windows).  Both are
        interleaved uniformly in time across ``[start, finish]``.
        """
        enc_n = self.encoded_lines(frame)
        enc_addrs = encoded_base + np.arange(enc_n, dtype=np.int64) * self.line_bytes

        ref_n = self.reference_lines(frame) if reference_base is not None else 0
        if ref_n:
            run = 8  # lines per motion-compensation window
            frame_lines = self.video.frame_bytes // self.line_bytes
            n_runs = -(-ref_n // run)  # ceil: last run is clipped below
            starts = rng.integers(0, max(1, frame_lines - run), size=n_runs)
            offsets = (starts[:, None] + np.arange(run)[None, :]).ravel()[:ref_n]
            ref_addrs = reference_base + offsets.astype(np.int64) * self.line_bytes
        else:
            ref_addrs = np.empty(0, dtype=np.int64)

        addresses = np.concatenate([enc_addrs, ref_addrs])
        # Interleave the two streams over the decode window with
        # randomized arrivals (order preserved within each stream), so
        # their bank sweeps do not phase-lock against other agents.
        times = np.empty(len(addresses), dtype=np.float64)
        times[:enc_n] = np.sort(rng.uniform(start, finish, size=enc_n))
        if len(ref_addrs):
            times[enc_n:] = np.sort(
                rng.uniform(start, finish, size=len(ref_addrs)))
        return ReadTraffic(times=times, addresses=addresses)

