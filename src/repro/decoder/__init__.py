"""Hardware video decoder (VD): timing, power states, and traffic."""

from .power import PowerState, PowerTracker, SleepDecision, plan_slack
from .timing import decode_cycles, decode_time
from .vd import VideoDecoder
from .vdcache import CacheStudyResult, vd_cache_study

__all__ = [
    "PowerState",
    "PowerTracker",
    "SleepDecision",
    "plan_slack",
    "decode_cycles",
    "decode_time",
    "VideoDecoder",
    "CacheStudyResult",
    "vd_cache_study",
]
