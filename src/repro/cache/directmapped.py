"""Direct-mapped cache, used for the paper's 16 KB display cache.

The display cache is indexed "by any pointer" (Sec. 5.1): the key is a
line-aligned memory address, the value is the 64-byte line.  We store
the line address as the tag and let the caller keep data elsewhere —
the simulator only needs hit/miss behaviour.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import CacheError
from .base import AccessResult, CacheStats


class DirectMappedCache:
    """A direct-mapped cache of ``lines`` entries keyed by line index."""

    def __init__(self, lines: int) -> None:
        if lines <= 0 or lines & (lines - 1):
            raise CacheError(f"line count must be a positive power of two: {lines}")
        self.lines = lines
        self._mask = lines - 1
        self._tags: List[Optional[int]] = [None] * lines
        self.stats = CacheStats()

    @classmethod
    def from_bytes(cls, capacity_bytes: int, line_bytes: int) -> "DirectMappedCache":
        """Build from a capacity (e.g. 16 KiB of 64-byte lines)."""
        if capacity_bytes % line_bytes:
            raise CacheError("capacity must be a whole number of lines")
        return cls(capacity_bytes // line_bytes)

    def access(self, line_key: int) -> AccessResult:
        """Probe ``line_key`` (a line-granular address); fill on miss."""
        slot = line_key & self._mask
        if self._tags[slot] == line_key:
            self.stats.record(AccessResult.HIT)
            return AccessResult.HIT
        if self._tags[slot] is not None:
            self.stats.evictions += 1
        self._tags[slot] = line_key
        self.stats.insertions += 1
        self.stats.record(AccessResult.MISS)
        return AccessResult.MISS

    def __contains__(self, line_key: int) -> bool:
        return self._tags[line_key & self._mask] == line_key

    def clear(self) -> None:
        self._tags = [None] * self.lines
