"""Generic SRAM cache models shared by the VD cache, MACH, and the
display cache."""

from .base import AccessResult, CacheStats
from .directmapped import DirectMappedCache
from .replacement import FifoPolicy, LruPolicy, RandomPolicy, make_policy
from .setassoc import SetAssociativeCache

__all__ = [
    "AccessResult",
    "CacheStats",
    "DirectMappedCache",
    "FifoPolicy",
    "LruPolicy",
    "RandomPolicy",
    "make_policy",
    "SetAssociativeCache",
]
