"""Shared cache primitives: access results and hit/miss statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class AccessResult(Enum):
    """Outcome of a cache access."""

    HIT = "hit"
    MISS = "miss"

    @property
    def is_hit(self) -> bool:
        return self is AccessResult.HIT


@dataclass
class CacheStats:
    """Running hit/miss/eviction counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    insertions: int = 0

    def record(self, result: AccessResult) -> None:
        if result.is_hit:
            self.hits += 1
        else:
            self.misses += 1

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Combine counters from another cache (e.g. across MACH ring)."""
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            insertions=self.insertions + other.insertions,
        )

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.insertions = 0


@dataclass
class Totals:
    """Helper for aggregating stats across many caches."""

    stats: CacheStats = field(default_factory=CacheStats)

    def add(self, other: CacheStats) -> None:
        self.stats = self.stats.merge(other)
