"""Replacement policies for the set-associative cache model.

Each policy manages the recency/ordering metadata of a single cache
set.  The cache calls :meth:`on_hit`, :meth:`on_insert`, and
:meth:`victim`; policies never see tags, only way indices, so the same
implementations serve the VD cache, MACH, and the MACH buffer.
"""

from __future__ import annotations

from typing import List, Protocol

import numpy as np

from ..errors import CacheError


class ReplacementPolicy(Protocol):
    """Per-set replacement metadata."""

    def on_hit(self, way: int) -> None:
        """An existing line in ``way`` was accessed."""

    def on_insert(self, way: int) -> None:
        """A new line was installed in ``way``."""

    def victim(self, occupied: List[bool]) -> int:
        """Choose the way to evict (all ways occupied)."""


class LruPolicy:
    """Least-recently-used, tracked as an explicit recency list.

    The list orders way indices from most- to least-recently used.
    """

    def __init__(self, ways: int) -> None:
        self._order: List[int] = []
        self._ways = ways

    def on_hit(self, way: int) -> None:
        self._order.remove(way)
        self._order.insert(0, way)

    def on_insert(self, way: int) -> None:
        if way in self._order:
            self._order.remove(way)
        self._order.insert(0, way)

    def victim(self, occupied: List[bool]) -> int:
        return self._order[-1]


class FifoPolicy:
    """First-in-first-out: eviction order equals insertion order."""

    def __init__(self, ways: int) -> None:
        self._queue: List[int] = []
        self._ways = ways

    def on_hit(self, way: int) -> None:
        pass  # hits do not affect FIFO ordering

    def on_insert(self, way: int) -> None:
        if way in self._queue:
            self._queue.remove(way)
        self._queue.append(way)

    def victim(self, occupied: List[bool]) -> int:
        return self._queue[0]


class RandomPolicy:
    """Uniform random eviction with a private, seeded RNG.

    Uses :class:`np.random.Generator` like every other seeded stream
    in the tree (stdlib ``random.Random`` draws from a different,
    unrelated sequence and was the lone style outlier here).
    """

    def __init__(self, ways: int, seed: int = 0) -> None:
        self._ways = ways
        self._rng = np.random.default_rng(seed)

    def on_hit(self, way: int) -> None:
        pass

    def on_insert(self, way: int) -> None:
        pass

    def victim(self, occupied: List[bool]) -> int:
        return int(self._rng.integers(self._ways))


def make_policy(name: str, ways: int, seed: int = 0) -> ReplacementPolicy:
    """Instantiate a replacement policy by name ('lru'/'fifo'/'random')."""
    if name == "lru":
        return LruPolicy(ways)
    if name == "fifo":
        return FifoPolicy(ways)
    if name == "random":
        return RandomPolicy(ways, seed=seed)
    raise CacheError(f"unknown replacement policy: {name!r}")
