"""Set-associative key-value cache.

Used three ways in this reproduction:

* as the conventional VD data cache (keys are line addresses);
* as one MACH (keys are digests, values are frame-buffer pointers);
* as the MACH buffer at the DC (keys are digests, values are blocks).

Keys are arbitrary ints; the set index is taken from the key's low
bits, matching the paper's choice of indexing MACH with the low 6 bits
of the CRC32 digest (Sec. 4.4).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from ..errors import CacheError
from .base import AccessResult, CacheStats
from .replacement import ReplacementPolicy, make_policy


class _CacheSet:
    """One set: parallel tag/value arrays plus a replacement policy."""

    __slots__ = ("tags", "values", "policy")

    def __init__(self, ways: int, policy: ReplacementPolicy) -> None:
        self.tags: List[Optional[int]] = [None] * ways
        self.values: List[Any] = [None] * ways
        self.policy = policy

    def find(self, tag: int) -> int:
        """Way holding ``tag``, or -1."""
        for way, existing in enumerate(self.tags):
            if existing == tag:
                return way
        return -1

    def free_way(self) -> int:
        """An empty way, or -1 if the set is full."""
        for way, existing in enumerate(self.tags):
            if existing is None:
                return way
        return -1


class SetAssociativeCache:
    """A set-associative cache of ``sets * ways`` entries.

    ``index_bits`` low bits of the key select the set; the rest is the
    tag.  Values ride along with tags (this is a key-value store, as
    MACH needs, not just a presence structure).
    """

    def __init__(self, sets: int, ways: int, policy: str = "lru",
                 seed: int = 0) -> None:
        if sets <= 0 or sets & (sets - 1):
            raise CacheError(f"set count must be a positive power of two: {sets}")
        if ways <= 0:
            raise CacheError(f"way count must be positive: {ways}")
        self.sets = sets
        self.ways = ways
        self.policy_name = policy
        self._index_mask = sets - 1
        self._index_bits = sets.bit_length() - 1
        self._sets = [
            _CacheSet(ways, make_policy(policy, ways, seed=seed + i))
            for i in range(sets)
        ]
        self.stats = CacheStats()

    # -- core operations ------------------------------------------------

    def _locate(self, key: int) -> Tuple[_CacheSet, int]:
        cache_set = self._sets[key & self._index_mask]
        tag = key >> self._index_bits
        return cache_set, tag

    def lookup(self, key: int) -> Tuple[AccessResult, Any]:
        """Probe for ``key``; returns (result, value-or-None)."""
        cache_set, tag = self._locate(key)
        way = cache_set.find(tag)
        if way >= 0:
            cache_set.policy.on_hit(way)
            self.stats.record(AccessResult.HIT)
            return AccessResult.HIT, cache_set.values[way]
        self.stats.record(AccessResult.MISS)
        return AccessResult.MISS, None

    def peek(self, key: int) -> Any:
        """Non-intrusive probe: no stats, no recency update."""
        cache_set, tag = self._locate(key)
        way = cache_set.find(tag)
        return cache_set.values[way] if way >= 0 else None

    def insert(self, key: int, value: Any) -> Optional[Tuple[int, Any]]:
        """Install ``key -> value``; returns the evicted (key, value) if any.

        Inserting an existing key updates its value in place.
        """
        cache_set, tag = self._locate(key)
        way = cache_set.find(tag)
        evicted = None
        if way < 0:
            way = cache_set.free_way()
            if way < 0:
                way = cache_set.policy.victim([True] * self.ways)
                old_tag = cache_set.tags[way]
                assert old_tag is not None
                evicted_key = (old_tag << self._index_bits) | (
                    key & self._index_mask)
                evicted = (evicted_key, cache_set.values[way])
                self.stats.evictions += 1
            cache_set.tags[way] = tag
            self.stats.insertions += 1
        cache_set.values[way] = value
        cache_set.policy.on_insert(way)
        return evicted

    def access(self, key: int, value: Any = True) -> AccessResult:
        """lookup-then-insert-on-miss, the common cache idiom."""
        result, _ = self.lookup(key)
        if not result.is_hit:
            self.insert(key, value)
        return result

    # -- introspection ---------------------------------------------------

    def __contains__(self, key: int) -> bool:
        return self.peek(key) is not None

    def __len__(self) -> int:
        return sum(
            1 for s in self._sets for tag in s.tags if tag is not None)

    @property
    def capacity(self) -> int:
        return self.sets * self.ways

    def items(self) -> Iterator[Tuple[int, Any]]:
        """Iterate (key, value) over all resident entries."""
        for index, cache_set in enumerate(self._sets):
            for tag, value in zip(cache_set.tags, cache_set.values):
                if tag is not None:
                    yield (tag << self._index_bits) | index, value

    def clear(self) -> None:
        for i, _cache_set in enumerate(self._sets):
            self._sets[i] = _CacheSet(
                self.ways, make_policy(self.policy_name, self.ways, seed=i))
