"""Lint engine: two-phase whole-program analysis.

**Phase 1 — per-file analysis** (cacheable, parallelizable): each file
is parsed once (stdlib :mod:`ast` + :mod:`tokenize`, no third-party
dependencies), every *file-scope* rule runs over it, and
:mod:`repro.lint.symbols` extracts a module summary — call edges,
inferred return dimensions, taint sources, serialization surface, and
the semantic checks that cannot be decided without other files.  The
product depends only on that file's bytes, so it is cached by content
fingerprint (:mod:`repro.lint.cache`) and can be computed for many
files in parallel.

**Phase 2 — whole-program link** (always re-runs, cheap): the
summaries are linked into a :class:`~repro.lint.callgraph
.ProjectContext` and every *project-scope* rule (``UD``/``DT``/``RT``
families) runs over it.  Because the link re-runs from the same
summaries either way, a warm cached run produces a bit-identical
finding set to a cold one.

Findings then pass through two escape hatches:

* **inline suppressions** — ``# repro-lint: disable=D001 <reason>`` on
  the flagged line (or ``disable-next-line=`` on the line above, or
  ``disable-file=`` anywhere for module-wide scope).  A suppression
  *must* carry a justification after the rule list; a bare one is
  itself a violation (``S001``), which is how "every suppression is
  justified" stays mechanically true.
* **a baseline** (:mod:`repro.lint.baseline`) — pre-existing findings
  acknowledged in bulk, fingerprinted by (path, rule, source text) so
  they survive line drift but die with the offending code.
"""

from __future__ import annotations

import ast
import io
import json
import os
import re
import time
import tokenize
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    TYPE_CHECKING,
)

from ..errors import LintError
from ..units import to_ms

if TYPE_CHECKING:  # pragma: no cover — runtime import lives in lint_paths
    from .baseline import Baseline
from .registry import Rule, all_rules, file_rules, get_rule, \
    project_rules, rule

# The S-family is emitted by the engine itself while processing
# suppression directives; registering the ids here keeps --list-rules,
# --select, and the unknown-rule check honest about them.
rule("S001", "unjustified-suppression", "suppression",
     "every suppression comment carries a justification")(lambda ctx: ())
rule("S002", "unknown-suppressed-rule", "suppression",
     "suppression comments only name registered rules")(lambda ctx: ())

#: Matches one suppression directive inside a comment.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable|disable-next-line|disable-file)"
    r"\s*=\s*(?P<rules>[A-Za-z0-9_,\s]+?)"
    r"(?:\s+(?P<reason>\S.*))?$")

#: File-scope suppressions apply to every line of the module.
_FILE_SCOPE = 0


def _as_int(value: object) -> int:
    return value if isinstance(value, int) else 0


def _as_float(value: object) -> float:
    return float(value) if isinstance(value, (int, float)) else 0.0


@dataclass(frozen=True)
class Violation:
    """One finding: a rule fired at a source location."""

    path: str  # posix path as reported (repo-relative when possible)
    line: int  # 1-based
    col: int  # 0-based
    rule_id: str
    message: str
    context: str  # stripped source line, for baselines and humans

    def fingerprint(self) -> Tuple[str, str, str]:
        """Line-number-free identity used by the baseline."""
        return (self.path, self.rule_id, self.context)

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"{self.rule_id} {self.message}")


@dataclass
class ModuleContext:
    """Everything a file-scope rule sees about one file."""

    path: str  # as reported in violations
    module: str  # dotted module name, e.g. "repro.core.mach"
    tree: ast.Module
    lines: List[str]  # raw source lines (no trailing newlines)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def statement_comment(self, node: ast.AST) -> str:
        """Concatenated ``#`` comment text on the node's physical lines.

        Naive (string-level) on purpose: rules use this to check for
        unit-doc comments like ``# J per round trip``, where a false
        positive inside a string literal is harmless.
        """
        start = getattr(node, "lineno", 0)
        end = getattr(node, "end_lineno", start) or start
        parts = []
        for lineno in range(start, end + 1):
            text = self.line_text(lineno)
            if "#" in text:
                parts.append(text.split("#", 1)[1])
        return " ".join(parts)


@dataclass
class _Suppression:
    """One parsed directive, tracked so misuse is itself reportable."""

    line: int  # line the directive applies to (0 = whole file)
    comment_line: int  # line the comment physically sits on
    rule_ids: Tuple[str, ...]
    reason: str


@dataclass
class LintReport:
    """The outcome of one lint run."""

    violations: List[Violation] = field(default_factory=list)
    files_checked: int = 0
    baselined: int = 0  # findings absorbed by the baseline
    suppressed: int = 0  # findings absorbed by inline directives
    elapsed_seconds: float = 0.0  # s, wall time of the whole run
    cache_hits: int = 0  # files served from the incremental cache
    cache_misses: int = 0  # files analyzed from scratch

    @property
    def ok(self) -> bool:
        return not self.violations

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule_id] = counts.get(violation.rule_id, 0) + 1
        return dict(sorted(counts.items()))

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "baselined": self.baselined,
            "suppressed": self.suppressed,
            "elapsed_seconds": self.elapsed_seconds,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "counts": self.counts_by_rule(),
            "violations": [
                {"path": v.path, "line": v.line, "col": v.col,
                 "rule": v.rule_id, "message": v.message,
                 "context": v.context}
                for v in self.violations
            ],
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, object]) -> "LintReport":
        """Inverse of :meth:`to_jsonable` (summary fields only — the
        CI artifact reader rebuilds reports from JSON)."""
        report = cls(files_checked=_as_int(data.get("files_checked", 0)),
                     baselined=_as_int(data.get("baselined", 0)),
                     suppressed=_as_int(data.get("suppressed", 0)),
                     elapsed_seconds=_as_float(
                         data.get("elapsed_seconds", 0.0)),
                     cache_hits=_as_int(data.get("cache_hits", 0)),
                     cache_misses=_as_int(data.get("cache_misses", 0)))
        violations = data.get("violations", [])
        if isinstance(violations, list):
            for entry in violations:
                report.violations.append(Violation(
                    path=entry["path"], line=entry["line"],
                    col=entry["col"], rule_id=entry["rule"],
                    message=entry["message"],
                    context=entry.get("context", "")))
        return report

    def render_text(self) -> str:
        lines = [violation.render() for violation in self.violations]
        counts = self.counts_by_rule()
        summary = (f"{len(self.violations)} violation(s) across "
                   f"{self.files_checked} file(s)"
                   + (f"; {self.suppressed} suppressed inline"
                      if self.suppressed else "")
                   + (f"; {self.baselined} baselined"
                      if self.baselined else ""))
        if counts:
            summary += "  [" + ", ".join(
                f"{rule_id}: {n}" for rule_id, n in counts.items()) + "]"
        lines.append(summary)
        if self.elapsed_seconds > 0.0:
            cached = ""
            if self.cache_hits or self.cache_misses:
                cached = (f" ({self.cache_hits} cached, "
                          f"{self.cache_misses} analyzed)")
            lines.append(f"analysis time: "
                         f"{to_ms(self.elapsed_seconds):.1f} ms"
                         + cached)
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(self.to_jsonable(), indent=2, sort_keys=True)


def _parse_suppressions(source: str, path: str) -> List[_Suppression]:
    """Extract every ``repro-lint:`` directive from real COMMENT tokens."""
    directives: List[_Suppression] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            if "repro-lint" not in token.string:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                raise LintError(
                    f"{path}:{token.start[0]}: malformed repro-lint "
                    f"directive: {token.string.strip()!r}")
            scope = match.group("scope")
            comment_line = token.start[0]
            if scope == "disable":
                target = comment_line
            elif scope == "disable-next-line":
                target = comment_line + 1
            else:  # disable-file
                target = _FILE_SCOPE
            rule_ids = tuple(part.strip().upper()
                             for part in match.group("rules").split(",")
                             if part.strip())
            directives.append(_Suppression(
                line=target, comment_line=comment_line,
                rule_ids=rule_ids, reason=match.group("reason") or ""))
    except tokenize.TokenError as exc:
        raise LintError(f"{path}: could not tokenize: {exc}") from exc
    return directives


def _module_name_for(path: str) -> str:
    """Best-effort dotted module name from a file path."""
    normalized = path.replace(os.sep, "/")
    marker = "/repro/"
    stem = normalized[:-3] if normalized.endswith(".py") else normalized
    if stem.endswith("/__init__"):
        stem = stem[: -len("/__init__")]
    index = stem.rfind(marker)
    if index >= 0:
        return "repro." + stem[index + len(marker):].replace("/", ".")
    if stem.endswith("/repro") or stem == "repro":
        return "repro"
    return stem.rsplit("/", 1)[-1]


# --------------------------------------------------------------------------
# Phase 1: per-file analysis
# --------------------------------------------------------------------------


def _suppression_maps(directives: List[_Suppression]
                      ) -> Dict[str, Any]:
    """JSON-friendly (line -> rules, file-wide rules) maps, so link-time
    findings can honor inline directives without re-reading the file."""
    by_line: Dict[str, List[str]] = {}
    file_wide: Set[str] = set()
    for directive in directives:
        if directive.line == _FILE_SCOPE:
            file_wide.update(directive.rule_ids)
        else:
            bucket = by_line.setdefault(str(directive.line), [])
            for rule_id in directive.rule_ids:
                if rule_id not in bucket:
                    bucket.append(rule_id)
    return {"lines": by_line, "file": sorted(file_wide)}


def analyze_file(source: str, path: str, module: Optional[str] = None
                 ) -> Dict[str, Any]:
    """Phase 1 for one file: file-rule violations (post-suppression),
    the module summary, and the suppression maps — a plain-JSON dict,
    which is exactly what the incremental cache stores."""
    from .symbols import extract_summary  # deferred: symbols imports us

    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintError(f"{path}: cannot parse: {exc}") from exc
    ctx = ModuleContext(path=path,
                        module=module or _module_name_for(path),
                        tree=tree,
                        lines=source.splitlines())

    raw: List[Violation] = []
    for lint_rule in file_rules():
        for line, col, message in lint_rule.run(ctx):
            raw.append(Violation(path=path, line=line, col=col,
                                 rule_id=lint_rule.id, message=message,
                                 context=ctx.line_text(line)))

    directives = _parse_suppressions(source, path)
    kept = _apply_suppressions(raw, directives, ctx)
    suppressed = len(raw) - sum(1 for v in kept if v.rule_id not in
                                ("S001", "S002"))
    return {
        "violations": [
            {"line": v.line, "col": v.col, "rule": v.rule_id,
             "message": v.message, "context": v.context}
            for v in kept
        ],
        "suppressed": suppressed,
        "summary": extract_summary(tree, ctx.module, ctx.lines),
        "suppressions": _suppression_maps(directives),
    }


def _analyze_worker(task: Tuple[str, str, Optional[str]]
                    ) -> Tuple[str, Dict[str, Any]]:
    """Process-pool entry point for :func:`analyze_file`."""
    import repro.lint  # noqa: F401 — registers every rule in the worker

    path, source, module = task
    return path, analyze_file(source, path, module)


def _apply_suppressions(raw: List[Violation],
                        directives: List[_Suppression],
                        ctx: ModuleContext) -> List[Violation]:
    by_line: Dict[int, Set[str]] = {}
    for directive in directives:
        by_line.setdefault(directive.line, set()).update(directive.rule_ids)
    file_wide = by_line.get(_FILE_SCOPE, set())

    kept: List[Violation] = []
    for violation in raw:
        applicable = by_line.get(violation.line, set()) | file_wide
        if violation.rule_id not in applicable:
            kept.append(violation)

    # The directives themselves are checked: every suppression must
    # name known rules (S002) and carry a justification (S001).
    known = {lint_rule.id for lint_rule in all_rules()}
    for directive in directives:
        for rule_id in directive.rule_ids:
            if rule_id not in known:
                kept.append(Violation(
                    path=ctx.path, line=directive.comment_line, col=0,
                    rule_id="S002",
                    message=f"suppression names unknown rule {rule_id!r}",
                    context=ctx.line_text(directive.comment_line)))
        if not directive.reason.strip():
            kept.append(Violation(
                path=ctx.path, line=directive.comment_line, col=0,
                rule_id="S001",
                message="suppression without justification — say *why* "
                        "the invariant does not apply here",
                context=ctx.line_text(directive.comment_line)))
    kept.sort(key=lambda v: (v.line, v.col, v.rule_id))
    return kept


# --------------------------------------------------------------------------
# Phase 2: whole-program link
# --------------------------------------------------------------------------


def _link_project(entries: Dict[str, Dict[str, Any]]
                  ) -> Tuple[List[Violation], int]:
    """Run every project-scope rule over the linked summaries.

    Returns (kept violations, count suppressed by inline directives).
    """
    from .callgraph import ProjectContext

    summaries = {path: entry["summary"] for path, entry in entries.items()}
    project = ProjectContext(summaries)
    kept: List[Violation] = []
    suppressed = 0
    for lint_rule in project_rules():
        for path, line, col, message, text in lint_rule.run_project(project):
            maps = entries[path].get("suppressions",
                                     {"lines": {}, "file": []})
            applicable = set(maps["lines"].get(str(line), []))
            applicable.update(maps["file"])
            if lint_rule.id in applicable:
                suppressed += 1
                continue
            kept.append(Violation(path=path, line=line, col=col,
                                  rule_id=lint_rule.id, message=message,
                                  context=text))
    return kept, suppressed


def _entry_violations(path: str, entry: Dict[str, Any]) -> List[Violation]:
    return [Violation(path=path, line=v["line"], col=v["col"],
                      rule_id=v["rule"], message=v["message"],
                      context=v.get("context", ""))
            for v in entry.get("violations", [])]


def _filter_select(violations: List[Violation],
                   select: Optional[Sequence[str]]) -> List[Violation]:
    if select is None:
        return violations
    wanted = set()
    for rule_id in select:
        get_rule(rule_id)  # unknown ids are a caller error, as before
        wanted.add(rule_id)
    return [v for v in violations if v.rule_id in wanted]


def lint_source(source: str, path: str = "<memory>",
                module: Optional[str] = None,
                select: Optional[Sequence[str]] = None) -> List[Violation]:
    """Lint one in-memory module through the *full* pipeline — file
    rules plus the project passes linked over this single module.

    Returns the violations that survive inline suppressions (baseline
    filtering is the caller's concern).  ``select`` restricts the
    reported rule ids; the analysis itself always runs everything, so
    selection never changes what any rule could see.
    """
    entry = analyze_file(source, path=path, module=module)
    violations = _entry_violations(path, entry)
    project_violations, _ = _link_project({path: entry})
    violations.extend(project_violations)
    violations.sort(key=lambda v: (v.line, v.col, v.rule_id))
    return _filter_select(violations, select)


# --------------------------------------------------------------------------
# File discovery and the driver
# --------------------------------------------------------------------------


def _iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    for path in paths:
        if os.path.isfile(path):
            yield path
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [d for d in dirnames
                               if d not in ("__pycache__", ".git")]
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        yield os.path.join(dirpath, filename)
        else:
            raise LintError(f"no such lint target: {path!r}")


def _display_path(path: str) -> str:
    """Repo-relative posix path when possible (stable baselines)."""
    absolute = os.path.abspath(path)
    cwd = os.getcwd()
    if absolute.startswith(cwd + os.sep):
        absolute = absolute[len(cwd) + 1:]
    return absolute.replace(os.sep, "/")


def default_lint_root() -> str:
    """The installed ``repro`` package directory — what ``repro lint``
    checks when no paths are given."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def lint_paths(paths: Optional[Sequence[str]] = None,
               baseline: Optional["Baseline"] = None,
               select: Optional[Sequence[str]] = None,
               cache_path: Optional[str] = None,
               jobs: Optional[int] = None) -> LintReport:
    """Lint files/directories and return a filtered :class:`LintReport`.

    ``cache_path`` enables the incremental cache: per-file phase-1
    results keyed by content fingerprint, with phase 2 always re-run
    (warm runs are bit-identical to cold ones).  ``jobs`` > 1 analyzes
    uncached files in that many worker processes.
    """
    from .baseline import Baseline  # local import: baseline imports us
    from .cache import LintCache, file_fingerprint

    # Tooling self-timing for the report's analysis-time line — this is
    # host wall time, never simulated time.
    started = time.perf_counter()  # repro-lint: disable=D002 lint-report timing is host tooling, not model time

    targets = list(paths) if paths else [default_lint_root()]
    report = LintReport()

    sources: Dict[str, Tuple[str, str]] = {}  # display -> (source, module)
    for filename in _iter_python_files(targets):
        try:
            with open(filename, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            raise LintError(f"cannot read {filename!r}: {exc}") from exc
        display = _display_path(filename)
        sources[display] = (source, _module_name_for(display))

    cache = LintCache.load(cache_path)
    entries: Dict[str, Dict[str, Any]] = {}
    pending: List[Tuple[str, str, Optional[str]]] = []
    fingerprints: Dict[str, str] = {}
    for display, (source, module) in sources.items():
        fingerprint = file_fingerprint(source)
        fingerprints[display] = fingerprint
        cached = cache.get(display, fingerprint) if cache_path else None
        if cached is not None:
            entries[display] = cached
        else:
            pending.append((display, source, module))

    if jobs is not None and jobs > 1 and len(pending) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            for display, entry in pool.map(_analyze_worker, pending,
                                           chunksize=4):
                entries[display] = entry
    else:
        for display, source, module in pending:
            entries[display] = analyze_file(source, display, module)

    if cache_path is not None:
        for display, _source, _module in pending:
            cache.put(display, fingerprints[display], entries[display])
        # Drop entries for files that no longer exist in the target set.
        cache.entries = {key: value for key, value in cache.entries.items()
                         if key in sources}
        cache.save(cache_path)
        report.cache_hits = cache.hits
        report.cache_misses = cache.misses

    all_violations: List[Violation] = []
    for display in sorted(entries):
        entry = entries[display]
        all_violations.extend(_entry_violations(display, entry))
        report.suppressed += entry.get("suppressed", 0)
        report.files_checked += 1

    project_violations, project_suppressed = _link_project(entries)
    all_violations.extend(project_violations)
    report.suppressed += project_suppressed
    all_violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))

    all_violations = _filter_select(all_violations, select)
    if baseline is None:
        baseline = Baseline.empty()
    kept, absorbed = baseline.filter(all_violations)
    report.violations = kept
    report.baselined = absorbed
    report.elapsed_seconds = time.perf_counter() - started  # repro-lint: disable=D002 lint-report timing is host tooling, not model time
    return report
