"""Baseline files: pre-existing findings acknowledged in bulk.

A baseline entry fingerprints a finding by ``(path, rule, context)``
— the stripped source text of the flagged line — plus a count, so it
survives unrelated edits moving the line but stops matching the moment
the offending code itself changes.  The tier-1 suite lints the tree
with an *empty* baseline; a non-empty one is a deliberate, reviewable
debt list for large refactors, not a dumping ground.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..errors import LintError
from .engine import Violation

_BASELINE_VERSION = 1

#: Counter key: (path, rule id, stripped source line).
_Key = Tuple[str, str, str]


@dataclass
class Baseline:
    """A multiset of acknowledged finding fingerprints."""

    entries: Dict[_Key, int] = field(default_factory=dict)

    @classmethod
    def empty(cls) -> "Baseline":
        return cls()

    @classmethod
    def from_violations(cls, violations: Sequence[Violation]) -> "Baseline":
        entries: Dict[_Key, int] = {}
        for violation in violations:
            key = violation.fingerprint()
            entries[key] = entries.get(key, 0) + 1
        return cls(entries=entries)

    def __len__(self) -> int:
        return sum(self.entries.values())

    def filter(self, violations: Sequence[Violation]
               ) -> Tuple[List[Violation], int]:
        """Split ``violations`` into (new, absorbed-count).

        Each baseline entry absorbs at most ``count`` matching
        findings; anything beyond that is new and stays reported.
        """
        budget = dict(self.entries)
        kept: List[Violation] = []
        absorbed = 0
        for violation in violations:
            key = violation.fingerprint()
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                absorbed += 1
            else:
                kept.append(violation)
        return kept, absorbed

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "version": _BASELINE_VERSION,
            "entries": [
                {"path": path, "rule": rule_id, "context": context,
                 "count": count}
                for (path, rule_id, context), count in sorted(
                    self.entries.items())
            ],
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, object]) -> "Baseline":
        if data.get("version") != _BASELINE_VERSION:
            raise LintError(
                f"baseline has version {data.get('version')!r}, "
                f"expected {_BASELINE_VERSION}")
        entries: Dict[_Key, int] = {}
        raw_entries = data.get("entries", [])
        if not isinstance(raw_entries, list):
            raise LintError("baseline 'entries' must be a list")
        for entry in raw_entries:
            try:
                key = (entry["path"], entry["rule"], entry["context"])
                count = int(entry.get("count", 1))
            except (TypeError, KeyError) as exc:
                raise LintError(f"malformed baseline entry: {entry!r}"
                                ) from exc
            entries[key] = entries.get(key, 0) + count
        return cls(entries=entries)


def load_baseline(path: str) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline."""
    if not os.path.exists(path):
        return Baseline.empty()
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError) as exc:
        raise LintError(f"unreadable baseline {path!r}: {exc}") from exc
    return Baseline.from_jsonable(data)


def write_baseline(baseline: Baseline, path: str) -> None:
    """Atomically persist ``baseline`` (tmp + rename, like checkpoints)."""
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(baseline.to_jsonable(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
