"""Incremental analysis cache: fingerprint-keyed per-file results.

Phase 1 (parse + file rules + summary extraction) is the expensive
part of a lint run and depends only on one file's bytes, so its
product is cached keyed by the sha256 of those bytes.  Phase 2 (the
whole-program link) always re-runs — it is dict lookups over the
summaries and costs milliseconds — which is how a warm run stays
*bit-identical* to a cold one: the link sees exactly the same
summaries either way.

The cache is one JSON file.  Entries are invalidated by content
fingerprint, and the whole cache is invalidated by a config hash
covering the cache schema version and the registered rule set (ids,
scopes, severities), so adding or changing a rule never serves stale
findings.  A missing/corrupt/foreign cache file degrades to a cold
run — the cache is an accelerator, never a correctness input.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Optional

from .registry import all_rules

#: Bump when the per-file entry schema changes shape.
CACHE_VERSION = 1


def file_fingerprint(source: str) -> str:
    """Content fingerprint for one file's text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def config_hash() -> str:
    """Hash of everything that could change findings besides file
    content: schema version + the registered rule set."""
    payload = json.dumps(
        {"cache_version": CACHE_VERSION,
         "rules": [[r.id, r.scope, r.severity] for r in all_rules()]},
        sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class LintCache:
    """Per-file phase-1 results, keyed by display path + fingerprint."""

    def __init__(self, entries: Optional[Dict[str, Any]] = None) -> None:
        self.entries: Dict[str, Any] = entries or {}
        self.hits = 0
        self.misses = 0

    @classmethod
    def load(cls, path: Optional[str]) -> "LintCache":
        """Load a cache file; anything unusable is an empty cache."""
        if path is None or not os.path.exists(path):
            return cls()
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return cls()
        if not isinstance(data, dict) \
                or data.get("config") != config_hash() \
                or not isinstance(data.get("entries"), dict):
            return cls()
        return cls(entries=data["entries"])

    def get(self, path_key: str, fingerprint: str
            ) -> Optional[Dict[str, Any]]:
        entry = self.entries.get(path_key)
        if isinstance(entry, dict) \
                and entry.get("fingerprint") == fingerprint:
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def put(self, path_key: str, fingerprint: str,
            entry: Dict[str, Any]) -> None:
        stored = dict(entry)
        stored["fingerprint"] = fingerprint
        self.entries[path_key] = stored

    def save(self, path: str) -> None:
        """Atomic write (tmp + rename), like the baseline writer."""
        payload = {"config": config_hash(), "entries": self.entries}
        directory = os.path.dirname(os.path.abspath(path)) or "."
        os.makedirs(directory, exist_ok=True)
        descriptor, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=".lint-cache-", suffix=".tmp")
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp_path, path)
        except OSError:
            with contextlib.suppress(OSError):
                os.unlink(tmp_path)
            raise
