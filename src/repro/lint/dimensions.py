"""Unit-dimension inference (``UD`` rules): a lattice over quantities.

Every headline number in this repo is a physical quantity — joules,
seconds, bytes, hertz — flowing through race-to-sleep, MACH, and the
display-cache layers.  :mod:`repro.units` fixes the canonical scale
(J/s/W/bytes/Hz) and names every conversion, and rule ``U001`` keeps
magic factors out; this pass goes further and checks that quantities
of *different dimension or scale never meet* in arithmetic.

The abstract domain is a flat lattice of ``kind:scale`` points
(``energy:milli``, ``time:canonical``, ...) with ``unknown`` as top.
Facts are seeded from three places:

* calls to the :mod:`repro.units` helpers (``to_mj(x)`` produces
  ``energy:milli`` and *requires* ``energy:canonical`` in);
* multiplication/division by the named unit constants (``x * MS``
  converts ``time:milli`` to ``time:canonical``);
* naming conventions already policed by ``U002`` — ``*_seconds`` is
  canonical time, ``*_mj`` is milli energy, and so on.

Facts propagate through assignments, arithmetic (including the
physical products ``power x time -> energy`` and ``bytes / time ->
rate``), and — at link time, via the project call graph — through
call boundaries: a call site inherits the callee's inferred return
dimension, transitively resolved across modules.

Three rules come out of the analysis:

* ``UD101`` — dimension-mismatched arithmetic (``J + mJ``, ``s``
  compared against ``ms``, ``to_mj`` applied to an already-milli
  value);
* ``UD102`` — unconverted stores/returns: a value whose inferred
  dimension contradicts what the target's *name* claims
  (``stall_ms = <canonical seconds>``);
* ``UD103`` — unit-ambiguous public parameters: a quantity-named
  numeric parameter of a public function whose unit is stated nowhere
  (name, annotation, or docstring) — the call-boundary twin of
  ``U002``.
"""

from __future__ import annotations

import ast
import re
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
    TYPE_CHECKING,
)

from .asthelpers import constant_number
from .registry import RawProjectViolation, rule

if TYPE_CHECKING:  # pragma: no cover — import cycle guard only
    from .callgraph import ProjectContext

# --------------------------------------------------------------------------
# The dimension vocabulary
# --------------------------------------------------------------------------

#: A dimension point is encoded "kind:scale", e.g. "energy:milli".
Dim = str

_HUMAN = {
    "time:canonical": "s", "time:milli": "ms", "time:micro": "us",
    "time:nano": "ns",
    "energy:canonical": "J", "energy:milli": "mJ", "energy:micro": "uJ",
    "power:canonical": "W", "power:milli": "mW",
    "bytes:canonical": "bytes", "bytes:kibi": "KiB", "bytes:mebi": "MiB",
    "bytes:gibi": "GiB",
    "frequency:canonical": "Hz", "frequency:kilo": "kHz",
    "frequency:mega": "MHz", "frequency:giga": "GHz",
    "rate:canonical": "bytes/s", "rate:kilo": "kbit/s",
    "rate:mega": "Mbit/s",
}


def humanize(dim: Dim) -> str:
    """The unit symbol for a dimension point (for messages)."""
    return _HUMAN.get(dim, dim)


def _dim(kind: str, scale: str) -> Dim:
    return f"{kind}:{scale}"


def dim_kind(dim: Dim) -> str:
    return dim.split(":", 1)[0]


def dim_scale(dim: Dim) -> str:
    return dim.split(":", 1)[1]


#: Unit constants from repro.units, as (kind, scale) conversion factors.
#: ``x * MS`` reads "x is in ms; make it canonical"; ``x / MS`` reads
#: "x is canonical; express it in ms".  Identity constants (W, J,
#: SECOND) neither convert nor constrain.
UNIT_CONSTANTS: Dict[str, Tuple[str, str]] = {
    "NS": ("time", "nano"), "US": ("time", "micro"), "MS": ("time", "milli"),
    "MW": ("power", "milli"), "UJ": ("energy", "micro"),
    "MJ": ("energy", "milli"),
    "KIB": ("bytes", "kibi"), "MIB": ("bytes", "mebi"),
    "GIB": ("bytes", "gibi"),
    "KHZ": ("frequency", "kilo"), "MHZ": ("frequency", "mega"),
    "GHZ": ("frequency", "giga"),
    "KBPS": ("rate", "kilo"), "MBPS": ("rate", "mega"),
}

IDENTITY_CONSTANTS = {"SECOND", "W", "J"}

#: repro.units helper functions: name -> (input dim, output dim).
UNIT_HELPERS: Dict[str, Tuple[Dim, Dim]] = {
    "ns": (_dim("time", "nano"), _dim("time", "canonical")),
    "us": (_dim("time", "micro"), _dim("time", "canonical")),
    "ms": (_dim("time", "milli"), _dim("time", "canonical")),
    "mw": (_dim("power", "milli"), _dim("power", "canonical")),
    "mj": (_dim("energy", "milli"), _dim("energy", "canonical")),
    "kib": (_dim("bytes", "kibi"), _dim("bytes", "canonical")),
    "mib": (_dim("bytes", "mebi"), _dim("bytes", "canonical")),
    "mhz": (_dim("frequency", "mega"), _dim("frequency", "canonical")),
    "mbps": (_dim("rate", "mega"), _dim("rate", "canonical")),
    "to_ms": (_dim("time", "canonical"), _dim("time", "milli")),
    "to_mj": (_dim("energy", "canonical"), _dim("energy", "milli")),
    "to_mib": (_dim("bytes", "canonical"), _dim("bytes", "mebi")),
}

#: Name-convention claims: suffix -> dimension.  These mirror the
#: U002 conventions — a name that *states* its unit is believed.
_SUFFIX_CLAIMS: Tuple[Tuple[str, Dim], ...] = (
    ("_seconds", _dim("time", "canonical")),
    ("_time", _dim("time", "canonical")),
    ("_latency", _dim("time", "canonical")),
    ("_ms", _dim("time", "milli")),
    ("_us", _dim("time", "micro")),
    ("_ns", _dim("time", "nano")),
    ("_energy", _dim("energy", "canonical")),
    ("_joules", _dim("energy", "canonical")),
    ("_mj", _dim("energy", "milli")),
    ("_power", _dim("power", "canonical")),
    ("_watts", _dim("power", "canonical")),
    ("_mw", _dim("power", "milli")),
    ("_bytes", _dim("bytes", "canonical")),
    ("_kib", _dim("bytes", "kibi")),
    ("_mib", _dim("bytes", "mebi")),
    ("_hz", _dim("frequency", "canonical")),
    ("_mhz", _dim("frequency", "mega")),
    ("_ghz", _dim("frequency", "giga")),
    ("_mbps", _dim("rate", "mega")),
)

_EXACT_CLAIMS: Dict[str, Dim] = {
    "elapsed": _dim("time", "canonical"),
}

#: Names that are clearly dimensionless counts — dividing a quantity
#: by one of these preserves the quantity's dimension (J per frame is
#: still joules on the canonical scale).
_COUNT_RE = re.compile(r"^(n_|num_|count|total_count)|(_count|_frames|"
                       r"_blocks|_sessions|_jobs|_chunks|_bins|_lines)$"
                       r"|^(frames|blocks|n|k|size|capacity|denominator)$")

#: Physical products/quotients on canonical scales.
_PRODUCTS = {
    ("power", "time"): "energy",
    ("rate", "time"): "bytes",
}
_QUOTIENTS = {
    ("energy", "time"): "power",
    ("energy", "power"): "time",
    ("bytes", "time"): "rate",
    ("bytes", "rate"): "time",
}

#: UD103: the *ambiguous* quantity vocabularies (scale not in the name).
_AMBIGUOUS_SUFFIXES = ("_energy", "_power", "_time", "_latency")
_AMBIGUOUS_NAMES = {"power", "energy", "latency", "elapsed"}

#: A unit mention in a docstring (for UD103's documented-check).
_DOC_UNIT_RE = re.compile(
    r"(\b[JWs]\b|\bHz\b|\bm[JWs]\b|joule|watt|second|hertz|byte|"
    r"bytes/s|bits?/s|millis|bytes\b)")

#: Modules exempt from dimension checks: the conversion tables are
#: the *data* there, not quantities.
EXEMPT_MODULES = {"repro.units"}


def name_claim(name: str) -> Optional[Dim]:
    """The dimension a bare name claims via convention, if any."""
    if name in _EXACT_CLAIMS:
        return _EXACT_CLAIMS[name]
    for suffix, dim in _SUFFIX_CLAIMS:
        if name.endswith(suffix):
            return dim
    return None


def is_ambiguous_quantity_name(name: str) -> bool:
    """Does ``name`` claim a quantity without naming its unit?"""
    return (name in _AMBIGUOUS_NAMES
            or any(name.endswith(s) for s in _AMBIGUOUS_SUFFIXES))


def doc_mentions_unit(docstring: Optional[str], param: str) -> bool:
    """Does the docstring state a unit anywhere near ``param``?"""
    if not docstring:
        return False
    if param not in docstring:
        return False
    return bool(_DOC_UNIT_RE.search(docstring))


# --------------------------------------------------------------------------
# Symbolic dimension expressions (phase 1 -> link)
# --------------------------------------------------------------------------
#
# A DimExpr is either a concrete Dim ("energy:milli"), a symbolic
# reference to a callee's return dimension ("ret:<ref>"), or None
# (unknown / dimensionless).  Symbolic values are resolved at link
# time against the project function table.

DimExpr = Optional[str]


def is_symbolic(expr: DimExpr) -> bool:
    return expr is not None and expr.startswith("ret:")


def _concrete(expr: DimExpr) -> Optional[Dim]:
    if expr is None or is_symbolic(expr):
        return None
    return expr


class ModuleDimAnalysis:
    """Intraprocedural dimension inference over one module.

    Produces, into the module summary dict:

    * ``local`` findings — checks decidable without the call graph;
    * ``pending`` checks — involve a symbolic callee dimension and
      are evaluated at link time;
    * per-function ``return_dim`` facts for the project table.

    ``resolver(call)`` classifies call sites: ``("helper", name)`` for
    repro.units helpers, ``("ref", qualref)`` for project functions,
    ``("unit_const", NAME)`` never appears for calls, or ``None``.
    ``const_lookup(name_node)`` classifies Name/Attribute operands as
    unit constants.
    """

    def __init__(self, module: str, lines: List[str],
                 resolver: Callable[[ast.Call], Optional[Tuple[str, str]]],
                 const_lookup: Callable[[ast.AST], Optional[str]]) -> None:
        self.module = module
        self.lines = lines
        self.resolver = resolver
        self.const_lookup = const_lookup
        self.local: List[Dict[str, Any]] = []
        self.pending: List[Dict[str, Any]] = []

    # -- plumbing ----------------------------------------------------------

    def _text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def _emit(self, rule_id: str, node: ast.AST, message: str) -> None:
        self.local.append({
            "rule": rule_id, "line": node.lineno, "col": node.col_offset,
            "message": message, "text": self._text(node.lineno)})

    def _defer(self, node: ast.AST, kind: str, **extra: Any) -> None:
        record = {"kind": kind, "line": node.lineno,
                  "col": node.col_offset,
                  "text": self._text(node.lineno)}
        record.update(extra)
        self.pending.append(record)

    # -- expression evaluation --------------------------------------------

    def eval_expr(self, node: ast.AST, env: Dict[str, DimExpr]) -> DimExpr:
        """The inferred dimension of an expression (None = unknown)."""
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            return name_claim(node.id)
        if isinstance(node, ast.Attribute):
            return name_claim(node.attr)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node, env)
        if isinstance(node, ast.UnaryOp):
            return self.eval_expr(node.operand, env)
        if isinstance(node, ast.IfExp):
            a = self.eval_expr(node.body, env)
            b = self.eval_expr(node.orelse, env)
            return a if a == b else None
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.Compare):
            self._check_compare(node, env)
            return None
        if isinstance(node, ast.Starred):
            return None
        return None

    def _eval_call(self, node: ast.Call, env: Dict[str, DimExpr]) -> DimExpr:
        resolved = self.resolver(node)
        if resolved is not None:
            what, name = resolved
            if what == "helper":
                expected, produced = UNIT_HELPERS[name]
                if node.args:
                    actual = self.eval_expr(node.args[0], env)
                    self._check_helper_arg(node, name, expected, actual)
                return produced
            if what == "ref":
                return f"ret:{name}"
        # Transparent wrappers: dimension flows through the first arg.
        callee = node.func
        short = callee.attr if isinstance(callee, ast.Attribute) else (
            callee.id if isinstance(callee, ast.Name) else None)
        if short in ("float", "abs", "round", "float64") and node.args:
            return self.eval_expr(node.args[0], env)
        if short in ("min", "max", "maximum", "minimum", "clip",
                     "fmin", "fmax") and len(node.args) >= 2:
            dims = [self.eval_expr(arg, env) for arg in node.args]
            concrete = [d for d in dims if _concrete(d)]
            if len(set(concrete)) > 1:
                a, b = sorted(set(concrete))[:2]
                self._emit("UD101", node,
                           f"{short}() mixes {humanize(a)} with "
                           f"{humanize(b)} — convert one operand first")
            return concrete[0] if concrete else None
        return None

    def _check_helper_arg(self, node: ast.Call, helper: str,
                          expected: Dim, actual: DimExpr) -> None:
        concrete = _concrete(actual)
        if concrete is not None and concrete != expected:
            self._emit("UD101", node,
                       f"{helper}() expects {humanize(expected)} but its "
                       f"argument is {humanize(concrete)} — this "
                       "double-converts (or skips) a scale change")
        elif is_symbolic(actual):
            self._defer(node, "helper", helper=helper, expected=expected,
                        actual=actual)

    def _eval_binop(self, node: ast.BinOp, env: Dict[str, DimExpr]
                    ) -> DimExpr:
        left = self.eval_expr(node.left, env)
        right = self.eval_expr(node.right, env)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            return self._additive(node, "+" if isinstance(node.op, ast.Add)
                                  else "-", left, right)
        if isinstance(node.op, ast.Mult):
            return self._multiply(node, left, right, env)
        if isinstance(node.op, ast.Div):
            return self._divide(node, left, right, env)
        if isinstance(node.op, (ast.Mod, ast.FloorDiv)):
            return _concrete(left)
        return None

    def _additive(self, node: ast.AST, op: str, left: DimExpr,
                  right: DimExpr) -> DimExpr:
        lc, rc = _concrete(left), _concrete(right)
        if lc is not None and rc is not None:
            if lc != rc:
                self._emit("UD101", node,
                           f"'{op}' mixes {humanize(lc)} with "
                           f"{humanize(rc)} — convert to a common unit "
                           "via repro.units first")
                return None
            return lc
        if (is_symbolic(left) or is_symbolic(right)) and (
                lc is not None or rc is not None
                or (is_symbolic(left) and is_symbolic(right))):
            self._defer(node, "binop", op=op, left=left, right=right)
        return lc if lc is not None else rc

    def _unit_const(self, operand: ast.AST) -> Optional[Tuple[str, str]]:
        """(kind, scale) when the operand is a scaled unit constant."""
        name = self.const_lookup(operand)
        if name is None or name in IDENTITY_CONSTANTS:
            return None
        return UNIT_CONSTANTS.get(name)

    def _multiply(self, node: ast.BinOp, left: DimExpr, right: DimExpr,
                  env: Dict[str, DimExpr]) -> DimExpr:
        for operand, other_expr in ((node.right, left), (node.left, right)):
            const = self._unit_const(operand)
            if const is not None:
                kind, scale = const
                other = _concrete(other_expr)
                # "value-in-<scale> * CONST" makes it canonical.
                if other is None or other == _dim(kind, scale):
                    return _dim(kind, "canonical")
                return None
        lc, rc = _concrete(left), _concrete(right)
        if lc is not None and rc is not None:
            lk, rk = dim_kind(lc), dim_kind(rc)
            if (dim_scale(lc) == dim_scale(rc) == "canonical"):
                product = _PRODUCTS.get((lk, rk)) or _PRODUCTS.get((rk, lk))
                if product is not None:
                    return _dim(product, "canonical")
            return None
        known = lc if lc is not None else rc
        if known is not None:
            other_node = node.right if lc is not None else node.left
            if constant_number(other_node) is not None:
                return known  # scalar gain keeps the unit
        return None

    def _divide(self, node: ast.BinOp, left: DimExpr, right: DimExpr,
                env: Dict[str, DimExpr]) -> DimExpr:
        const = self._unit_const(node.right)
        lc, rc = _concrete(left), _concrete(right)
        if const is not None:
            kind, scale = const
            # "canonical / CONST" expresses the value on CONST's scale.
            if lc is None or lc == _dim(kind, "canonical"):
                return _dim(kind, scale)
            if lc == _dim(kind, scale):
                self._emit("UD101", node,
                           f"dividing a {humanize(lc)} value by the "
                           f"{humanize(_dim(kind, scale))} factor again — "
                           "it is already on that scale")
            return None
        if lc is not None and rc is not None:
            lk, rk = dim_kind(lc), dim_kind(rc)
            if dim_scale(lc) == dim_scale(rc) == "canonical":
                quotient = _QUOTIENTS.get((lk, rk))
                if quotient is not None:
                    return _dim(quotient, "canonical")
            if lc == rc:
                return None  # dimensionless ratio
            return None
        if lc is not None and self._is_countlike(node.right):
            return lc  # J per frame is still canonical joules
        return None

    def _is_countlike(self, node: ast.AST) -> bool:
        if constant_number(node) is not None and isinstance(
                getattr(node, "value", None), int):
            return True
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Call):
            func = node.func
            short = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None)
            return short == "len"
        return name is not None and bool(_COUNT_RE.search(name))

    def _check_compare(self, node: ast.Compare,
                       env: Dict[str, DimExpr]) -> None:
        operands = [node.left, *node.comparators]
        dims = [self.eval_expr(o, env) for o in operands]
        for left, right in zip(dims, dims[1:]):
            lc, rc = _concrete(left), _concrete(right)
            if lc is not None and rc is not None and lc != rc:
                self._emit("UD101", node,
                           f"comparison mixes {humanize(lc)} with "
                           f"{humanize(rc)} — convert to a common unit "
                           "first")
            elif (is_symbolic(left) or is_symbolic(right)) and (
                    lc is not None or rc is not None):
                self._defer(node, "binop", op="<>", left=left, right=right)

    # -- statements --------------------------------------------------------

    def _check_store(self, node: ast.AST, target: ast.AST,
                     value_dim: DimExpr) -> None:
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name is None:
            return
        claim = name_claim(name)
        if claim is None:
            return
        concrete = _concrete(value_dim)
        if concrete is not None and concrete != claim:
            self._emit("UD102", node,
                       f"{name!r} claims {humanize(claim)} but the "
                       f"assigned value is {humanize(concrete)} — "
                       "convert via repro.units or rename the target")
        elif is_symbolic(value_dim):
            self._defer(node, "store", target=name, expected=claim,
                        actual=value_dim)

    def analyze_function(self, func: ast.AST, fn_record: Dict[str, Any]
                         ) -> None:
        """Infer dimensions through one function body; fill the
        function record's ``return_dim``."""
        env: Dict[str, DimExpr] = {}
        for param in fn_record["params"]:
            claim = name_claim(param["name"])
            if claim is not None:
                env[param["name"]] = claim
        return_dims: List[DimExpr] = []
        claim = (None if fn_record["module_exempt"]
                 else name_claim(fn_record["name"]))
        for statement in _ordered_statements(func):
            self._analyze_statement(statement, env, return_dims, claim)
        concrete_returns = {d for d in return_dims if _concrete(d)}
        if len(concrete_returns) == 1:
            fn_record["return_dim"] = concrete_returns.pop()
        elif len(return_dims) == 1 and is_symbolic(return_dims[0]):
            fn_record["return_dim"] = return_dims[0]
        else:
            fn_record["return_dim"] = None

    def _analyze_statement(self, statement: ast.AST,
                           env: Dict[str, DimExpr],
                           return_dims: List[DimExpr],
                           return_claim: Optional[Dim]) -> None:
        if isinstance(statement, ast.Assign):
            value_dim = self.eval_expr(statement.value, env)
            for target in statement.targets:
                self._check_store(statement, target, value_dim)
                if isinstance(target, ast.Name):
                    env[target.id] = (value_dim if _concrete(value_dim)
                                      else (name_claim(target.id)
                                            if value_dim is None
                                            else value_dim))
        elif isinstance(statement, ast.AnnAssign) and statement.value:
            value_dim = self.eval_expr(statement.value, env)
            self._check_store(statement, statement.target, value_dim)
            if isinstance(statement.target, ast.Name) and (
                    _concrete(value_dim) or is_symbolic(value_dim)):
                env[statement.target.id] = value_dim
        elif isinstance(statement, ast.AugAssign):
            if isinstance(statement.op, (ast.Add, ast.Sub)):
                target_dim = self.eval_expr(statement.target, env)
                value_dim = self.eval_expr(statement.value, env)
                op = "+" if isinstance(statement.op, ast.Add) else "-"
                self._additive(statement, op, target_dim, value_dim)
        elif isinstance(statement, ast.Return) and statement.value:
            value_dim = self.eval_expr(statement.value, env)
            return_dims.append(value_dim)
            if return_claim is not None:
                concrete = _concrete(value_dim)
                if concrete is not None and concrete != return_claim:
                    self._emit(
                        "UD102", statement,
                        f"function name claims {humanize(return_claim)} "
                        f"but it returns {humanize(concrete)} — convert "
                        "via repro.units or rename")
                elif is_symbolic(value_dim):
                    self._defer(statement, "return",
                                expected=return_claim, actual=value_dim)
        elif isinstance(statement, (ast.Expr, ast.Assert)):
            value = (statement.value if isinstance(statement, ast.Expr)
                     else statement.test)
            self.eval_expr(value, env)
        elif isinstance(statement, (ast.If, ast.While)):
            self.eval_expr(statement.test, env)


def _ordered_statements(func: ast.AST) -> Iterator[ast.stmt]:
    """Statements of a function body in source order, descending into
    compound statements but *not* into nested function/class defs."""
    stack: List[ast.stmt] = list(reversed(getattr(func, "body", [])))
    while stack:
        statement = stack.pop()
        yield statement
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
            continue
        blocks: List[List[ast.stmt]] = []
        for attr in ("body", "orelse", "finalbody"):
            block = getattr(statement, attr, None)
            if block:
                blocks.append(block)
        for handler in getattr(statement, "handlers", []) or []:
            blocks.append(handler.body)
        for block in reversed(blocks):
            stack.extend(reversed(block))


# --------------------------------------------------------------------------
# Link-time evaluation (project scope)
# --------------------------------------------------------------------------


def evaluate_pending_dim(record: Dict[str, Any],
                         resolve: Callable[[str], Optional[Dim]]
                         ) -> Optional[Tuple[str, str]]:
    """Evaluate one deferred check once callee dims are resolvable.

    Returns ``(rule_id, message)`` when the check fires, else None.
    ``resolve`` maps a symbolic "ret:<ref>" to a concrete Dim or None.
    """

    def concrete(expr: DimExpr) -> Optional[Dim]:
        if expr is None:
            return None
        if is_symbolic(expr):
            return resolve(expr)
        return expr

    kind = record["kind"]
    if kind == "binop":
        left = concrete(record["left"])
        right = concrete(record["right"])
        if left is not None and right is not None and left != right:
            return ("UD101",
                    f"'{record['op']}' mixes {humanize(left)} with "
                    f"{humanize(right)} (via a call's return unit) — "
                    "convert to a common unit via repro.units first")
        return None
    if kind == "helper":
        actual = concrete(record["actual"])
        if actual is not None and actual != record["expected"]:
            return ("UD101",
                    f"{record['helper']}() expects "
                    f"{humanize(record['expected'])} but its argument "
                    f"resolves to {humanize(actual)} — this "
                    "double-converts (or skips) a scale change")
        return None
    if kind in ("store", "return"):
        actual = concrete(record["actual"])
        if actual is not None and actual != record["expected"]:
            target = (f"{record['target']!r}" if kind == "store"
                      else "the function's name")
            return ("UD102",
                    f"{target} claims {humanize(record['expected'])} but "
                    f"the value resolves to {humanize(actual)} — convert "
                    "via repro.units or rename")
        return None
    return None


def _findings(project: "ProjectContext", rule_id: str
              ) -> Iterator[RawProjectViolation]:
    yield from project.findings_for(rule_id)


@rule("UD101", "dimension-mismatched-arithmetic", "dimension",
      "no arithmetic or comparison across unit dimensions or scales",
      scope="project")
def dimension_mismatched_arithmetic(project: "ProjectContext"
                                    ) -> Iterator[RawProjectViolation]:
    return _findings(project, "UD101")


@rule("UD102", "unconverted-store-or-return", "dimension",
      "stores/returns match the unit their target's name claims",
      scope="project")
def unconverted_store_or_return(project: "ProjectContext"
                                ) -> Iterator[RawProjectViolation]:
    return _findings(project, "UD102")


@rule("UD103", "unit-ambiguous-public-parameter", "dimension",
      "quantity-named public parameters state their unit somewhere",
      scope="project", severity="warning")
def unit_ambiguous_public_parameter(project: "ProjectContext"
                                    ) -> Iterator[RawProjectViolation]:
    return _findings(project, "UD103")
