"""Whole-program link: the shared symbol table + call graph.

Phase 2 of the analysis.  Takes every module summary produced by
:mod:`repro.lint.symbols` (possibly straight from the incremental
cache) and links them into one :class:`ProjectContext`:

* a project-wide function table keyed by qualified reference
  (``repro.core.mach.classify``, ``repro.fleet.engine.CohortAggregate
  .merge``), with a unique-method fallback for ``~name`` references
  whose receiver type phase 1 could not see;
* transitive return-dimension resolution (with a cycle guard), so a
  deferred ``x + other_module.per_frame_mj(...)`` check can finally
  decide whether the scales match;
* the determinism taint closure: a function is taint-producing if its
  body holds a source or it (transitively) calls one;
* the sink table — serialized result/aggregate classes — against
  which the recorded sink writes are judged.

Linking is cheap by construction (dict lookups over plain JSON
summaries, no re-parsing), which is what makes the warm incremental
path fast: only changed files re-run phase 1; phase 2 always re-runs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from . import dimensions
from .registry import RawProjectViolation


class ProjectContext:
    """Linked view over all module summaries; what project rules see."""

    def __init__(self, summaries: Dict[str, Dict[str, Any]]) -> None:
        #: display path -> module summary (insertion order = sorted paths)
        self.summaries = dict(sorted(summaries.items()))
        self.functions: Dict[str, Dict[str, Any]] = {}
        self._fn_path: Dict[str, str] = {}
        self._method_index: Dict[str, List[str]] = {}
        self._plain_index: Dict[str, List[str]] = {}
        self._classes: Dict[str, Dict[str, Any]] = {}
        self._class_name_index: Dict[str, List[str]] = {}
        self.sinks: Set[str] = set()
        self.tainted: Dict[str, str] = {}
        self._dim_memo: Dict[str, Optional[str]] = {}
        self._link_findings: Dict[str, List[Dict[str, Any]]] = {}
        self._link()

    # -- table construction ------------------------------------------------

    def _link(self) -> None:
        for path, summary in self.summaries.items():
            for qualref, record in summary.get("functions", {}).items():
                self.functions[qualref] = record
                self._fn_path[qualref] = path
                short = record["name"]
                if record.get("class"):
                    self._method_index.setdefault(short, []).append(qualref)
                else:
                    self._plain_index.setdefault(short, []).append(qualref)
            for record in summary.get("classes", {}).values():
                qualref = record["qualref"]
                self._classes[qualref] = record
                short = qualref.rsplit(".", 1)[1]
                self._class_name_index.setdefault(short, []).append(qualref)
                if record.get("has_to_jsonable") and (
                        record.get("is_result")
                        or record.get("has_merge")):
                    self.sinks.add(qualref)
        self._close_taint()
        self._evaluate_pending_dims()
        self._evaluate_sink_writes()

    # -- reference resolution ----------------------------------------------

    def resolve_ref(self, ref: str) -> Optional[str]:
        """Canonical function qualref for a phase-1 reference, if it
        resolves unambiguously."""
        if ref.startswith("~"):
            candidates = self._method_index.get(ref[1:], [])
            return candidates[0] if len(candidates) == 1 else None
        if ref in self.functions:
            return ref
        # Re-exported name: unique top-level function of the same name.
        short = ref.rsplit(".", 1)[1]
        candidates = self._plain_index.get(short, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def resolve_class(self, ref: str) -> Optional[str]:
        if ref in self._classes:
            return ref
        short = ref.rsplit(".", 1)[1]
        candidates = self._class_name_index.get(short, [])
        return candidates[0] if len(candidates) == 1 else None

    # -- return-dimension resolution ---------------------------------------

    def return_dim(self, ref: str) -> Optional[str]:
        """The concrete dimension a call to ``ref`` returns, if known."""
        canonical = self.resolve_ref(ref)
        if canonical is None:
            return None
        if canonical in self._dim_memo:
            return self._dim_memo[canonical]
        self._dim_memo[canonical] = None  # cycle guard: in-progress = unknown
        declared = self.functions[canonical].get("return_dim")
        result: Optional[str] = None
        if declared is not None:
            result = (self.return_dim(declared[4:])
                      if declared.startswith("ret:") else declared)
        self._dim_memo[canonical] = result
        return result

    def _resolve_symbolic(self, expr: str) -> Optional[str]:
        if expr.startswith("ret:"):
            return self.return_dim(expr[4:])
        return expr

    # -- taint closure ------------------------------------------------------

    def _close_taint(self) -> None:
        for qualref, record in self.functions.items():
            sources = record.get("sources", [])
            if sources:
                self.tainted[qualref] = sources[0]["reason"]
        changed = True
        while changed:
            changed = False
            for qualref, record in self.functions.items():
                if qualref in self.tainted:
                    continue
                for ref in record.get("calls", []):
                    callee = self.resolve_ref(ref)
                    if callee is not None and callee in self.tainted \
                            and callee != qualref:
                        self.tainted[qualref] = (
                            f"calls {callee} "
                            f"[{self.tainted[callee]}]")
                        changed = True
                        break

    # -- link-time findings -------------------------------------------------

    def _add_finding(self, path: str, rule_id: str, line: int, col: int,
                     message: str, text: str) -> None:
        self._link_findings.setdefault(path, []).append({
            "rule": rule_id, "line": line, "col": col,
            "message": message, "text": text})

    def _evaluate_pending_dims(self) -> None:
        for path, summary in self.summaries.items():
            for record in summary.get("pending_dims", []):
                fired = dimensions.evaluate_pending_dim(
                    record, self._resolve_symbolic)
                if fired is not None:
                    rule_id, message = fired
                    self._add_finding(path, rule_id, record["line"],
                                      record["col"], message,
                                      record.get("text", ""))

    def _evaluate_sink_writes(self) -> None:
        for path, summary in self.summaries.items():
            for record in summary.get("sink_writes", []):
                class_ref = self.resolve_class(record["class_ref"])
                if class_ref is None or class_ref not in self.sinks:
                    continue
                reason: Optional[str] = record.get("direct")
                if reason is None:
                    for ref in record.get("calls", []):
                        callee = self.resolve_ref(ref)
                        if callee is not None and callee in self.tainted:
                            reason = (f"via {callee} "
                                      f"[{self.tainted[callee]}]")
                            break
                if reason is None:
                    continue
                short = class_ref.rsplit(".", 1)[1]
                self._add_finding(
                    path, "DT201", record["line"], record["col"],
                    f"nondeterministic value reaches serialized field "
                    f"{short}.{record['field']} — {reason}; results "
                    "must be a pure function of (config, seed)",
                    record.get("text", ""))

    # -- what project rules consume -----------------------------------------

    def findings_for(self, rule_id: str) -> List[RawProjectViolation]:
        """Every finding for one rule id, over local summary findings
        and link-derived ones, in deterministic order."""
        out: List[RawProjectViolation] = []
        for path, summary in self.summaries.items():
            for record in summary.get("findings", []):
                if record["rule"] == rule_id:
                    out.append((path, record["line"], record["col"],
                                record["message"],
                                record.get("text", "")))
        for path, records in self._link_findings.items():
            for record in records:
                if record["rule"] == rule_id:
                    out.append((path, record["line"], record["col"],
                                record["message"],
                                record.get("text", "")))
        out.sort()
        return out
