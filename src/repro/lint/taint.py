"""Determinism taint tracking (``DT`` rules).

The per-file ``D`` rules ban the *syntax* of nondeterminism — an
unseeded constructor, a wall-clock call.  This pass tracks the
*values*: once a nondeterministic source is allowed somewhere (say a
justified ``# repro-lint: disable=D002`` for tooling self-timing), the
taint it produces must still never reach a serialized result.

**Sources** (seeded in phase 1, per function):

* wall-clock reads (the ``D002`` vocabulary);
* RNG constructors without a seed (the ``D001`` vocabulary);
* the process environment: ``os.environ``, ``os.getenv``,
  ``os.urandom``.

**Propagation** (at link time, over the project call graph): a
function is taint-producing if its body contains a source or it calls
a taint-producing function.  This is deliberately coarse — sources are
rare in this tree precisely because the D rules police them, so the
closure stays tiny and conservative.

**Sinks**: the serialized result types — project classes that define
``to_jsonable`` and either are ``*Result`` classes or carry a
``merge`` method (the exactly-mergeable fleet/chaos aggregates).

Rules:

* ``DT201`` — a tainted expression is written into a sink field
  (constructor keyword or ``self.field =`` inside a sink method);
* ``DT202`` — iteration over a set (unordered!) feeds an accumulator;
  ``sorted(...)`` the set first;
* ``DT203`` — shard-invariance: a merge-bearing aggregate accumulates
  into a float field with ``+=``.  Float addition does not associate,
  so the shard layout would change the bits; quantize to int first
  (see ``StreamingMoments``).
"""

from __future__ import annotations

import ast
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    TYPE_CHECKING,
)

from .asthelpers import call_keywords, dotted_name
from .registry import RawProjectViolation, rule

if TYPE_CHECKING:  # pragma: no cover — import cycle guard only
    from .callgraph import ProjectContext

#: Wall-clock reads (mirrors the D002 vocabulary).
WALL_CLOCK_SOURCES = {
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "date.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

#: RNG constructors that are sources when called without a seed.
RNG_CONSTRUCTORS = {
    "np.random.default_rng", "numpy.random.default_rng", "random.Random",
}

#: Environment reads: host state, different on every machine.
ENVIRONMENT_SOURCES = {
    "os.getenv", "os.urandom", "os.environ.get",
}

#: Set-producing expressions whose iteration order is arbitrary.
_SET_METHODS = {"union", "intersection", "difference",
                "symmetric_difference"}


def classify_source(qualified: str, call: Optional[ast.Call]
                    ) -> Optional[str]:
    """Is this qualified callee a taint source?  Returns a short
    human reason, or None."""
    if qualified in WALL_CLOCK_SOURCES:
        return f"wall clock ({qualified})"
    if qualified in ENVIRONMENT_SOURCES:
        return f"process environment ({qualified})"
    if (qualified in RNG_CONSTRUCTORS and call is not None
            and not call.args and "seed" not in call_keywords(call)):
        return f"unseeded RNG ({qualified})"
    return None


def environment_read(node: ast.AST, qualify: Callable[[str], str]
                     ) -> Optional[str]:
    """``os.environ[...]`` / bare ``os.environ`` attribute reads."""
    name = dotted_name(node)
    if name is None:
        return None
    qualified = qualify(name)
    if qualified == "os.environ" or qualified.startswith("os.environ."):
        return "process environment (os.environ)"
    return None


class ModuleTaintAnalysis:
    """Phase-1 taint facts for one module.

    Fills, per function record: ``sources`` (direct source sites with
    reasons) and leaves ``calls`` to the symbol extractor.  Emits
    ``DT202`` locally and records sink-write candidates for link time
    (``DT201``); ``DT203`` is emitted locally from class records.
    """

    def __init__(self, module: str, lines: List[str],
                 qualify: Callable[[str], str],
                 resolve_class: Callable[[str], Optional[str]]) -> None:
        self.module = module
        self.lines = lines
        self.qualify = qualify
        self.resolve_class = resolve_class
        self.local: List[Dict[str, Any]] = []
        self.sink_writes: List[Dict[str, Any]] = []

    def _text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def _emit(self, rule_id: str, node: ast.AST, message: str) -> None:
        self.local.append({
            "rule": rule_id, "line": node.lineno, "col": node.col_offset,
            "message": message, "text": self._text(node.lineno)})

    # -- direct sources ----------------------------------------------------

    def find_sources(self, func: ast.AST) -> List[Dict[str, Any]]:
        """Every direct taint source in the function body."""
        sources: List[Dict[str, Any]] = []
        for node in ast.walk(func):
            reason = None
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is not None:
                    reason = classify_source(self.qualify(name), node)
            elif isinstance(node, ast.Attribute):
                reason = environment_read(node, self.qualify)
            if reason is not None:
                sources.append({"line": node.lineno,
                                "col": node.col_offset, "reason": reason})
        return sources

    # -- expression taint + call refs --------------------------------------

    def expr_taint(self, node: ast.AST,
                   call_refs_of: Callable[[ast.Call], Optional[str]]
                   ) -> Tuple[Optional[str], List[str]]:
        """(direct-source reason or None, project call refs) for one
        expression — what a sink write needs recorded for link time."""
        direct: Optional[str] = None
        refs: List[str] = []
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                name = dotted_name(sub.func)
                if name is not None:
                    reason = classify_source(self.qualify(name), sub)
                    if reason is not None and direct is None:
                        direct = reason
                ref = call_refs_of(sub)
                if ref is not None:
                    refs.append(ref)
            elif isinstance(sub, ast.Attribute):
                reason = environment_read(sub, self.qualify)
                if reason is not None and direct is None:
                    direct = reason
        return direct, refs

    def record_sink_write(self, node: ast.AST, class_ref: str, field: str,
                          value: ast.AST,
                          call_refs_of: Callable[[ast.Call], Optional[str]]
                          ) -> None:
        direct, refs = self.expr_taint(value, call_refs_of)
        if direct is None and not refs:
            return  # provably clean expression: nothing to check at link
        self.sink_writes.append({
            "line": node.lineno, "col": node.col_offset,
            "text": self._text(node.lineno),
            "class_ref": class_ref, "field": field,
            "direct": direct, "calls": refs})

    # -- DT202: unordered iteration feeding accumulation -------------------

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set",
                                                          "frozenset"):
                return True
            if isinstance(func, ast.Attribute) \
                    and func.attr in _SET_METHODS:
                # obj.union(...) — only setlike receivers define these
                return True
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitAnd, ast.BitOr, ast.BitXor)):
            return self._is_set_expr(node.left) \
                or self._is_set_expr(node.right)
        return False

    def _accumulates_float(self, body: List[ast.stmt],
                           loop_var: Set[str]) -> Optional[ast.AST]:
        """First ``x += <float-ish expr using the loop var>`` in body."""
        for statement in body:
            for node in ast.walk(statement):
                if not isinstance(node, ast.AugAssign) \
                        or not isinstance(node.op, ast.Add):
                    continue
                names = {sub.id for sub in ast.walk(node.value)
                         if isinstance(sub, ast.Name)}
                attrs = {sub.attr for sub in ast.walk(node.value)
                         if isinstance(sub, ast.Attribute)}
                if not (names | attrs) & loop_var:
                    continue
                if _int_coerced(node.value):
                    continue
                return node
        return None

    def check_set_iteration(self, func: ast.AST) -> None:
        for node in ast.walk(func):
            if isinstance(node, ast.For) and self._is_set_expr(node.iter):
                hit = self._accumulates_float(node.body,
                                              _target_names(node.target))
                if hit is not None:
                    self._emit(
                        "DT202", hit,
                        "float accumulation over set iteration — set "
                        "order is arbitrary and float '+' does not "
                        "associate; iterate sorted(...) instead")
            elif isinstance(node, ast.Call):
                func_name = node.func
                short = func_name.id if isinstance(func_name, ast.Name) \
                    else (func_name.attr
                          if isinstance(func_name, ast.Attribute) else None)
                if short not in ("sum", "fsum") or not node.args:
                    continue
                arg = node.args[0]
                over_set = self._is_set_expr(arg)
                if isinstance(arg, ast.GeneratorExp) \
                        and len(arg.generators) == 1:
                    over_set = self._is_set_expr(arg.generators[0].iter)
                    if over_set and _int_coerced(arg.elt):
                        over_set = False
                if over_set:
                    self._emit(
                        "DT202", node,
                        "sum() over a set — set order is arbitrary and "
                        "float '+' does not associate; sum(sorted(...)) "
                        "instead")

    # -- DT203: float += in exactly-mergeable aggregates -------------------

    def check_mergeable_accumulation(self, classdef: ast.ClassDef,
                                     field_types: Dict[str, str]) -> None:
        has_merge = any(isinstance(n, ast.FunctionDef) and n.name == "merge"
                        for n in classdef.body)
        has_jsonable = any(isinstance(n, ast.FunctionDef)
                           and n.name == "to_jsonable"
                           for n in classdef.body)
        if not (has_merge and has_jsonable):
            return
        for method in classdef.body:
            if not isinstance(method, ast.FunctionDef):
                continue
            for node in ast.walk(method):
                if not isinstance(node, ast.AugAssign) \
                        or not isinstance(node.op, ast.Add):
                    continue
                target = node.target
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                annotation = field_types.get(target.attr)
                if annotation is None or "int" in annotation:
                    continue
                if "float" not in annotation.lower():
                    continue
                if _int_coerced(node.value):
                    continue
                self._emit(
                    "DT203", node,
                    f"unquantized float accumulation into "
                    f"{classdef.name}.{target.attr} — merge-bearing "
                    "aggregates must be exactly mergeable at any shard "
                    "count; quantize to int (see StreamingMoments) or "
                    "make the field int")


def _int_coerced(node: ast.AST) -> bool:
    """Is the expression provably an exact integer?"""
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        short = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        return short in ("int", "len", "round")
    if isinstance(node, ast.BinOp):
        return _int_coerced(node.left) and _int_coerced(node.right)
    if isinstance(node, ast.Attribute) or isinstance(node, ast.Name):
        name = node.attr if isinstance(node, ast.Attribute) else node.id
        return bool(name) and ("count" in name or name.startswith("n_"))
    return False


def _target_names(target: ast.AST) -> Set[str]:
    return {sub.id for sub in ast.walk(target) if isinstance(sub, ast.Name)}


def _findings(project: "ProjectContext", rule_id: str
              ) -> Iterator[RawProjectViolation]:
    yield from project.findings_for(rule_id)


@rule("DT201", "taint-reaches-result", "taint",
      "no nondeterministic value flows into a serialized result field",
      scope="project")
def taint_reaches_result(project: "ProjectContext"
                         ) -> Iterator[RawProjectViolation]:
    return _findings(project, "DT201")


@rule("DT202", "unordered-iteration-accumulation", "taint",
      "no float accumulation over unordered set iteration",
      scope="project")
def unordered_iteration_accumulation(project: "ProjectContext"
                                     ) -> Iterator[RawProjectViolation]:
    return _findings(project, "DT202")


@rule("DT203", "unquantized-mergeable-accumulation", "taint",
      "mergeable aggregates accumulate exactly (ints), never raw floats",
      scope="project")
def unquantized_mergeable_accumulation(project: "ProjectContext"
                                       ) -> Iterator[RawProjectViolation]:
    return _findings(project, "DT203")
