"""Small shared AST utilities for lint rules."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def walk_calls(tree: ast.Module) -> Iterator[Tuple[ast.Call, str]]:
    """Every Call whose callee is a resolvable dotted name."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None:
                yield node, name


def imported_names(tree: ast.Module) -> Dict[str, str]:
    """Map local name -> fully qualified origin for ``from X import Y``
    and ``import X as Z`` statements (top level and nested)."""
    origins: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                local = alias.asname or alias.name
                origins[local] = f"{node.module}.{alias.name}"
        elif isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origins[local] = alias.name
    return origins


def is_dataclass(node: ast.ClassDef) -> bool:
    """Is the class decorated with ``@dataclass`` (any spelling)?"""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        name = dotted_name(target)
        if name is not None and name.split(".")[-1] == "dataclass":
            return True
    return False


def call_keywords(node: ast.Call) -> Set[str]:
    return {keyword.arg for keyword in node.keywords
            if keyword.arg is not None}


def constant_number(node: ast.AST) -> Optional[float]:
    """The numeric value of a Constant (bools excluded), else ``None``."""
    if isinstance(node, ast.Constant) \
            and isinstance(node.value, (int, float)) \
            and not isinstance(node.value, bool):
        return float(node.value)
    return None
