"""repro.lint — AST-based invariant checker for the repro codebase.

The simulator's headline guarantees are *conventions*: bit-identical
seeded runs, canonical SI units everywhere, and a typed
:mod:`repro.errors` hierarchy.  ``repro validate`` checks the results
against the paper; this package checks the *code* against the
conventions, so they cannot silently rot as the tree grows.

Four rule families (see ``docs/LINTING.md`` for the full catalogue):

* **determinism** (``D``) — no unseeded RNG construction, no wall-clock
  reads, no global RNG state;
* **units** (``U``) — no magic unit-conversion literals outside
  :mod:`repro.units`; unit-suffixed dataclass fields must document
  their canonical unit;
* **error policy** (``E``) — no bare ``except``, no broad
  ``except Exception`` without justification, ``raise`` sites use the
  :mod:`repro.errors` hierarchy or validation builtins;
* **API contract** (``A``) — public functions are fully annotated and
  ``to_jsonable``/``from_jsonable`` checkpoint pairs stay complete.

Three *whole-program* families run over the linked project (shared
symbol table + call graph, see :mod:`repro.lint.callgraph`):

* **dimension** (``UD``) — unit-dimension inference: no mixed-scale
  arithmetic, no unconverted stores/returns, no unit-ambiguous public
  parameters;
* **taint** (``DT``) — determinism taint tracking: no nondeterministic
  value reaches a serialized result, no float accumulation over set
  iteration, mergeable aggregates accumulate exactly;
* **round-trip** (``RT``) — ``to_jsonable``/``from_jsonable`` pairs
  are field-complete, so resume never silently defaults a field.

Violations are suppressed per line with a *justified* comment::

    thing()  # repro-lint: disable=E002 isolation is the point

or acknowledged wholesale in a checked-in baseline file; the tier-1
suite lints the tree with an **empty** baseline, so new violations
fail CI.
"""

from __future__ import annotations

from .baseline import Baseline, load_baseline, write_baseline
from .cache import LintCache, config_hash, file_fingerprint
from .callgraph import ProjectContext
from .engine import (
    LintReport,
    ModuleContext,
    Violation,
    analyze_file,
    default_lint_root,
    lint_paths,
    lint_source,
)
from .registry import Rule, all_rules, get_rule
from .sarif import render_sarif, report_to_sarif

# Importing the rule modules registers every built-in rule; the
# project-scope passes register on import of their defining modules.
from . import rules as _rules  # noqa: F401
from . import dimensions as _dimensions  # noqa: F401
from . import roundtrip as _roundtrip  # noqa: F401
from . import taint as _taint  # noqa: F401

__all__ = [
    "Baseline",
    "LintCache",
    "LintReport",
    "ModuleContext",
    "ProjectContext",
    "Rule",
    "Violation",
    "all_rules",
    "analyze_file",
    "config_hash",
    "default_lint_root",
    "file_fingerprint",
    "get_rule",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "render_sarif",
    "report_to_sarif",
    "write_baseline",
]
