"""repro.lint — AST-based invariant checker for the repro codebase.

The simulator's headline guarantees are *conventions*: bit-identical
seeded runs, canonical SI units everywhere, and a typed
:mod:`repro.errors` hierarchy.  ``repro validate`` checks the results
against the paper; this package checks the *code* against the
conventions, so they cannot silently rot as the tree grows.

Four rule families (see ``docs/LINTING.md`` for the full catalogue):

* **determinism** (``D``) — no unseeded RNG construction, no wall-clock
  reads, no global RNG state;
* **units** (``U``) — no magic unit-conversion literals outside
  :mod:`repro.units`; unit-suffixed dataclass fields must document
  their canonical unit;
* **error policy** (``E``) — no bare ``except``, no broad
  ``except Exception`` without justification, ``raise`` sites use the
  :mod:`repro.errors` hierarchy or validation builtins;
* **API contract** (``A``) — public functions are fully annotated and
  ``to_jsonable``/``from_jsonable`` checkpoint pairs stay complete.

Violations are suppressed per line with a *justified* comment::

    thing()  # repro-lint: disable=E002 isolation is the point

or acknowledged wholesale in a checked-in baseline file; the tier-1
suite lints the tree with an **empty** baseline, so new violations
fail CI.
"""

from __future__ import annotations

from .baseline import Baseline, load_baseline, write_baseline
from .engine import (
    LintReport,
    ModuleContext,
    Violation,
    default_lint_root,
    lint_paths,
    lint_source,
)
from .registry import Rule, all_rules, get_rule

# Importing the rule modules registers every built-in rule.
from . import rules as _rules  # noqa: F401

__all__ = [
    "Baseline",
    "LintReport",
    "ModuleContext",
    "Rule",
    "Violation",
    "all_rules",
    "default_lint_root",
    "get_rule",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "write_baseline",
]
