"""SARIF 2.1.0 export: the interchange format code hosts ingest.

One static schema, no third-party dependency: a single run whose tool
driver lists every registered rule (so viewers can show the rule
catalog even for clean runs) and whose results map one-to-one onto
:class:`~repro.lint.engine.Violation` records.  Severity tiers map to
SARIF ``level`` (``error``/``warning``).
"""

from __future__ import annotations

import json
from typing import Any, Dict, TYPE_CHECKING

from ..errors import LintError
from .registry import all_rules, get_rule

if TYPE_CHECKING:  # pragma: no cover — import cycle guard only
    from .engine import LintReport

_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                 "master/Schemata/sarif-schema-2.1.0.json")


def report_to_sarif(report: "LintReport") -> Dict[str, Any]:
    """The SARIF payload for one lint run."""
    rules = [
        {
            "id": r.id,
            "name": r.name,
            "shortDescription": {"text": r.description},
            "properties": {"family": r.family, "scope": r.scope},
            "defaultConfiguration": {"level": r.severity},
        }
        for r in all_rules()
    ]
    results = []
    for violation in report.violations:
        try:
            level = get_rule(violation.rule_id).severity
        except LintError:  # replayed report naming a retired rule id
            level = "error"
        results.append({
            "ruleId": violation.rule_id,
            "level": level,
            "message": {"text": violation.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": violation.path},
                    "region": {
                        "startLine": violation.line,
                        "startColumn": violation.col + 1,
                    },
                },
            }],
        })
    return {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri":
                        "https://example.invalid/repro/docs/LINTING.md",
                    "rules": rules,
                },
            },
            "results": results,
            "properties": {
                "filesChecked": report.files_checked,
                "baselined": report.baselined,
                "suppressed": report.suppressed,
                "elapsedSeconds": round(report.elapsed_seconds, 6),
            },
        }],
    }


def render_sarif(report: "LintReport") -> str:
    return json.dumps(report_to_sarif(report), indent=2, sort_keys=True)
