"""Float-comparison rules (``F``): no exact ``==`` on quantities.

Energies, powers, and times come out of long float pipelines — sums
over thousands of frames, closed-form exponentials, unit conversions.
Exact ``==``/``!=`` between two such values is almost always a latent
flake: it holds on one platform's FMA contraction and fails on the
next.  Intentional exact equality (bit-identity checkpoints, the
determinism contract) is a *claim* and must say so in a suppression;
everything else belongs in ``math.isclose`` / ``pytest.approx``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import ModuleContext
from ..registry import RawViolation, rule

#: Name fragments that mark an operand as a physical float quantity.
#: Matched against every attribute/name segment of the operand, so
#: ``run.energy.total`` is a quantity (via ``energy``) even though
#: ``total`` alone is not.
_QUANTITY_SUFFIXES = ("_energy", "_power", "_seconds", "_latency",
                      "_joules", "_watts")
_QUANTITY_NAMES = {"energy", "power", "elapsed", "latency",
                   "stall_seconds", "throttle_seconds"}

#: Call names whose result is an approximate-comparison wrapper; a
#: comparison against one is the *fix*, not the bug.
_APPROX_CALLS = {"approx", "isclose"}


def _segments(node: ast.AST) -> Iterator[str]:
    """Every Name/Attribute segment inside an operand expression."""
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            yield child.id
        elif isinstance(child, ast.Attribute):
            yield child.attr


def _is_quantity(node: ast.AST) -> bool:
    for segment in _segments(node):
        if segment in _QUANTITY_NAMES:
            return True
        if any(segment.endswith(suffix)
               for suffix in _QUANTITY_SUFFIXES):
            return True
    return False


def _is_approx_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    target = node.func
    name = target.attr if isinstance(target, ast.Attribute) else (
        target.id if isinstance(target, ast.Name) else None)
    return name in _APPROX_CALLS


@rule("F001", "float-quantity-equality", "float-compare",
      "no exact ==/!= between float energy/power/time quantities")
def float_quantity_equality(ctx: ModuleContext) -> Iterator[RawViolation]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_approx_call(left) or _is_approx_call(right):
                continue
            if _is_quantity(left) or _is_quantity(right):
                yield (node.lineno, node.col_offset,
                       "exact ==/!= on a float quantity — use "
                       "math.isclose/pytest.approx, or suppress with "
                       "the exactness claim (bit-identity contracts)")
                break
