"""Error-policy rules (``E``): the typed repro.errors hierarchy.

Callers are promised that catching :class:`repro.errors.ReproError`
catches every deliberate simulator failure and *nothing else*.  That
promise dies the day a module raises ``RuntimeError``, swallows
``Exception``, or uses a bare ``except`` — so those are mechanical
violations, not style preferences.
"""

from __future__ import annotations

import ast
import inspect
from typing import Iterator, Set

from ... import errors as _errors
from ..asthelpers import dotted_name
from ..engine import ModuleContext
from ..registry import RawViolation, rule


def _repro_error_names() -> Set[str]:
    """Every class in repro.errors (self-updating as the hierarchy
    grows — the linter never lags the code)."""
    return {name for name, obj in inspect.getmembers(_errors, inspect.isclass)
            if issubclass(obj, _errors.ReproError)}


#: Builtins acceptable at ``raise`` sites: input-validation and
#: protocol errors that Python idiom expects (a Mapping raises
#: KeyError, an abstract method raises NotImplementedError, ...).
_ALLOWED_BUILTINS = {
    "ValueError", "TypeError", "KeyError", "IndexError",
    "AttributeError", "NotImplementedError", "StopIteration",
    "ZeroDivisionError", "OverflowError", "AssertionError",
}

#: Exception types that are never acceptable to raise directly.
_FORBIDDEN_HINTS = {
    "Exception": "too broad — pick a repro.errors subclass",
    "BaseException": "too broad — pick a repro.errors subclass",
    "RuntimeError": "untyped — add or reuse a repro.errors subclass",
    "OSError": "wrap I/O failures in a repro.errors subclass with context",
    "IOError": "wrap I/O failures in a repro.errors subclass with context",
    "SystemError": "untyped — pick a repro.errors subclass",
}


@rule("E001", "bare-except", "error-policy",
      "no bare except: clauses (swallows KeyboardInterrupt and bugs)")
def bare_except(ctx: ModuleContext) -> Iterator[RawViolation]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield (node.lineno, node.col_offset,
                   "bare 'except:' — name the exceptions this site can "
                   "actually absorb")


def _broad_names(node: ast.AST) -> Iterator[str]:
    candidates = node.elts if isinstance(node, ast.Tuple) else [node]
    for candidate in candidates:
        name = dotted_name(candidate)
        if name is not None and name.split(".")[-1] in ("Exception",
                                                        "BaseException"):
            yield name


@rule("E002", "broad-except", "error-policy",
      "except Exception only in supervision layers, with justification")
def broad_except(ctx: ModuleContext) -> Iterator[RawViolation]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler) or node.type is None:
            continue
        for name in _broad_names(node.type):
            yield (node.lineno, node.col_offset,
                   f"'except {name}' swallows unrelated bugs — catch "
                   "ReproError (or justify the isolation boundary with "
                   "a suppression)")


@rule("E003", "raise-outside-hierarchy", "error-policy",
      "raise sites use repro.errors classes or validation builtins")
def raise_outside_hierarchy(ctx: ModuleContext) -> Iterator[RawViolation]:
    allowed = _repro_error_names() | _ALLOWED_BUILTINS
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        target = node.exc
        if isinstance(target, ast.Call):
            target = target.func
        name = dotted_name(target)
        if name is None:
            continue  # re-raise of a bound variable, dynamic type, ...
        short = name.split(".")[-1]
        if short in allowed:
            continue
        if short[:1].islower():
            continue  # a bound exception variable, e.g. 'raise exc'
        hint = _FORBIDDEN_HINTS.get(
            short, "outside the repro.errors hierarchy — catching "
                   "ReproError must cover every deliberate failure")
        yield (node.lineno, node.col_offset, f"raise {short}: {hint}")
