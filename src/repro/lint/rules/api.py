"""API-contract rules (``A``): typed surfaces and checkpoint safety.

The public ``repro.*`` API is consumed by the CLI, the benchmarks, and
downstream notebooks; unannotated signatures erode it one call site at
a time.  Separately, the runner's crash-resume guarantee rests on
``to_jsonable``/``from_jsonable`` staying *paired* inverses — a class
that grows one without the other checkpoints data it cannot restore.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple, Union

from ..asthelpers import dotted_name
from ..engine import ModuleContext
from ..registry import RawViolation, rule

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _is_public_name(name: str) -> bool:
    if name.startswith("__") and name.endswith("__"):
        return True  # dunders are part of the class protocol surface
    return not name.startswith("_")


def _public_functions(tree: ast.Module
                      ) -> Iterator[Tuple[_FunctionNode, bool]]:
    """(function, is_method) for module-level and class-level defs of
    public names in public classes — nested functions are private by
    construction and skipped."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _is_public_name(node.name):
                yield node, False
        elif isinstance(node, ast.ClassDef) and _is_public_name(node.name):
            for member in node.body:
                if isinstance(member, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)) \
                        and _is_public_name(member.name):
                    yield member, True


def _unannotated_args(func: _FunctionNode, is_method: bool) -> List[str]:
    missing: List[str] = []
    args = func.args
    positional = list(args.posonlyargs) + list(args.args)
    skip_first = is_method and positional \
        and positional[0].arg in ("self", "cls")
    if skip_first:
        positional = positional[1:]
    for arg in positional + list(args.kwonlyargs):
        if arg.annotation is None:
            missing.append(arg.arg)
    for special in (args.vararg, args.kwarg):
        if special is not None and special.annotation is None:
            missing.append("*" + special.arg)
    return missing


@rule("A001", "unannotated-public-function", "api-contract",
      "public functions and methods carry full type annotations")
def unannotated_public_function(ctx: ModuleContext
                                ) -> Iterator[RawViolation]:
    for func, is_method in _public_functions(ctx.tree):
        missing = _unannotated_args(func, is_method)
        if missing:
            yield (func.lineno, func.col_offset,
                   f"{func.name}() leaves parameter(s) "
                   f"{', '.join(repr(m) for m in missing)} unannotated")
        if func.returns is None:
            yield (func.lineno, func.col_offset,
                   f"{func.name}() has no return annotation "
                   "(use '-> None' if it returns nothing)")


@rule("A002", "broken-jsonable-pair", "api-contract",
      "to_jsonable/from_jsonable checkpoint pairs stay complete")
def broken_jsonable_pair(ctx: ModuleContext) -> Iterator[RawViolation]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        methods = {member.name: member for member in node.body
                   if isinstance(member, (ast.FunctionDef,
                                          ast.AsyncFunctionDef))}
        has_to = "to_jsonable" in methods
        has_from = "from_jsonable" in methods
        if has_to != has_from:
            present = "to_jsonable" if has_to else "from_jsonable"
            absent = "from_jsonable" if has_to else "to_jsonable"
            yield (node.lineno, node.col_offset,
                   f"class {node.name} defines {present} but not "
                   f"{absent} — checkpoints must round-trip")
        if has_from:
            decorators = {dotted_name(d) for d in
                          methods["from_jsonable"].decorator_list}
            if "classmethod" not in {d.split(".")[-1] for d in decorators
                                     if d is not None}:
                yield (methods["from_jsonable"].lineno,
                       methods["from_jsonable"].col_offset,
                       f"{node.name}.from_jsonable must be a classmethod "
                       "(the runner restores instances from plain JSON)")
