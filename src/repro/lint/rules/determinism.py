"""Determinism rules (``D``): seeded runs must stay bit-identical.

The runner's checkpoint/resume guarantee, the splitmix64 fault
schedules, and `repro validate`'s tolerance bands all assume that the
same seed produces the same bits on every run.  Three things break
that silently: constructing an RNG without a seed, reading the wall
clock, and mutating interpreter-global RNG state.
"""

from __future__ import annotations

from typing import Dict, Iterator

from ..asthelpers import call_keywords, imported_names, walk_calls
from ..engine import ModuleContext
from ..registry import RawViolation, rule

#: RNG constructors that take their seed as first arg or ``seed=``.
_RNG_CONSTRUCTORS = {
    "np.random.default_rng",
    "numpy.random.default_rng",
    "random.Random",
}

#: Wall-clock reads — nondeterministic across runs by definition.
_WALL_CLOCK = {
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "date.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

#: ``np.random.*`` members that are fine: explicit-generator types.
_NP_RANDOM_OK = {
    "default_rng", "Generator", "SeedSequence",
    "BitGenerator", "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
}


def _qualify(name: str, origins: Dict[str, str]) -> str:
    """Resolve the first path component through the import table, so
    ``from numpy.random import default_rng`` still reads as
    ``numpy.random.default_rng``."""
    head, _, rest = name.partition(".")
    origin = origins.get(head)
    if origin is None:
        return name
    return origin + ("." + rest if rest else "")


@rule("D001", "unseeded-rng", "determinism",
      "RNG constructors must be explicitly seeded")
def unseeded_rng(ctx: ModuleContext) -> Iterator[RawViolation]:
    origins = imported_names(ctx.tree)
    for call, name in walk_calls(ctx.tree):
        qualified = _qualify(name, origins)
        if qualified not in _RNG_CONSTRUCTORS:
            continue
        if not call.args and "seed" not in call_keywords(call):
            yield (call.lineno, call.col_offset,
                   f"{name}() without a seed — seeded runs must be "
                   "bit-identical; pass an explicit seed")


@rule("D002", "wall-clock", "determinism",
      "no wall-clock reads inside the simulator")
def wall_clock(ctx: ModuleContext) -> Iterator[RawViolation]:
    origins = imported_names(ctx.tree)
    for call, name in walk_calls(ctx.tree):
        qualified = _qualify(name, origins)
        if qualified in _WALL_CLOCK or name in _WALL_CLOCK:
            yield (call.lineno, call.col_offset,
                   f"{name}() reads the wall clock — simulated time "
                   "must come from the model, not the host")


@rule("D003", "global-rng-state", "determinism",
      "no module-global RNG state (np.random.seed, random.seed, ...)")
def global_rng_state(ctx: ModuleContext) -> Iterator[RawViolation]:
    origins = imported_names(ctx.tree)
    for call, name in walk_calls(ctx.tree):
        qualified = _qualify(name, origins)
        for prefix in ("np.random.", "numpy.random."):
            if qualified.startswith(prefix):
                member = qualified[len(prefix):]
                if "." not in member and member not in _NP_RANDOM_OK:
                    yield (call.lineno, call.col_offset,
                           f"{name}() uses numpy's global RNG — use a "
                           "seeded np.random.default_rng(...) instance")
                break
        else:
            if qualified.startswith("random.") \
                    and qualified.count(".") == 1:
                member = qualified.split(".", 1)[1]
                if member.islower():  # module functions share global state
                    yield (call.lineno, call.col_offset,
                           f"{name}() uses the stdlib global RNG — use "
                           "a seeded generator instance")
