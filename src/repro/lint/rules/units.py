"""Units rules (``U``): canonical SI units, named conversion factors.

The simulator's canonical units (seconds, joules, watts, bytes, hertz
— see :mod:`repro.units`) only stay canonical if conversions go
through the named constants.  A bare ``* 1e-3`` is ambiguous — ms to
s?  mJ to J?  mW to W? — and a config field called ``foo_energy``
whose unit lives in the author's head is a latent factor-of-1000 bug.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from ..asthelpers import constant_number, is_dataclass
from ..engine import ModuleContext
from ..registry import RawViolation, rule

#: Bare conversion factors that have a name in repro.units.
_MAGIC_FACTORS = {
    1e-9: "NS (or act/burst energies via a comment)",
    1e-6: "US / UJ",
    1e-3: "MS / MJ / MW",
    1e3: "KHZ (or to_ms/to_mj for reports)",
    1e6: "MHZ",
    1e9: "GHZ",
    1024.0: "KIB",
    float(1024 ** 2): "MIB",  # repro-lint: disable=U001 the factor table itself
    float(1024 ** 3): "GIB",  # repro-lint: disable=U001 the factor table itself
}

#: Modules whose whole point is defining these factors.
_UNIT_MODULES = {"repro.units"}

#: Dataclass-field suffixes that imply a physical quantity whose
#: canonical unit must be stated (seconds/joules/watts).  Suffixes
#: that *name* the canonical unit (``_seconds``, ``_bytes``, ``_hz``)
#: are self-documenting and exempt.
_QUANTITY_SUFFIXES = ("_energy", "_power", "_time", "_latency")
_QUANTITY_NAMES = {"power", "energy", "latency"}

#: A unit-documenting comment: mentions joules/watts/seconds/... either
#: spelled out or as the bare symbol.
_UNIT_COMMENT_RE = re.compile(
    r"(\b[JWsB]\b|\bHz\b|joule|watt|second|hertz|byte|bytes/s|J/|W/|s/)")

#: Names exported by repro.units; a default expression referencing one
#: carries its unit in the code itself.
_UNITS_NAMES = {
    "NS", "US", "MS", "SECOND", "MW", "W", "UJ", "MJ", "J",
    "KIB", "MIB", "GIB", "KHZ", "MHZ", "GHZ", "KBPS", "MBPS",
    "ns", "us", "ms", "mw", "mj", "kib", "mib", "mhz", "mbps",
}


def _names_in(node: ast.AST) -> Iterator[str]:
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            yield child.id
        elif isinstance(child, ast.Attribute):
            yield child.attr


@rule("U001", "magic-unit-literal", "units",
      "unit conversions must use the named constants from repro.units")
def magic_unit_literal(ctx: ModuleContext) -> Iterator[RawViolation]:
    if ctx.module in _UNIT_MODULES:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.BinOp):
            continue
        if isinstance(node.op, (ast.Mult, ast.Div)):
            for operand in (node.left, node.right):
                value = constant_number(operand)
                if value is not None and value in _MAGIC_FACTORS:
                    yield (operand.lineno, operand.col_offset,
                           f"magic unit factor {value:g} — use "
                           f"{_MAGIC_FACTORS[value]} from repro.units")
        elif isinstance(node.op, ast.Pow):
            base = constant_number(node.left)
            if base == 1024.0:
                yield (node.lineno, node.col_offset,
                       "1024 ** n — use KIB/MIB/GIB from repro.units")


#: Annotations that denote a bare number (or array of them) — the only
#: shapes where the unit is invisible without documentation.  A field
#: typed as EnergyBreakdown carries its units in its own class.
_NUMERIC_ANNOTATIONS = {"float", "int", "ndarray"}


def _field_needs_unit(name: str, annotation: ast.AST) -> bool:
    if not (_NUMERIC_ANNOTATIONS
            & set(_names_in(annotation))):
        return False
    if name in _QUANTITY_NAMES:
        return True
    return any(name.endswith(suffix) for suffix in _QUANTITY_SUFFIXES)


def _default_carries_unit(default: Optional[ast.AST]) -> bool:
    if default is None:
        return False
    return any(name in _UNITS_NAMES for name in _names_in(default))


@rule("U002", "undocumented-unit-field", "units",
      "quantity-named dataclass fields must state their canonical unit")
def undocumented_unit_field(ctx: ModuleContext) -> Iterator[RawViolation]:
    if ctx.module in _UNIT_MODULES:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef) or not is_dataclass(node):
            continue
        for statement in node.body:
            if not isinstance(statement, ast.AnnAssign):
                continue
            target = statement.target
            if not isinstance(target, ast.Name):
                continue
            if not _field_needs_unit(target.id, statement.annotation):
                continue
            if _default_carries_unit(statement.value):
                continue
            comment = ctx.statement_comment(statement)
            if comment and _UNIT_COMMENT_RE.search(comment):
                continue
            yield (statement.lineno, statement.col_offset,
                   f"field {target.id!r} names a physical quantity but "
                   "neither its default nor a same-line comment states "
                   "the canonical unit (s / J / W)")
