"""Built-in rule families; importing this package registers them all."""

from __future__ import annotations

from . import api, determinism, errorpolicy, floats, units  # noqa: F401

__all__ = ["api", "determinism", "errorpolicy", "floats", "units"]
