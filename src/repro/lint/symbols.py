"""Per-file symbol extraction: phase 1 of the whole-program analysis.

Each file is summarized *once* into a plain-JSON dict — functions with
their call edges, inferred return dimensions, and taint sources;
classes with their serialization/merge surface; locally decidable
findings; and the checks that must wait for the cross-module link.
Summaries are what the incremental cache stores and what
:mod:`repro.lint.callgraph` links: re-analyzing a file never requires
looking at any other file, so a warm run only re-summarizes what
changed and re-links the (cheap) whole-program step.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, List, Optional, Tuple

from . import dimensions
from .asthelpers import dotted_name, imported_names
from .roundtrip import analyze_class_roundtrip
from .taint import ModuleTaintAnalysis

#: Attribute-call names never worth a cross-module lookup: ubiquitous
#: stdlib/numpy surface that would bloat every function's edge list.
_BORING_METHODS = {
    "append", "extend", "add", "get", "items", "keys", "values", "pop",
    "update", "join", "split", "strip", "sort", "copy", "astype",
    "tolist", "format", "write", "read", "sum", "mean", "max", "min",
    "setdefault", "startswith", "endswith", "lower", "upper", "index",
    "count", "insert", "remove", "clear", "reshape", "flatten",
}


class CallResolver:
    """Classify call sites against the module's import table."""

    def __init__(self, module: str, tree: ast.Module) -> None:
        self.module = module
        self.origins = imported_names(tree)
        self.local_functions = {
            node.name for node in tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))}
        self.local_classes = {node.name for node in tree.body
                              if isinstance(node, ast.ClassDef)}
        self.current_class: Optional[str] = None

    def qualify(self, name: str) -> str:
        head, _, rest = name.partition(".")
        origin = self.origins.get(head)
        if origin is None:
            return name
        return origin + ("." + rest if rest else "")

    def classify_call(self, call: ast.Call) -> Optional[Tuple[str, str]]:
        """("helper", units-fn) | ("ref", qualref) | None."""
        name = dotted_name(call.func)
        if name is None:
            return None
        if name.startswith("self.") and self.current_class is not None:
            parts = name.split(".")
            if len(parts) == 2:
                return ("ref",
                        f"{self.module}.{self.current_class}.{parts[1]}")
            return None
        qualified = self.qualify(name)
        if qualified.startswith("repro.units."):
            short = qualified[len("repro.units."):]
            if short in dimensions.UNIT_HELPERS:
                return ("helper", short)
            return None
        if qualified.startswith("repro."):
            return ("ref", qualified)
        if "." not in name:
            if name in self.local_functions or name in self.local_classes:
                return ("ref", f"{self.module}.{name}")
            return None
        # Unresolvable receiver: fall back to unique-method lookup.
        short = name.rsplit(".", 1)[1]
        if short.startswith("__") or short in _BORING_METHODS:
            return None
        return ("ref", f"~{short}")

    def call_ref(self, call: ast.Call) -> Optional[str]:
        resolved = self.classify_call(call)
        if resolved is not None and resolved[0] == "ref":
            return resolved[1]
        return None

    def const_lookup(self, node: ast.AST) -> Optional[str]:
        """The repro.units constant name an operand refers to, if any."""
        name = dotted_name(node)
        if name is None:
            return None
        qualified = self.qualify(name)
        if qualified.startswith("repro.units."):
            short = qualified[len("repro.units."):]
            if short in dimensions.UNIT_CONSTANTS \
                    or short in dimensions.IDENTITY_CONSTANTS:
                return short
        return None

    def resolve_class_ref(self, name: str) -> Optional[str]:
        qualified = self.qualify(name)
        if qualified.startswith("repro."):
            return qualified
        if name in self.local_classes:
            return f"{self.module}.{name}"
        return None


def _params(func: ast.AST) -> List[Dict[str, Any]]:
    args = func.args
    records: List[Dict[str, Any]] = []
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        if arg.arg in ("self", "cls"):
            continue
        records.append({
            "name": arg.arg,
            "annotation": (ast.unparse(arg.annotation)
                           if arg.annotation is not None else None)})
    return records


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _field_types(classdef: ast.ClassDef) -> Dict[str, str]:
    types: Dict[str, str] = {}
    for node in classdef.body:
        if isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Name):
            types[node.target.id] = ast.unparse(node.annotation)
    return types


class _ModuleExtractor:
    """Walk one module and fill the summary dict."""

    def __init__(self, tree: ast.Module, module: str,
                 lines: List[str]) -> None:
        self.tree = tree
        self.module = module
        self.lines = lines
        self.resolver = CallResolver(module, tree)
        self.exempt = module in dimensions.EXEMPT_MODULES
        self.dims = dimensions.ModuleDimAnalysis(
            module, lines, self.resolver.classify_call,
            self.resolver.const_lookup)
        self.taint = ModuleTaintAnalysis(
            module, lines, self.resolver.qualify,
            self.resolver.resolve_class_ref)
        self.functions: Dict[str, Dict[str, Any]] = {}
        self.classes: Dict[str, Dict[str, Any]] = {}
        self.findings: List[Dict[str, Any]] = []

    def extract(self) -> Dict[str, Any]:
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._function(node, None)
            elif isinstance(node, ast.ClassDef):
                self._class(node)
        self.findings.extend(self.dims.local)
        self.findings.extend(self.taint.local)
        self.findings.sort(key=lambda f: (f["line"], f["col"], f["rule"]))
        return {
            "module": self.module,
            "functions": self.functions,
            "classes": self.classes,
            "findings": self.findings,
            "pending_dims": self.dims.pending,
            "sink_writes": self.taint.sink_writes,
        }

    def _class(self, classdef: ast.ClassDef) -> None:
        method_names = {node.name for node in classdef.body
                        if isinstance(node, ast.FunctionDef)}
        qualref = f"{self.module}.{classdef.name}"
        self.classes[classdef.name] = {
            "qualref": qualref,
            "has_to_jsonable": "to_jsonable" in method_names,
            "has_merge": "merge" in method_names,
            "is_result": classdef.name.endswith("Result"),
        }
        self.findings.extend(
            analyze_class_roundtrip(classdef, self.lines))
        self.taint.check_mergeable_accumulation(
            classdef, _field_types(classdef))
        self.resolver.current_class = classdef.name
        try:
            for node in classdef.body:
                if isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    self._function(node, classdef.name)
        finally:
            self.resolver.current_class = None

    def _function(self, func: ast.AST, classname: Optional[str]) -> None:
        qualref = (f"{self.module}.{classname}.{func.name}" if classname
                   else f"{self.module}.{func.name}")
        record: Dict[str, Any] = {
            "name": func.name,
            "class": classname,
            "params": _params(func),
            "module_exempt": self.exempt,
            "return_dim": None,
            "calls": [],
            "sources": [],
        }
        if not self.exempt:
            self.dims.analyze_function(func, record)
        record["sources"] = self.taint.find_sources(func)
        self.taint.check_set_iteration(func)
        refs = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                ref = self.resolver.call_ref(node)
                if ref is not None:
                    refs.add(ref)
        record["calls"] = sorted(refs)
        self._sink_writes(func, classname)
        self._ambiguous_params(func, classname)
        self.functions[qualref] = record

    def _sink_writes(self, func: ast.AST,
                     classname: Optional[str]) -> None:
        for node in ast.walk(func):
            if isinstance(node, (ast.Assign, ast.AnnAssign)) \
                    and classname is not None:
                value = node.value
                if value is None:
                    continue
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if isinstance(target, ast.Attribute) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id == "self":
                        self.taint.record_sink_write(
                            node, f"{self.module}.{classname}",
                            target.attr, value, self.resolver.call_ref)
            elif isinstance(node, ast.Call) and node.keywords:
                name = dotted_name(node.func)
                if name is None:
                    continue
                class_ref = self.resolver.resolve_class_ref(name)
                if class_ref is None:
                    continue
                short = class_ref.rsplit(".", 1)[1]
                if not short[:1].isupper():
                    continue  # only constructor-looking callees
                for keyword in node.keywords:
                    if keyword.arg is None:
                        continue
                    self.taint.record_sink_write(
                        node, class_ref, keyword.arg, keyword.value,
                        self.resolver.call_ref)

    def _ambiguous_params(self, func: ast.AST,
                          classname: Optional[str]) -> None:
        if self.exempt or not _is_public(func.name):
            return
        if classname is not None and not _is_public(classname):
            return
        if func.name.startswith("__"):
            return
        docstring = ast.get_docstring(func)
        for param in _params(func):
            if not dimensions.is_ambiguous_quantity_name(param["name"]):
                continue
            annotation = param["annotation"]
            if annotation is not None and "float" not in annotation:
                continue
            if dimensions.doc_mentions_unit(docstring, param["name"]):
                continue
            self.findings.append({
                "rule": "UD103", "line": func.lineno,
                "col": func.col_offset,
                "message": f"public parameter {param['name']!r} of "
                           f"{func.name}() is a quantity but states no "
                           "unit — name the scale (e.g. _seconds, _mj) "
                           "or document the unit in the docstring",
                "text": (self.lines[func.lineno - 1].strip()
                         if 1 <= func.lineno <= len(self.lines) else "")})


def extract_summary(tree: ast.Module, module: str,
                    lines: List[str]) -> Dict[str, Any]:
    """Phase-1 product for one file: a plain-JSON module summary."""
    return _ModuleExtractor(tree, module, lines).extract()
