"""Rule registry: every lint rule self-registers at import time.

A rule is a plain function ``check(ctx) -> Iterable[(line, col, msg)]``
wrapped with :func:`rule`; the registry keys it by its short id
(``D001``, ``U002``, ...) so the engine, the CLI's ``--select``, the
suppression comments, and the baseline all speak the same names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Tuple, TYPE_CHECKING

from ..errors import LintError

if TYPE_CHECKING:  # pragma: no cover — import cycle guard only
    from .engine import ModuleContext

#: What a rule's check function yields: (line, column, message).
RawViolation = Tuple[int, int, str]
CheckFunction = Callable[["ModuleContext"], Iterable[RawViolation]]


@dataclass(frozen=True)
class Rule:
    """One registered invariant check."""

    id: str  # short id used in suppressions/baselines, e.g. "D001"
    name: str  # kebab-case slug, e.g. "unseeded-rng"
    family: str  # determinism | units | error-policy | api-contract
    description: str  # one line: the invariant this rule guards
    check: CheckFunction

    def run(self, ctx: "ModuleContext") -> Iterable[RawViolation]:
        return self.check(ctx)


_REGISTRY: Dict[str, Rule] = {}


def rule(rule_id: str, name: str, family: str,
         description: str) -> Callable[[CheckFunction], CheckFunction]:
    """Register ``check`` under ``rule_id`` (decorator)."""

    def register(check: CheckFunction) -> CheckFunction:
        if rule_id in _REGISTRY:
            raise LintError(f"duplicate lint rule id: {rule_id}")
        _REGISTRY[rule_id] = Rule(id=rule_id, name=name, family=family,
                                  description=description, check=check)
        return check

    return register


def get_rule(rule_id: str) -> Rule:
    """Look a rule up by id; unknown ids are a caller error."""
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise LintError(f"unknown lint rule: {rule_id!r} "
                        f"(known: {sorted(_REGISTRY)})") from None


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by id."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def known_ids() -> List[str]:
    return sorted(_REGISTRY)
