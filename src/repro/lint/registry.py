"""Rule registry: every lint rule self-registers at import time.

Two rule scopes share one id space:

* **file** rules are plain functions ``check(ctx) -> Iterable[(line,
  col, msg)]`` over a single :class:`~repro.lint.engine.ModuleContext`
  — the PR-3 model (``D``/``U``/``E``/``A``/``F`` families);
* **project** rules are functions ``check(project) -> Iterable[(path,
  line, col, msg, text)]`` over the whole-program
  :class:`~repro.lint.callgraph.ProjectContext` of linked module
  summaries — the semantic passes (``UD``/``DT``/``RT`` families).

The registry keys both by short id (``D001``, ``UD101``, ...) so the
engine, the CLI's ``--select``, the suppression comments, the SARIF
export, and the baseline all speak the same names.  Every rule also
carries a severity tier (``error`` or ``warning``); both fail the run,
but the tier is surfaced in reports and mapped to the SARIF ``level``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Tuple, TYPE_CHECKING, Union

from ..errors import LintError

if TYPE_CHECKING:  # pragma: no cover — import cycle guard only
    from .callgraph import ProjectContext
    from .engine import ModuleContext

#: What a file-scope rule's check function yields: (line, column, message).
RawViolation = Tuple[int, int, str]
#: What a project-scope rule yields: (path, line, column, message,
#: stripped source text of the flagged line).
RawProjectViolation = Tuple[str, int, int, str, str]
CheckFunction = Callable[["ModuleContext"], Iterable[RawViolation]]
ProjectCheckFunction = Callable[["ProjectContext"],
                                Iterable[RawProjectViolation]]

_VALID_SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Rule:
    """One registered invariant check."""

    id: str  # short id used in suppressions/baselines, e.g. "D001"
    name: str  # kebab-case slug, e.g. "unseeded-rng"
    family: str  # determinism | units | dimension | taint | round-trip | ...
    description: str  # one line: the invariant this rule guards
    check: Union[CheckFunction, ProjectCheckFunction]
    scope: str = "file"  # "file" | "project"
    severity: str = "error"  # "error" | "warning" (SARIF level)

    def run(self, ctx: "ModuleContext") -> Iterable[RawViolation]:
        if self.scope != "file":
            raise LintError(f"rule {self.id} is project-scoped")
        return self.check(ctx)  # type: ignore[arg-type]

    def run_project(self, project: "ProjectContext"
                    ) -> Iterable[RawProjectViolation]:
        if self.scope != "project":
            raise LintError(f"rule {self.id} is file-scoped")
        return self.check(project)  # type: ignore[arg-type]


_REGISTRY: Dict[str, Rule] = {}


def rule(rule_id: str, name: str, family: str, description: str,
         scope: str = "file", severity: str = "error"
         ) -> Callable[[Callable], Callable]:
    """Register ``check`` under ``rule_id`` (decorator)."""
    if scope not in ("file", "project"):
        raise LintError(f"rule {rule_id}: unknown scope {scope!r}")
    if severity not in _VALID_SEVERITIES:
        raise LintError(f"rule {rule_id}: unknown severity {severity!r}")

    def register(check: Callable) -> Callable:
        if rule_id in _REGISTRY:
            raise LintError(f"duplicate lint rule id: {rule_id}")
        _REGISTRY[rule_id] = Rule(id=rule_id, name=name, family=family,
                                  description=description, check=check,
                                  scope=scope, severity=severity)
        return check

    return register


def get_rule(rule_id: str) -> Rule:
    """Look a rule up by id; unknown ids are a caller error."""
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise LintError(f"unknown lint rule: {rule_id!r} "
                        f"(known: {sorted(_REGISTRY)})") from None


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by id."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def file_rules() -> List[Rule]:
    return [r for r in all_rules() if r.scope == "file"]


def project_rules() -> List[Rule]:
    return [r for r in all_rules() if r.scope == "project"]


def known_ids() -> List[str]:
    return sorted(_REGISTRY)
