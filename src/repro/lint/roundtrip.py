"""Round-trip completeness (``RT`` rules): resume must restore every
field.

``A002`` checks that a class defining ``to_jsonable`` also defines
``from_jsonable``; this pass checks the pair is *complete* — every
dataclass field is serialized by ``to_jsonable`` and restored by
``from_jsonable``.  The bug class it targets is the one PRs 2/4/8
each guarded by hand: add a field to ``RunResult``, forget the
``from_jsonable`` line, and every resumed checkpoint silently reads
zero for it — an energy-accounting error no test notices until a
resumed matrix disagrees with a fresh one.

Heuristics (deliberately conservative — a field counts as covered on
any *mention*):

* a ``for f in fields(...)`` loop covers all fields at once (the
  ``FrameTimeline`` idiom), as does ``cls(**data)`` / ``asdict``;
* otherwise a field is serialized if its name appears in
  ``to_jsonable`` as a string key or ``self.<field>`` access, and
  restored if it appears in ``from_jsonable`` as a string, keyword
  argument, or attribute;
* classes whose methods build payloads through helpers we cannot see
  into (``**`` unpacks, delegated construction) are skipped, not
  guessed at.

Rules:

* ``RT301`` — field never serialized by ``to_jsonable``;
* ``RT302`` — field never restored by ``from_jsonable`` (the
  silent-default-after-resume bug);
* ``RT303`` — ``from_jsonable`` reads a key ``to_jsonable`` never
  writes (stale key or typo).
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterator, List, Optional, Set, TYPE_CHECKING

from .asthelpers import dotted_name, is_dataclass
from .registry import RawProjectViolation, rule

if TYPE_CHECKING:  # pragma: no cover — import cycle guard only
    from .callgraph import ProjectContext


def _method(classdef: ast.ClassDef, name: str
            ) -> Optional[ast.FunctionDef]:
    for node in classdef.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _field_names(classdef: ast.ClassDef) -> List[str]:
    """Dataclass fields: annotated class-body names, minus ClassVar
    and private (underscore) attributes."""
    names: List[str] = []
    for node in classdef.body:
        if not isinstance(node, ast.AnnAssign) \
                or not isinstance(node.target, ast.Name):
            continue
        name = node.target.id
        if name.startswith("_"):
            continue
        annotation = ast.unparse(node.annotation)
        if "ClassVar" in annotation or "InitVar" in annotation:
            continue
        names.append(name)
    return names


def _covers_all_fields(method: ast.FunctionDef) -> bool:
    """Does the method use a fields()/asdict()/** idiom that touches
    every dataclass field without naming them?"""
    for node in ast.walk(method):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            short = name.split(".")[-1] if name else None
            if short in ("fields", "asdict", "astuple", "replace",
                         "vars"):
                return True
            if any(kw.arg is None for kw in node.keywords):  # **unpack
                return True
        if isinstance(node, ast.Dict) and any(
                key is None for key in node.keys):  # {**other}
            return True
    return False


def _mentions(method: ast.FunctionDef) -> Set[str]:
    """Every identifier the method plausibly uses to move a field:
    string constants, attribute names, and keyword-argument names."""
    out: Set[str] = set()
    for node in ast.walk(method):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            out.add(node.value)
        elif isinstance(node, ast.Attribute):
            out.add(node.attr)
        elif isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg is not None:
                    out.add(keyword.arg)
        elif isinstance(node, ast.Name):
            out.add(node.id)
    return out


def _written_keys(method: ast.FunctionDef) -> Set[str]:
    """String keys ``to_jsonable`` writes: dict-literal keys and
    subscript-store keys."""
    keys: Set[str] = set()
    for node in ast.walk(method):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) \
                        and isinstance(key.value, str):
                    keys.add(key.value)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    index = target.slice
                    if isinstance(index, ast.Constant) \
                            and isinstance(index.value, str):
                        keys.add(index.value)
    return keys


def _read_keys(method: ast.FunctionDef) -> Dict[str, int]:
    """String keys ``from_jsonable`` reads from its payload argument:
    ``data["k"]`` subscripts and ``data.get("k", ...)`` calls, mapped
    to the line they occur on."""
    args = method.args
    params = [a.arg for a in args.posonlyargs + args.args]
    payload = params[1] if len(params) > 1 else (params[0] if params
                                                 else None)
    if payload is None:
        return {}
    reads: Dict[str, int] = {}
    for node in ast.walk(method):
        if isinstance(node, ast.Subscript) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == payload \
                and isinstance(node.slice, ast.Constant) \
                and isinstance(node.slice.value, str):
            reads.setdefault(node.slice.value, node.lineno)
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "get" \
                and isinstance(node.func.value, ast.Name) \
                and node.func.value.id == payload \
                and node.args \
                and isinstance(node.args[0], ast.Constant) \
                and isinstance(node.args[0].value, str):
            reads.setdefault(node.args[0].value, node.lineno)
    return reads


def analyze_class_roundtrip(classdef: ast.ClassDef, lines: List[str]
                            ) -> List[Dict[str, Any]]:
    """RT findings for one class (empty when the pair is absent,
    complete, or unanalyzable)."""
    to_method = _method(classdef, "to_jsonable")
    from_method = _method(classdef, "from_jsonable")
    if to_method is None or from_method is None:
        return []  # A002's territory
    if not is_dataclass(classdef):
        return []
    fields = _field_names(classdef)
    if not fields:
        return []

    def text(lineno: int) -> str:
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1].strip()
        return ""

    findings: List[Dict[str, Any]] = []
    to_opaque = _covers_all_fields(to_method)
    from_opaque = _covers_all_fields(from_method)

    if not to_opaque:
        mentioned = _mentions(to_method)
        for field in fields:
            if field not in mentioned:
                findings.append({
                    "rule": "RT301", "line": to_method.lineno,
                    "col": to_method.col_offset,
                    "message": f"{classdef.name}.to_jsonable never "
                               f"serializes field {field!r} — it will "
                               "be lost on save",
                    "text": text(to_method.lineno)})
    if not from_opaque:
        mentioned = _mentions(from_method)
        for field in fields:
            if field not in mentioned:
                findings.append({
                    "rule": "RT302", "line": from_method.lineno,
                    "col": from_method.col_offset,
                    "message": f"{classdef.name}.from_jsonable never "
                               f"restores field {field!r} — resumed "
                               "payloads silently take the dataclass "
                               "default",
                    "text": text(from_method.lineno)})
    if not to_opaque and not from_opaque:
        written = _written_keys(to_method) | set(fields)
        for key, lineno in sorted(_read_keys(from_method).items()):
            if key not in written:
                findings.append({
                    "rule": "RT303", "line": lineno, "col": 0,
                    "message": f"{classdef.name}.from_jsonable reads "
                               f"key {key!r} that to_jsonable never "
                               "writes — stale key or typo",
                    "text": text(lineno)})
    return findings


def _findings(project: "ProjectContext", rule_id: str
              ) -> Iterator[RawProjectViolation]:
    yield from project.findings_for(rule_id)


@rule("RT301", "field-never-serialized", "round-trip",
      "to_jsonable serializes every dataclass field",
      scope="project")
def field_never_serialized(project: "ProjectContext"
                           ) -> Iterator[RawProjectViolation]:
    return _findings(project, "RT301")


@rule("RT302", "field-never-restored", "round-trip",
      "from_jsonable restores every dataclass field",
      scope="project")
def field_never_restored(project: "ProjectContext"
                         ) -> Iterator[RawProjectViolation]:
    return _findings(project, "RT302")


@rule("RT303", "stale-roundtrip-key", "round-trip",
      "from_jsonable only reads keys to_jsonable writes",
      scope="project", severity="warning")
def stale_roundtrip_key(project: "ProjectContext"
                        ) -> Iterator[RawProjectViolation]:
    return _findings(project, "RT303")
