"""The realtime per-frame loop and its result summary.

One frame of the loop, at capture time ``t = i / fps`` with deadline
``t + latency_budget``:

1. **Ladder** — :class:`repro.core.race_to_sleep.DeadlineLadder`
   predicts, from the live backlog, whether the full-size frame can
   arrive by the deadline, and degrades least-first (downscale →
   freeze → skip) only as far as the link state warrants.
2. **Encode** — the congestion controller's rate sets the target
   frame bytes (I-frames cost more, deterministic per-frame jitter
   from the splitmix64 mixer), which packetise at ``mtu_bytes``.
3. **Recovery choice** — ``adaptive`` picks FEC when a retransmission
   round trip would overshoot the deadline, else retransmission;
   ``fec`` / ``retx`` force the mode.
4. **Send** — packets offer to the :class:`BottleneckLink`; injected
   :class:`~repro.faults.FaultPlan` erasures compose on top of
   whatever the queue drops emergently.
5. **Recover** — XOR parity (:func:`repro.realtime.fec.apply_fec`) or
   bounded retransmissions with RTT-scaled backoff.  Packets still
   missing afterwards map to macroblock spans that flow into the
   existing concealment machinery.
6. **Account** — lateness vs. the deadline, race-to-sleep decode
   energy (decode at boost, then :func:`repro.decoder.power.plan_slack`
   sleeps the slack), radio airtime, and recovery byte overhead.

:func:`realtime_playback` then closes the loop with the paper
pipeline: the realtime arrivals become the pipeline's frame source and
the unrecovered blocks a concealment overlay, so recovery failures are
healed by the *same* ``conceal_blocks`` path (and charged the same
extra reference reads) as injected bit errors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # import cycle: core.pipeline is imported lazily
    from ..core.results import RunResult

import numpy as np

from ..config import SchemeConfig, SimulationConfig
from ..core.race_to_sleep import DeadlineLadder
from ..decoder.power import PowerState, PowerTracker, plan_slack
from ..errors import RealtimeError
from ..faults import FaultPlan, hash_u01
from ..video.synthesis import VideoProfile
from .congestion import DelayLossController
from .fec import apply_fec, parity_count
from .link import BottleneckLink

#: Hash-site discriminator for per-frame encode-size jitter.
_SITE_FRAME_SIZE = 0xF5A7

#: Encoded-size multipliers by frame type; chosen so a default GOP of
#: 30 (one I, twenty-nine P) averages ~1.0x the controller's target.
_I_FRAME_FACTOR = 2.8
_P_FRAME_FACTOR = 0.93

#: Half-width of the uniform per-frame size jitter (0.75x .. 1.25x).
_SIZE_JITTER = 0.25

#: Retransmissions stop being attempted this many latency budgets past
#: the deadline (bounded effort; the frame is long lost by then).
_RETX_HORIZON_BUDGETS = 1.0


@dataclass
class RealtimeResult:
    """Per-frame timelines and session totals of one realtime run.

    ``completion[i]`` is the time frame ``i``'s last needed packet
    arrived (``math.inf`` when nothing arrived or the frame was
    skipped); ``step[i]`` is the deadline-ladder step (0 nominal,
    1 downscale, 2 freeze, 3 skip); ``lost_blocks[i]`` counts
    macroblocks that recovery could not restore.
    """

    n_frames: int
    fps: float
    latency_budget: float  # s capture-to-delivery deadline
    blocks_per_frame: int

    completion: np.ndarray  # s per-frame arrival, inf if undelivered
    step: np.ndarray  # int8 ladder step per frame
    miss: np.ndarray  # bool deadline miss per frame
    lost_blocks: np.ndarray  # int32 unrecovered blocks per frame
    send_rate: np.ndarray  # float64 controller rate per frame, bytes/s
    queue_delay: np.ndarray  # float64 mean queueing delay per frame, s

    data_bytes: int = 0
    parity_bytes: int = 0
    retx_bytes: int = 0
    packets_sent: int = 0
    overflow_drops: int = 0
    red_drops: int = 0
    injected_drops: int = 0
    fec_frames: int = 0
    retx_frames: int = 0
    downscaled_frames: int = 0
    frozen_frames: int = 0
    skipped_frames: int = 0
    degradation_steps: int = 0

    decode_energy: float = 0.0  # J active decode
    sleep_energy: float = 0.0  # J slack (sleep + idle + transitions)
    radio_energy: float = 0.0  # J modem active + tail
    recovery_energy: float = 0.0  # J modem airtime of parity + retx

    #: Unrecovered-block spans per frame (block index ranges), the raw
    #: material of :meth:`block_overlay`.  Not serialized.
    lost_spans: Dict[int, List[Tuple[int, int]]] = field(
        default_factory=dict, repr=False)

    # -- derived SLOs ------------------------------------------------------

    @property
    def delivered(self) -> np.ndarray:
        """Frames whose content (possibly degraded) arrived."""
        return np.isfinite(self.completion)

    @property
    def deadline(self) -> np.ndarray:
        """Per-frame delivery deadlines."""
        return (np.arange(self.n_frames) / self.fps) + self.latency_budget

    @property
    def lateness(self) -> np.ndarray:
        """Per-delivered-frame lateness in seconds (0 = on time)."""
        delivered = self.delivered
        return np.maximum(
            0.0, self.completion[delivered] - self.deadline[delivered])

    def p99_lateness(self) -> float:
        """99th-percentile frame lateness (s) over delivered frames."""
        lateness = self.lateness
        if lateness.size == 0:
            return 0.0
        return float(np.quantile(lateness, 0.99))

    @property
    def deadline_miss_fraction(self) -> float:
        return float(self.miss.sum()) / max(1, self.n_frames)

    @property
    def content_blocks(self) -> int:
        """Blocks carried by nominal + downscaled frames."""
        content_frames = int((self.step <= 1).sum())
        return content_frames * self.blocks_per_frame

    @property
    def concealed_fraction(self) -> float:
        return int(self.lost_blocks.sum()) / max(1, self.content_blocks)

    @property
    def byte_overhead(self) -> float:
        """Recovery bytes (parity + retx) per data byte."""
        return (self.parity_bytes + self.retx_bytes) / max(1, self.data_bytes)

    @property
    def total_energy(self) -> float:
        return (self.decode_energy + self.sleep_energy + self.radio_energy)

    @property
    def duration(self) -> float:
        """Session wall length in seconds."""
        return self.n_frames / self.fps

    # -- pipeline bridge ---------------------------------------------------

    def block_overlay(self) -> Dict[int, np.ndarray]:
        """Unrecovered blocks per frame, for the pipeline's concealment.

        Frames the ladder froze or skipped lose *all* their blocks (the
        display repeats the previous frame wholesale); content frames
        lose the spans their unrecovered packets carried.
        """
        overlay: Dict[int, np.ndarray] = {}
        for i, spans in self.lost_spans.items():
            indices = np.concatenate(
                [np.arange(lo, hi, dtype=np.int64) for lo, hi in spans])
            overlay[i] = np.unique(indices)
        for i in np.flatnonzero(self.step >= 2):
            overlay[int(i)] = np.arange(self.blocks_per_frame,
                                        dtype=np.int64)
        return overlay

    def availability_times(self) -> np.ndarray:
        """Monotone per-frame availability for the pipeline frame source.

        Undelivered frames become "available" at their deadline — the
        pipeline then decodes a fully-concealed repeat instead of
        stalling forever on content that will never arrive.
        """
        times = np.where(self.delivered, self.completion, self.deadline)
        return np.maximum.accumulate(times)

    # -- serialization -----------------------------------------------------

    def to_jsonable(self) -> Dict[str, object]:
        """Plain-data form (derived SLOs recomputable on load)."""
        return {
            "n_frames": self.n_frames,
            "fps": self.fps,
            "latency_budget": self.latency_budget,
            "blocks_per_frame": self.blocks_per_frame,
            "completion": [None if math.isinf(c) else float(c)
                           for c in self.completion],
            "step": [int(s) for s in self.step],
            "miss": [bool(m) for m in self.miss],
            "lost_blocks": [int(b) for b in self.lost_blocks],
            "send_rate": [float(r) for r in self.send_rate],
            "queue_delay": [None if math.isinf(q) else float(q)
                            for q in self.queue_delay],
            "data_bytes": self.data_bytes,
            "parity_bytes": self.parity_bytes,
            "retx_bytes": self.retx_bytes,
            "packets_sent": self.packets_sent,
            "overflow_drops": self.overflow_drops,
            "red_drops": self.red_drops,
            "injected_drops": self.injected_drops,
            "fec_frames": self.fec_frames,
            "retx_frames": self.retx_frames,
            "downscaled_frames": self.downscaled_frames,
            "frozen_frames": self.frozen_frames,
            "skipped_frames": self.skipped_frames,
            "degradation_steps": self.degradation_steps,
            "decode_energy": self.decode_energy,
            "sleep_energy": self.sleep_energy,
            "radio_energy": self.radio_energy,
            "recovery_energy": self.recovery_energy,
            "lost_spans": {str(i): [[lo, hi] for lo, hi in spans]
                           for i, spans in self.lost_spans.items()},
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, object]) -> "RealtimeResult":
        """Inverse of :meth:`to_jsonable`."""
        def _floats(values: object, missing: float) -> np.ndarray:
            return np.asarray(
                [missing if v is None else float(v)
                 for v in values],  # type: ignore[union-attr]
                dtype=np.float64)

        return cls(
            n_frames=int(data["n_frames"]),  # type: ignore[arg-type]
            fps=float(data["fps"]),  # type: ignore[arg-type]
            latency_budget=float(data["latency_budget"]),  # type: ignore[arg-type]
            blocks_per_frame=int(data["blocks_per_frame"]),  # type: ignore[arg-type]
            completion=_floats(data["completion"], math.inf),
            step=np.asarray(data["step"], dtype=np.int8),
            miss=np.asarray(data["miss"], dtype=bool),
            lost_blocks=np.asarray(data["lost_blocks"], dtype=np.int32),
            send_rate=np.asarray(data["send_rate"], dtype=np.float64),
            queue_delay=_floats(data["queue_delay"], math.inf),
            data_bytes=int(data["data_bytes"]),  # type: ignore[arg-type]
            parity_bytes=int(data["parity_bytes"]),  # type: ignore[arg-type]
            retx_bytes=int(data["retx_bytes"]),  # type: ignore[arg-type]
            packets_sent=int(data["packets_sent"]),  # type: ignore[arg-type]
            overflow_drops=int(data["overflow_drops"]),  # type: ignore[arg-type]
            red_drops=int(data["red_drops"]),  # type: ignore[arg-type]
            injected_drops=int(data["injected_drops"]),  # type: ignore[arg-type]
            fec_frames=int(data["fec_frames"]),  # type: ignore[arg-type]
            retx_frames=int(data["retx_frames"]),  # type: ignore[arg-type]
            downscaled_frames=int(data["downscaled_frames"]),  # type: ignore[arg-type]
            frozen_frames=int(data["frozen_frames"]),  # type: ignore[arg-type]
            skipped_frames=int(data["skipped_frames"]),  # type: ignore[arg-type]
            degradation_steps=int(data["degradation_steps"]),  # type: ignore[arg-type]
            decode_energy=float(data["decode_energy"]),  # type: ignore[arg-type]
            sleep_energy=float(data["sleep_energy"]),  # type: ignore[arg-type]
            radio_energy=float(data["radio_energy"]),  # type: ignore[arg-type]
            recovery_energy=float(data["recovery_energy"]),  # type: ignore[arg-type]
            lost_spans={int(i): [(int(lo), int(hi)) for lo, hi in spans]
                        for i, spans in
                        data["lost_spans"].items()},  # type: ignore[union-attr]
        )


class RealtimeFrameSource:
    """Adapts realtime arrivals to the pipeline's ``FrameSource``."""

    def __init__(self, times: np.ndarray) -> None:
        self._times = times

    def frames_available(self, time: float) -> int:
        return int(np.searchsorted(self._times, time, side="right"))

    def time_when_available(self, count: int) -> float:
        if count <= 0:
            return 0.0
        if count > self._times.size:
            return math.inf
        return float(self._times[count - 1])


def _packetize(size: int, mtu: int) -> List[int]:
    """Split ``size`` bytes into mtu-sized packets (last one partial)."""
    if size <= 0:
        return []
    n_full, rest = divmod(size, mtu)
    sizes = [mtu] * n_full
    if rest:
        sizes.append(rest)
    return sizes


def simulate_realtime(config: SimulationConfig, n_frames: int = 600,
                      profile: Optional[VideoProfile] = None
                      ) -> RealtimeResult:
    """Run the realtime camera-to-display loop for ``n_frames``.

    Requires ``config.realtime.enabled``; ``profile`` (optional)
    contributes its mean content complexity to the encode sizes so the
    chaos matrix can sweep the paper's workloads.
    """
    rt = config.realtime
    if not rt.enabled:
        raise RealtimeError(
            "simulate_realtime needs RealtimeConfig(enabled=True)")
    video = config.video
    decoder = config.decoder
    psc = decoder.power_states
    radio = config.network.radio
    interval = video.frame_interval
    blocks_per_frame = video.blocks_per_frame
    complexity = profile.complexity_mean if profile is not None else 1.0

    link = BottleneckLink(rt)
    controller = DelayLossController(rt)
    ladder = DeadlineLadder(rt.downscale_factor, rt.freeze_fraction)
    plan = FaultPlan.from_config(config.faults)
    tracker = PowerTracker(psc)

    completion = np.full(n_frames, math.inf, dtype=np.float64)
    step_arr = np.zeros(n_frames, dtype=np.int8)
    miss = np.zeros(n_frames, dtype=bool)
    lost_blocks = np.zeros(n_frames, dtype=np.int32)
    send_rate = np.zeros(n_frames, dtype=np.float64)
    queue_delay_arr = np.zeros(n_frames, dtype=np.float64)
    lost_spans: Dict[int, List[Tuple[int, int]]] = {}

    data_bytes = parity_bytes = retx_bytes = packets_sent = 0
    fec_frames = retx_frames = 0
    airtime = 0.0
    recovery_airtime = 0.0
    fec_overhead = (1.0 / rt.fec_group) if rt.recovery != "retx" else 0.0

    for i in range(n_frames):
        t = i * interval
        deadline = t + rt.latency_budget
        link.drain(t)
        send_rate[i] = controller.rate

        is_i_frame = i % video.gop_length == 0
        type_factor = _I_FRAME_FACTOR if is_i_frame else _P_FRAME_FACTOR
        jitter = 1.0 - _SIZE_JITTER + 2.0 * _SIZE_JITTER * hash_u01(
            rt.seed, _SITE_FRAME_SIZE, i)
        base_size = (controller.rate / video.fps) * type_factor \
            * jitter * complexity

        if rt.ladder:
            def _predict(factor: float, now: float = t,
                         size: float = base_size) -> float:
                return link.predict_arrival(
                    now, size * factor * (1.0 + fec_overhead))
            step, factor = ladder.choose(deadline, _predict)
        else:
            step, factor = 0, 1.0
        step_arr[i] = step

        if step == 3:  # skip: nothing on the wire, full interval slack
            queue_delay_arr[i] = link.queue_delay(t)
            controller.observe(queue_delay_arr[i], 0.0)
            tracker.record_slack(plan_slack(
                interval, psc, psc.racing_transition_factor))
            continue

        size = max(1, int(round(base_size * factor)))
        sizes = _packetize(size, rt.mtu_bytes)
        n_data = len(sizes)
        injected = [plan.packet_lost(i, j, 0) if plan is not None else False
                    for j in range(n_data)]

        rtt = link.rtt_estimate(t)
        use_fec = (link.predict_arrival(t, size) + rtt > deadline
                   if rt.recovery == "adaptive" else rt.recovery == "fec")
        if use_fec:
            fec_frames += 1
        else:
            retx_frames += 1

        burst = link.send_burst(t, i, sizes, 0, injected)
        capacity = link.capacity(t)
        if capacity > 0:
            airtime += sum(sizes) / capacity
        data_bytes += sum(sizes)
        packets_sent += n_data
        effective = list(burst.arrival)

        first_pass_lost = sum(1 for a in burst.arrival if math.isinf(a))
        enqueued_delays = [d for a, d in zip(burst.arrival,
                                             burst.queue_delay) if d > 0.0
                           or not math.isinf(a)]
        mean_delay = (sum(enqueued_delays) / len(enqueued_delays)
                      if enqueued_delays else link.queue_delay(t))

        if use_fec:
            n_parity = parity_count(n_data, rt.fec_group)
            p_sizes = [rt.mtu_bytes] * n_parity
            p_injected = [plan.packet_lost(i, n_data + g, 0)
                          if plan is not None else False
                          for g in range(n_parity)]
            p_burst = link.send_burst(t, i, p_sizes, 0, p_injected,
                                      packet_offset=n_data)
            parity_bytes += sum(p_sizes)
            packets_sent += n_parity
            if capacity > 0:
                recovery_airtime += sum(p_sizes) / capacity
                airtime += sum(p_sizes) / capacity
            effective = apply_fec(effective, p_burst.arrival, rt.fec_group)
        else:
            horizon = deadline + _RETX_HORIZON_BUDGETS * rt.latency_budget
            for j, arrival in enumerate(effective):
                if not math.isinf(arrival):
                    continue
                for attempt in range(1, rt.max_retx + 1):
                    t_a = t + rtt * (attempt
                                     + rt.retx_rtt_factor * (attempt - 1))
                    if math.isinf(t_a) or t_a > horizon:
                        break
                    lost_again = (plan.packet_lost(i, j, attempt)
                                  if plan is not None else False)
                    a, _ = link.send_packet(t_a, i, j, attempt,
                                            sizes[j], lost_again)
                    retx_bytes += sizes[j]
                    packets_sent += 1
                    cap_a = link.capacity(t_a)
                    if cap_a > 0:
                        recovery_airtime += sizes[j] / cap_a
                        airtime += sizes[j] / cap_a
                    if not math.isinf(a):
                        effective[j] = a
                        break

        unrecovered = [j for j, a in enumerate(effective)
                       if math.isinf(a)]
        finite = [a for a in effective if not math.isinf(a)]
        if finite:
            completion[i] = max(finite)
        if step <= 1 and unrecovered:
            spans = []
            for j in unrecovered:
                lo = j * blocks_per_frame // n_data
                hi = (j + 1) * blocks_per_frame // n_data
                if hi > lo:
                    spans.append((lo, hi))
            if spans:
                lost_spans[i] = spans
                lost_blocks[i] = sum(hi - lo for lo, hi in spans)
        miss[i] = bool(unrecovered) or not finite \
            or completion[i] > deadline

        queue_delay_arr[i] = mean_delay
        controller.observe(mean_delay,
                           first_pass_lost / n_data if n_data else 0.0)

        # Race-to-sleep: decode at boost as soon as the frame lands,
        # then sleep the remaining slack of the frame interval.
        per_frame = (decoder.cycles_per_frame_i if is_i_frame
                     else decoder.cycles_per_frame_p)
        cycles = decoder.base_cycles + per_frame * complexity * factor
        decode_time = cycles / decoder.high_freq
        if finite:
            tracker.record_execution(decode_time, decoder.high_freq_power)
            slack = max(0.0, interval - decode_time)
        else:
            slack = interval
        tracker.record_slack(plan_slack(
            slack, psc, psc.racing_transition_factor))

    decode_energy = tracker.energy_by_state[PowerState.EXECUTION]
    sleep_energy = tracker.total_energy - decode_energy
    duration = n_frames * interval
    radio_energy = airtime * radio.active_power \
        + max(0.0, duration - airtime) * radio.tail_power

    result = RealtimeResult(
        n_frames=n_frames, fps=video.fps,
        latency_budget=rt.latency_budget,
        blocks_per_frame=blocks_per_frame,
        completion=completion, step=step_arr, miss=miss,
        lost_blocks=lost_blocks, send_rate=send_rate,
        queue_delay=queue_delay_arr,
        data_bytes=data_bytes, parity_bytes=parity_bytes,
        retx_bytes=retx_bytes, packets_sent=packets_sent,
        overflow_drops=link.overflow_drops, red_drops=link.red_drops,
        injected_drops=link.injected_drops,
        fec_frames=fec_frames, retx_frames=retx_frames,
        downscaled_frames=ladder.downscaled,
        frozen_frames=ladder.frozen, skipped_frames=ladder.skipped,
        degradation_steps=ladder.degradation_steps,
        decode_energy=decode_energy, sleep_energy=sleep_energy,
        radio_energy=radio_energy,
        recovery_energy=recovery_airtime * radio.active_power,
        lost_spans=lost_spans,
    )
    return result


def realtime_playback(scheme: SchemeConfig, config: SimulationConfig,
                      n_frames: int = 300,
                      profile: Optional[VideoProfile] = None
                      ) -> "RunResult":
    """Run the realtime loop, then the exact decode pipeline on top.

    The realtime arrivals become the pipeline's frame source and the
    unrecovered blocks a concealment overlay, so deadline misses and
    recovery failures are healed by the same ``conceal_blocks`` path —
    and charged the same extra reference reads — as injected bit
    errors.  Returns the pipeline's ``RunResult``.
    """
    from ..core.pipeline import simulate
    from ..video import workload

    realtime = simulate_realtime(config, n_frames=n_frames,
                                 profile=profile)
    source = profile if profile is not None else workload("V1")
    network_model = RealtimeFrameSource(realtime.availability_times())
    return simulate(source, scheme, n_frames=n_frames, config=config,
                    network_model=network_model,
                    block_loss_overlay=realtime.block_overlay())
