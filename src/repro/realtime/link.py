"""Deterministic bottleneck-queue link model (emergent loss + delay).

The link is a single FIFO bottleneck: packets enqueue into a finite
byte buffer that drains at the (piecewise-constant) service rate, then
cross a propagation delay.  Everything an impaired network does to a
realtime flow falls out of that little machine:

* **queueing delay** grows with the backlog the sender itself built;
* **droptail loss** strikes when a packet does not fit the buffer;
* **RED-style early drops** strike probabilistically once the fill
  crosses ``red_min_fill``, with probability ramping linearly to
  ``red_max_drop`` at ``red_max_fill`` — drawn from the same
  order-free splitmix64 mixer as :mod:`repro.faults`, keyed by
  ``(seed, site, frame, packet, attempt)``, so the drop schedule is a
  pure function of ``(seed, link params, traffic)`` and never depends
  on Python iteration order;
* **rate cliffs / RTT spikes** come from the config's
  ``rate_schedule`` / ``delay_schedule`` piecewise timelines.

Injected :class:`~repro.faults.FaultPlan` packet erasures model losses
*past* the bottleneck (the radio hop): an injected-lost packet still
traverses the queue and consumes service, so enabling injection cannot
change which packets the queue itself drops — injection composes with
emergent loss instead of reshuffling it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..config import RealtimeConfig
from ..errors import RealtimeError
from ..faults import hash_u01

#: Hash-site discriminator for emergent RED drops (style of the
#: :mod:`repro.faults` site constants; drawn from the *realtime* seed,
#: not the fault seed, so emergent and injected schedules never mix).
_SITE_RED = 0x4ED5


@dataclass
class BurstOutcome:
    """What the link did to one burst of packets.

    ``arrival[i]`` is ``math.inf`` for a packet that was dropped (by
    the queue) or erased (injected); ``queue_delay[i]`` is the
    queueing delay the packet saw at enqueue time (0.0 for drops that
    never entered the queue).
    """

    arrival: List[float]  # s absolute delivery time, inf if lost
    queue_delay: List[float]  # s spent queued at the bottleneck
    enqueued_bytes: int  # bytes that entered the queue


class BottleneckLink:
    """Single-bottleneck FIFO with finite buffer and scheduled capacity.

    The state is one ``(clock, backlog)`` pair; :meth:`drain` advances
    the clock and services the backlog by integrating the capacity
    schedule, so any non-decreasing sequence of send times yields the
    same evolution.  Out-of-order timestamps (a retransmission planned
    past the next frame's capture) are clamped to the current clock —
    the queue is a FIFO, so serialising them early only ever *advances*
    work, never reorders it.
    """

    def __init__(self, cfg: RealtimeConfig) -> None:
        if not cfg.enabled:
            raise RealtimeError("BottleneckLink needs RealtimeConfig.enabled")
        self.cfg = cfg
        self.clock = 0.0  # s, last drain time
        self.backlog = 0.0  # bytes currently queued
        self.overflow_drops = 0
        self.red_drops = 0
        self.injected_drops = 0
        self.delivered_packets = 0
        self._rate_times = tuple(t for t, _ in cfg.rate_schedule)

    # -- schedules ---------------------------------------------------------

    def capacity(self, t: float) -> float:
        """Service rate (bytes/s) in effect at time ``t``."""
        scale = 1.0
        for start, mult in self.cfg.rate_schedule:
            if t < start:
                break
            scale = mult
        return self.cfg.link_rate * scale

    def propagation_delay(self, t: float) -> float:
        """One-way propagation delay (s) in effect at time ``t``."""
        extra = 0.0
        for start, add in self.cfg.delay_schedule:
            if t < start:
                break
            extra = add
        return self.cfg.propagation_delay + extra

    # -- queue evolution ---------------------------------------------------

    def drain(self, upto: float) -> None:
        """Service the backlog up to time ``upto`` (no-op going back)."""
        if upto <= self.clock:
            return
        t = self.clock
        for boundary in self._rate_times:
            if boundary <= t:
                continue
            if boundary >= upto:
                break
            self.backlog = max(0.0, self.backlog
                               - self.capacity(t) * (boundary - t))
            t = boundary
        self.backlog = max(0.0, self.backlog
                           - self.capacity(t) * (upto - t))
        self.clock = upto

    def queue_delay(self, t: float) -> float:
        """Delay a packet enqueued *now* would see (current backlog)."""
        capacity = self.capacity(t)
        if capacity <= 0.0:
            return math.inf
        return self.backlog / capacity

    def rtt_estimate(self, t: float) -> float:
        """Round-trip estimate: both propagation legs + current queue."""
        return 2.0 * self.propagation_delay(t) + self.queue_delay(t)

    def predict_arrival(self, t: float, size: float) -> float:
        """Predicted delivery time of ``size`` more bytes sent at ``t``.

        Uses the current backlog and capacity; the deadline ladder
        feeds this its candidate encode sizes.
        """
        capacity = self.capacity(t)
        if capacity <= 0.0:
            return math.inf
        return t + (self.backlog + size) / capacity \
            + self.propagation_delay(t)

    # -- sending -----------------------------------------------------------

    def send_packet(self, t: float, frame_index: int, packet_index: int,
                    attempt: int, size: int,
                    injected_lost: bool) -> Tuple[float, float]:
        """Offer one packet to the queue at time ``t``.

        Returns ``(arrival, queue_delay)``; arrival is ``math.inf``
        when the packet was dropped or erased.
        """
        self.drain(t)
        t = self.clock  # out-of-order sends serialise at the clock
        cfg = self.cfg
        if self.backlog + size > cfg.queue_bytes:
            self.overflow_drops += 1
            return math.inf, 0.0
        fill = self.backlog / cfg.queue_bytes
        if fill > cfg.red_min_fill and cfg.red_max_drop > 0.0:
            ramp = ((fill - cfg.red_min_fill)
                    / (cfg.red_max_fill - cfg.red_min_fill))
            p_drop = cfg.red_max_drop * min(1.0, ramp)
            u = hash_u01(cfg.seed, _SITE_RED, frame_index, packet_index,
                         attempt)
            if u < p_drop:
                self.red_drops += 1
                return math.inf, 0.0
        self.backlog += size
        delay = self.queue_delay(t)
        arrival = t + delay + self.propagation_delay(t)
        if injected_lost:
            self.injected_drops += 1
            return math.inf, delay
        self.delivered_packets += 1
        return arrival, delay

    def send_burst(self, t: float, frame_index: int,
                   sizes: Sequence[int], attempt: int,
                   injected: Sequence[bool],
                   packet_offset: int = 0) -> BurstOutcome:
        """Offer a burst of packets (one frame, or its parity tail).

        ``packet_offset`` shifts the packet indices fed to the RED and
        injection draws so parity packets never share coordinates with
        data packets.
        """
        if len(sizes) != len(injected):
            raise RealtimeError("sizes and injected flags must align")
        arrival: List[float] = []
        queue_delay: List[float] = []
        enqueued = 0
        for j, size in enumerate(sizes):
            before = self.backlog
            a, d = self.send_packet(t, frame_index, packet_offset + j,
                                    attempt, size, injected[j])
            arrival.append(a)
            queue_delay.append(d)
            if self.backlog > before:
                enqueued += size
        return BurstOutcome(arrival=arrival, queue_delay=queue_delay,
                            enqueued_bytes=enqueued)
