"""Chaos-campaign harness: impairment regimes scored into SLOs.

A chaos campaign answers "how does the realtime stack degrade?" by
sweeping a set of *impairment regimes* — piecewise link-rate and
propagation-delay timelines layered onto ``RealtimeConfig`` — across
two session axes:

* the **matrix**: one session per paper workload (Table 1 profiles),
  so regressions are attributable to a content class;
* the **fleet**: sessions drawn from the heterogeneous population
  (:mod:`repro.fleet.population`), each with its own bottleneck rate
  from the drawn access bandwidth, so the SLOs reflect the device and
  bandwidth mix a deployment would see.

Scores land in exactly-mergeable aggregates (integer counters plus the
:mod:`repro.fleet.sketches` summaries), sharded the same way the fleet
engine shards: contiguous job stripes whose partials merge exactly, so
``shards=1`` and ``shards=N`` are bit-identical.  Every session's
config (seed, link rate, frame count) is a pure function of ``(seed,
regime, job)``, never of shard layout.

SLOs per ``(regime, cohort)``: deadline-miss fraction, p99 frame
lateness (log-binned histogram quantile), concealed-block fraction,
skipped/frozen/downscaled frame counts, and recovery-energy / total-
energy moments.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis import format_table
from ..config import RealtimeConfig, SimulationConfig
from ..errors import RealtimeError
from ..fleet.population import PopulationModel, PopulationSpec, default_population
from ..fleet.sketches import HistogramSketch, StreamingMoments, hash_u64_array
from ..units import MBPS, to_ms
from ..video import workload
from .session import RealtimeResult, simulate_realtime

#: Hash site for deriving per-session realtime seeds (style of the
#: :mod:`repro.faults` site constants).
_SITE_CHAOS_SEED = 0xC405

#: Impairment timelines repeat/hold within this horizon (s); sessions
#: are far shorter, and the last schedule entry holds beyond it.
_REGIME_HORIZON = 120.0

#: Bottleneck rates drawn from the population are clamped to this band
#: (bytes/s) so a pathological draw cannot stall the campaign.
_MIN_LINK_RATE = 0.5 * MBPS
_MAX_LINK_RATE = 40 * MBPS

#: Energy moments use a finer grid than the fleet default (recovery
#: energy per session is tens of millijoules).
_ENERGY_QUANTUM = 1e-6


def _periodic_dips(period: float, dip_len: float, factor: float
                   ) -> Tuple[Tuple[float, float], ...]:
    """A schedule that dips to ``factor`` for ``dip_len`` every ``period``."""
    entries: List[Tuple[float, float]] = []
    t = period - dip_len
    while t < _REGIME_HORIZON:
        entries.append((t, factor))
        entries.append((t + dip_len, 1.0))
        t += period
    return tuple(entries)


def _periodic_spikes(period: float, spike_len: float, extra: float
                     ) -> Tuple[Tuple[float, float], ...]:
    """A delay schedule adding ``extra`` seconds for ``spike_len``."""
    entries: List[Tuple[float, float]] = []
    t = period - spike_len
    while t < _REGIME_HORIZON:
        entries.append((t, extra))
        entries.append((t + spike_len, 0.0))
        t += period
    return tuple(entries)


@dataclass(frozen=True)
class ChaosRegime:
    """One impairment regime: schedule overlays on ``RealtimeConfig``."""

    key: str
    description: str
    rate_schedule: Tuple[Tuple[float, float], ...] = ()  # (s, multiplier)
    delay_schedule: Tuple[Tuple[float, float], ...] = ()  # (s, extra s)

    def apply(self, rt: RealtimeConfig) -> RealtimeConfig:
        """``rt`` with this regime's impairment timelines layered on."""
        return replace(rt, rate_schedule=self.rate_schedule,
                       delay_schedule=self.delay_schedule)


#: The default campaign: a calm control plus the three impairment
#: families the tentpole names (bursty loss, RTT spikes, cliffs).
CHAOS_REGIMES: Tuple[ChaosRegime, ...] = (
    ChaosRegime("calm", "unimpaired link (control)"),
    ChaosRegime("bursty-loss",
                "0.4 s rate collapses to 30 % every 3 s: queue "
                "overruns arrive in bursts",
                rate_schedule=_periodic_dips(3.0, 0.4, 0.30)),
    ChaosRegime("rtt-spike",
                "+90 ms one-way delay for 1 s every 5 s (bufferbloat "
                "episodes upstream)",
                delay_schedule=_periodic_spikes(5.0, 1.0, 0.090)),
    ChaosRegime("bandwidth-cliff",
                "6 s capacity cliffs to ~32 % every 12 s (cell "
                "handover / backhaul contention)",
                rate_schedule=_periodic_dips(12.0, 6.0, 0.32)),
)


@dataclass
class RegimeSLO:
    """Exactly-mergeable SLO aggregate for one (regime, cohort) cell."""

    regime: str
    cohort: str  # 'matrix' | 'fleet'
    sessions: int = 0
    frames: int = 0
    misses: int = 0
    skipped: int = 0
    frozen: int = 0
    downscaled: int = 0
    lost_blocks: int = 0
    content_blocks: int = 0
    lateness: HistogramSketch = field(default_factory=HistogramSketch)
    recovery_energy: StreamingMoments = field(
        default_factory=lambda: StreamingMoments(quantum=_ENERGY_QUANTUM))
    total_energy: StreamingMoments = field(
        default_factory=lambda: StreamingMoments(quantum=_ENERGY_QUANTUM))

    def add(self, result: RealtimeResult) -> None:
        """Fold one session's result into the aggregate."""
        self.sessions += 1
        self.frames += result.n_frames
        self.misses += int(result.miss.sum())
        self.skipped += result.skipped_frames
        self.frozen += result.frozen_frames
        self.downscaled += result.downscaled_frames
        self.lost_blocks += int(result.lost_blocks.sum())
        self.content_blocks += result.content_blocks
        self.lateness.add_array(result.lateness)
        self.recovery_energy.add_array(np.asarray([result.recovery_energy]))
        self.total_energy.add_array(np.asarray([result.total_energy]))

    def merge(self, other: "RegimeSLO") -> "RegimeSLO":
        """Exact merge of two partials (integer + sketch merges)."""
        if (self.regime, self.cohort) != (other.regime, other.cohort):
            raise RealtimeError("cannot merge SLOs of different cells")
        return RegimeSLO(
            regime=self.regime, cohort=self.cohort,
            sessions=self.sessions + other.sessions,
            frames=self.frames + other.frames,
            misses=self.misses + other.misses,
            skipped=self.skipped + other.skipped,
            frozen=self.frozen + other.frozen,
            downscaled=self.downscaled + other.downscaled,
            lost_blocks=self.lost_blocks + other.lost_blocks,
            content_blocks=self.content_blocks + other.content_blocks,
            lateness=self.lateness.merge(other.lateness),
            recovery_energy=self.recovery_energy.merge(
                other.recovery_energy),
            total_energy=self.total_energy.merge(other.total_energy),
        )

    @property
    def deadline_miss_fraction(self) -> float:
        return self.misses / max(1, self.frames)

    @property
    def p99_lateness(self) -> float:
        """p99 frame lateness in seconds (sketch quantile)."""
        if self.lateness.total == 0:
            return 0.0
        return self.lateness.quantile(0.99)

    @property
    def concealed_fraction(self) -> float:
        return self.lost_blocks / max(1, self.content_blocks)

    @property
    def degraded_fraction(self) -> float:
        """Frames the ladder touched (downscale/freeze/skip)."""
        return ((self.skipped + self.frozen + self.downscaled)
                / max(1, self.frames))

    def to_jsonable(self) -> Dict[str, object]:
        """Plain-data form."""
        return {
            "regime": self.regime,
            "cohort": self.cohort,
            "sessions": self.sessions,
            "frames": self.frames,
            "misses": self.misses,
            "skipped": self.skipped,
            "frozen": self.frozen,
            "downscaled": self.downscaled,
            "lost_blocks": self.lost_blocks,
            "content_blocks": self.content_blocks,
            "lateness": self.lateness.to_jsonable(),
            "recovery_energy": self.recovery_energy.to_jsonable(),
            "total_energy": self.total_energy.to_jsonable(),
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, object]) -> "RegimeSLO":
        """Inverse of :meth:`to_jsonable`."""
        return cls(
            regime=str(data["regime"]),
            cohort=str(data["cohort"]),
            sessions=int(data["sessions"]),  # type: ignore[arg-type]
            frames=int(data["frames"]),  # type: ignore[arg-type]
            misses=int(data["misses"]),  # type: ignore[arg-type]
            skipped=int(data["skipped"]),  # type: ignore[arg-type]
            frozen=int(data["frozen"]),  # type: ignore[arg-type]
            downscaled=int(data["downscaled"]),  # type: ignore[arg-type]
            lost_blocks=int(data["lost_blocks"]),  # type: ignore[arg-type]
            content_blocks=int(data["content_blocks"]),  # type: ignore[arg-type]
            lateness=HistogramSketch.from_jsonable(
                data["lateness"]),  # type: ignore[arg-type]
            recovery_energy=StreamingMoments.from_jsonable(
                data["recovery_energy"]),  # type: ignore[arg-type]
            total_energy=StreamingMoments.from_jsonable(
                data["total_energy"]),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class _ChaosJob:
    """One session of the campaign (pure data, shard-independent)."""

    regime_index: int
    cohort: str  # 'matrix' | 'fleet'
    profile_key: str
    link_rate: float  # bytes/s bottleneck for this session
    n_frames: int
    rt_seed: int


@dataclass
class ChaosResult:
    """Campaign outcome: one :class:`RegimeSLO` per (regime, cohort)."""

    seed: int
    n_jobs: int
    regimes: Tuple[str, ...]
    slos: Dict[str, RegimeSLO]  # keyed '<regime>/<cohort>'

    def slo(self, regime: str, cohort: str) -> RegimeSLO:
        """The aggregate for one campaign cell."""
        key = f"{regime}/{cohort}"
        if key not in self.slos:
            raise RealtimeError(f"no SLO cell {key!r} in this campaign")
        return self.slos[key]

    def report(self) -> str:
        """Human-readable SLO table, one row per (regime, cohort)."""
        rows = []
        for key in sorted(self.slos):
            s = self.slos[key]
            rows.append([
                s.regime, s.cohort, s.sessions,
                round(100.0 * s.deadline_miss_fraction, 2),
                round(to_ms(s.p99_lateness), 2),
                round(100.0 * s.concealed_fraction, 3),
                round(100.0 * s.degraded_fraction, 2),
                round(s.recovery_energy.mean, 4),
                round(s.total_energy.mean, 3),
            ])
        return format_table(
            ["regime", "cohort", "sessions", "miss%", "p99 late ms",
             "concealed%", "degraded%", "recovery J", "energy J"],
            rows, title=f"chaos campaign ({self.n_jobs} sessions)")

    def to_jsonable(self) -> Dict[str, object]:
        """Plain-data form."""
        return {
            "seed": self.seed,
            "n_jobs": self.n_jobs,
            "regimes": list(self.regimes),
            "slos": {key: slo.to_jsonable()
                     for key, slo in sorted(self.slos.items())},
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, object]) -> "ChaosResult":
        """Inverse of :meth:`to_jsonable`."""
        slos = {key: RegimeSLO.from_jsonable(value)
                for key, value in data["slos"].items()}  # type: ignore[union-attr]
        return cls(
            seed=int(data["seed"]),  # type: ignore[arg-type]
            n_jobs=int(data["n_jobs"]),  # type: ignore[arg-type]
            regimes=tuple(data["regimes"]),  # type: ignore[arg-type]
            slos=slos,
        )


#: Default matrix axis: one workload per Table-1 content class
#: (TV, timelapse, movie trailer, game capture).
DEFAULT_MATRIX_VIDEOS = ("V1", "V2", "V5", "V12")


def _build_jobs(config: SimulationConfig,
                regimes: Sequence[ChaosRegime],
                videos: Sequence[str], sessions: int, n_frames: int,
                fleet_frame_cap: int, seed: int,
                spec: Optional[PopulationSpec]) -> List[_ChaosJob]:
    """The deterministic job list (regime-major, matrix before fleet)."""
    rt = config.realtime
    jobs: List[_ChaosJob] = []
    model: Optional[PopulationModel] = None
    if sessions > 0:
        model = PopulationModel(spec or default_population(), seed=seed)
        chunk = model.draw_chunk(0, sessions)
        n_titles = len(model.spec.titles)
    for r_idx, _regime in enumerate(regimes):
        for v_idx, key in enumerate(videos):
            rt_seed = int(hash_u64_array(
                seed, _SITE_CHAOS_SEED,
                np.asarray([r_idx * 65536 + v_idx], dtype=np.int64))[0]
                >> np.uint64(1))
            jobs.append(_ChaosJob(
                regime_index=r_idx, cohort="matrix", profile_key=key,
                link_rate=rt.link_rate, n_frames=n_frames,
                rt_seed=rt_seed))
        if model is None:
            continue
        for s in range(sessions):
            uid = int(chunk.uid[s])
            rt_seed = int(hash_u64_array(
                seed, _SITE_CHAOS_SEED,
                np.asarray([(r_idx + 1) * (1 << 32) + uid],
                           dtype=np.int64))[0] >> np.uint64(1))
            link_rate = float(np.clip(chunk.bandwidth[s],
                                      _MIN_LINK_RATE, _MAX_LINK_RATE))
            frames = int(chunk.duration_seconds[s] * config.video.fps)
            frames = max(60, min(fleet_frame_cap, frames))
            profile_key = videos[int(chunk.title[s]) % len(videos)] \
                if n_titles else videos[0]
            jobs.append(_ChaosJob(
                regime_index=r_idx, cohort="fleet",
                profile_key=profile_key, link_rate=link_rate,
                n_frames=frames, rt_seed=rt_seed))
    return jobs


def _run_job(job: _ChaosJob, config: SimulationConfig,
             regime: ChaosRegime) -> RealtimeResult:
    """Execute one campaign session (pure function of the job)."""
    rt = config.realtime
    start_rate = max(rt.min_rate,
                     min(rt.max_rate, 0.5 * job.link_rate))
    rt_job = replace(regime.apply(rt), link_rate=job.link_rate,
                     start_rate=start_rate, seed=job.rt_seed)
    cfg = replace(config, realtime=rt_job)
    return simulate_realtime(cfg, n_frames=job.n_frames,
                             profile=workload(job.profile_key))


def _stripes(n_jobs: int, shards: int) -> List[range]:
    """Contiguous job stripes, one per shard (some may be empty)."""
    base, extra = divmod(n_jobs, shards)
    stripes = []
    lo = 0
    for shard in range(shards):
        size = base + (1 if shard < extra else 0)
        stripes.append(range(lo, lo + size))
        lo += size
    return stripes


def run_chaos(config: Optional[SimulationConfig] = None,
              regimes: Sequence[ChaosRegime] = CHAOS_REGIMES,
              videos: Sequence[str] = DEFAULT_MATRIX_VIDEOS,
              sessions: int = 32, n_frames: int = 360,
              fleet_frame_cap: int = 480, seed: int = 0,
              shards: int = 1,
              spec: Optional[PopulationSpec] = None) -> ChaosResult:
    """Run the chaos campaign; exactly shard-invariant.

    ``sessions`` fleet sessions plus one matrix session per ``videos``
    entry are scored under every regime.  ``config.realtime`` supplies
    the base link/recovery parameters (it is force-enabled for the
    campaign); each regime layers its impairment timelines on top.
    """
    if shards < 1:
        raise RealtimeError("shards must be >= 1")
    cfg = config or SimulationConfig()
    if not cfg.realtime.enabled:
        cfg = replace(cfg, realtime=replace(cfg.realtime, enabled=True))
    jobs = _build_jobs(cfg, regimes, videos, sessions, n_frames,
                       fleet_frame_cap, seed, spec)

    partials: List[Dict[str, RegimeSLO]] = []
    for stripe in _stripes(len(jobs), shards):
        slos: Dict[str, RegimeSLO] = {}
        for job_index in stripe:
            job = jobs[job_index]
            regime = regimes[job.regime_index]
            key = f"{regime.key}/{job.cohort}"
            if key not in slos:
                slos[key] = RegimeSLO(regime=regime.key,
                                      cohort=job.cohort)
            slos[key].add(_run_job(job, cfg, regime))
        partials.append(slos)

    merged: Dict[str, RegimeSLO] = {}
    for regime in regimes:
        for cohort in ("matrix", "fleet"):
            if cohort == "fleet" and sessions == 0:
                continue
            merged[f"{regime.key}/{cohort}"] = RegimeSLO(
                regime=regime.key, cohort=cohort)
    for partial in partials:
        for key, slo in partial.items():
            merged[key] = merged[key].merge(slo)
    return ChaosResult(seed=seed, n_jobs=len(jobs),
                       regimes=tuple(r.key for r in regimes),
                       slos=merged)
