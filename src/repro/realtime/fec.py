"""XOR parity-group FEC arithmetic.

The realtime sender protects each frame with single-parity XOR groups:
every ``group`` consecutive data packets get one parity packet that is
the bitwise XOR of the group.  XOR parity recovers **exactly one**
erasure per group — the missing packet is the XOR of the survivors and
the parity — and nothing more; a group with two losses keeps them.

The functions here are pure arithmetic over arrival times: a recovered
packet's content becomes available only when every *other* packet of
its group plus the parity has arrived (the XOR needs all of them), so
FEC trades constant byte overhead for zero extra round trips — which
is precisely why it wins over retransmission when the RTT does not fit
the latency budget.
"""

from __future__ import annotations

import math
from typing import List, Sequence


def parity_count(n_data: int, group: int) -> int:
    """Parity packets protecting ``n_data`` data packets."""
    if n_data <= 0:
        return 0
    return (n_data + group - 1) // group


def apply_fec(data_arrival: Sequence[float],
              parity_arrival: Sequence[float],
              group: int) -> List[float]:
    """Effective per-data-packet arrival times after XOR recovery.

    ``data_arrival[i]`` is the wire arrival of data packet ``i``
    (``math.inf`` if lost); ``parity_arrival[g]`` likewise for the
    parity of group ``g``.  A group with exactly one lost data packet
    and a delivered parity recovers: the lost packet's effective
    arrival becomes the time the last needed packet arrived.  All
    other losses stay ``math.inf``.
    """
    out = list(data_arrival)
    n = len(data_arrival)
    for g in range(len(parity_arrival)):
        lo, hi = g * group, min((g + 1) * group, n)
        lost = [i for i in range(lo, hi) if math.isinf(data_arrival[i])]
        if len(lost) != 1 or math.isinf(parity_arrival[g]):
            continue
        survivors = [data_arrival[i] for i in range(lo, hi) if i != lost[0]]
        out[lost[0]] = max(survivors + [parity_arrival[g]])
    return out
