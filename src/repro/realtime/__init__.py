"""Realtime (live/interactive) video mode with emergent impairments.

Where the VOD path (:mod:`repro.network`) streams segments into a
playback buffer over a *given* bandwidth trace, this package simulates
a camera-to-display loop against a hard per-frame latency budget, and
its impairments are **emergent** rather than scripted:

* :mod:`~repro.realtime.link` — a deterministic bottleneck-queue link
  (token-bucket service, finite queue, droptail + RED-style early
  drops, propagation delay).  Loss and delay fall out of offered load
  vs. service rate; :class:`repro.faults.FaultPlan` packet erasures
  compose on top without perturbing the queue dynamics.
* :mod:`~repro.realtime.congestion` — a GCC-style delay-gradient +
  loss-backoff controller pacing the per-frame send rate.
* :mod:`~repro.realtime.fec` — XOR parity groups and the FEC-vs-
  retransmission arithmetic.
* :mod:`~repro.realtime.session` — the per-frame loop: deadline
  ladder (:class:`repro.core.race_to_sleep.DeadlineLadder`), recovery,
  race-to-sleep energy accounting, and the
  :class:`~repro.realtime.session.RealtimeResult` summary; plus the
  bridge that feeds arrivals and unrecovered blocks into the exact
  decode pipeline (:func:`~repro.realtime.session.realtime_playback`).
* :mod:`~repro.realtime.chaos` — the chaos-campaign harness sweeping
  impairment regimes across the workload matrix and the fleet
  population into exactly-mergeable SLO aggregates.

Everything is gated behind ``RealtimeConfig(enabled=True)``; with the
default config this package is never imported by the paper pipeline.
"""

from .chaos import CHAOS_REGIMES, ChaosRegime, ChaosResult, RegimeSLO, run_chaos
from .congestion import DelayLossController
from .fec import apply_fec, parity_count
from .link import BottleneckLink
from .session import RealtimeResult, realtime_playback, simulate_realtime

__all__ = [
    "BottleneckLink",
    "CHAOS_REGIMES",
    "ChaosRegime",
    "ChaosResult",
    "DelayLossController",
    "RegimeSLO",
    "RealtimeResult",
    "apply_fec",
    "parity_count",
    "realtime_playback",
    "run_chaos",
    "simulate_realtime",
]
