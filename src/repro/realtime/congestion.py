"""Delay/loss-based congestion control for the realtime sender.

A small GCC-flavoured controller: it watches the *queue-delay
gradient* (is the bottleneck backlog growing?) and the per-frame loss
fraction, and adjusts a target send rate multiplicatively —

* loss above ``loss_threshold`` → back off proportionally to the loss
  (the TCP-friendly half of GCC);
* queue delay rising faster than ``gradient_threshold`` per frame, or
  a standing queue above ``delay_target`` → overuse, decrease by
  ``decrease_factor`` (the delay half: react *before* the queue
  overflows — the absolute target drains a sawtooth that would
  otherwise park the queue at the RED onset);
* otherwise → probe upward by ``increase_factor``.

The controller is pure state-machine arithmetic — no randomness, no
clocks — so a (seed, config) pair fully determines the rate trajectory
given the link's emergent feedback.
"""

from __future__ import annotations

import math

from ..config import RealtimeConfig

#: Hard floor on the multiplicative loss backoff: even a 100 % loss
#: frame halves the rate rather than zeroing it (mirrors GCC).
_MAX_LOSS_BACKOFF = 0.5


class DelayLossController:
    """Per-frame send-rate governor (bytes/s)."""

    def __init__(self, cfg: RealtimeConfig) -> None:
        self.cfg = cfg
        self.rate = cfg.start_rate  # bytes/s current target
        self._prev_delay = 0.0
        self.loss_events = 0
        self.overuse_events = 0

    def observe(self, queue_delay: float, loss_fraction: float) -> float:
        """Fold one frame's feedback into the rate; returns the new rate.

        ``queue_delay`` is the mean queueing delay the frame's packets
        saw (infinite delays from a dead link are treated as maximal
        overuse); ``loss_fraction`` counts losses *before* recovery —
        the wire signal a real controller would see.
        """
        cfg = self.cfg
        if math.isinf(queue_delay):
            gradient = math.inf
        else:
            gradient = queue_delay - self._prev_delay
            self._prev_delay = queue_delay
        if loss_fraction > cfg.loss_threshold:
            self.loss_events += 1
            self.rate *= max(_MAX_LOSS_BACKOFF, 1.0 - 0.5 * loss_fraction)
        elif (gradient > cfg.gradient_threshold
              or queue_delay > cfg.delay_target):
            self.overuse_events += 1
            self.rate *= cfg.decrease_factor
        else:
            self.rate *= cfg.increase_factor
        self.rate = min(cfg.max_rate, max(cfg.min_rate, self.rate))
        return self.rate
