"""The DC-side MACH buffer (paper Sec. 5.1, Fig. 10b).

When a frame finishes decoding its MACH is dumped to memory; the DC
uses those dumps to serve *digest*-indexed block records without
re-reading the blocks from the frame buffers.  The buffer holds up to
``capacity`` digest-tagged blocks (the paper picks 2 K entries = 96 KB)
and evicts oldest-first when over capacity — the knob Fig. 12b sweeps.

Two fill policies:

* **lazy** (default) — a digest is fetched into the buffer on first
  use; the miss costs the DC one dump-translation read plus the block
  fetch.  Subsequent uses (same frame or later frames) hit.
* **eager** — each frame's whole dump is prefetched before the scan,
  as the paper describes; every dumped entry costs one block fetch up
  front and digest lookups then always hit while resident.

Both policies are exercised by the display benchmarks; lazy is the
default because at the scaled simulation resolution an eager prefetch
of a full dump is disproportionately large relative to a frame (see
DESIGN.md section 2 on metadata scale effects).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Tuple

import numpy as np

from ..errors import ConfigError


class MachBuffer:
    """Digest-indexed block store with FIFO capacity eviction."""

    def __init__(self, capacity_entries: int, policy: str = "lazy") -> None:
        if capacity_entries < 1:
            raise ConfigError("MACH buffer needs at least one entry")
        if policy not in ("lazy", "eager"):
            raise ConfigError(f"unknown fill policy {policy!r}")
        self.capacity = capacity_entries
        self.policy = policy
        self._resident: "OrderedDict[int, None]" = OrderedDict()
        self._sorted: np.ndarray | None = None
        self.hits = 0
        self.misses = 0
        self.installed = 0
        self.evicted = 0

    # -- filling -----------------------------------------------------------

    def install(self, digests: np.ndarray) -> int:
        """Insert digests (deduplicated); returns how many were new."""
        new = 0
        for digest in np.asarray(digests, dtype=np.uint64):
            key = int(digest)
            if key in self._resident:
                self._resident.move_to_end(key)
            else:
                self._resident[key] = None
                new += 1
        self.installed += new
        self._evict_over_capacity()
        return new

    def _install_new(self, digests: np.ndarray) -> None:
        """Bulk insert of digests known to be absent, in array order."""
        self._resident.update(dict.fromkeys(digests.tolist()))
        self.installed += len(digests)
        self._evict_over_capacity()

    def _evict_over_capacity(self) -> None:
        self._sorted = None
        while len(self._resident) > self.capacity:
            self._resident.popitem(last=False)
            self.evicted += 1

    def prefetch_dump(self, digests: np.ndarray) -> int:
        """Eager policy: load one frame's dump; returns entries fetched."""
        return self.install(digests)

    # -- lookups ------------------------------------------------------------

    def process_frame(self, digests: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Serve one frame's digest-indexed records in scan order.

        Returns (hit mask, unique missed digests).  Under the lazy
        policy, the first use of a non-resident digest misses and
        installs it, so its later occurrences in the same frame hit —
        which the vectorized form computes without a Python loop over
        every record.
        """
        digests = np.asarray(digests, dtype=np.uint64)
        n = len(digests)
        if n == 0:
            return np.zeros(0, dtype=bool), np.empty(0, dtype=np.uint64)
        resident_array = self._sorted
        if resident_array is None:
            resident_array = np.sort(np.fromiter(
                self._resident.keys(), dtype=np.uint64,
                count=len(self._resident)))
            self._sorted = resident_array
        # Sort-based unique: the stable argsort makes order[starts] each
        # digest's first occurrence (what np.unique's return_index gives).
        order = np.argsort(digests, kind="stable")
        sorted_d = digests[order]
        is_start = np.empty(n, dtype=bool)
        is_start[0] = True
        is_start[1:] = sorted_d[1:] != sorted_d[:-1]
        inverse = np.empty(n, dtype=np.int64)
        inverse[order] = np.cumsum(is_start) - 1
        starts = np.flatnonzero(is_start)
        uniques = sorted_d[starts]
        first_index = order[starts]
        if len(resident_array):
            pos = np.minimum(
                np.searchsorted(resident_array, uniques),
                len(resident_array) - 1)
            resident_unique = resident_array[pos] == uniques
        else:
            resident_unique = np.zeros(len(uniques), dtype=bool)
        if self.policy == "eager":
            hits = resident_unique[inverse]
            missed = uniques[~resident_unique]
        else:
            is_first_use = np.arange(n) == first_index[inverse]
            hits = resident_unique[inverse] | ~is_first_use
            missed = uniques[~resident_unique]
            if len(missed):
                self._install_new(missed)
        self.hits += int(hits.sum())
        self.misses += int((~hits).sum())
        return hits, missed

    # -- metrics -------------------------------------------------------------

    @property
    def resident_entries(self) -> int:
        return len(self._resident)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
