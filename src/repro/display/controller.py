"""Display controller: the 60 Hz vsync clock and frame-drop detection.

The DC checks the frame buffer at every refresh; if the next frame is
present it scans it out over the active portion of the refresh
interval, otherwise it re-scans the previous frame and records a drop
(paper Sec. 2.1, "Displaying").  The actual read *traffic* of a scan is
produced by :mod:`repro.core.readpath`; this class owns the clock and
the bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..config import DisplayConfig


@dataclass
class DisplayStats:
    """Outcome counters for a playback run."""

    frames_shown: int = 0
    drops: int = 0
    dropped_frames: List[int] = field(default_factory=list)

    @property
    def refreshes(self) -> int:
        return self.frames_shown + self.drops

    @property
    def drop_rate(self) -> float:
        return self.drops / self.refreshes if self.refreshes else 0.0


class DisplayController:
    """Vsync scheduling plus drop accounting."""

    def __init__(self, config: DisplayConfig, scan_duty: float = 0.85,
                 start_offset: float = 0.0) -> None:
        self.config = config
        self.scan_duty = scan_duty
        self.start_offset = start_offset
        self.stats = DisplayStats()

    def vsync_time(self, slot: int) -> float:
        """When refresh ``slot`` begins (frame ``slot`` is needed)."""
        return self.start_offset + slot * self.config.refresh_interval

    def scan_window(self, slot: int) -> Tuple[float, float]:
        """The (start, end) of the active scan within refresh ``slot``."""
        start = self.vsync_time(slot)
        return start, start + self.config.refresh_interval * self.scan_duty

    def record_refresh(self, frame_index: int, ready: bool) -> None:
        """Log whether ``frame_index`` made its refresh."""
        if ready:
            self.stats.frames_shown += 1
        else:
            self.stats.drops += 1
            self.stats.dropped_frames.append(frame_index)
