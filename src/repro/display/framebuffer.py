"""Frame-buffer pool.

The decoded-frame buffers between the VD and the DC.  The baseline uses
triple buffering; batching needs roughly ``batch + 2`` buffers; MACH
additionally *retains* up to ``num_machs`` displayed frames because
newer frames hold pointers into them (paper Sec. 5.1 and Fig. 12a).

Two kinds of accounting coexist:

* **address-space slots** — every live frame owns a fixed-size slot
  (full decoded frame plus metadata headroom), which gives deterministic
  physical addresses for the DRAM model;
* **footprint bytes** — what the frame actually *wrote* (compacted
  frames are smaller under MACH), which is the paper's memory-capacity
  metric.  ``peak_footprint`` backs Fig. 12a.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import SchedulingError
from .. import config as _config


@dataclass
class FrameBufferSlot:
    """One live frame's buffer reservation."""

    frame_index: int
    base: int
    footprint: int = 0  # bytes actually written (set after writeback)
    displayed: bool = False


class FrameBufferPool:
    """Slot allocator over a contiguous frame-buffer region.

    A frame is *live* from decode start until it has been displayed
    **and** can no longer be referenced (it has fallen out of the MACH
    retention window).  The pool refuses to admit a new frame when all
    slots are live — which is exactly the back-pressure that paces
    batched decoding.
    """

    #: Distinct DRAM-row phases a slot base can take (see below).
    PHASE_SLOTS = 16

    def __init__(self, region_base: int, slot_bytes: int, slots: int,
                 retention: int = 0, phase_span: int = 0) -> None:
        if slots < 2:
            raise SchedulingError("need at least two frame buffers")
        self.region_base = region_base
        self.slot_bytes = slot_bytes
        self.slots = slots
        self.retention = retention
        # Buffers in a real system land at allocator-dependent physical
        # addresses, so the *bank phase* between any two buffers is
        # effectively arbitrary.  Give each slot a deterministic
        # pseudo-random row offset (and pad the stride accordingly) so
        # that concurrent sequential sweeps over two buffers are not
        # systematically bank-aligned.
        self.phase_span = phase_span
        self._stride = slot_bytes + phase_span * self.PHASE_SLOTS
        self._live: Dict[int, FrameBufferSlot] = {}
        self._displayed_upto = -1
        self.peak_live_slots = 0
        self.peak_footprint = 0

    def _slot_base(self, frame_index: int) -> int:
        slot = frame_index % self.slots
        phase = ((slot * 0x9E3779B9) >> 8) % self.PHASE_SLOTS
        return self.region_base + slot * self._stride + phase * self.phase_span

    @property
    def region_bytes(self) -> int:
        """Total address space the pool occupies."""
        return self.slots * self._stride

    # -- admission --------------------------------------------------------

    def can_admit(self) -> bool:
        return len(self._live) < self.slots

    def admit(self, frame_index: int) -> FrameBufferSlot:
        """Reserve a slot for ``frame_index`` (decode is about to start)."""
        if not self.can_admit():
            raise SchedulingError(
                f"frame buffer pool full ({self.slots} slots) "
                f"admitting frame {frame_index}")
        if frame_index in self._live:
            raise SchedulingError(f"frame {frame_index} already admitted")
        slot = FrameBufferSlot(frame_index=frame_index,
                               base=self._slot_base(frame_index))
        self._live[frame_index] = slot
        self.peak_live_slots = max(self.peak_live_slots, len(self._live))
        return slot

    def set_footprint(self, frame_index: int, footprint: int) -> None:
        """Record how many bytes the frame's writeback actually used."""
        self._live[frame_index].footprint = footprint
        self.peak_footprint = max(self.peak_footprint, self.live_footprint)

    # -- lifecycle ----------------------------------------------------------

    def slot(self, frame_index: int) -> FrameBufferSlot:
        try:
            return self._live[frame_index]
        except KeyError:
            raise SchedulingError(
                f"frame {frame_index} is not live in the pool") from None

    def is_live(self, frame_index: int) -> bool:
        return frame_index in self._live

    def mark_displayed(self, frame_index: int) -> None:
        """Display consumed the frame; retire everything now unreachable.

        A frame is retired once displayed and older than the newest
        displayed frame by at least ``retention`` (no MACH pointer can
        reach it any more).
        """
        if frame_index in self._live:
            self._live[frame_index].displayed = True
        self._displayed_upto = max(self._displayed_upto, frame_index)
        horizon = self._displayed_upto - self.retention
        for index in [i for i in self._live if i <= horizon
                      and self._live[i].displayed]:
            del self._live[index]

    # -- metrics ------------------------------------------------------------

    @property
    def live_count(self) -> int:
        return len(self._live)

    @property
    def live_indices(self) -> list:
        """Frame indices currently holding a slot, oldest first."""
        return sorted(self._live)

    @property
    def live_footprint(self) -> int:
        return sum(slot.footprint for slot in self._live.values())

    def peak_footprint_native(self, video: "_config.VideoConfig") -> float:
        """Peak footprint rescaled to 4K bytes (for MB reports)."""
        return self.peak_footprint * video.scale_to_native
