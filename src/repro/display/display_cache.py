"""The 16 KB direct-mapped display cache (paper Sec. 5.1).

Two implementations with identical semantics:

* :class:`~repro.cache.DirectMappedCache` (scalar, via the wrapper
  below) for incremental use and tests;
* :func:`simulate_direct_mapped`, a vectorized replay that exploits a
  property of direct-mapped caches: an access hits iff the *previous
  access to the same slot* carried the same tag.  Grouping the trace by
  slot makes the whole frame's hit mask a few numpy passes.

Equivalence of the two is asserted in tests.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..cache import DirectMappedCache
from ..cache.base import CacheStats
from ..config import DisplayConfig


class DisplayCache:
    """Scalar display cache keyed by line-granular addresses."""

    def __init__(self, config: DisplayConfig, line_bytes: int = 64) -> None:
        self.line_bytes = line_bytes
        self._cache = DirectMappedCache.from_bytes(
            config.display_cache_bytes, line_bytes)

    def access(self, address: int) -> bool:
        """Probe the line containing ``address``; True on hit."""
        return self._cache.access(address // self.line_bytes).is_hit

    @property
    def stats(self) -> CacheStats:
        return self._cache.stats


def simulate_direct_mapped(
    line_keys: np.ndarray,
    n_slots: int,
    initial_state: Dict[int, int] | None = None,
) -> Tuple[np.ndarray, Dict[int, int]]:
    """Replay ``line_keys`` through a direct-mapped cache, vectorized.

    Args:
        line_keys: line-granular keys in access order.
        n_slots: cache size in lines (power of two).
        initial_state: slot -> resident tag carried over from earlier
            windows (e.g. the previous frame).

    Returns:
        (hit mask aligned with ``line_keys``, final slot -> tag state).
    """
    line_keys = np.asarray(line_keys, dtype=np.int64)
    n = len(line_keys)
    hits = np.zeros(n, dtype=bool)
    if n == 0:
        return hits, dict(initial_state or {})

    state_array = np.full(n_slots, -1, dtype=np.int64)
    for slot, tag in (initial_state or {}).items():
        state_array[slot] = tag
    hits = simulate_direct_mapped_array(line_keys, n_slots, state_array)
    resident = np.flatnonzero(state_array >= 0)
    state = {int(s): int(state_array[s]) for s in resident}
    return hits, state


def simulate_direct_mapped_array(
    line_keys: np.ndarray,
    n_slots: int,
    state: np.ndarray,
) -> np.ndarray:
    """Direct-mapped replay against an array slot state, fully batched.

    ``state`` is the ``n_slots``-long slot -> resident tag array (-1 =
    empty), updated **in place** — the form the stateful read path
    carries between frames so run boundaries never drop to Python.
    Returns the hit mask aligned with ``line_keys``.
    """
    line_keys = np.asarray(line_keys, dtype=np.int64)
    n = len(line_keys)
    hits = np.zeros(n, dtype=bool)
    if n == 0:
        return hits

    slots = line_keys & (n_slots - 1)
    order = np.lexsort((np.arange(n), slots))
    sorted_slots = slots[order]
    sorted_keys = line_keys[order]

    same_slot = np.empty(n, dtype=bool)
    same_slot[0] = False
    same_slot[1:] = sorted_slots[1:] == sorted_slots[:-1]
    sorted_hits = same_slot.copy()
    sorted_hits[1:] &= sorted_keys[1:] == sorted_keys[:-1]

    # Each slot forms one contiguous run after the sort, so the run
    # starts (gather) and run ends (scatter) touch each slot once.
    run_starts = np.flatnonzero(~same_slot)
    sorted_hits[run_starts] = (
        state[sorted_slots[run_starts]] == sorted_keys[run_starts])
    run_ends = np.append(run_starts[1:] - 1, n - 1)
    state[sorted_slots[run_ends]] = sorted_keys[run_ends]

    hits[order] = sorted_hits
    return hits
