"""Display subsystem: frame buffers, vsync controller, display cache,
and the DC-side MACH buffer."""

from .controller import DisplayController, DisplayStats
from .display_cache import (
    DisplayCache,
    simulate_direct_mapped,
    simulate_direct_mapped_array,
)
from .framebuffer import FrameBufferPool, FrameBufferSlot
from .mach_buffer import MachBuffer

__all__ = [
    "DisplayController",
    "DisplayStats",
    "DisplayCache",
    "simulate_direct_mapped",
    "simulate_direct_mapped_array",
    "FrameBufferPool",
    "FrameBufferSlot",
    "MachBuffer",
]
