"""Conformance suite: check this build against the paper's claims.

Encodes the paper's quantitative and qualitative claims as runnable
checks, each returning a :class:`ClaimCheck` with the measured value,
the paper's value, and a tolerance band.  ``repro validate`` runs them
from the command line; benchmarks assert a superset of these, but this
module is the compact, user-facing summary ("does my checkout still
reproduce the paper?").

Checks run on a small deterministic workload set, so the whole suite
finishes in about a minute at the default frame count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .analysis import content_census, region_mix, Region
from .config import (
    BASELINE,
    BATCHING,
    FIG11_SCHEMES,
    GAB,
    MAB,
    RACE_TO_SLEEP,
    RACING,
    SchemeConfig,
    SimulationConfig,
)
from .core.pipeline import simulate
from .core.results import RunResult
from .decoder.power import PowerState
from .video import SyntheticVideo, workload

#: Videos used by the validation suite (spanning the content classes).
_VIDEOS = ("V1", "V3", "V8", "V9", "V14")


@dataclass
class ClaimCheck:
    """One paper claim, measured."""

    claim: str
    paper: str
    measured: float
    passed: bool

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return (f"[{mark}] {self.claim}: measured {self.measured:.3f} "
                f"(paper: {self.paper})")


class _Runs:
    """Lazily memoized simulation runs shared by the checks."""

    def __init__(self, frames: int, seed: int,
                 config: Optional[SimulationConfig]) -> None:
        self.frames = frames
        self.seed = seed
        self.config = config or SimulationConfig()
        self._cache: Dict[Tuple[str, str], RunResult] = {}

    def get(self, video: str, scheme: SchemeConfig) -> RunResult:
        key = (video, scheme.name)
        if key not in self._cache:
            self._cache[key] = simulate(workload(video), scheme,
                                        n_frames=self.frames,
                                        seed=self.seed, config=self.config)
        return self._cache[key]

    def normalized(self, scheme: SchemeConfig) -> float:
        values: List[float] = []
        for video in _VIDEOS:
            base = self.get(video, BASELINE).energy.total
            values.append(self.get(video, scheme).energy.total / base)
        return float(np.mean(values))


def validate_against_paper(
    frames: int = 96,
    seed: int = 7,
    config: Optional[SimulationConfig] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[ClaimCheck]:
    """Run every claim check; returns the list of results."""
    runs = _Runs(frames, seed, config)
    cfg = runs.config
    checks: List[ClaimCheck] = []

    def report(name: str) -> None:
        if progress is not None:
            progress(name)

    def add(claim: str, paper: str, measured: float, ok: bool) -> None:
        checks.append(ClaimCheck(claim, paper, float(measured), bool(ok)))

    # --- Fig. 2b: baseline regions and drops -----------------------------
    report("regions")
    mixes = np.zeros(4)
    drop = 0.0
    for video in _VIDEOS:
        base = runs.get(video, BASELINE)
        mix = region_mix(base.timeline.decode_time,
                         cfg.video.frame_interval,
                         cfg.decoder.power_states)
        mixes += [mix[r] for r in Region]
        drop += base.drop_rate
    mixes /= len(_VIDEOS)
    drop /= len(_VIDEOS)
    add("baseline frame-drop rate", "~0.04", drop, 0.005 < drop < 0.10)
    add("region III+IV share (sleep-capable frames)", ">=0.7",
        mixes[2] + mixes[3], mixes[2] + mixes[3] >= 0.65)

    # --- Fig. 7b: content census -------------------------------------------
    report("census")
    intra = inter = none = 0.0
    for video in _VIDEOS:
        stream = SyntheticVideo(cfg.video, workload(video), seed=seed,
                                n_frames=min(frames, 64))
        census = content_census(stream)
        intra += census.intra_fraction / len(_VIDEOS)
        inter += census.inter_fraction / len(_VIDEOS)
        none += census.none_fraction / len(_VIDEOS)
    add("census: blocks matching (intra+inter)", "~0.57", intra + inter,
        0.45 < intra + inter < 0.70)
    add("census: no-match share", "~0.43", none, 0.30 < none < 0.55)

    # --- Race-to-Sleep behaviours --------------------------------------------
    report("race-to-sleep")
    rts_drops = sum(runs.get(v, RACE_TO_SLEEP).drops for v in _VIDEOS)
    add("Race-to-Sleep frame drops", "0", rts_drops, rts_drops == 0)
    s3 = float(np.mean([runs.get(v, RACE_TO_SLEEP)
                        .residency[PowerState.S3] for v in _VIDEOS]))
    add("Race-to-Sleep deep-sleep residency", "~0.60", s3, 0.45 < s3 < 0.75)
    trans_cut = float(np.mean(
        [1 - runs.get(v, BATCHING).energy.transition
         / max(runs.get(v, BASELINE).energy.transition, 1e-12)
         for v in _VIDEOS]))
    add("batching transition-energy cut", "~0.86", trans_cut,
        trans_cut > 0.7)
    act_cut = float(np.mean(
        [1 - runs.get(v, RACING).activations
         / runs.get(v, BASELINE).activations for v in _VIDEOS]))
    add("racing Act/Pre cut", "~0.20", act_cut, 0.05 < act_cut < 0.45)

    # --- MACH savings ------------------------------------------------------------
    report("mach")
    gab_wr = float(np.mean([runs.get(v, GAB).write_savings
                            for v in _VIDEOS]))
    mab_wr = float(np.mean([runs.get(v, MAB).write_savings
                            for v in _VIDEOS]))
    add("gab write-traffic savings", "~0.34", gab_wr, 0.2 < gab_wr < 0.5)
    add("mab write-traffic savings", "~0.13", mab_wr,
        -0.05 < mab_wr < gab_wr)
    gab_rd = float(np.mean([runs.get(v, GAB).read_savings
                            for v in _VIDEOS]))
    add("gab display read savings", "~0.335", gab_rd, 0.15 < gab_rd < 0.5)
    dig = float(np.mean([runs.get(v, GAB).read_stats.digest_fraction
                         for v in _VIDEOS]))
    add("digest-indexed record share", "~0.38", dig, 0.2 < dig < 0.55)

    # --- Fig. 11 ordering ---------------------------------------------------------
    report("fig11")
    normalized = {s.name: runs.normalized(s) for s in FIG11_SCHEMES}
    add("Racing-alone energy (normalized)", ">1.0 (~1.12)",
        normalized["Racing"], normalized["Racing"] > 1.0)
    add("Race-to-Sleep energy (normalized)", "~0.887",
        normalized["Race-to-Sleep"],
        0.85 < normalized["Race-to-Sleep"] < 0.97)
    add("MAB energy (normalized)", "~0.875", normalized["MAB"],
        0.80 < normalized["MAB"] < 0.95)
    add("GAB energy (normalized)", "~0.79", normalized["GAB"],
        0.72 < normalized["GAB"] < 0.90)
    gab_best = all(
        runs.get(v, GAB).energy.total  # repro-lint: disable=F001 exactness is the claim: GAB must literally be the min of the memoized totals
        == min(runs.get(v, s).energy.total for s in FIG11_SCHEMES)
        for v in _VIDEOS)
    add("GAB best on every video", "yes", float(gab_best), gab_best)
    v9 = ("V9" in _VIDEOS
          and runs.get("V9", MAB).energy.total
          > runs.get("V9", RACE_TO_SLEEP).energy.total)
    add("V9 MAB regression (MAB worse than RtS)", "yes", float(v9), v9)

    # --- delivery side: burst downloads race the radio to sleep -----------
    # (BurstLink's recipe, PAPERS.md — the delivery-side mirror of the
    # paper's Race-to-Sleep.)  Pure arithmetic, no pipeline run.
    report("network")
    from .network import deliver_for_config
    from dataclasses import replace as dc_replace

    net_cfg = dc_replace(cfg.network, mode="trace", trace_kind="lte",
                         abr="fixed", abr_fixed_rung=2, trace_seed=seed)
    deliveries = {
        mode: deliver_for_config(
            dc_replace(net_cfg, download_mode=mode), cfg.video,
            source=workload("V8"), n_frames=3600, seed=seed)
        for mode in ("steady", "burst")
    }
    same_stalls = (deliveries["burst"].stall_events
                   == deliveries["steady"].stall_events)
    ratio = (deliveries["burst"].radio.total
             / deliveries["steady"].radio.total)
    add("burst-vs-steady radio energy at equal stalls (BurstLink)",
        "<1.0", ratio, same_stalls and ratio < 1.0)

    # --- fault injection and resilience ------------------------------------
    report("faults")
    from .config import FaultConfig

    # 1. A faulted playback completes, conceals a bounded fraction of
    #    blocks, and never lets an injected digest collision reach the
    #    screen: every one is verified and falls back to a full store.
    fault_sim = dc_replace(cfg, faults=FaultConfig(
        block_bit_error=2e-5, digest_collision=1e-3))
    faulted = simulate(workload("V8"), GAB, n_frames=frames,
                       seed=seed, config=fault_sim)
    clean = runs.get("V8", GAB)
    total_blocks = faulted.n_frames * cfg.video.blocks_per_frame
    conceal_frac = faulted.concealed_blocks / total_blocks
    resilient = (faulted.concealed_blocks > 0
                 and conceal_frac < 0.05
                 and faulted.injected_collisions > 0
                 and faulted.fallback_writes == faulted.injected_collisions
                 and faulted.silent_collisions == clean.silent_collisions)
    add("faulted run: bounded concealment, zero wrong MACH blocks",
        "<0.05 concealed, 0 silent", conceal_frac, resilient)

    # 2. Retries are not free: on a constant link with a pinned rung
    #    (so ABR cannot mask the extra transfers), a lossy run's radio
    #    active energy must be at least the lossless run's.
    lossy_net = dc_replace(net_cfg, trace_kind="constant",
                           download_mode="burst")
    lossless_d = deliver_for_config(lossy_net, cfg.video,
                                    source=workload("V8"),
                                    n_frames=1800, seed=seed)
    lossy_d = deliver_for_config(lossy_net, cfg.video,
                                 source=workload("V8"),
                                 n_frames=1800, seed=seed,
                                 faults=FaultConfig(segment_loss=0.25,
                                                    seed=3))
    retry_ratio = (lossy_d.radio.active_energy
                   / max(lossless_d.radio.active_energy, 1e-12))
    add("lossy delivery pays for its retries (radio active energy)",
        ">=1.0", retry_ratio,
        lossy_d.retries > 0 and retry_ratio >= 1.0)

    # --- thermal pressure and the degradation ladder ----------------------
    report("thermal")
    from .config import ThermalConfig

    def thermal_sim(duty: float, adaptive: bool) -> RunResult:
        # Short pre-roll (just above the 27-frame chunk) keeps batch
        # formation deadline-bound, so a revoked boost actually bites.
        thermal = ThermalConfig(
            enabled=True, adaptive=adaptive, seed=seed,
            event_interval=1.0, cap_drop_rate=1.0, cap_drop_duty=duty,
            delayed_transition_rate=0.5)
        pressed = dc_replace(
            cfg, thermal=thermal,
            network=dc_replace(cfg.network, preroll_frames=30))
        return simulate(workload("V5"), RACE_TO_SLEEP, n_frames=frames,
                        seed=seed, config=pressed)

    # 1. Under a cap that revokes boost for most of the session, the
    #    adaptive governor must walk its ladder and keep drops strictly
    #    below the fixed-batch governor's (zero, for this workload),
    #    within 5% of the fixed governor's energy.
    adaptive_run = thermal_sim(0.55, True)
    fixed_run = thermal_sim(0.55, False)
    throttled_frac = adaptive_run.throttle_seconds / adaptive_run.elapsed
    energy_ratio = adaptive_run.energy.total / fixed_run.energy.total
    graceful = (throttled_frac >= 0.5
                and fixed_run.drops > 0
                and adaptive_run.drops == 0
                and adaptive_run.degradation_steps > 0
                and energy_ratio < 1.05)
    add("throttled run: adaptive ladder drops below fixed RtS",
        "0 vs >0 drops, <1.05x energy", float(adaptive_run.drops),
        graceful)

    # 2. Severity must price monotonically: revoking boost for longer
    #    can only stretch the active window, shrink deep sleep, and
    #    cost energy.
    sweep = [thermal_sim(0.0, True), adaptive_run, thermal_sim(1.0, True)]
    energies = [run.energy.total for run in sweep]
    throttles = [run.throttle_seconds for run in sweep]
    monotone = (all(a <= b for a, b in zip(energies, energies[1:]))
                and all(a <= b for a, b in zip(throttles, throttles[1:]))
                and throttles[-1] > 0)
    add("thermal severity: energy monotone in revoked-boost duty",
        "non-decreasing", energies[-1] / energies[0], monotone)

    # 3. A killed-and-resumed matrix is bit-identical to an
    #    uninterrupted one: the checkpoint holds exact results and the
    #    remaining jobs are deterministic.
    report("checkpoint")
    import os
    import tempfile

    from .runner import run_matrix

    ckpt_frames = min(frames, 32)
    ckpt_schemes = (BASELINE, GAB)
    with tempfile.TemporaryDirectory() as tmp:
        ckpt = os.path.join(tmp, "matrix.json")
        run_matrix(videos=["V1"], schemes=ckpt_schemes,
                   n_frames=ckpt_frames, seed=seed, config=cfg,
                   processes=1, checkpoint=ckpt)  # the "killed" run
        resumed = run_matrix(videos=["V1", "V3"], schemes=ckpt_schemes,
                             n_frames=ckpt_frames, seed=seed, config=cfg,
                             processes=1, checkpoint=ckpt)
    fresh = run_matrix(videos=["V1", "V3"], schemes=ckpt_schemes,
                       n_frames=ckpt_frames, seed=seed, config=cfg,
                       processes=1)
    identical = (len(resumed.resumed) == len(ckpt_schemes)
                 and set(resumed) == set(fresh)
                 and all(resumed[k].energy.total == fresh[k].energy.total  # repro-lint: disable=F001 exactness is the claim: a JSON round trip must be bit-identical
                         and (resumed[k].timeline.finish
                              == fresh[k].timeline.finish).all()
                         for k in fresh))
    add("checkpoint-resumed matrix bit-identical to uninterrupted",
        "yes", float(identical), identical)

    # --- fleet: flow-level population engine ------------------------------
    report("fleet")
    from .fleet import (
        DeviceClass,
        LognormalComponent,
        PopulationSpec,
        RegionSpec,
        calibrate,
        run_fleet,
    )
    from .units import MBPS

    # A population whose every session plays exactly the calibration
    # frame count (zero duration spread) on an unconstrained link, so
    # the surrogate's per-title play energy is structurally the exact
    # pipeline's — any gap is the streaming aggregation itself.
    fleet_frames = min(frames, 32)
    fleet_titles = ("V1", "V8")
    pinned = fleet_frames / cfg.video.fps
    fleet_spec = PopulationSpec(
        device_classes=(DeviceClass(name="ref", scheme="gab"),),
        regions=(RegionSpec(
            name="dense", cells=3, cell_capacity=10 * MBPS,
            bandwidth=(LognormalComponent(median=8 * MBPS, sigma=0.3),),
        ),),
        titles=fleet_titles,
        zipf_exponent=0.9,
        duration_median_seconds=pinned,
        duration_sigma=0.0,
        duration_min_seconds=pinned / 2,
        duration_max_seconds=pinned * 2,
        arrival_window_seconds=2.0,
        epoch_seconds=0.5,
        calib_frames=fleet_frames,
        calib_seed=seed,
    )
    device_cfg = fleet_spec.device_classes[0].to_simulation_config(cfg)
    fleet_calib = calibrate(fleet_spec, config=cfg)

    # 1. Fleet online aggregates vs the exact matrix: the streamed
    #    per-title (and overall) mean play energy must match the
    #    run_matrix figures within the aggregation quantum.
    matrix = run_matrix(videos=list(fleet_titles), schemes=(GAB,),
                        n_frames=fleet_frames, seed=seed,
                        config=device_cfg, processes=1)
    exact = {video: matrix[(video, GAB.name)].energy.total
             for video in fleet_titles}
    surrogate_run = run_fleet(fleet_spec, 5000, seed=seed, shards=3,
                              contention=False,
                              calibration=fleet_calib, config=cfg)
    errors: List[float] = []
    weighted = 0.0
    for title in fleet_titles:
        cohort = surrogate_run.cohort(f"title:{title}")
        measured_mean = cohort.moments["play_energy"].mean
        errors.append(abs(measured_mean - exact[title]) / exact[title])
        weighted += cohort.count * exact[title]
    fleet_mean = surrogate_run.cohort("fleet").moments["play_energy"].mean
    weighted /= surrogate_run.n_sessions
    errors.append(abs(fleet_mean - weighted) / weighted)
    worst = max(errors)
    add("fleet online aggregates match exact run_matrix energies",
        "<0.5% relative", worst, worst < 5e-3)

    # 2. Shared cells must price congestion: at equal population the
    #    cell-contention fleet dominates the private-trace fleet in
    #    both stalls and energy (stall power + stretched radio windows).
    contended = run_fleet(fleet_spec, 5000, seed=seed, shards=2,
                          contention=True,
                          calibration=fleet_calib, config=cfg)
    private = run_fleet(fleet_spec, 5000, seed=seed, shards=2,
                        contention=False,
                        calibration=fleet_calib, config=cfg)
    contended_fleet = contended.cohort("fleet")
    private_fleet = private.cohort("fleet")
    energy_ratio = (contended_fleet.moments["total_energy"].mean
                    / private_fleet.moments["total_energy"].mean)
    stall_gap = (contended_fleet.moments["stall_seconds"].mean
                 - private_fleet.moments["stall_seconds"].mean)
    dominates = (contended.saturated_cell_epochs > 0
                 and energy_ratio > 1.0
                 and stall_gap > 0.0)
    add("cell-contention fleet dominates private-trace fleet",
        ">1.0x energy, more stalls", energy_ratio, dominates)

    # 3. Supervised shard execution under injected crashes, stalls,
    #    and corrupt partials must reproduce the undisturbed serial
    #    run bit for bit: retried, speculated, and re-delivered
    #    stripes fold into the result exactly once.
    import json as json_mod

    from .faults import ShardFaultConfig
    from .fleet import (
        SupervisedFleetRun,
        SupervisorConfig,
        run_fleet_supervised,
    )

    serial_ref = run_fleet(fleet_spec, 3000, seed=seed, shards=1,
                           contention=True,
                           calibration=fleet_calib, config=cfg)
    chaos_run = run_fleet_supervised(
        fleet_spec, 3000, seed=seed, shards=4, contention=True,
        calibration=fleet_calib, config=cfg,
        faults=ShardFaultConfig(crash_rate=0.35, stall_rate=0.1,
                                corrupt_rate=0.25,
                                max_faulty_attempts=2, seed=seed + 1),
        supervisor=SupervisorConfig(
            workers=2, lease_seconds=0.8, heartbeat_seconds=0.1,
            max_retries=6, backoff_base=0.02, backoff_cap=0.25))
    absorbed = chaos_run.report.faults_absorbed
    identical = (json_mod.dumps(serial_ref.to_jsonable(), sort_keys=True)
                 == json_mod.dumps(chaos_run.result.to_jsonable(),
                                   sort_keys=True))
    add("supervised fleet under injected crashes matches serial run",
        "bit-identical JSON, faults absorbed", float(absorbed),
        identical and absorbed > 0)

    # 4. Speculative re-execution is a latency tool, not a result
    #    knob: under a seeded slow-worker distribution it must cut the
    #    p99 stripe completion time without changing a bit of the
    #    result.  (Slow workers sleep, so even a single-core CI box
    #    shows the win.)
    slow_faults = ShardFaultConfig(slow_rate=0.4, slow_seconds=2.0,
                                   max_faulty_attempts=1,
                                   seed=seed + 2)

    def speculation_run(speculate: bool) -> SupervisedFleetRun:
        return run_fleet_supervised(
            fleet_spec, 3000, seed=seed, shards=6, contention=False,
            calibration=fleet_calib, config=cfg, faults=slow_faults,
            supervisor=SupervisorConfig(
                workers=2, lease_seconds=4.0, heartbeat_seconds=0.1,
                max_retries=3, backoff_base=0.02, backoff_cap=0.25,
                speculate=speculate, speculation_factor=3.0,
                speculation_min_completed=2,
                speculation_min_seconds=0.4))

    patient = speculation_run(False)
    eager = speculation_run(True)
    p99_patient = patient.report.p99_stripe_seconds("score")
    p99_eager = eager.report.p99_stripe_seconds("score")
    p99_ratio = p99_eager / max(p99_patient, 1e-9)
    same_bits = (json_mod.dumps(patient.result.to_jsonable(),
                                sort_keys=True)
                 == json_mod.dumps(eager.result.to_jsonable(),
                                   sort_keys=True))
    add("speculation cuts p99 stripe time without changing the result",
        "<0.7x p99, bit-identical", p99_ratio,
        same_bits and eager.report.speculations > 0
        and p99_ratio < 0.7)

    # --- realtime: emergent impairments, recovery, and the ladder ---------
    report("realtime")
    from .config import RealtimeConfig
    from .realtime import RealtimeResult, simulate_realtime
    from .units import MBPS

    # 1. FEC beats bounded retransmission on deadline-miss fraction when
    #    the RTT does not fit the latency budget, at comparable byte
    #    overhead.  One-way propagation of 70 ms against a 150 ms budget
    #    means any retransmission arrives a full RTT (~140 ms + queue)
    #    late, while XOR parity rides along with the first pass.  Loss
    #    backoff is disabled (loss_threshold=1) so the 20 % injected
    #    loss prices both modes identically and only the delay half of
    #    the controller shapes the send rate.
    rt_profile = workload("V8")
    rt_frames = max(frames, 240)

    def recovery_run(mode: str) -> RealtimeResult:
        rt = RealtimeConfig(
            enabled=True, propagation_delay=0.070, latency_budget=0.150,
            link_rate=6 * MBPS, start_rate=3 * MBPS, min_rate=1 * MBPS,
            max_rate=4 * MBPS, ladder=False, fec_group=6, max_retx=2,
            loss_threshold=1.0, recovery=mode, seed=seed)
        rt_cfg = dc_replace(cfg, realtime=rt,
                            faults=FaultConfig(packet_loss=0.20, seed=seed))
        return simulate_realtime(rt_cfg, n_frames=rt_frames,
                                 profile=rt_profile)

    fec_run = recovery_run("fec")
    retx_run = recovery_run("retx")
    overhead_ratio = fec_run.byte_overhead / max(retx_run.byte_overhead,
                                                 1e-12)
    miss_ratio = (fec_run.deadline_miss_fraction
                  / max(retx_run.deadline_miss_fraction, 1e-12))
    fec_wins = (retx_run.deadline_miss_fraction > 0
                and miss_ratio < 0.5
                and 1 / 1.5 < overhead_ratio < 1.5)
    add("FEC beats retx on deadline misses at high RTT (equal overhead)",
        "<0.5x misses, overhead within 1.5x", miss_ratio, fec_wins)

    # 2. The deadline ladder converts lateness into bounded degradation:
    #    under bandwidth cliffs it must strictly cut p99 frame lateness
    #    versus the same session with the ladder disabled, at no more
    #    than 5 % extra energy.
    cliff = ((3.0, 0.22), (6.0, 1.0), (9.0, 0.22), (12.0, 1.0))

    def ladder_run(ladder: bool) -> RealtimeResult:
        rt = RealtimeConfig(enabled=True, link_rate=6 * MBPS,
                            ladder=ladder, rate_schedule=cliff, seed=seed)
        return simulate_realtime(dc_replace(cfg, realtime=rt),
                                 n_frames=max(2 * frames, 480),
                                 profile=rt_profile)

    with_ladder = ladder_run(True)
    without_ladder = ladder_run(False)
    rt_energy_ratio = with_ladder.total_energy / without_ladder.total_energy
    ladder_helps = (without_ladder.p99_lateness() > 0
                    and with_ladder.p99_lateness()
                    < without_ladder.p99_lateness()
                    and with_ladder.degradation_steps > 0
                    and rt_energy_ratio <= 1.05)
    add("deadline ladder strictly cuts p99 lateness under cliffs",
        "lower p99, <=1.05x energy", rt_energy_ratio, ladder_helps)

    return checks


def summarize(checks: List[ClaimCheck]) -> str:
    """Human-readable report plus a verdict line."""
    lines = [str(check) for check in checks]
    passed = sum(check.passed for check in checks)
    lines.append(f"\n{passed}/{len(checks)} claims reproduced")
    return "\n".join(lines)
