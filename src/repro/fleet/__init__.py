"""repro.fleet — streaming population engine for fleet-scale studies.

Turns the single-device simulator into a population tool: declarative
heterogeneous populations (:mod:`.population`), a flow-level surrogate
calibrated from the exact per-frame pipeline (:mod:`.surrogate`),
cell-level shared-bandwidth contention (:mod:`.cell`), and sharded
streaming execution over exact mergeable online aggregates
(:mod:`.sketches`, :mod:`.engine`).  Entry point:
:func:`~repro.fleet.engine.run_fleet` / the ``repro fleet`` CLI.
"""

from .cell import CellLoadAccumulator, ContentionField
from .engine import (
    HIST_METRICS,
    METRICS,
    SESSION_CHUNK,
    CohortAggregate,
    FleetResult,
    cohort_keys,
    run_fleet,
)
from .shard import (
    PHASE_LOAD,
    PHASE_SCORE,
    MergePlane,
    StripePartial,
    StripeTask,
    StripeWorld,
    execute_stripe,
    validate_partial,
)
from .supervision import (
    ShardEvent,
    SupervisedFleetRun,
    SupervisionReport,
    Supervisor,
    SupervisorConfig,
    run_fleet_supervised,
)
from .population import (
    DeviceClass,
    LognormalComponent,
    PopulationModel,
    PopulationSpec,
    RegionSpec,
    SessionChunk,
    default_population,
)
from .sketches import (
    HistogramSketch,
    ReservoirSample,
    StreamingMoments,
    hash_u01_array,
    hash_u64_array,
)
from .surrogate import (
    CalibEntry,
    FleetCalibration,
    calibrate,
    load_or_calibrate,
)

__all__ = [
    "HIST_METRICS",
    "METRICS",
    "PHASE_LOAD",
    "PHASE_SCORE",
    "SESSION_CHUNK",
    "CalibEntry",
    "MergePlane",
    "ShardEvent",
    "StripePartial",
    "StripeTask",
    "StripeWorld",
    "SupervisedFleetRun",
    "SupervisionReport",
    "Supervisor",
    "SupervisorConfig",
    "CellLoadAccumulator",
    "CohortAggregate",
    "ContentionField",
    "DeviceClass",
    "FleetCalibration",
    "FleetResult",
    "HistogramSketch",
    "LognormalComponent",
    "PopulationModel",
    "PopulationSpec",
    "RegionSpec",
    "ReservoirSample",
    "SessionChunk",
    "StreamingMoments",
    "calibrate",
    "cohort_keys",
    "default_population",
    "execute_stripe",
    "hash_u01_array",
    "hash_u64_array",
    "load_or_calibrate",
    "run_fleet",
    "run_fleet_supervised",
    "validate_partial",
]
