"""Declarative population specs and the seeded heterogeneous sampler.

A :class:`PopulationSpec` describes *millions* of streaming sessions
without materializing any of them: device classes (SoC power scaling,
display panel, thermal RC, scheme mix), regions (cell counts, shared
cell capacity, mixture-of-lognormal access bandwidth), Zipf title
popularity over the Table-1 workloads, and lognormal session
durations.

:class:`PopulationModel` turns a spec into concrete sessions **state-
lessly**: every attribute of session ``uid`` is a pure splitmix64 hash
of ``(seed, site, uid)`` (the :mod:`repro.faults` determinism idiom),
so any chunking, sharding, or re-visit of the population draws exactly
the same sessions.  That property is what lets the engine stream the
population twice (once to build the cell-contention field, once to
score sessions) in bounded memory.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field, fields, replace
from typing import Dict, Tuple

import numpy as np

from ..config import (
    BASELINE,
    BATCHING,
    DCC_ONLY,
    DEFAULT_LADDER,
    GAB,
    GAB_DCC,
    MAB,
    RACE_TO_SLEEP,
    RACING,
    RadioConfig,
    SchemeConfig,
    SimulationConfig,
)
from ..errors import ConfigError
from ..units import MBPS, W
from ..video import workload
from .sketches import hash_u01_array

#: Scheme names a device class may reference (the CLI's vocabulary).
SCHEMES_BY_NAME: Dict[str, SchemeConfig] = {
    s.name.lower(): s for s in
    (BASELINE, BATCHING, RACING, RACE_TO_SLEEP, MAB, GAB, GAB_DCC,
     DCC_ONLY)
}
SCHEMES_BY_NAME["rts"] = RACE_TO_SLEEP

#: Upper bound on the cell-load field (cells x epochs); keeps the
#: contention arrays bounded regardless of what a spec asks for.
MAX_CELL_EPOCHS = 16_000_000

# Hash-site discriminators, one per independent per-session draw.
_SITE_DEVICE = 0xF1E0
_SITE_REGION = 0xF1E1
_SITE_CELL = 0xF1E2
_SITE_TITLE = 0xF1E3
_SITE_DURATION_A = 0xF1E4
_SITE_DURATION_B = 0xF1E5
_SITE_BW_COMPONENT = 0xF1E6
_SITE_BW_A = 0xF1E7
_SITE_BW_B = 0xF1E8
_SITE_START = 0xF1E9

_TWO_PI = 2.0 * math.pi
#: Floor for Box-Muller's log argument (avoids log(0)).
_U_FLOOR = 1e-12


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


def _normal_from_hashes(seed: int, site_a: int, site_b: int,
                        uids: np.ndarray) -> np.ndarray:
    """Standard normal per uid via Box-Muller on two hash uniforms."""
    u1 = np.maximum(hash_u01_array(seed, site_a, uids), _U_FLOOR)
    u2 = hash_u01_array(seed, site_b, uids)
    return np.sqrt(-2.0 * np.log(u1)) * np.cos(_TWO_PI * u2)


def _categorical(u: np.ndarray, cumulative: np.ndarray) -> np.ndarray:
    """Index draws from normalized cumulative weights."""
    idx = np.searchsorted(cumulative, u, side="right")
    return np.clip(idx, 0, cumulative.size - 1).astype(np.int64)


def _cumulative(weights: Tuple[float, ...]) -> np.ndarray:
    total = float(sum(weights))
    return np.cumsum(np.asarray(weights, dtype=np.float64)) / total


@dataclass(frozen=True)
class LognormalComponent:
    """One mixture component of a region's access-bandwidth law."""

    weight: float = 1.0
    median: float = 12 * MBPS  # bytes/s
    sigma: float = 0.6  # lognormal shape (dimensionless)

    def __post_init__(self) -> None:
        _require(self.weight > 0, "mixture weight must be positive")
        _require(self.median > 0, "bandwidth median must be positive")
        _require(self.sigma >= 0, "sigma cannot be negative")

    def to_jsonable(self) -> Dict[str, object]:
        """Plain-data form."""
        return {"weight": self.weight, "median": self.median,
                "sigma": self.sigma}

    @classmethod
    def from_jsonable(cls, data: Dict[str, object]) -> "LognormalComponent":
        """Inverse of :meth:`to_jsonable`."""
        return cls(weight=float(data["weight"]),  # type: ignore[arg-type]
                   median=float(data["median"]),  # type: ignore[arg-type]
                   sigma=float(data["sigma"]))  # type: ignore[arg-type]


@dataclass(frozen=True)
class DeviceClass:
    """A handheld hardware profile plus the scheme its firmware ships.

    The class is expressed as deltas on the paper's reference device
    (:class:`~repro.config.SimulationConfig` defaults): an SoC power
    scale applied to the VD's active powers, a panel power, the
    thermal resistance of the chassis, and the MACH sizing.  The
    surrogate calibrates each class against the exact per-frame
    pipeline built from :meth:`to_simulation_config`.
    """

    name: str
    weight: float = 1.0
    scheme: str = "gab"
    soc_power_scale: float = 1.0  # multiplies VD active powers
    display_power: float = 0.12 * W
    thermal_resistance: float = 18.0  # K/W junction -> ambient
    mach_entries: int = 256

    def __post_init__(self) -> None:
        _require(bool(self.name), "device class needs a name")
        _require(self.weight > 0, "device weight must be positive")
        _require(self.scheme.lower() in SCHEMES_BY_NAME,
                 f"unknown scheme {self.scheme!r}; known: "
                 f"{sorted(SCHEMES_BY_NAME)}")
        _require(self.soc_power_scale > 0, "SoC power scale must be > 0")
        _require(self.display_power > 0, "display power must be positive")
        _require(self.thermal_resistance > 0,
                 "thermal resistance must be positive")
        _require(self.mach_entries >= 4, "MACH needs at least one set")

    def scheme_config(self) -> SchemeConfig:
        """The :class:`SchemeConfig` this class runs."""
        return SCHEMES_BY_NAME[self.scheme.lower()]

    def to_simulation_config(self,
                             base: SimulationConfig) -> SimulationConfig:
        """Reference config specialized to this hardware class."""
        decoder = replace(
            base.decoder,
            low_freq_power=base.decoder.low_freq_power
            * self.soc_power_scale,
            high_freq_power=base.decoder.high_freq_power
            * self.soc_power_scale,
        )
        display = replace(base.display, power=self.display_power)
        thermal = replace(base.thermal,
                          thermal_resistance=self.thermal_resistance)
        mach = replace(base.mach, entries_per_mach=self.mach_entries)
        return replace(base, decoder=decoder, display=display,
                       thermal=thermal, mach=mach)

    def to_jsonable(self) -> Dict[str, object]:
        """Plain-data form."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_jsonable(cls, data: Dict[str, object]) -> "DeviceClass":
        """Inverse of :meth:`to_jsonable`."""
        return cls(**data)  # type: ignore[arg-type]


@dataclass(frozen=True)
class RegionSpec:
    """A deployment region: cells, shared capacity, bandwidth law."""

    name: str
    weight: float = 1.0
    cells: int = 8
    cell_capacity: float = 120 * MBPS  # bytes/s shared per cell
    bandwidth: Tuple[LognormalComponent, ...] = (
        LognormalComponent(),
    )

    def __post_init__(self) -> None:
        _require(bool(self.name), "region needs a name")
        _require(self.weight > 0, "region weight must be positive")
        _require(self.cells >= 1, "region needs at least one cell")
        _require(self.cell_capacity > 0, "cell capacity must be positive")
        _require(len(self.bandwidth) >= 1,
                 "region needs at least one bandwidth component")

    def to_jsonable(self) -> Dict[str, object]:
        """Plain-data form."""
        return {
            "name": self.name,
            "weight": self.weight,
            "cells": self.cells,
            "cell_capacity": self.cell_capacity,
            "bandwidth": [c.to_jsonable() for c in self.bandwidth],
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, object]) -> "RegionSpec":
        """Inverse of :meth:`to_jsonable`."""
        return cls(
            name=str(data["name"]),
            weight=float(data["weight"]),  # type: ignore[arg-type]
            cells=int(data["cells"]),  # type: ignore[arg-type]
            cell_capacity=float(data["cell_capacity"]),  # type: ignore[arg-type]
            bandwidth=tuple(
                LognormalComponent.from_jsonable(c)
                for c in data["bandwidth"]),  # type: ignore[union-attr]
        )


@dataclass(frozen=True)
class PopulationSpec:
    """Everything a fleet run needs, declaratively.

    The spec is pure data: it serializes to JSON (``repro fleet
    --spec``), hashes to a stable fingerprint (cache key for the
    surrogate calibration), and validates eagerly so a bad population
    fails before any simulation runs.
    """

    device_classes: Tuple[DeviceClass, ...] = (DeviceClass(name="ref"),)
    regions: Tuple[RegionSpec, ...] = (RegionSpec(name="default"),)
    titles: Tuple[str, ...] = ("V1", "V4", "V8", "V12")
    zipf_exponent: float = 0.8
    duration_median_seconds: float = 180.0
    duration_sigma: float = 0.7
    duration_min_seconds: float = 4.0
    duration_max_seconds: float = 3600.0
    arrival_window_seconds: float = 600.0
    epoch_seconds: float = 2.0
    abr_safety: float = 0.8  # rung picker's bandwidth headroom factor
    ladder: Tuple[float, ...] = DEFAULT_LADDER  # bytes/s, ascending
    preroll_seconds: float = 2.0
    buffer_seconds: float = 10.0
    watermark_seconds: float = 3.0
    radio: RadioConfig = field(default_factory=RadioConfig)
    calib_frames: int = 64
    calib_seed: int = 7

    def __post_init__(self) -> None:
        _require(len(self.device_classes) >= 1, "need a device class")
        _require(len(self.regions) >= 1, "need a region")
        names = [d.name for d in self.device_classes]
        _require(len(set(names)) == len(names),
                 "device class names must be unique")
        region_names = [r.name for r in self.regions]
        _require(len(set(region_names)) == len(region_names),
                 "region names must be unique")
        _require(len(self.titles) >= 1, "need at least one title")
        for key in self.titles:
            workload(key)  # raises ConfigError on unknown keys
        _require(self.zipf_exponent >= 0, "Zipf exponent cannot be negative")
        _require(self.duration_median_seconds > 0,
                 "duration median must be positive")
        _require(self.duration_sigma >= 0, "duration sigma >= 0")
        _require(0 < self.duration_min_seconds <= self.duration_max_seconds,
                 "need 0 < min duration <= max duration")
        _require(self.arrival_window_seconds > 0,
                 "arrival window must be positive")
        _require(self.epoch_seconds > 0, "epoch must be positive")
        _require(0 < self.abr_safety <= 1.0, "abr_safety must be in (0, 1]")
        _require(len(self.ladder) >= 1 and self.ladder[0] > 0
                 and all(b > a for a, b in zip(self.ladder, self.ladder[1:])),
                 "ladder must be ascending and positive")
        _require(self.preroll_seconds > 0, "preroll must be positive")
        _require(0 <= self.watermark_seconds < self.buffer_seconds,
                 "need 0 <= watermark < buffer capacity")
        _require(self.calib_frames >= 8, "calibration needs >= 8 frames")
        _require(self.total_cells * self.epoch_count <= MAX_CELL_EPOCHS,
                 f"cell-load field {self.total_cells} cells x "
                 f"{self.epoch_count} epochs exceeds the "
                 f"{MAX_CELL_EPOCHS} bound — coarsen epoch_seconds or "
                 "shrink the horizon")

    @property
    def total_cells(self) -> int:
        return sum(r.cells for r in self.regions)

    @property
    def epoch_count(self) -> int:
        """Epochs covering every session's (start, start+duration)."""
        horizon = self.arrival_window_seconds + self.duration_max_seconds
        return int(math.ceil(horizon / self.epoch_seconds)) + 1

    def to_jsonable(self) -> Dict[str, object]:
        """Plain-data form (the ``repro fleet --spec`` file format)."""
        return {
            "device_classes": [d.to_jsonable()
                               for d in self.device_classes],
            "regions": [r.to_jsonable() for r in self.regions],
            "titles": list(self.titles),
            "zipf_exponent": self.zipf_exponent,
            "duration_median_seconds": self.duration_median_seconds,
            "duration_sigma": self.duration_sigma,
            "duration_min_seconds": self.duration_min_seconds,
            "duration_max_seconds": self.duration_max_seconds,
            "arrival_window_seconds": self.arrival_window_seconds,
            "epoch_seconds": self.epoch_seconds,
            "abr_safety": self.abr_safety,
            "ladder": list(self.ladder),
            "preroll_seconds": self.preroll_seconds,
            "buffer_seconds": self.buffer_seconds,
            "watermark_seconds": self.watermark_seconds,
            "radio": {f.name: getattr(self.radio, f.name)
                      for f in fields(self.radio)},
            "calib_frames": self.calib_frames,
            "calib_seed": self.calib_seed,
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, object]) -> "PopulationSpec":
        """Inverse of :meth:`to_jsonable` (tolerates omitted fields)."""
        kwargs: Dict[str, object] = {}
        if "device_classes" in data:
            kwargs["device_classes"] = tuple(
                DeviceClass.from_jsonable(d)
                for d in data["device_classes"])  # type: ignore[union-attr]
        if "regions" in data:
            kwargs["regions"] = tuple(
                RegionSpec.from_jsonable(r)
                for r in data["regions"])  # type: ignore[union-attr]
        if "titles" in data:
            kwargs["titles"] = tuple(data["titles"])  # type: ignore[arg-type]
        if "ladder" in data:
            kwargs["ladder"] = tuple(data["ladder"])  # type: ignore[arg-type]
        if "radio" in data:
            kwargs["radio"] = RadioConfig(**data["radio"])  # type: ignore[arg-type]
        for name in ("zipf_exponent", "duration_median_seconds",
                     "duration_sigma", "duration_min_seconds",
                     "duration_max_seconds", "arrival_window_seconds",
                     "epoch_seconds", "abr_safety", "preroll_seconds",
                     "buffer_seconds", "watermark_seconds"):
            if name in data:
                kwargs[name] = float(data[name])  # type: ignore[arg-type]
        for name in ("calib_frames", "calib_seed"):
            if name in data:
                kwargs[name] = int(data[name])  # type: ignore[arg-type]
        return cls(**kwargs)  # type: ignore[arg-type]

    def fingerprint(self) -> str:
        """Stable content hash (calibration cache key, report tag)."""
        canonical = json.dumps(self.to_jsonable(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass
class SessionChunk:
    """A contiguous block of drawn sessions (parallel numpy arrays)."""

    uid: np.ndarray  # int64 global session ids
    device: np.ndarray  # int64 index into spec.device_classes
    region: np.ndarray  # int64 index into spec.regions
    cell: np.ndarray  # int64 cell index within the region
    title: np.ndarray  # int64 index into spec.titles
    duration_seconds: np.ndarray  # float64 content length
    bandwidth: np.ndarray  # float64 private access bandwidth, bytes/s
    start_seconds: np.ndarray  # float64 arrival offset in the window

    @property
    def size(self) -> int:
        return int(self.uid.size)


class PopulationModel:
    """Stateless seeded sampler over a :class:`PopulationSpec`.

    ``draw_chunk(start, count)`` returns sessions ``start ..
    start+count-1``; every value is a pure function of ``(seed, uid)``,
    so chunk boundaries never change what any session looks like.
    """

    def __init__(self, spec: PopulationSpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = seed
        self._device_cum = _cumulative(
            tuple(d.weight for d in spec.device_classes))
        self._region_cum = _cumulative(
            tuple(r.weight for r in spec.regions))
        ranks = np.arange(1, len(spec.titles) + 1, dtype=np.float64)
        zipf = ranks ** -spec.zipf_exponent
        self._title_cum = np.cumsum(zipf) / zipf.sum()
        self._cells = np.asarray([r.cells for r in spec.regions],
                                 dtype=np.int64)

    def draw_chunk(self, start: int, count: int) -> SessionChunk:
        """Sessions ``[start, start+count)`` as parallel arrays."""
        spec = self.spec
        seed = self.seed
        uids = np.arange(start, start + count, dtype=np.int64)

        device = _categorical(
            hash_u01_array(seed, _SITE_DEVICE, uids), self._device_cum)
        region = _categorical(
            hash_u01_array(seed, _SITE_REGION, uids), self._region_cum)
        cell = np.floor(hash_u01_array(seed, _SITE_CELL, uids)
                        * self._cells[region]).astype(np.int64)
        title = _categorical(
            hash_u01_array(seed, _SITE_TITLE, uids), self._title_cum)

        z_dur = _normal_from_hashes(seed, _SITE_DURATION_A,
                                    _SITE_DURATION_B, uids)
        duration = np.clip(
            spec.duration_median_seconds
            * np.exp(spec.duration_sigma * z_dur),
            spec.duration_min_seconds, spec.duration_max_seconds)

        u_comp = hash_u01_array(seed, _SITE_BW_COMPONENT, uids)
        z_bw = _normal_from_hashes(seed, _SITE_BW_A, _SITE_BW_B, uids)
        bandwidth = np.empty(count, dtype=np.float64)
        for r_idx, region_spec in enumerate(spec.regions):
            mask = region == r_idx
            if not mask.any():
                continue
            comp_cum = _cumulative(
                tuple(c.weight for c in region_spec.bandwidth))
            comp = _categorical(u_comp[mask], comp_cum)
            medians = np.asarray(
                [c.median for c in region_spec.bandwidth])
            sigmas = np.asarray(
                [c.sigma for c in region_spec.bandwidth])
            bandwidth[mask] = (medians[comp]
                               * np.exp(sigmas[comp] * z_bw[mask]))

        start_s = (hash_u01_array(seed, _SITE_START, uids)
                   * spec.arrival_window_seconds)
        return SessionChunk(uid=uids, device=device, region=region,
                            cell=cell, title=title,
                            duration_seconds=duration,
                            bandwidth=bandwidth, start_seconds=start_s)


def default_population() -> PopulationSpec:
    """The reference heterogeneous population used by CLI/benchmarks.

    Three hardware tiers (flagship GAB silicon down to a baseline
    budget device), three regions with mixture-of-lognormal access
    bandwidth and shared cells, and an eight-title Zipf catalogue
    spanning the paper's content classes.
    """
    return PopulationSpec(
        device_classes=(
            DeviceClass(name="flagship", weight=0.25, scheme="gab",
                        soc_power_scale=1.0, display_power=0.12 * W,
                        thermal_resistance=16.0),
            DeviceClass(name="midrange", weight=0.45,
                        scheme="race-to-sleep",
                        soc_power_scale=1.15, display_power=0.15 * W,
                        thermal_resistance=18.0),
            DeviceClass(name="budget", weight=0.30, scheme="baseline",
                        soc_power_scale=1.30, display_power=0.18 * W,
                        thermal_resistance=22.0, mach_entries=128),
        ),
        regions=(
            RegionSpec(name="metro", weight=0.5, cells=24,
                       cell_capacity=150 * MBPS,
                       bandwidth=(
                           LognormalComponent(weight=0.7,
                                              median=24 * MBPS,
                                              sigma=0.5),
                           LognormalComponent(weight=0.3,
                                              median=6 * MBPS,
                                              sigma=0.7),
                       )),
            RegionSpec(name="suburban", weight=0.3, cells=16,
                       cell_capacity=100 * MBPS,
                       bandwidth=(
                           LognormalComponent(weight=0.6,
                                              median=12 * MBPS,
                                              sigma=0.6),
                           LognormalComponent(weight=0.4,
                                              median=4 * MBPS,
                                              sigma=0.8),
                       )),
            RegionSpec(name="rural", weight=0.2, cells=8,
                       cell_capacity=40 * MBPS,
                       bandwidth=(
                           LognormalComponent(weight=0.5,
                                              median=6 * MBPS,
                                              sigma=0.7),
                           LognormalComponent(weight=0.5,
                                              median=2 * MBPS,
                                              sigma=0.9),
                       )),
        ),
        titles=("V1", "V3", "V4", "V5", "V8", "V9", "V12", "V14"),
    )
