"""Flow-level session surrogate calibrated from the exact pipeline.

Scaling to millions of sessions rules out running the per-frame
pipeline per user; the established scale jump is flow-level
abstraction: each *(device class, title)* pair is simulated **once**
through the exact pipeline (:func:`repro.core.pipeline.simulate`) and
reduced to a handful of per-frame coefficients — energy per displayed
frame, throttle fraction, and the device's power while stalled.  A
session of any duration is then priced as ``coefficients x frames``
plus an analytic radio/stall model (see :mod:`repro.fleet.engine`).

The surrogate's error budget, which `repro validate` enforces:

* On the calibration population itself (sessions whose duration pins
  exactly ``calib_frames`` frames, unconstrained bandwidth), the
  surrogate's cohort-mean play energy matches the exact
  ``run_matrix`` figures to within the aggregation quantum
  (well under 0.5 % relative).
* Away from the calibration point the per-frame coefficients assume
  energy linear in frame count; the pipeline's warmup transient makes
  that a small *overestimate* for long sessions (startup costs are
  amortized once, not per frame).

Calibration is expensive (it runs the real pipeline), so it caches to
JSON keyed by the spec fingerprint and, on every load, re-runs one
probe pair to detect drift between the cached coefficients and the
current pipeline code.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from ..config import SimulationConfig
from ..errors import FleetError
from ..video import workload
from .population import PopulationSpec

#: Relative tolerance for the drift probe: a cached entry farther than
#: this from a fresh pipeline run means the pipeline changed since
#: calibration, and the whole cache is rebuilt.
DRIFT_RTOL = 1e-9


def _entry_key(device: str, title: str) -> str:
    return f"{device}|{title}"


@dataclass(frozen=True)
class CalibEntry:
    """Per-(device class, title) flow-level coefficients."""

    device: str
    title: str
    energy_per_frame: float  # J per displayed frame, exact pipeline
    stall_power: float  # W while playback is stalled (panel + S3 + SR)
    throttle_fraction: float  # fraction of wall time with boost revoked
    drop_rate: float  # fraction of frames missing their vsync
    calib_frames: int

    def to_jsonable(self) -> Dict[str, object]:
        """Plain-data form (floats round-trip via repr)."""
        return {
            "device": self.device,
            "title": self.title,
            "energy_per_frame": self.energy_per_frame,
            "stall_power": self.stall_power,
            "throttle_fraction": self.throttle_fraction,
            "drop_rate": self.drop_rate,
            "calib_frames": self.calib_frames,
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, object]) -> "CalibEntry":
        """Inverse of :meth:`to_jsonable`."""
        return cls(
            device=str(data["device"]),
            title=str(data["title"]),
            energy_per_frame=float(data["energy_per_frame"]),  # type: ignore[arg-type]
            stall_power=float(data["stall_power"]),  # type: ignore[arg-type]
            throttle_fraction=float(data["throttle_fraction"]),  # type: ignore[arg-type]
            drop_rate=float(data["drop_rate"]),  # type: ignore[arg-type]
            calib_frames=int(data["calib_frames"]),  # type: ignore[arg-type]
        )


@dataclass
class FleetCalibration:
    """The full coefficient table for one population spec."""

    fingerprint: str
    entries: Dict[str, CalibEntry]

    def entry(self, device: str, title: str) -> CalibEntry:
        """Coefficients for one (device class, title) pair."""
        try:
            return self.entries[_entry_key(device, title)]
        except KeyError:
            raise FleetError(
                f"no calibration entry for device {device!r} x title "
                f"{title!r} — recalibrate against the current spec"
            ) from None

    def coefficient_arrays(
            self, spec: PopulationSpec
    ) -> Dict[str, np.ndarray]:
        """Dense lookup tables indexed by (device_idx, title_idx)."""
        shape = (len(spec.device_classes), len(spec.titles))
        epf = np.zeros(shape, dtype=np.float64)
        throttle = np.zeros(shape, dtype=np.float64)
        stall = np.zeros(len(spec.device_classes), dtype=np.float64)
        for d_idx, device in enumerate(spec.device_classes):
            for t_idx, title in enumerate(spec.titles):
                entry = self.entry(device.name, title)
                epf[d_idx, t_idx] = entry.energy_per_frame
                throttle[d_idx, t_idx] = entry.throttle_fraction
                stall[d_idx] = entry.stall_power
        return {"energy_per_frame": epf,
                "throttle_fraction": throttle,
                "stall_power": stall}

    def to_jsonable(self) -> Dict[str, object]:
        """Plain-data form (the on-disk cache format)."""
        return {
            "fingerprint": self.fingerprint,
            "entries": {key: entry.to_jsonable()
                        for key, entry in sorted(self.entries.items())},
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, object]) -> "FleetCalibration":
        """Inverse of :meth:`to_jsonable`."""
        return cls(
            fingerprint=str(data["fingerprint"]),
            entries={
                key: CalibEntry.from_jsonable(entry)
                for key, entry in data["entries"].items()  # type: ignore[union-attr]
            },
        )

    def save(self, path: str) -> None:
        """Write the cache file atomically enough for a CLI tool."""
        payload = json.dumps(self.to_jsonable(), indent=2, sort_keys=True)
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str) -> "FleetCalibration":
        """Read a cache file written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_jsonable(json.load(handle))


def _stall_power(config: SimulationConfig) -> float:
    """Device power while playback is stalled waiting on the network.

    The VD sleeps in S3, DRAM self-refreshes, and the panel keeps
    showing the last frame — the same composition the session
    simulator charges during pauses.
    """
    return (config.display.power
            + config.decoder.power_states.s3_power
            + config.dram.background_power
            * config.dram.self_refresh_fraction)


def _calibrate_pair(spec: PopulationSpec, device_index: int,
                    title: str,
                    base: SimulationConfig) -> CalibEntry:
    """Run the exact pipeline once for one (device, title) pair."""
    from ..core.pipeline import simulate

    device = spec.device_classes[device_index]
    config = device.to_simulation_config(base)
    run = simulate(workload(title), device.scheme_config(),
                   n_frames=spec.calib_frames, config=config,
                   seed=spec.calib_seed)
    throttle_fraction = (run.throttle_seconds / run.elapsed
                         if run.elapsed > 0 else 0.0)
    return CalibEntry(
        device=device.name,
        title=title,
        energy_per_frame=run.energy.total / run.n_frames,
        stall_power=_stall_power(config),
        throttle_fraction=throttle_fraction,
        drop_rate=run.drop_rate,
        calib_frames=spec.calib_frames,
    )


def calibrate(spec: PopulationSpec,
              config: Optional[SimulationConfig] = None,
              progress: Optional[Callable[[str], None]] = None
              ) -> FleetCalibration:
    """Calibrate every (device class, title) pair from scratch."""
    base = config or SimulationConfig()
    entries: Dict[str, CalibEntry] = {}
    for d_idx, device in enumerate(spec.device_classes):
        for title in spec.titles:
            if progress is not None:
                progress(f"calibrating {device.name} x {title}")
            entry = _calibrate_pair(spec, d_idx, title, base)
            entries[_entry_key(device.name, title)] = entry
    return FleetCalibration(fingerprint=spec.fingerprint(),
                            entries=entries)


def _drifted(cached: CalibEntry, fresh: CalibEntry) -> bool:
    """Has the pipeline moved away from the cached coefficients?"""
    return not (
        math.isclose(cached.energy_per_frame, fresh.energy_per_frame,
                     rel_tol=DRIFT_RTOL, abs_tol=0.0)
        and math.isclose(cached.stall_power, fresh.stall_power,
                         rel_tol=DRIFT_RTOL, abs_tol=0.0)
        and math.isclose(cached.throttle_fraction,
                         fresh.throttle_fraction,
                         rel_tol=DRIFT_RTOL, abs_tol=1e-12)
    )


def load_or_calibrate(spec: PopulationSpec, path: str,
                      config: Optional[SimulationConfig] = None,
                      progress: Optional[Callable[[str], None]] = None,
                      drift_check: bool = True) -> FleetCalibration:
    """Cached calibration: load ``path`` if fresh, else (re)build it.

    A cache hit requires the stored fingerprint to match the spec
    *and* (when ``drift_check``) one re-simulated probe pair to agree
    with its cached coefficients — so a stale cache after a pipeline
    change is rebuilt instead of silently mispricing the fleet.
    """
    base = config or SimulationConfig()
    cached: Optional[FleetCalibration] = None
    if os.path.exists(path):
        try:
            cached = FleetCalibration.load(path)
        except (OSError, ValueError, KeyError):
            cached = None  # unreadable/corrupt cache: rebuild
    if cached is not None and cached.fingerprint == spec.fingerprint():
        if not drift_check:
            return cached
        probe_title = spec.titles[0]
        probe_device = spec.device_classes[0].name
        if progress is not None:
            progress(f"drift probe {probe_device} x {probe_title}")
        fresh = _calibrate_pair(spec, 0, probe_title, base)
        try:
            stored = cached.entry(probe_device, probe_title)
        except FleetError:
            stored = None
        if stored is not None and not _drifted(stored, fresh):
            return cached
        if progress is not None:
            progress("calibration drift detected — rebuilding")
    calibration = calibrate(spec, config=base, progress=progress)
    calibration.save(path)
    return calibration
