"""The streaming population engine: 1M+ sessions in bounded memory.

``run_fleet`` advances every session at *flow* granularity: the
calibrated surrogate (:mod:`repro.fleet.surrogate`) prices decode
energy per frame, and an analytic radio/ABR model derived from
:class:`~repro.config.RadioConfig` prices delivery — no per-frame loop
per user.  Execution is chunked and two-pass:

* **Pass 1** (only with contention): stream the population through the
  :class:`~repro.fleet.cell.CellLoadAccumulator` to build the shared-
  bandwidth throttle field.
* **Pass 2**: stream the population again, score each chunk
  vectorized, and fold the metrics into per-cohort online aggregates
  (:mod:`repro.fleet.sketches`).

Working memory is O(chunk + cells x epochs + cohorts) — independent of
the session count — because the stateless
:class:`~repro.fleet.population.PopulationModel` can re-draw any chunk
on demand instead of keeping sessions alive between passes.

Sharding is a *determinism contract*, not just a speed knob: shards
process disjoint chunk stripes and their partial aggregates merge
exactly (integer state everywhere), so ``shards=1`` and ``shards=64``
produce bit-identical :class:`FleetResult` JSON.  The satellite
hypothesis tests pin that property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis import format_table
from ..analysis.ascii_plot import sparkline
from ..config import SimulationConfig
from ..errors import FleetError
from .cell import CellLoadAccumulator, ContentionField
from .population import PopulationModel, PopulationSpec, SessionChunk
from .sketches import HistogramSketch, ReservoirSample, StreamingMoments
from .surrogate import FleetCalibration, calibrate

#: Sessions per streamed chunk.  Fixed (not tunable per run) because
#: per-chunk float reductions inside the sketches are only guaranteed
#: identical for identical chunk boundaries.
SESSION_CHUNK = 8192

#: Per-session metrics tracked by every cohort (canonical units).
METRICS: Tuple[str, ...] = (
    "total_energy", "play_energy", "radio_energy", "stall_seconds",
    "startup_seconds", "throttle_seconds", "contention_factor",
)
#: Metrics that additionally keep a quantile sketch.
HIST_METRICS: Tuple[str, ...] = ("total_energy", "stall_seconds")

#: Effective-bandwidth floor (bytes/s): below this a link is dead air,
#: and unbounded stall times would swamp the quantized aggregates.
BANDWIDTH_FLOOR = 10_000.0


@dataclass
class CohortAggregate:
    """Bounded-memory summary of one cohort's session metrics."""

    key: str
    moments: Dict[str, StreamingMoments]
    hists: Dict[str, HistogramSketch]
    sample: ReservoirSample

    @classmethod
    def empty(cls, key: str, seed: int) -> "CohortAggregate":
        """A fresh, zero-session aggregate for ``key``."""
        return cls(
            key=key,
            moments={m: StreamingMoments() for m in METRICS},
            hists={m: HistogramSketch() for m in HIST_METRICS},
            sample=ReservoirSample(seed=seed),
        )

    @property
    def count(self) -> int:
        return self.moments["total_energy"].count

    def add_chunk(self, uids: np.ndarray,
                  metrics: Dict[str, np.ndarray],
                  mask: Optional[np.ndarray] = None) -> None:
        """Fold (a masked view of) one chunk's metrics in."""
        if mask is not None:
            if not mask.any():
                return
            uids = uids[mask]
        for name in METRICS:
            values = metrics[name] if mask is None else metrics[name][mask]
            self.moments[name].add_array(values)
            if name in self.hists:
                self.hists[name].add_array(values)
        total = (metrics["total_energy"] if mask is None
                 else metrics["total_energy"][mask])
        self.sample.offer_array(uids, total)

    def merge(self, other: "CohortAggregate") -> "CohortAggregate":
        """Exact merge of another shard's partial for the same cohort."""
        if self.key != other.key:
            raise FleetError(
                f"cannot merge cohort {other.key!r} into {self.key!r}")
        return CohortAggregate(
            key=self.key,
            moments={m: self.moments[m].merge(other.moments[m])
                     for m in METRICS},
            hists={m: self.hists[m].merge(other.hists[m])
                   for m in HIST_METRICS},
            sample=self.sample.merge(other.sample),
        )

    def to_jsonable(self) -> Dict[str, object]:
        """Lossless plain-data form."""
        return {
            "key": self.key,
            "moments": {m: s.to_jsonable()
                        for m, s in self.moments.items()},
            "hists": {m: h.to_jsonable() for m, h in self.hists.items()},
            "sample": self.sample.to_jsonable(),
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, object]) -> "CohortAggregate":
        """Inverse of :meth:`to_jsonable`."""
        return cls(
            key=str(data["key"]),
            moments={m: StreamingMoments.from_jsonable(s)
                     for m, s in data["moments"].items()},  # type: ignore[union-attr]
            hists={m: HistogramSketch.from_jsonable(h)
                   for m, h in data["hists"].items()},  # type: ignore[union-attr]
            sample=ReservoirSample.from_jsonable(
                data["sample"]),  # type: ignore[arg-type]
        )


@dataclass
class FleetResult:
    """Cohort distributions for one fleet run.

    Everything here is shard-layout independent by construction; two
    runs of the same ``(spec, n_sessions, seed, contention)`` agree on
    :meth:`to_jsonable` bit-for-bit whatever ``shards`` was.
    """

    spec_fingerprint: str
    n_sessions: int
    seed: int
    contention: bool
    cohorts: Dict[str, CohortAggregate]
    saturated_cell_epochs: int
    peak_cell_load: float  # bytes/s, worst single (cell, epoch)

    def cohort(self, key: str) -> CohortAggregate:
        """Look up one cohort ("fleet", "device:...", ...)."""
        try:
            return self.cohorts[key]
        except KeyError:
            raise FleetError(f"unknown cohort {key!r}; known: "
                             f"{sorted(self.cohorts)}") from None

    def to_jsonable(self) -> Dict[str, object]:
        """Lossless plain-data form (the ``--json`` report)."""
        return {
            "spec_fingerprint": self.spec_fingerprint,
            "n_sessions": self.n_sessions,
            "seed": self.seed,
            "contention": self.contention,
            "cohorts": {key: cohort.to_jsonable()
                        for key, cohort in sorted(self.cohorts.items())},
            "saturated_cell_epochs": self.saturated_cell_epochs,
            "peak_cell_load": self.peak_cell_load,
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, object]) -> "FleetResult":
        """Inverse of :meth:`to_jsonable`."""
        return cls(
            spec_fingerprint=str(data["spec_fingerprint"]),
            n_sessions=int(data["n_sessions"]),  # type: ignore[arg-type]
            seed=int(data["seed"]),  # type: ignore[arg-type]
            contention=bool(data["contention"]),
            cohorts={key: CohortAggregate.from_jsonable(cohort)
                     for key, cohort
                     in data["cohorts"].items()},  # type: ignore[union-attr]
            saturated_cell_epochs=int(
                data["saturated_cell_epochs"]),  # type: ignore[arg-type]
            peak_cell_load=float(
                data["peak_cell_load"]),  # type: ignore[arg-type]
        )

    def report(self) -> str:
        """Human-readable cohort tables plus an energy sparkline."""
        rows: List[List[object]] = []
        for key in sorted(self.cohorts):
            cohort = self.cohorts[key]
            energy = cohort.moments["total_energy"]
            stall = cohort.moments["stall_seconds"]
            startup = cohort.moments["startup_seconds"]
            factor = cohort.moments["contention_factor"]
            rows.append([
                key, cohort.count,
                energy.mean, energy.std,
                cohort.hists["total_energy"].quantile(0.5),
                cohort.hists["total_energy"].quantile(0.95),
                stall.mean,
                cohort.hists["stall_seconds"].quantile(0.95),
                startup.mean,
                factor.mean,
            ])
        lines = [format_table(
            ["cohort", "sessions", "mean J", "std J", "p50 J",
             "p95 J", "stall s", "p95 stall", "startup s", "bw factor"],
            rows,
            title=f"fleet of {self.n_sessions} sessions "
                  f"(spec {self.spec_fingerprint}, seed {self.seed}, "
                  f"contention={'on' if self.contention else 'off'})")]
        hist = self.cohorts["fleet"].hists["total_energy"]
        span = hist.nonzero_span()
        if span:
            first, last = span
            counts = hist.counts[1 + first:2 + last].astype(np.float64)
            lo = 10.0 ** (hist.lo_exp + first / hist.bins_per_decade)
            hi = 10.0 ** (hist.lo_exp + (last + 1) / hist.bins_per_decade)
            lines.append("\nsession energy distribution "
                         f"[{lo:.3g} J .. {hi:.3g} J, log scale]:")
            lines.append("  " + sparkline(counts))
        if self.contention:
            lines.append(f"\ncontention: {self.saturated_cell_epochs} "
                         "saturated cell-epochs, peak offered load "
                         f"{self.peak_cell_load:.3g} bytes/s per cell")
        return "\n".join(lines)


def _cohort_masks(spec: PopulationSpec, chunk: SessionChunk
                  ) -> Sequence[Tuple[str, Optional[np.ndarray]]]:
    """(cohort key, mask) pairs for one chunk; None = all sessions."""
    pairs: List[Tuple[str, Optional[np.ndarray]]] = [("fleet", None)]
    for d_idx, device in enumerate(spec.device_classes):
        pairs.append((f"device:{device.name}", chunk.device == d_idx))
    for r_idx, region in enumerate(spec.regions):
        pairs.append((f"region:{region.name}", chunk.region == r_idx))
    for t_idx, title in enumerate(spec.titles):
        pairs.append((f"title:{title}", chunk.title == t_idx))
    return pairs


def _score_chunk(spec: PopulationSpec, chunk: SessionChunk,
                 factor: np.ndarray,
                 tables: Dict[str, np.ndarray],
                 fps: float) -> Dict[str, np.ndarray]:
    """Vectorized flow-level session model for one chunk.

    Sessions pick the highest ladder rung that fits ``abr_safety`` of
    their (contention-throttled) bandwidth; below the bottom rung the
    deficit surfaces as mid-stream stalls.  The radio follows the
    burst-download cycle implied by the buffer/watermark geometry:
    races at ``active_power``, rides the tail, and demotes to idle
    with a paid promotion when the drain gap is long enough.
    """
    radio = spec.radio
    ladder = np.asarray(spec.ladder, dtype=np.float64)
    duration = chunk.duration_seconds
    bw_eff = np.maximum(chunk.bandwidth * factor, BANDWIDTH_FLOOR)

    rung = np.searchsorted(ladder, spec.abr_safety * bw_eff,
                           side="right") - 1
    rung = np.clip(rung, 0, ladder.size - 1)
    rate = ladder[rung]

    # Mid-stream stalls: playing 1 s of bottom-rung content over a
    # slower link takes ladder[0]/bw_eff wall seconds.
    stall = duration * np.maximum(ladder[0] / bw_eff - 1.0, 0.0)
    startup = (radio.promotion_latency
               + spec.preroll_seconds * rate / bw_eff)

    frames = np.rint(duration * fps)
    epf = tables["energy_per_frame"][chunk.device, chunk.title]
    play_energy = epf * frames
    stall_energy = stall * tables["stall_power"][chunk.device]
    throttle = (tables["throttle_fraction"][chunk.device, chunk.title]
                * duration)

    # Burst-mode radio: refill cycles sized by the buffer span.
    total_bytes = duration * rate
    active_seconds = total_bytes / bw_eff
    cycle_span = max(spec.buffer_seconds - spec.watermark_seconds,
                     spec.epoch_seconds)
    n_cycles = np.ceil(duration / cycle_span)
    burst_wall = cycle_span * rate / bw_eff
    gap = np.maximum(cycle_span - burst_wall, 0.0)
    demotes = gap > (radio.tail_seconds + radio.promotion_latency)
    cycle_overhead = np.where(
        demotes,
        radio.tail_seconds * radio.tail_power
        + (gap - radio.tail_seconds) * radio.idle_power
        + radio.promotion_energy,
        gap * radio.tail_power)
    radio_energy = (active_seconds * radio.active_power
                    + n_cycles * cycle_overhead
                    + radio.promotion_energy)

    total = play_energy + stall_energy + radio_energy
    return {
        "total_energy": total,
        "play_energy": play_energy,
        "radio_energy": radio_energy,
        "stall_seconds": stall,
        "startup_seconds": startup,
        "throttle_seconds": throttle,
        "contention_factor": factor,
    }


def _chunk_bounds(n_sessions: int) -> List[Tuple[int, int]]:
    """(start, count) per chunk, fixed SESSION_CHUNK stride."""
    bounds = []
    for start in range(0, n_sessions, SESSION_CHUNK):
        bounds.append((start, min(SESSION_CHUNK, n_sessions - start)))
    return bounds


def _stripes(n_chunks: int, shards: int) -> List[range]:
    """Contiguous chunk stripes, one per shard (some may be empty)."""
    base, extra = divmod(n_chunks, shards)
    stripes = []
    lo = 0
    for shard in range(shards):
        size = base + (1 if shard < extra else 0)
        stripes.append(range(lo, lo + size))
        lo += size
    return stripes


def cohort_keys(spec: PopulationSpec) -> List[str]:
    """Canonical cohort-key order for a spec.

    Every stripe partial — serial or shipped home by a shard worker —
    must carry exactly these keys; the merge plane enforces it.
    """
    return (["fleet"]
            + [f"device:{d.name}" for d in spec.device_classes]
            + [f"region:{r.name}" for r in spec.regions]
            + [f"title:{t}" for t in spec.titles])


def compute_load_stripe(spec: PopulationSpec, model: PopulationModel,
                        bounds: Sequence[Tuple[int, int]],
                        chunk_ids: Sequence[int]) -> CellLoadAccumulator:
    """Pass-1 partial for one stripe: accumulated cell demand.

    Pure in ``(spec, seed, chunk_ids)`` — the population model re-draws
    chunks on demand, so any process (the serial fold, a shard worker,
    a speculative re-execution) computes the identical partial.
    """
    accumulator = CellLoadAccumulator(spec)
    for chunk_index in chunk_ids:
        start, count = bounds[chunk_index]
        accumulator.accumulate(model.draw_chunk(start, count))
    return accumulator


def compute_score_stripe(spec: PopulationSpec, model: PopulationModel,
                         bounds: Sequence[Tuple[int, int]],
                         chunk_ids: Sequence[int],
                         field: Optional[ContentionField],
                         tables: Dict[str, np.ndarray], fps: float,
                         seed: int) -> Dict[str, CohortAggregate]:
    """Pass-2 partial for one stripe: per-cohort aggregates.

    Same purity contract as :func:`compute_load_stripe`; ``field`` is
    the *globally finalized* contention field (never a partial one),
    so the throttle factors a stripe reads are shard-independent.
    """
    partial = {key: CohortAggregate.empty(key, seed)
               for key in cohort_keys(spec)}
    for chunk_index in chunk_ids:
        start, count = bounds[chunk_index]
        chunk = model.draw_chunk(start, count)
        factor = (field.mean_factor(chunk) if field is not None
                  else np.ones(count, dtype=np.float64))
        metrics = _score_chunk(spec, chunk, factor, tables, fps)
        for key, mask in _cohort_masks(spec, chunk):
            partial[key].add_chunk(chunk.uid, metrics, mask)
    return partial


def run_fleet(spec: PopulationSpec, n_sessions: int, seed: int = 0,
              shards: int = 1, contention: bool = True,
              calibration: Optional[FleetCalibration] = None,
              config: Optional[SimulationConfig] = None,
              progress: Optional[Callable[[str], None]] = None
              ) -> FleetResult:
    """Simulate ``n_sessions`` drawn from ``spec`` in bounded memory.

    Args:
        spec: the declarative population.
        n_sessions: how many sessions to draw and score.
        seed: population seed (calibration has its own, in the spec).
        shards: how many chunk stripes to fold independently before
            the exact merge — the result is bit-identical for any
            value, so use whatever matches the execution environment.
        contention: share cell bandwidth (True) or give every session
            its private drawn trace (False).
        calibration: a pre-built coefficient table (e.g. from
            :func:`~repro.fleet.surrogate.load_or_calibrate`); must
            match ``spec``'s fingerprint.  Calibrated on the fly when
            omitted.
        config: base :class:`SimulationConfig` for on-the-fly
            calibration.
        progress: optional callable for status lines.

    Returns:
        A :class:`FleetResult` of per-cohort online aggregates.
    """
    if n_sessions < 1:
        raise FleetError("need at least one session")
    if shards < 1:
        raise FleetError("need at least one shard")
    if calibration is None:
        calibration = calibrate(spec, config=config, progress=progress)
    if calibration.fingerprint != spec.fingerprint():
        raise FleetError(
            "calibration fingerprint does not match the population "
            "spec — rebuild it with load_or_calibrate/calibrate")
    tables = calibration.coefficient_arrays(spec)
    fps = (config or SimulationConfig()).video.fps
    model = PopulationModel(spec, seed)
    bounds = _chunk_bounds(n_sessions)
    stripes = _stripes(len(bounds), shards)

    # The serial fold goes through the same merge plane the supervised
    # shard service uses, so there is exactly one fold code path to
    # audit for the bit-identity contract.  Deferred import: shard.py
    # imports this module at top level.
    from .shard import MergePlane
    plane = MergePlane(spec, seed)

    field: Optional[ContentionField] = None
    if contention:
        if progress is not None:
            progress(f"pass 1/2: cell load over {len(bounds)} chunks")
        for stripe_id, stripe in enumerate(stripes):
            plane.offer_load(
                stripe_id,
                compute_load_stripe(spec, model, bounds, stripe))
        field = plane.finalize_load()

    if progress is not None:
        progress(f"pass 2/2: scoring {n_sessions} sessions "
                 f"({shards} shard{'s' if shards > 1 else ''})")
    for stripe_id, stripe in enumerate(stripes):
        plane.offer_score(
            stripe_id,
            compute_score_stripe(spec, model, bounds, stripe, field,
                                 tables, fps, seed))
    return plane.result(n_sessions=n_sessions, contention=contention)
