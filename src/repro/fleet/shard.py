"""Stripe tasks, validated partials, and the idempotent merge plane.

This module is the *data plane* of supervised fleet execution: what a
shard worker computes (:func:`execute_stripe`), how the result is
shipped home (:class:`StripePartial`, checksummed), how the parent
decides whether to trust it (:func:`validate_partial`), and how trusted
partials fold into a :class:`~repro.fleet.engine.FleetResult`
(:class:`MergePlane`).  The control plane — processes, leases,
heartbeats, retries, speculation — lives in
:mod:`repro.fleet.supervision`.

The design center is the bit-identity contract: a stripe that was
retried three times, speculated, and delivered twice must fold into the
result exactly once, and the folded result must equal the undisturbed
serial run byte for byte.  Three properties deliver that:

* **Stripe purity** — :func:`execute_stripe` is a pure function of
  ``(world, task)``; the population model re-draws chunks on demand, so
  any attempt by any process computes the identical partial.
* **Validation before merge** — a partial must match its task, carry a
  payload whose canonical-JSON sha256 equals its checksum, and satisfy
  the aggregate invariants (integer load diffs of the right shape,
  exactly the canonical cohort keys, the standard quantum, session
  counts that add up).  Corrupt partials are rejected *before* they can
  touch merge state.
* **Idempotent merging** — :class:`MergePlane` dedups by
  ``(phase, stripe id)``; duplicate deliveries are dropped, and because
  every aggregate merge is exactly commutative (integer state
  everywhere), arrival order cannot perturb a bit.

Stripe checkpoints reuse the runner's quarantine-on-corruption
discipline (:mod:`repro.checkpointing`): a checkpoint whose entries
fail their checksums is moved to ``<path>.corrupt`` and the run starts
fresh rather than trusting it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..checkpointing import load_checkpoint, save_checkpoint
from ..errors import FleetError, ShardError
from .cell import CellLoadAccumulator, ContentionField
from .engine import (
    CohortAggregate,
    FleetResult,
    _chunk_bounds,
    _stripes,
    cohort_keys,
    compute_load_stripe,
    compute_score_stripe,
)
from .population import PopulationModel, PopulationSpec
from .sketches import DEFAULT_QUANTUM

#: The two stripe phases, in execution order: pass 1 accumulates cell
#: load, pass 2 scores sessions against the finalized field.
PHASE_LOAD = "load"
PHASE_SCORE = "score"

_CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class StripeTask:
    """One unit of leased work: a phase and a stripe of chunk ids."""

    phase: str
    stripe_id: int
    chunks: Tuple[int, ...]


@dataclass(frozen=True)
class StripeWorld:
    """Everything a worker needs to execute any stripe of one run.

    Immutable and shared by every attempt; for :data:`PHASE_SCORE`
    tasks, ``field`` must be the *globally finalized* contention field
    (or ``None`` for contention-free runs) so throttle factors are
    shard-independent.
    """

    spec: PopulationSpec
    seed: int
    bounds: Tuple[Tuple[int, int], ...]
    tables: Dict[str, np.ndarray]
    fps: float
    field: Optional[ContentionField] = None

    def stripe_sessions(self, task: StripeTask) -> int:
        """How many sessions ``task``'s chunks cover."""
        return sum(self.bounds[chunk][1] for chunk in task.chunks)


def plan_stripes(n_sessions: int, shards: int
                 ) -> Tuple[Tuple[Tuple[int, int], ...],
                            List[Tuple[int, ...]]]:
    """(chunk bounds, per-stripe chunk ids) for a run — the stripe plan
    shared verbatim by the serial fold and the supervised service."""
    bounds = tuple(_chunk_bounds(n_sessions))
    stripes = [tuple(r) for r in _stripes(len(bounds), shards)]
    return bounds, stripes


def make_tasks(phase: str, stripes: Sequence[Tuple[int, ...]]
               ) -> List[StripeTask]:
    """One :class:`StripeTask` per stripe for ``phase``."""
    return [StripeTask(phase=phase, stripe_id=stripe_id, chunks=chunks)
            for stripe_id, chunks in enumerate(stripes)]


def payload_checksum(payload: Dict[str, object]) -> str:
    """sha256 of the canonical-JSON payload encoding."""
    canonical = json.dumps(payload, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class StripePartial:
    """One stripe's result as shipped from worker to merge plane.

    ``checksum`` is computed *by the producer* over the canonical JSON
    of ``payload``; any mutation in flight (or in a checkpoint on
    disk) is detected by recomputing it at the consumer.
    """

    phase: str
    stripe_id: int
    n_sessions: int
    payload: Dict[str, object]
    checksum: str

    @classmethod
    def build(cls, phase: str, stripe_id: int, n_sessions: int,
              payload: Dict[str, object]) -> "StripePartial":
        """Seal a freshly computed payload under its checksum."""
        return cls(phase=phase, stripe_id=stripe_id,
                   n_sessions=n_sessions, payload=payload,
                   checksum=payload_checksum(payload))

    def to_jsonable(self) -> Dict[str, object]:
        """Lossless plain-data form (the checkpoint entry format)."""
        return {
            "phase": self.phase,
            "stripe_id": self.stripe_id,
            "n_sessions": self.n_sessions,
            "payload": self.payload,
            "checksum": self.checksum,
        }

    @classmethod
    def from_jsonable(cls, data: object) -> "StripePartial":
        """Inverse of :meth:`to_jsonable`; checksum-verified.

        Raises :class:`ValueError` on mismatch so checkpoint loading
        quarantines a tampered file instead of merging it.
        """
        if not isinstance(data, dict):
            raise TypeError(f"partial is {type(data).__name__}, "
                            "not an object")
        payload = data["payload"]
        if not isinstance(payload, dict):
            raise TypeError("partial payload is not an object")
        partial = cls(phase=str(data["phase"]),
                      stripe_id=int(data["stripe_id"]),  # type: ignore[arg-type]
                      n_sessions=int(data["n_sessions"]),  # type: ignore[arg-type]
                      payload=payload,
                      checksum=str(data["checksum"]))
        expected = payload_checksum(partial.payload)
        if partial.checksum != expected:
            raise ValueError(
                f"stripe ({partial.phase}, {partial.stripe_id}) "
                "checksum mismatch")
        return partial


def execute_stripe(world: StripeWorld, task: StripeTask) -> StripePartial:
    """Compute one stripe — pure in ``(world, task)``.

    Safe to run in any process, any number of times: every attempt
    produces the byte-identical partial.
    """
    model = PopulationModel(world.spec, world.seed)
    if task.phase == PHASE_LOAD:
        accumulator = compute_load_stripe(world.spec, model,
                                          world.bounds, task.chunks)
        payload: Dict[str, object] = accumulator.to_jsonable()
    elif task.phase == PHASE_SCORE:
        partial = compute_score_stripe(world.spec, model, world.bounds,
                                       task.chunks, world.field,
                                       world.tables, world.fps,
                                       world.seed)
        payload = {"cohorts": {key: agg.to_jsonable()
                               for key, agg in partial.items()}}
    else:
        raise ShardError(f"unknown stripe phase {task.phase!r}")
    return StripePartial.build(task.phase, task.stripe_id,
                               world.stripe_sessions(task), payload)


def tamper_partial(partial: StripePartial) -> StripePartial:
    """A corrupted copy of ``partial`` (checksum left stale).

    The fault injector's CORRUPT arm: one integer in the payload is
    nudged *after* the checksum was sealed, modeling a worker whose
    result got damaged in flight.  Validation must catch it.
    """
    payload = json.loads(json.dumps(partial.payload))
    if partial.phase == PHASE_LOAD:
        payload["diff"][0][0] += 1
    else:
        moments = payload["cohorts"]["fleet"]["moments"]
        moments["total_energy"]["q_sum"] += 1
    return StripePartial(phase=partial.phase,
                         stripe_id=partial.stripe_id,
                         n_sessions=partial.n_sessions,
                         payload=payload, checksum=partial.checksum)


# -- validation ----------------------------------------------------------------


def _validate_load_payload(spec: PopulationSpec,
                           payload: Dict[str, object]) -> None:
    diff = payload.get("diff")
    array = np.asarray(diff)
    expected = (spec.total_cells, spec.epoch_count + 1)
    if array.shape != expected:
        raise FleetError(f"load diff has shape {array.shape}, spec "
                         f"wants {expected}")
    if not issubclass(array.dtype.type, np.integer):
        raise FleetError("load diff is not integer-valued — the cell "
                         "field's exactness contract requires integer "
                         "demand")


def _validate_score_payload(spec: PopulationSpec, n_sessions: int,
                            payload: Dict[str, object]) -> None:
    cohorts = payload.get("cohorts")
    if not isinstance(cohorts, dict):
        raise FleetError("score payload has no cohorts object")
    expected_keys = cohort_keys(spec)
    if sorted(cohorts) != sorted(expected_keys):
        missing = sorted(set(expected_keys) - set(cohorts))
        extra = sorted(set(cohorts) - set(expected_keys))
        raise FleetError(f"cohort keys diverge from the spec (missing "
                         f"{missing}, unexpected {extra})")
    for key, data in cohorts.items():
        if not isinstance(data, dict):
            raise FleetError(f"cohort {key!r} is not an object")
        moments = data.get("moments")
        if not isinstance(moments, dict):
            raise FleetError(f"cohort {key!r} has no moments")
        for metric, summary in moments.items():
            if not isinstance(summary, dict):
                raise FleetError(
                    f"cohort {key!r} metric {metric!r} is malformed")
            if not np.isclose(float(summary.get("quantum", 0.0)),  # type: ignore[arg-type]
                              DEFAULT_QUANTUM):
                raise FleetError(
                    f"cohort {key!r} metric {metric!r} uses quantum "
                    f"{summary.get('quantum')!r}, not the standard "
                    f"{DEFAULT_QUANTUM}")
            for field_name in ("count", "q_sum", "q_sum_sq"):
                if not isinstance(summary.get(field_name), int):
                    raise FleetError(
                        f"cohort {key!r} metric {metric!r} field "
                        f"{field_name!r} is not an exact integer")
            count = summary["count"]
            if not isinstance(count, int) or not (
                    0 <= count <= n_sessions):
                raise FleetError(
                    f"cohort {key!r} metric {metric!r} counts "
                    f"{count!r} sessions, stripe holds {n_sessions}")
    fleet_moments = cohorts["fleet"]["moments"]
    if "total_energy" not in fleet_moments:
        raise FleetError("fleet cohort is missing its total_energy "
                         "moments")
    fleet_count = fleet_moments["total_energy"]["count"]
    if fleet_count != n_sessions:
        raise FleetError(
            f"fleet cohort counts {fleet_count} sessions, stripe "
            f"holds {n_sessions} — sessions were lost or invented")


def validate_partial(world: StripeWorld, task: StripeTask,
                     partial: StripePartial) -> None:
    """Reject a partial that cannot be trusted into the merge plane.

    Raises :class:`~repro.errors.FleetError` naming the first violated
    invariant: task mismatch, checksum mismatch, or a payload that
    breaks the aggregates' exactness contract.
    """
    if (partial.phase, partial.stripe_id) != (task.phase,
                                              task.stripe_id):
        raise FleetError(
            f"partial ({partial.phase}, {partial.stripe_id}) does not "
            f"answer task ({task.phase}, {task.stripe_id})")
    expected_sessions = world.stripe_sessions(task)
    if partial.n_sessions != expected_sessions:
        raise FleetError(
            f"partial claims {partial.n_sessions} sessions, task "
            f"covers {expected_sessions}")
    if payload_checksum(partial.payload) != partial.checksum:
        raise FleetError(
            f"stripe ({task.phase}, {task.stripe_id}) payload does "
            "not match its checksum — corrupt partial")
    if task.phase == PHASE_LOAD:
        _validate_load_payload(world.spec, partial.payload)
    elif task.phase == PHASE_SCORE:
        _validate_score_payload(world.spec, partial.n_sessions,
                                partial.payload)
    else:
        raise FleetError(f"unknown stripe phase {task.phase!r}")


# -- merge plane ---------------------------------------------------------------


class MergePlane:
    """Idempotent fold of stripe partials into one fleet result.

    Dedups by ``(phase, stripe id)``: the first delivery of a stripe
    merges, every later one is dropped and counted.  Because all
    aggregate merges are exactly commutative, the folded state is
    independent of delivery order — retries, speculation, and resumes
    cannot perturb it.
    """

    def __init__(self, spec: PopulationSpec, seed: int) -> None:
        self.spec = spec
        self.seed = seed
        self.duplicates_dropped = 0
        self._seen: Set[Tuple[str, int]] = set()
        self._load: Optional[CellLoadAccumulator] = None
        self._field: Optional[ContentionField] = None
        self._cohorts: Optional[Dict[str, CohortAggregate]] = None

    def offer_load(self, stripe_id: int,
                   accumulator: CellLoadAccumulator) -> bool:
        """Fold one pass-1 partial; False = duplicate, dropped."""
        if (PHASE_LOAD, stripe_id) in self._seen:
            self.duplicates_dropped += 1
            return False
        self._seen.add((PHASE_LOAD, stripe_id))
        if self._load is None:
            self._load = accumulator
        else:
            self._load.merge(accumulator)
        return True

    def offer_score(self, stripe_id: int,
                    partial: Dict[str, CohortAggregate]) -> bool:
        """Fold one pass-2 partial; False = duplicate, dropped."""
        if (PHASE_SCORE, stripe_id) in self._seen:
            self.duplicates_dropped += 1
            return False
        self._seen.add((PHASE_SCORE, stripe_id))
        if self._cohorts is None:
            self._cohorts = partial
        else:
            self._cohorts = {key: self._cohorts[key].merge(agg)
                             for key, agg in partial.items()}
        return True

    def offer_partial(self, world: StripeWorld, task: StripeTask,
                      partial: StripePartial) -> bool:
        """Validate, decode, and fold one shipped partial.

        The supervised path's single entry point: raises
        :class:`~repro.errors.FleetError` on an untrustworthy partial
        (caller quarantines and retries the stripe), returns False on
        a duplicate delivery.
        """
        validate_partial(world, task, partial)
        if task.phase == PHASE_LOAD:
            return self.offer_load(
                task.stripe_id,
                CellLoadAccumulator.from_jsonable(self.spec,
                                                  partial.payload))
        cohorts_data = partial.payload["cohorts"]
        assert isinstance(cohorts_data, dict)
        decoded = {key: CohortAggregate.from_jsonable(data)
                   for key, data in cohorts_data.items()}
        return self.offer_score(task.stripe_id, decoded)

    def finalize_load(self) -> ContentionField:
        """Prefix-sum the merged load into the global throttle field."""
        if self._load is None:
            raise ShardError("no load partials were merged — cannot "
                             "finalize the contention field")
        self._field = self._load.finalize()
        return self._field

    def result(self, n_sessions: int, contention: bool) -> FleetResult:
        """The finished :class:`FleetResult` after all stripes folded."""
        if self._cohorts is None:
            raise ShardError("no score partials were merged — the run "
                             "did not complete")
        field = self._field
        return FleetResult(
            spec_fingerprint=self.spec.fingerprint(),
            n_sessions=n_sessions,
            seed=self.seed,
            contention=contention,
            cohorts=self._cohorts,
            saturated_cell_epochs=(field.saturated_cell_epochs
                                   if field is not None else 0),
            peak_cell_load=(field.peak_load
                            if field is not None else 0.0),
        )


# -- stripe checkpoints --------------------------------------------------------


def checkpoint_meta(spec: PopulationSpec, n_sessions: int, seed: int,
                    shards: int, contention: bool) -> Dict[str, object]:
    """Identity of a supervised run; a checkpoint from any other run
    (different spec, population, seed, or stripe layout) is
    quarantined, never merged."""
    return {
        "spec_fingerprint": spec.fingerprint(),
        "n_sessions": n_sessions,
        "seed": seed,
        "shards": shards,
        "contention": contention,
    }


def load_stripe_checkpoint(path: str, meta: Dict[str, object]
                           ) -> Tuple[List[StripePartial],
                                      Dict[str, str]]:
    """Completed stripe partials from ``path`` (empty if absent).

    Every entry re-verifies its payload checksum on the way in; one
    tampered entry quarantines the whole file (the writer is atomic,
    so partial validity means corruption).
    """
    return load_checkpoint(path, _CHECKPOINT_VERSION, meta,
                           StripePartial.from_jsonable, ShardError)


def save_stripe_checkpoint(path: str, meta: Dict[str, object],
                           partials: Sequence[StripePartial]) -> None:
    """Atomically persist completed stripes (tmp + rename)."""
    ordered = sorted(partials,
                     key=lambda p: (p.phase, p.stripe_id))
    save_checkpoint(path, _CHECKPOINT_VERSION, meta,
                    [partial.to_jsonable() for partial in ordered])
