"""Cell-level shared-bandwidth contention for fleet runs.

Private per-session bandwidth traces overstate what a dense cell can
deliver: concurrent sessions in the same cell share its backhaul.  The
fleet engine models that with a mean-field, epoch-granular load field:

1. **Accumulate** — every session adds its offered demand (private
   bandwidth capped at the top ladder rung) to its cell for the epochs
   it is active.  The per-cell time series is built with the
   cumulative-difference trick (add at the start epoch, subtract after
   the end epoch, prefix-sum once), so cost is O(1) per session and
   the field is O(cells x epochs) regardless of population size.
2. **Finalize** — each (cell, epoch) gets a throttle factor
   ``min(1, capacity / load)``; a prefix sum over epochs then lets any
   session read its *mean* factor over its own active window in O(1).

Demand is quantized to integer bytes/s before accumulation.  Integer
addition is exactly associative and commutative, so shards can
accumulate partial fields in any order and merge to a bit-identical
result — the same exactness contract as :mod:`repro.fleet.sketches`.

This is a one-iteration mean-field model: demand is the *offered* load
(pre-contention), not the post-throttle equilibrium.  That
overestimates load in saturated cells, i.e. contention effects are
conservative (never understated) — the right bias for capacity
planning, and stated in MODEL.md section 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..errors import FleetError
from .population import PopulationSpec, SessionChunk


def _flat_cell(spec_offsets: np.ndarray, chunk: SessionChunk) -> np.ndarray:
    return spec_offsets[chunk.region] + chunk.cell


def _epoch_range(spec: PopulationSpec,
                 chunk: SessionChunk) -> Dict[str, np.ndarray]:
    """First and last (inclusive) active epoch per session."""
    first = np.floor(chunk.start_seconds
                     / spec.epoch_seconds).astype(np.int64)
    last = np.floor((chunk.start_seconds + chunk.duration_seconds)
                    / spec.epoch_seconds).astype(np.int64)
    last = np.minimum(last, spec.epoch_count - 1)
    return {"first": first, "last": last}


class CellLoadAccumulator:
    """Pass-1 state: integer demand differences per (cell, epoch)."""

    def __init__(self, spec: PopulationSpec) -> None:
        self.spec = spec
        offsets = np.zeros(len(spec.regions), dtype=np.int64)
        offsets[1:] = np.cumsum([r.cells for r in spec.regions])[:-1]
        self._offsets = offsets
        # One extra epoch column so the subtract-after-end marker of a
        # session ending in the last epoch has somewhere to land.
        self._diff = np.zeros(
            (spec.total_cells, spec.epoch_count + 1), dtype=np.int64)

    def accumulate(self, chunk: SessionChunk) -> None:
        """Add a chunk's offered demand to the load field."""
        spec = self.spec
        top_rung = spec.ladder[-1]
        demand = np.rint(
            np.minimum(chunk.bandwidth, top_rung)).astype(np.int64)
        cells = _flat_cell(self._offsets, chunk)
        span = _epoch_range(spec, chunk)
        np.add.at(self._diff, (cells, span["first"]), demand)
        np.add.at(self._diff, (cells, span["last"] + 1), -demand)

    def merge(self, other: "CellLoadAccumulator") -> None:
        """Exact in-place merge of another shard's partial field."""
        if self._diff.shape != other._diff.shape:
            raise FleetError("cannot merge load fields of different "
                             "shapes (specs differ)")
        self._diff += other._diff

    def to_jsonable(self) -> Dict[str, object]:
        """Lossless plain-data form (integer diffs are exact in JSON).

        This is the wire format a shard worker ships its pass-1
        partial home in; :meth:`from_jsonable` is the inverse, so a
        load field that crossed a process boundary merges bit-
        identically with one that never left.
        """
        return {"diff": self._diff.tolist()}

    @classmethod
    def from_jsonable(cls, spec: PopulationSpec,
                      data: Dict[str, object]) -> "CellLoadAccumulator":
        """Inverse of :meth:`to_jsonable` (shape-checked against spec)."""
        accumulator = cls(spec)
        diff = np.asarray(data["diff"], dtype=np.int64)
        if diff.shape != accumulator._diff.shape:
            raise FleetError(
                f"load-field diff has shape {diff.shape}, spec wants "
                f"{accumulator._diff.shape}")
        accumulator._diff = diff
        return accumulator

    def finalize(self) -> "ContentionField":
        """Prefix-sum the differences into per-epoch throttle factors."""
        spec = self.spec
        load = np.cumsum(self._diff[:, :-1], axis=1).astype(np.float64)
        capacity = np.concatenate([
            np.full(r.cells, r.cell_capacity) for r in spec.regions])
        with np.errstate(divide="ignore", invalid="ignore"):
            factor = np.where(load > capacity[:, None],
                              capacity[:, None] / load, 1.0)
        saturated = int(np.count_nonzero(load > capacity[:, None]))
        prefix = np.zeros((factor.shape[0], factor.shape[1] + 1),
                          dtype=np.float64)
        np.cumsum(factor, axis=1, out=prefix[:, 1:])
        return ContentionField(spec=spec, offsets=self._offsets,
                               factor_prefix=prefix,
                               saturated_cell_epochs=saturated,
                               peak_load=float(load.max(initial=0.0)))


@dataclass
class ContentionField:
    """Finalized throttle factors, queryable per session in O(1)."""

    spec: PopulationSpec
    offsets: np.ndarray
    factor_prefix: np.ndarray  # (cells, epochs+1) cumulative factors
    saturated_cell_epochs: int
    peak_load: float  # bytes/s, worst single (cell, epoch)

    def mean_factor(self, chunk: SessionChunk) -> np.ndarray:
        """Mean throttle factor over each session's active window.

        A pure lookup into the globally finalized field, so the result
        is independent of which shard asks.
        """
        cells = _flat_cell(self.offsets, chunk)
        span = _epoch_range(self.spec, chunk)
        first, last = span["first"], span["last"]
        window = (last + 1 - first).astype(np.float64)
        summed = (self.factor_prefix[cells, last + 1]
                  - self.factor_prefix[cells, first])
        return summed / window
