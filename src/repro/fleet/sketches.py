"""Deterministic, mergeable online aggregates for fleet-scale runs.

A fleet run streams millions of per-session metric values through
bounded-memory summaries instead of keeping a list of results.  Every
summary here obeys one contract, which is what makes sharded execution
trustworthy:

    merging partials is **exact** — associative, commutative, and
    bit-identical to processing the whole stream in one piece.

Floating-point addition is none of those things, so the summaries never
accumulate floats across chunk boundaries:

* :class:`StreamingMoments` quantizes each value to an integer grid
  (``quantum`` units) and keeps integer ``count / sum / sum-of-squares /
  min / max``.  Python integers are arbitrary precision, and integer
  addition is exactly associative, so any shard partition folds to the
  same state.  The cost is a bounded quantization error (half a
  ``quantum``) on the reported mean/variance — stated, not hidden.
* :class:`HistogramSketch` is a log-spaced histogram with integer
  counts; merges add counts.  Quantiles carry a bounded *relative*
  error of one bin width (``10 ** (1 / bins_per_decade)``).
* :class:`ReservoirSample` keeps the ``k`` stream elements with the
  smallest splitmix64 hash priorities.  The kept set is a pure
  function of the element *identities* (uid), not of arrival order, so
  offering in any order or merging any partition yields the same
  sample.

The hash helpers mirror :mod:`repro.faults`: stateless splitmix64
mixing of ``(seed, site, index)`` coordinates, so no stateful RNG ever
threads through the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..errors import FleetError

_MASK64 = (1 << 64) - 1
#: 2**-53 — maps the top 53 bits of a hash to a uniform in [0, 1).
_INV_2_53 = 1.0 / (1 << 53)

#: Default quantization step for :class:`StreamingMoments` — one
#: milli-unit (1 mJ for energies, 1 ms for durations).  Values are
#: clipped to ``quantum * _QCLIP`` (~2.1e6 canonical units), far above
#: any physical per-session energy or stall time.
DEFAULT_QUANTUM = 1e-3
_QCLIP = 2 ** 31 - 1
_LO32 = (1 << 32) - 1

#: Internal slice length for exact integer reductions: with
#: ``|q| <= 2**31`` both ``sum(q)`` and the split high/low sums of
#: ``q**2`` stay inside int64 for slices this long.
_REDUCE_SLICE = 4096


def _splitmix64(x: int) -> int:
    """One splitmix64 finalization round (Steele et al.)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def hash_u64_array(seed: int, site: int,
                   indices: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 of ``(seed, site, index)`` -> uint64.

    Pure and order-free: element ``i`` depends only on ``indices[i]``,
    never on array layout, so chunked and monolithic evaluation agree
    bit-for-bit.
    """
    base = np.uint64(_splitmix64((seed ^ (site << 32)) & _MASK64))
    x = base ^ np.asarray(indices, dtype=np.uint64)
    with np.errstate(over="ignore"):
        x = x + np.uint64(0x9E3779B97F4A7C15)
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        x = x ^ (x >> np.uint64(31))
    return x


def hash_u01_array(seed: int, site: int,
                   indices: np.ndarray) -> np.ndarray:
    """Vectorized uniform in [0, 1) from hashed coordinates."""
    bits = hash_u64_array(seed, site, indices)
    return (bits >> np.uint64(11)).astype(np.float64) * _INV_2_53


@dataclass
class StreamingMoments:
    """Exact-integer streaming mean/variance/min/max.

    Values are snapped to a ``quantum`` grid on entry; all state is
    integer from then on, so :meth:`merge` is exactly associative and
    commutative and a sharded fold is bit-identical to a serial one.
    """

    quantum: float = DEFAULT_QUANTUM
    count: int = 0
    q_sum: int = 0
    q_sum_sq: int = 0
    q_min: Optional[int] = None
    q_max: Optional[int] = None

    def add_array(self, values: np.ndarray) -> None:
        """Fold a batch of values (any shape) into the summary."""
        flat = np.asarray(values, dtype=np.float64).ravel()
        if flat.size == 0:
            return
        q = np.clip(np.rint(flat / self.quantum),
                    -_QCLIP, _QCLIP).astype(np.int64)
        for start in range(0, q.size, _REDUCE_SLICE):
            part = q[start:start + _REDUCE_SLICE]
            sq = part * part
            self.q_sum += int(part.sum())
            self.q_sum_sq += ((int((sq >> 32).sum()) << 32)
                              + int((sq & _LO32).sum()))
        self.count += int(q.size)
        lo, hi = int(q.min()), int(q.max())
        self.q_min = lo if self.q_min is None else min(self.q_min, lo)
        self.q_max = hi if self.q_max is None else max(self.q_max, hi)

    def merge(self, other: "StreamingMoments") -> "StreamingMoments":
        """Exact merge (integer addition — any fold tree agrees)."""
        if not np.isclose(self.quantum, other.quantum):
            raise FleetError("cannot merge moments with different quanta")

        def _opt(op: Callable[[int, int], int], a: Optional[int],
                 b: Optional[int]) -> Optional[int]:
            if a is None:
                return b
            if b is None:
                return a
            return op(a, b)

        return StreamingMoments(
            quantum=self.quantum,
            count=self.count + other.count,
            q_sum=self.q_sum + other.q_sum,
            q_sum_sq=self.q_sum_sq + other.q_sum_sq,
            q_min=_opt(min, self.q_min, other.q_min),
            q_max=_opt(max, self.q_max, other.q_max),
        )

    @property
    def mean(self) -> float:
        """Mean in canonical units (0.0 for an empty summary)."""
        if not self.count:
            return 0.0
        return self.quantum * self.q_sum / self.count

    @property
    def variance(self) -> float:
        """Population variance in canonical units squared."""
        if not self.count:
            return 0.0
        mean_q = self.q_sum / self.count
        var_q = self.q_sum_sq / self.count - mean_q * mean_q
        return max(0.0, var_q) * self.quantum * self.quantum

    @property
    def std(self) -> float:
        return float(np.sqrt(self.variance))

    @property
    def minimum(self) -> float:
        return 0.0 if self.q_min is None else self.quantum * self.q_min

    @property
    def maximum(self) -> float:
        return 0.0 if self.q_max is None else self.quantum * self.q_max

    def to_jsonable(self) -> Dict[str, object]:
        """Lossless plain-data form (Python ints are exact in JSON)."""
        return {
            "quantum": self.quantum,
            "count": self.count,
            "q_sum": self.q_sum,
            "q_sum_sq": self.q_sum_sq,
            "q_min": self.q_min,
            "q_max": self.q_max,
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, object]) -> "StreamingMoments":
        """Inverse of :meth:`to_jsonable`."""
        return cls(
            quantum=float(data["quantum"]),  # type: ignore[arg-type]
            count=int(data["count"]),  # type: ignore[arg-type]
            q_sum=int(data["q_sum"]),  # type: ignore[arg-type]
            q_sum_sq=int(data["q_sum_sq"]),  # type: ignore[arg-type]
            q_min=(None if data["q_min"] is None
                   else int(data["q_min"])),  # type: ignore[arg-type]
            q_max=(None if data["q_max"] is None
                   else int(data["q_max"])),  # type: ignore[arg-type]
        )


@dataclass
class HistogramSketch:
    """Log-spaced histogram with exact integer merges.

    Bins cover ``[10**lo_exp, 10**hi_exp)`` with ``bins_per_decade``
    geometric bins per decade; values below the range (including zero
    and negatives) land in an underflow bin, values above in an
    overflow bin.  Quantile estimates return the geometric midpoint of
    the selected bin, so their relative error is bounded by half a bin
    ratio (~``10 ** (0.5 / bins_per_decade) - 1``; 3.7 % at the default
    32 bins/decade).
    """

    bins_per_decade: int = 32
    lo_exp: int = -6
    hi_exp: int = 7
    counts: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))

    def __post_init__(self) -> None:
        if self.bins_per_decade < 1 or self.hi_exp <= self.lo_exp:
            raise FleetError("histogram needs >= 1 bin/decade and "
                             "lo_exp < hi_exp")
        n = self.n_bins + 2
        if self.counts.size == 0:
            self.counts = np.zeros(n, dtype=np.int64)
        elif self.counts.shape != (n,):
            raise FleetError(f"histogram counts must have {n} slots")
        else:
            self.counts = np.asarray(self.counts, dtype=np.int64)

    @property
    def n_bins(self) -> int:
        """Interior (finite-range) bin count."""
        return (self.hi_exp - self.lo_exp) * self.bins_per_decade

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    def add_array(self, values: np.ndarray) -> None:
        """Fold a batch of values into the histogram."""
        v = np.asarray(values, dtype=np.float64).ravel()
        if v.size == 0:
            return
        lo_edge = 10.0 ** self.lo_exp
        hi_edge = 10.0 ** self.hi_exp
        under = v < lo_edge
        over = v >= hi_edge
        mid = ~(under | over)
        self.counts[0] += int(under.sum())
        self.counts[-1] += int(over.sum())
        if mid.any():
            idx = np.floor((np.log10(v[mid]) - self.lo_exp)
                           * self.bins_per_decade).astype(np.int64)
            idx = np.clip(idx, 0, self.n_bins - 1)
            self.counts[1:-1] += np.bincount(idx, minlength=self.n_bins)

    def merge(self, other: "HistogramSketch") -> "HistogramSketch":
        """Exact merge (integer count addition)."""
        if (self.bins_per_decade, self.lo_exp, self.hi_exp) != (
                other.bins_per_decade, other.lo_exp, other.hi_exp):
            raise FleetError("cannot merge histograms with different bins")
        return HistogramSketch(
            bins_per_decade=self.bins_per_decade,
            lo_exp=self.lo_exp, hi_exp=self.hi_exp,
            counts=self.counts + other.counts)

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (geometric bin midpoint)."""
        if not 0.0 <= q <= 1.0:
            raise FleetError(f"quantile must be in [0, 1], got {q!r}")
        total = self.total
        if total == 0:
            return float("nan")
        rank = min(total - 1, int(q * total))
        cumulative = np.cumsum(self.counts)
        slot = int(np.searchsorted(cumulative, rank, side="right"))
        if slot == 0:
            return 0.0
        if slot >= self.counts.size - 1:
            return 10.0 ** self.hi_exp
        exponent = self.lo_exp + (slot - 1 + 0.5) / self.bins_per_decade
        return 10.0 ** exponent

    def nonzero_span(self) -> Sequence[int]:
        """(first, last) occupied interior bin indices, or empty."""
        occupied = np.nonzero(self.counts[1:-1])[0]
        if occupied.size == 0:
            return ()
        return (int(occupied[0]), int(occupied[-1]))

    def to_jsonable(self) -> Dict[str, object]:
        """Lossless plain-data form."""
        return {
            "bins_per_decade": self.bins_per_decade,
            "lo_exp": self.lo_exp,
            "hi_exp": self.hi_exp,
            "counts": [int(c) for c in self.counts],
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, object]) -> "HistogramSketch":
        """Inverse of :meth:`to_jsonable`."""
        return cls(
            bins_per_decade=int(data["bins_per_decade"]),  # type: ignore[arg-type]
            lo_exp=int(data["lo_exp"]),  # type: ignore[arg-type]
            hi_exp=int(data["hi_exp"]),  # type: ignore[arg-type]
            counts=np.asarray(data["counts"], dtype=np.int64),
        )


#: Hash-site discriminator for reservoir priorities (style of
#: :mod:`repro.faults` site constants).
_SITE_RESERVOIR = 0x5A3F


@dataclass
class ReservoirSample:
    """Order-free bounded sample: keep the ``k`` smallest priorities.

    Each element's priority is a pure hash of ``(seed, uid)``, so the
    kept set is the ``k`` smallest-priority elements of the *union* of
    everything offered — independent of offer order, chunking, and
    shard layout.  Ties cannot happen across distinct uids in practice
    (64-bit priorities), but ``(priority, uid)`` ordering makes even
    that case deterministic.
    """

    capacity: int = 64
    seed: int = 0
    uids: List[int] = field(default_factory=list)
    priorities: List[int] = field(default_factory=list)
    samples: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise FleetError("reservoir capacity must be >= 1")

    def offer_array(self, uids: np.ndarray, values: np.ndarray) -> None:
        """Offer a batch of (uid, value) pairs."""
        uid_arr = np.asarray(uids, dtype=np.int64).ravel()
        val_arr = np.asarray(values, dtype=np.float64).ravel()
        if uid_arr.size == 0:
            return
        pri = hash_u64_array(self.seed, _SITE_RESERVOIR, uid_arr)
        all_pri = np.concatenate(
            [np.asarray(self.priorities, dtype=np.uint64), pri])
        all_uid = np.concatenate(
            [np.asarray(self.uids, dtype=np.int64), uid_arr])
        all_val = np.concatenate(
            [np.asarray(self.samples, dtype=np.float64), val_arr])
        order = np.lexsort((all_uid, all_pri))[:self.capacity]
        self.priorities = [int(p) for p in all_pri[order]]
        self.uids = [int(u) for u in all_uid[order]]
        self.samples = [float(v) for v in all_val[order]]

    def merge(self, other: "ReservoirSample") -> "ReservoirSample":
        """Exact merge: k smallest priorities of the union."""
        if (self.capacity, self.seed) != (other.capacity, other.seed):
            raise FleetError("cannot merge reservoirs with different "
                             "capacity or seed")
        merged = ReservoirSample(capacity=self.capacity, seed=self.seed,
                                 uids=list(self.uids),
                                 priorities=list(self.priorities),
                                 samples=list(self.samples))
        if other.uids:
            pri = np.asarray(merged.priorities + other.priorities,
                             dtype=np.uint64)
            uid = np.asarray(merged.uids + other.uids, dtype=np.int64)
            val = np.asarray(merged.samples + other.samples,
                             dtype=np.float64)
            order = np.lexsort((uid, pri))[:self.capacity]
            merged.priorities = [int(p) for p in pri[order]]
            merged.uids = [int(u) for u in uid[order]]
            merged.samples = [float(v) for v in val[order]]
        return merged

    def to_jsonable(self) -> Dict[str, object]:
        """Lossless plain-data form (floats round-trip via repr)."""
        return {
            "capacity": self.capacity,
            "seed": self.seed,
            "uids": list(self.uids),
            "priorities": list(self.priorities),
            "samples": list(self.samples),
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, object]) -> "ReservoirSample":
        """Inverse of :meth:`to_jsonable`."""
        return cls(
            capacity=int(data["capacity"]),  # type: ignore[arg-type]
            seed=int(data["seed"]),  # type: ignore[arg-type]
            uids=[int(u) for u in data["uids"]],  # type: ignore[union-attr]
            priorities=[int(p)
                        for p in data["priorities"]],  # type: ignore[union-attr]
            samples=[float(v)
                     for v in data["samples"]],  # type: ignore[union-attr]
        )
