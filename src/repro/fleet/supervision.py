"""Supervised shard execution: leases, retries, speculation.

The control plane over :mod:`repro.fleet.shard`'s data plane.  A
:class:`Supervisor`-driven run executes each stripe phase on a pool of
worker processes under a deterministic protocol:

* **Leases with heartbeat deadlines** — every attempt holds a lease
  that its heartbeats keep renewing; a worker that stops heartbeating
  (wedged, stalled, swapped out) has its lease revoked, its process
  killed, and its stripe retried.  Crashes are detected directly from
  process exit.
* **Bounded retries with seeded backoff** — a failed stripe relaunches
  after :func:`repro.backoff.backoff_delay` (exponential + seeded
  jitter, shared with the matrix runner), and a stripe that fails more
  than ``max_retries`` times fails the run with a
  :class:`~repro.errors.ShardError` instead of livelocking.
* **Speculative re-execution** — once enough stripes have completed to
  establish a median duration, a straggler (running longer than
  ``speculation_factor`` x median, with a floor) gets a second attempt
  racing the first; whichever delivers first wins and the loser is
  killed.  The merge plane dedups, so both finishing is harmless.
* **Validation + quarantine before merge** — every delivered partial
  passes :func:`~repro.fleet.shard.validate_partial`; a corrupt one is
  rejected (counted, evented) and its stripe retried.

Timing here is deliberately *wall-clock*: leases and speculation react
to real elapsed time.  None of it can perturb the result — stripes are
pure and the merge plane is idempotent and exactly commutative — so
every duration lands only in the :class:`SupervisionReport`, never in
:class:`~repro.fleet.engine.FleetResult`.  That is the headline
invariant, enforced by the chaos harness: *for any seeded fault
schedule under which the run completes, the supervised result is
bit-identical to the undisturbed serial run.*
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field
from multiprocessing.connection import Connection
from typing import Callable, Dict, List, Optional, Tuple

from ..backoff import SITE_STRIPE_RETRY, backoff_delay
from ..config import SimulationConfig
from ..errors import FleetError, ShardError
from ..faults import ShardFault, ShardFaultConfig, ShardFaultPlan
from .engine import FleetResult
from .population import PopulationSpec
from .shard import (
    PHASE_LOAD,
    PHASE_SCORE,
    MergePlane,
    StripePartial,
    StripeTask,
    StripeWorld,
    checkpoint_meta,
    execute_stripe,
    load_stripe_checkpoint,
    make_tasks,
    plan_stripes,
    save_stripe_checkpoint,
    tamper_partial,
)
from .surrogate import FleetCalibration, calibrate

#: Fork start method: workers inherit the (immutable) stripe world
#: without pickling and start in milliseconds.
_CTX = multiprocessing.get_context("fork")


def _now() -> float:
    """Wall-clock for lease/speculation bookkeeping only.

    Durations measured with this land exclusively in the
    :class:`SupervisionReport`; the result payload stays pure.
    """
    return time.monotonic()  # repro-lint: disable=D002 leases and straggler detection must see real elapsed time; it never reaches FleetResult


@dataclass(frozen=True)
class SupervisorConfig:
    """Knobs of the supervision protocol (all durations in seconds)."""

    workers: int = 2
    lease_seconds: float = 2.0
    heartbeat_seconds: float = 0.25
    poll_seconds: float = 0.02
    max_retries: int = 4
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    speculate: bool = True
    speculation_factor: float = 3.0
    speculation_min_completed: int = 2
    speculation_min_seconds: float = 0.5
    #: Speculative attempts may over-commit the pool by this many
    #: slots.  A pool saturated with stragglers is exactly when
    #: speculation matters most — and stragglers are (by definition)
    #: not making progress, so a bounded spare is cheap.
    speculation_slack: int = 1
    #: Testing hook: raise ShardError after this many stripe
    #: completions in one phase — simulates a mid-run kill so tests
    #: can exercise checkpoint resume deterministically.
    halt_after_stripes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ShardError(f"workers must be >= 0, got {self.workers}")
        if self.lease_seconds <= 0.0 or self.heartbeat_seconds <= 0.0:
            raise ShardError("lease_seconds and heartbeat_seconds must "
                             "be > 0")
        if self.heartbeat_seconds >= self.lease_seconds:
            raise ShardError(
                f"heartbeat_seconds ({self.heartbeat_seconds}) must be "
                f"< lease_seconds ({self.lease_seconds}) or every "
                "lease expires before its first renewal")
        if self.max_retries < 0:
            raise ShardError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.speculation_factor < 1.0:
            raise ShardError("speculation_factor must be >= 1")


@dataclass(frozen=True)
class ShardEvent:
    """One observed supervision event (for reports and debugging)."""

    kind: str
    phase: str
    stripe_id: int
    attempt: int
    detail: str = ""

    def to_jsonable(self) -> Dict[str, object]:
        return dict(dataclasses.asdict(self))

    @classmethod
    def from_jsonable(cls, data: Dict[str, object]) -> "ShardEvent":
        return cls(kind=str(data["kind"]), phase=str(data["phase"]),
                   stripe_id=int(data["stripe_id"]),  # type: ignore[arg-type]
                   attempt=int(data["attempt"]),  # type: ignore[arg-type]
                   detail=str(data.get("detail", "")))


@dataclass
class SupervisionReport:
    """What supervision observed: faults absorbed, work repeated.

    Deliberately *not* part of the result contract — two runs with
    different fault schedules produce different reports but identical
    :class:`~repro.fleet.engine.FleetResult` JSON.
    """

    workers: int = 0
    events: List[ShardEvent] = field(default_factory=list)
    crashes: int = 0
    lease_revocations: int = 0
    corrupt_rejected: int = 0
    worker_errors: int = 0
    duplicates_dropped: int = 0
    speculations: int = 0
    retries: int = 0
    resumed_stripes: int = 0
    stale_stripes_ignored: int = 0
    checkpoint_quarantined: Dict[str, str] = field(default_factory=dict)
    #: Wall seconds from a stripe's first launch to its first accepted
    #: delivery, keyed ``"<phase>:<stripe id>"``.
    stripe_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def faults_absorbed(self) -> int:
        """Fault deliveries the protocol survived."""
        return (self.crashes + self.lease_revocations
                + self.corrupt_rejected + self.worker_errors)

    def p99_stripe_seconds(self, phase: Optional[str] = None) -> float:
        """p99 of stripe completion times (optionally one phase)."""
        values = sorted(
            seconds for key, seconds in self.stripe_seconds.items()
            if phase is None or key.startswith(phase + ":"))
        if not values:
            return 0.0
        return values[min(len(values) - 1, int(0.99 * len(values)))]

    def to_jsonable(self) -> Dict[str, object]:
        """Plain-data form for the ``--json`` chaos artifact."""
        return {
            "workers": self.workers,
            "crashes": self.crashes,
            "lease_revocations": self.lease_revocations,
            "corrupt_rejected": self.corrupt_rejected,
            "worker_errors": self.worker_errors,
            "duplicates_dropped": self.duplicates_dropped,
            "speculations": self.speculations,
            "retries": self.retries,
            "resumed_stripes": self.resumed_stripes,
            "stale_stripes_ignored": self.stale_stripes_ignored,
            "checkpoint_quarantined": dict(self.checkpoint_quarantined),
            "faults_absorbed": self.faults_absorbed,
            "stripe_seconds": dict(self.stripe_seconds),
            "events": [event.to_jsonable() for event in self.events],
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, object]
                      ) -> "SupervisionReport":
        """Inverse of :meth:`to_jsonable` (rebuilds chaos artifacts;
        the derived ``faults_absorbed`` key is recomputed, not read)."""
        return cls(
            workers=int(data["workers"]),  # type: ignore[arg-type]
            events=[ShardEvent.from_jsonable(event)
                    for event in data.get("events", [])],  # type: ignore[union-attr]
            crashes=int(data["crashes"]),  # type: ignore[arg-type]
            lease_revocations=int(data["lease_revocations"]),  # type: ignore[arg-type]
            corrupt_rejected=int(data["corrupt_rejected"]),  # type: ignore[arg-type]
            worker_errors=int(data["worker_errors"]),  # type: ignore[arg-type]
            duplicates_dropped=int(data["duplicates_dropped"]),  # type: ignore[arg-type]
            speculations=int(data["speculations"]),  # type: ignore[arg-type]
            retries=int(data["retries"]),  # type: ignore[arg-type]
            resumed_stripes=int(data["resumed_stripes"]),  # type: ignore[arg-type]
            stale_stripes_ignored=int(data["stale_stripes_ignored"]),  # type: ignore[arg-type]
            checkpoint_quarantined={
                str(key): str(value) for key, value
                in data.get("checkpoint_quarantined", {}).items()},  # type: ignore[union-attr]
            stripe_seconds={
                str(key): float(value) for key, value  # type: ignore[arg-type]
                in data.get("stripe_seconds", {}).items()},  # type: ignore[union-attr]
        )


def _worker_main(conn: Connection, world: StripeWorld, task: StripeTask,
                 attempt: int, plan: Optional[ShardFaultPlan],
                 heartbeat_seconds: float) -> None:
    """Entry point of one stripe attempt in a worker process.

    Heartbeats on a daemon thread renew the parent-side lease; the
    main thread computes the stripe and ships the sealed partial.
    Injected faults reshape this attempt exactly as the seeded plan
    dictates, independent of scheduling.
    """
    fault = (plan.stripe_fault(task.phase, task.stripe_id, attempt)
             if plan is not None else None)
    if fault is ShardFault.STALL:
        # A wedged worker: no heartbeats, no progress, no exit.  The
        # parent's lease revocation is the only way out (SIGKILL).
        while True:
            time.sleep(3600.0)
    send_lock = threading.Lock()
    stop = threading.Event()

    def _beat() -> None:
        while not stop.wait(heartbeat_seconds):
            with send_lock:
                try:
                    conn.send(("heartbeat", attempt))
                except OSError:
                    return

    threading.Thread(target=_beat, daemon=True).start()
    try:
        if fault is ShardFault.SLOW and plan is not None:
            # A straggler, not a failure: heartbeats keep the lease
            # alive while the attempt dawdles.  Speculation's prey.
            time.sleep(plan.slow_seconds(task.phase, task.stripe_id,
                                         attempt))
        partial = execute_stripe(world, task)
        if fault is ShardFault.CORRUPT:
            partial = tamper_partial(partial)
        if fault is ShardFault.CRASH:
            # Dies *after* the compute, *before* the delivery — the
            # nastiest crash point: work done, result lost.
            os._exit(3)
        stop.set()
        with send_lock:
            conn.send(("result", partial.to_jsonable()))
    except Exception as exc:  # repro-lint: disable=E002 isolation boundary: a worker reports any failure as a message instead of dying silently
        stop.set()
        with send_lock:
            try:
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
            except OSError:
                pass


@dataclass
class _Attempt:
    """Parent-side handle on one live worker attempt."""

    index: int
    process: "multiprocessing.process.BaseProcess"
    conn: Connection
    started: float
    deadline: float


class _StripeState:
    """Supervision state of one stripe task."""

    def __init__(self, task: StripeTask) -> None:
        self.task = task
        self.done = False
        self.attempts: Dict[int, _Attempt] = {}
        self.next_attempt = 0
        self.failures = 0
        self.not_before = 0.0
        self.first_started: Optional[float] = None


class Supervisor:
    """Runs one phase's stripe tasks to completion under the protocol.

    Single-threaded event loop in the parent: drain worker pipes,
    detect deaths and expired leases, relaunch with seeded backoff,
    speculate on stragglers, and feed validated partials to the merge
    plane.  Raises :class:`~repro.errors.ShardError` when a stripe
    exhausts its retries (or on the ``halt_after_stripes`` hook).
    """

    def __init__(self, world: StripeWorld, tasks: List[StripeTask],
                 config: SupervisorConfig, plan: Optional[ShardFaultPlan],
                 plane: MergePlane, report: SupervisionReport,
                 on_complete: Callable[[StripePartial], None]) -> None:
        self.world = world
        self.config = config
        self.plan = plan
        self.plane = plane
        self.report = report
        self.on_complete = on_complete
        self.states = [_StripeState(task) for task in tasks]
        self.completed = 0

    # -- bookkeeping ----------------------------------------------------------

    def _event(self, kind: str, state: _StripeState, attempt: int,
               detail: str = "") -> None:
        self.report.events.append(ShardEvent(
            kind=kind, phase=state.task.phase,
            stripe_id=state.task.stripe_id, attempt=attempt,
            detail=detail))

    def _live_attempts(self) -> int:
        return sum(len(state.attempts) for state in self.states)

    # -- attempt lifecycle ----------------------------------------------------

    def _launch(self, state: _StripeState, now: float,
                speculative: bool = False) -> None:
        index = state.next_attempt
        state.next_attempt += 1
        recv_conn, send_conn = _CTX.Pipe(duplex=False)
        process = _CTX.Process(
            target=_worker_main,
            args=(send_conn, self.world, state.task, index, self.plan,
                  self.config.heartbeat_seconds),
            daemon=True)
        process.start()
        send_conn.close()
        state.attempts[index] = _Attempt(
            index=index, process=process, conn=recv_conn, started=now,
            deadline=now + self.config.lease_seconds)
        if state.first_started is None:
            state.first_started = now
        self._event("speculate" if speculative else "launch", state,
                    index)
        if speculative:
            self.report.speculations += 1

    def _reap(self, attempt: _Attempt) -> None:
        if attempt.process.is_alive():
            attempt.process.kill()
        attempt.process.join(timeout=5.0)
        attempt.conn.close()

    def _fail_attempt(self, state: _StripeState, index: int, kind: str,
                      detail: str, now: float) -> None:
        attempt = state.attempts.pop(index)
        self._reap(attempt)
        self._event(kind, state, index, detail)
        state.failures += 1
        if kind == "crash":
            self.report.crashes += 1
        elif kind == "lease_revoked":
            self.report.lease_revocations += 1
        elif kind == "corrupt_rejected":
            self.report.corrupt_rejected += 1
        elif kind == "worker_error":
            self.report.worker_errors += 1
        if state.attempts or state.done:
            return  # a sibling attempt is still racing
        if state.failures > self.config.max_retries:
            raise ShardError(
                f"stripe ({state.task.phase}, {state.task.stripe_id}) "
                f"failed {state.failures} times (> max_retries="
                f"{self.config.max_retries}); last failure: {kind}: "
                f"{detail}")
        delay = backoff_delay(self.world.seed, SITE_STRIPE_RETRY,
                              state.task.stripe_id, state.failures - 1,
                              base=self.config.backoff_base,
                              cap=self.config.backoff_cap)
        state.not_before = now + delay
        self.report.retries += 1
        self._event("retry_scheduled", state, state.next_attempt,
                    f"after {delay:.3f}s backoff")

    def _deliver(self, state: _StripeState, index: int, payload: object,
                 now: float) -> None:
        try:
            partial = StripePartial.from_jsonable(payload)
            fresh = self.plane.offer_partial(self.world, state.task,
                                             partial)
        except (FleetError, ValueError, TypeError, KeyError) as exc:
            self._fail_attempt(state, index, "corrupt_rejected",
                               str(exc), now)
            return
        if index in state.attempts:
            self._reap(state.attempts.pop(index))
        if not fresh:
            self.report.duplicates_dropped += 1
            self._event("duplicate", state, index)
            return
        state.done = True
        self.completed += 1
        if state.first_started is not None:
            key = f"{state.task.phase}:{state.task.stripe_id}"
            self.report.stripe_seconds[key] = now - state.first_started
        self._event("result", state, index)
        self.on_complete(partial)
        # The race is decided; losers are dead weight on the pool.
        for loser_index in list(state.attempts):
            self._reap(state.attempts.pop(loser_index))
            self._event("sibling_killed", state, loser_index)
        halt = self.config.halt_after_stripes
        if halt is not None and self.completed >= halt:
            raise ShardError(
                f"halted after {self.completed} stripe(s) "
                "(halt_after_stripes testing hook)")

    def _drain(self, state: _StripeState, attempt: _Attempt,
               now: float) -> bool:
        """Process queued messages; False if the pipe is broken."""
        while True:
            try:
                if not attempt.conn.poll(0):
                    return True
                message = attempt.conn.recv()
            except (EOFError, OSError):
                return False
            kind = message[0]
            if kind == "heartbeat":
                attempt.deadline = now + self.config.lease_seconds
            elif kind == "result":
                self._deliver(state, attempt.index, message[1], now)
                return True
            elif kind == "error":
                self._fail_attempt(state, attempt.index, "worker_error",
                                   str(message[1]), now)
                return True

    # -- scheduling -----------------------------------------------------------

    def _poll_attempts(self, now: float) -> None:
        for state in self.states:
            if state.done:
                continue
            for index in list(state.attempts):
                attempt = state.attempts.get(index)
                if attempt is None:
                    continue
                intact = self._drain(state, attempt, now)
                if state.done or index not in state.attempts:
                    continue
                if not intact or not attempt.process.is_alive():
                    # One last drain: a worker that finished and
                    # exited may still have its result queued.
                    self._drain(state, attempt, now)
                    if state.done or index not in state.attempts:
                        continue
                    self._fail_attempt(
                        state, index, "crash",
                        f"worker exited with code "
                        f"{attempt.process.exitcode} before "
                        "delivering", now)
                elif now > attempt.deadline:
                    self._fail_attempt(
                        state, index, "lease_revoked",
                        f"no heartbeat within "
                        f"{self.config.lease_seconds}s", now)

    def _launch_pending(self, now: float) -> None:
        slots = self.config.workers - self._live_attempts()
        for state in self.states:
            if slots <= 0:
                return
            if (state.done or state.attempts
                    or state.not_before > now):
                continue
            self._launch(state, now)
            slots -= 1

    def _speculate(self, now: float) -> None:
        config = self.config
        if not config.speculate:
            return
        if self.completed < config.speculation_min_completed:
            return
        phase = self.states[0].task.phase
        durations = sorted(
            seconds for key, seconds
            in self.report.stripe_seconds.items()
            if key.startswith(phase + ":"))
        if not durations:
            return
        median = durations[len(durations) // 2]
        threshold = max(config.speculation_min_seconds,
                        config.speculation_factor * median)
        slots = (config.workers + config.speculation_slack
                 - self._live_attempts())
        for state in self.states:
            if slots <= 0:
                return
            if state.done or len(state.attempts) != 1:
                continue
            attempt = next(iter(state.attempts.values()))
            if now - attempt.started > threshold:
                self._launch(state, now, speculative=True)
                slots -= 1

    def run(self) -> None:
        """Drive every stripe to completion (or raise ShardError)."""
        if not self.states:
            return
        if self.config.workers == 0:
            self._run_inline()
            return
        try:
            while self.completed < len(self.states):
                now = _now()
                self._poll_attempts(now)
                if self.completed >= len(self.states):
                    break
                self._launch_pending(now)
                self._speculate(now)
                time.sleep(self.config.poll_seconds)
        finally:
            for state in self.states:
                for index in list(state.attempts):
                    self._reap(state.attempts.pop(index))

    def _run_inline(self) -> None:
        """Pool-free fallback (``workers=0``): stripes run in-process.

        Same protocol semantics where they translate: CRASH and STALL
        become immediately-detected failures (there is no process to
        crash and no lease clock worth spinning on), CORRUPT partials
        are rejected by the same validation, SLOW attempts genuinely
        sleep.  No speculation — there is nobody to race.
        """
        for state in self.states:
            while not state.done:
                now = _now()
                index = state.next_attempt
                state.next_attempt += 1
                if state.first_started is None:
                    state.first_started = now
                self._event("launch", state, index, "inline")
                fault = (self.plan.stripe_fault(
                    state.task.phase, state.task.stripe_id, index)
                    if self.plan is not None else None)
                if fault in (ShardFault.CRASH, ShardFault.STALL):
                    kind = ("crash" if fault is ShardFault.CRASH
                            else "lease_revoked")
                    self._fail_inline(state, index, kind, now)
                    continue
                if fault is ShardFault.SLOW and self.plan is not None:
                    time.sleep(self.plan.slow_seconds(
                        state.task.phase, state.task.stripe_id, index))
                partial = execute_stripe(self.world, state.task)
                if fault is ShardFault.CORRUPT:
                    partial = tamper_partial(partial)
                try:
                    self.plane.offer_partial(self.world, state.task,
                                             partial)
                except FleetError as exc:
                    self._fail_inline(state, index, "corrupt_rejected",
                                      _now(), str(exc))
                    continue
                self._deliver_inline(state, index)

    def _fail_inline(self, state: _StripeState, index: int, kind: str,
                     now: float, detail: str = "injected") -> None:
        self._event(kind, state, index, detail)
        state.failures += 1
        if kind == "crash":
            self.report.crashes += 1
        elif kind == "lease_revoked":
            self.report.lease_revocations += 1
        elif kind == "corrupt_rejected":
            self.report.corrupt_rejected += 1
        if state.failures > self.config.max_retries:
            raise ShardError(
                f"stripe ({state.task.phase}, {state.task.stripe_id}) "
                f"failed {state.failures} times (> max_retries="
                f"{self.config.max_retries}); last failure: {kind}")
        self.report.retries += 1
        time.sleep(backoff_delay(self.world.seed, SITE_STRIPE_RETRY,
                                 state.task.stripe_id,
                                 state.failures - 1,
                                 base=self.config.backoff_base,
                                 cap=self.config.backoff_cap))

    def _deliver_inline(self, state: _StripeState, index: int) -> None:
        state.done = True
        self.completed += 1
        now = _now()
        if state.first_started is not None:
            key = f"{state.task.phase}:{state.task.stripe_id}"
            self.report.stripe_seconds[key] = now - state.first_started
        self._event("result", state, index)
        # Re-fetch what the plane just folded?  No: the partial the
        # caller checkpoints must be the one that merged, so inline
        # delivery recomputes nothing — offer already happened.
        halt = self.config.halt_after_stripes
        if halt is not None and self.completed >= halt:
            raise ShardError(
                f"halted after {self.completed} stripe(s) "
                "(halt_after_stripes testing hook)")


@dataclass
class SupervisedFleetRun:
    """What a supervised run hands back: the result and the story."""

    result: FleetResult
    report: SupervisionReport


def run_fleet_supervised(
    spec: PopulationSpec, n_sessions: int, seed: int = 0,
    shards: int = 2, contention: bool = True,
    calibration: Optional[FleetCalibration] = None,
    config: Optional[SimulationConfig] = None,
    faults: Optional[ShardFaultConfig] = None,
    supervisor: Optional[SupervisorConfig] = None,
    checkpoint: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> SupervisedFleetRun:
    """Run a fleet population under the supervised shard protocol.

    Same result contract as :func:`~repro.fleet.engine.run_fleet` with
    the same ``(spec, n_sessions, seed, contention)`` — bit-identical
    ``FleetResult.to_jsonable()`` — plus fault tolerance:

    Args:
        spec / n_sessions / seed / shards / contention / calibration /
            config / progress: as in ``run_fleet``.
        faults: optional seeded :class:`~repro.faults.ShardFaultConfig`
            injecting worker crashes, stalls, corrupt partials, and
            slow workers (the chaos harness).  For guaranteed
            completion keep ``supervisor.max_retries >=
            faults.max_faulty_attempts``.
        supervisor: protocol knobs (:class:`SupervisorConfig`).
        checkpoint: JSON file persisting completed stripes; a rerun
            resumes from it (stale stripes ignored, corrupt files
            quarantined to ``<path>.corrupt``).

    Returns:
        :class:`SupervisedFleetRun` — the merged result plus the
        :class:`SupervisionReport` of faults absorbed along the way.
    """
    if n_sessions < 1:
        raise FleetError("need at least one session")
    if shards < 1:
        raise FleetError("need at least one shard")
    if calibration is None:
        calibration = calibrate(spec, config=config, progress=progress)
    if calibration.fingerprint != spec.fingerprint():
        raise FleetError(
            "calibration fingerprint does not match the population "
            "spec — rebuild it with load_or_calibrate/calibrate")
    tables = calibration.coefficient_arrays(spec)
    fps = (config or SimulationConfig()).video.fps
    bounds, stripes = plan_stripes(n_sessions, shards)
    supervisor_config = supervisor or SupervisorConfig()
    plan = ShardFaultPlan.from_config(faults)
    plane = MergePlane(spec, seed)
    report = SupervisionReport(workers=supervisor_config.workers)

    meta = checkpoint_meta(spec, n_sessions, seed, shards, contention)
    wanted = {(PHASE_SCORE, stripe_id)
              for stripe_id in range(len(stripes))}
    if contention:
        wanted |= {(PHASE_LOAD, stripe_id)
                   for stripe_id in range(len(stripes))}
    completed: Dict[Tuple[str, int], StripePartial] = {}
    if checkpoint is not None:
        loaded, report.checkpoint_quarantined = load_stripe_checkpoint(
            checkpoint, meta)
        for partial in loaded:
            key = (partial.phase, partial.stripe_id)
            if key in wanted:
                completed[key] = partial
            else:
                report.stale_stripes_ignored += 1

    def on_complete(partial: StripePartial) -> None:
        completed[(partial.phase, partial.stripe_id)] = partial
        if checkpoint is not None:
            save_stripe_checkpoint(checkpoint, meta,
                                   list(completed.values()))

    def resume_phase(world: StripeWorld,
                     tasks: List[StripeTask]) -> List[StripeTask]:
        """Fold checkpointed stripes; return what still needs running."""
        still_pending: List[StripeTask] = []
        for task in tasks:
            partial = completed.get((task.phase, task.stripe_id))
            if partial is None:
                still_pending.append(task)
                continue
            try:
                plane.offer_partial(world, task, partial)
            except FleetError:
                # The checkpoint verified its checksums, but the
                # world disagrees (e.g. code drift): recompute.
                del completed[(task.phase, task.stripe_id)]
                still_pending.append(task)
                continue
            report.resumed_stripes += 1
            report.events.append(ShardEvent(
                kind="resumed", phase=task.phase,
                stripe_id=task.stripe_id, attempt=-1))
        return still_pending

    world = StripeWorld(spec=spec, seed=seed, bounds=bounds,
                        tables=tables, fps=fps, field=None)
    if contention:
        if progress is not None:
            progress(f"pass 1/2 (supervised): cell load over "
                     f"{len(bounds)} chunks, {len(stripes)} stripes")
        tasks = resume_phase(world, make_tasks(PHASE_LOAD, stripes))
        Supervisor(world, tasks, supervisor_config, plan, plane,
                   report, on_complete).run()
        world = StripeWorld(spec=spec, seed=seed, bounds=bounds,
                            tables=tables, fps=fps,
                            field=plane.finalize_load())
    if progress is not None:
        progress(f"pass 2/2 (supervised): scoring {n_sessions} "
                 f"sessions over {len(stripes)} stripes")
    tasks = resume_phase(world, make_tasks(PHASE_SCORE, stripes))
    Supervisor(world, tasks, supervisor_config, plan, plane, report,
               on_complete).run()
    return SupervisedFleetRun(
        result=plane.result(n_sessions=n_sessions,
                            contention=contention),
        report=report)
