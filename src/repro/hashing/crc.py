"""Cyclic redundancy checks used to tag macroblocks (paper Sec. 4.4).

Three implementations of CRC-32 (the IEEE 802.3 polynomial, identical
to ``zlib.crc32``) are provided:

* :func:`crc32_bitwise` — reference bit-at-a-time implementation, used
  only to validate the others in tests;
* :func:`crc32` — table-driven, byte-at-a-time, for scalar use;
* :func:`crc32_blocks` — numpy-vectorized over a ``(n, k)`` uint8 array
  of blocks, computing all ``n`` digests in a single gather/XOR-reduce
  over per-position tables.  This is what the simulator uses on whole
  frames.

The positional-table trick: the byte step ``c' = T[(c ^ b) & 0xFF] ^
(c >> 8)`` equals ``L(c ^ b)`` with ``L`` the zero-byte step, and ``L``
is linear over GF(2), so the final register is an XOR of independent
per-byte contributions: ``crc(b_0..b_{k-1}) = L^k(init) ^ XOR_j
L^(k-j)(b_j)``.  ``L^(k-j)`` restricted to byte inputs is a 256-entry
table, built once per block length and cached.  The previous
column-at-a-time implementation is retained as
:func:`crc32_blocks_columnwise` / :func:`crc16_blocks_columnwise` — the
scalar-adjacent reference the equivalence tests compare against.

CRC-16 (CCITT, used by the paper's CO-MACH collision extension) gets
the same treatment.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Tuple

import numpy as np

#: Reflected IEEE 802.3 polynomial (the one zlib uses).
CRC32_POLY = 0xEDB88320
#: Reflected CRC-16/CCITT polynomial.
CRC16_POLY = 0x8408

_CRC32_INIT = 0xFFFFFFFF
_CRC16_INIT = 0xFFFF


def _build_table(poly: int, width_mask: int) -> np.ndarray:
    """Build the 256-entry lookup table for a reflected CRC."""
    table = np.zeros(256, dtype=np.uint64)
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ poly
            else:
                crc >>= 1
        table[byte] = crc & width_mask
    return table


_CRC32_TABLE = _build_table(CRC32_POLY, 0xFFFFFFFF).astype(np.uint32)
_CRC16_TABLE = _build_table(CRC16_POLY, 0xFFFF).astype(np.uint16)


def crc32_bitwise(data: bytes) -> int:
    """Reference bit-at-a-time CRC-32 (matches ``zlib.crc32``)."""
    crc = _CRC32_INIT
    for byte in data:
        crc ^= byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ CRC32_POLY
            else:
                crc >>= 1
    return crc ^ 0xFFFFFFFF


def crc32(data: bytes) -> int:
    """Table-driven CRC-32 of ``data`` (matches ``zlib.crc32``)."""
    crc = _CRC32_INIT
    table = _CRC32_TABLE
    for byte in data:
        crc = int(table[(crc ^ byte) & 0xFF]) ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def crc16(data: bytes) -> int:
    """Table-driven reflected CRC-16/CCITT of ``data``."""
    crc = _CRC16_INIT
    table = _CRC16_TABLE
    for byte in data:
        crc = int(table[(crc ^ byte) & 0xFF]) ^ (crc >> 8)
    return crc ^ 0xFFFF


@lru_cache(maxsize=32)
def _positional_tables(length: int, width: int) -> Tuple[np.ndarray, int]:
    """``(k, 256)`` per-position contribution tables plus the constant.

    ``tables[j][b]`` is the final-register contribution of byte value
    ``b`` at position ``j`` of a ``length``-byte message; the returned
    constant folds ``L^k(init)`` together with the final XOR.
    """
    if width == 32:
        base, init, final = _CRC32_TABLE, _CRC32_INIT, 0xFFFFFFFF
    else:
        base, init, final = _CRC16_TABLE, _CRC16_INIT, 0xFFFF
    tables = np.empty((length, 256), dtype=base.dtype)
    if length:
        tables[length - 1] = base
        for j in range(length - 2, -1, -1):
            prev = tables[j + 1]
            tables[j] = base[prev & base.dtype.type(0xFF)] ^ (
                prev >> base.dtype.type(8))
    crc = init
    for _ in range(length):
        crc = int(base[crc & 0xFF]) ^ (crc >> 8)
    tables.setflags(write=False)
    return tables, crc ^ final


# Reused per-shape intermediates (the gather index and term matrix are
# ~250 KB per call at simulator frame sizes; reallocating them every
# frame costs more than the gather itself).  The simulator is
# single-process/single-threaded per run, matching the rest of the
# stateful models.
_SCRATCH: dict = {}


def _scratch(key: str, shape: Tuple[int, ...], dtype: np.dtype) -> np.ndarray:
    buf = _SCRATCH.get(key)
    if buf is None or buf.shape != shape:
        buf = np.empty(shape, dtype=dtype)
        _SCRATCH[key] = buf
    return buf


def _flat_gather_index(blocks: np.ndarray) -> np.ndarray:
    """Per-byte index into a raveled ``(k, 256)`` table: ``j*256 | b``."""
    index = _scratch("index", blocks.shape, np.dtype(np.uint16))
    np.copyto(index, blocks, casting="unsafe")
    index |= (np.arange(blocks.shape[1], dtype=np.uint16) << np.uint16(8))
    return index


def _crc_blocks(blocks: np.ndarray, width: int,
                index: Optional[np.ndarray] = None) -> np.ndarray:
    tables, const = _positional_tables(blocks.shape[1], width)
    dtype = tables.dtype
    if blocks.shape[1] == 0:
        return np.full(blocks.shape[0], const, dtype=dtype)
    if index is None:
        index = _flat_gather_index(blocks)
    terms = _scratch(f"terms{width}", blocks.shape, dtype)
    tables.ravel().take(index, out=terms)
    return np.bitwise_xor.reduce(terms, axis=1) ^ dtype.type(const)


def crc32_blocks(blocks: np.ndarray) -> np.ndarray:
    """CRC-32 of every row of a ``(n, k)`` uint8 array, vectorized.

    One gather over cached per-position tables plus an XOR reduction —
    no data-dependent serial register chain.
    """
    return _crc_blocks(_as_block_matrix(blocks), 32)


def crc16_blocks(blocks: np.ndarray) -> np.ndarray:
    """CRC-16 of every row of a ``(n, k)`` uint8 array, vectorized."""
    return _crc_blocks(_as_block_matrix(blocks), 16)


def crc_pair_blocks(blocks: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``(crc32, crc16)`` of every row — the write path wants both.

    Builds the shared gather index once; the two digests reuse it.
    """
    blocks = _as_block_matrix(blocks)
    index = _flat_gather_index(blocks) if blocks.shape[1] else None
    return (_crc_blocks(blocks, 32, index), _crc_blocks(blocks, 16, index))


def crc32_blocks_columnwise(blocks: np.ndarray) -> np.ndarray:
    """Column-at-a-time CRC-32 reference (``k`` serial table passes)."""
    blocks = _as_block_matrix(blocks)
    crcs = np.full(blocks.shape[0], _CRC32_INIT, dtype=np.uint32)
    for col in range(blocks.shape[1]):
        index = (crcs ^ blocks[:, col]) & 0xFF
        crcs = _CRC32_TABLE[index] ^ (crcs >> np.uint32(8))
    return crcs ^ np.uint32(0xFFFFFFFF)


def crc16_blocks_columnwise(blocks: np.ndarray) -> np.ndarray:
    """Column-at-a-time CRC-16 reference (``k`` serial table passes)."""
    blocks = _as_block_matrix(blocks)
    crcs = np.full(blocks.shape[0], _CRC16_INIT, dtype=np.uint16)
    for col in range(blocks.shape[1]):
        index = (crcs ^ blocks[:, col]) & np.uint16(0xFF)
        crcs = _CRC16_TABLE[index] ^ (crcs >> np.uint16(8))
    return crcs ^ np.uint16(0xFFFF)


def _as_block_matrix(blocks: np.ndarray) -> np.ndarray:
    blocks = np.asarray(blocks)
    if blocks.dtype != np.uint8:
        raise TypeError(f"blocks must be uint8, got {blocks.dtype}")
    if blocks.ndim != 2:
        raise ValueError(f"blocks must be 2-D (n, k), got shape {blocks.shape}")
    return blocks
