"""Cyclic redundancy checks used to tag macroblocks (paper Sec. 4.4).

Three implementations of CRC-32 (the IEEE 802.3 polynomial, identical
to ``zlib.crc32``) are provided:

* :func:`crc32_bitwise` — reference bit-at-a-time implementation, used
  only to validate the others in tests;
* :func:`crc32` — table-driven, byte-at-a-time, for scalar use;
* :func:`crc32_blocks` — numpy-vectorized over a ``(n, k)`` uint8 array
  of blocks, computing all ``n`` digests in ``k`` table lookups.  This
  is what the simulator uses on whole frames.

CRC-16 (CCITT, used by the paper's CO-MACH collision extension) gets
the same treatment.
"""

from __future__ import annotations

import numpy as np

#: Reflected IEEE 802.3 polynomial (the one zlib uses).
CRC32_POLY = 0xEDB88320
#: Reflected CRC-16/CCITT polynomial.
CRC16_POLY = 0x8408

_CRC32_INIT = 0xFFFFFFFF
_CRC16_INIT = 0xFFFF


def _build_table(poly: int, width_mask: int) -> np.ndarray:
    """Build the 256-entry lookup table for a reflected CRC."""
    table = np.zeros(256, dtype=np.uint64)
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ poly
            else:
                crc >>= 1
        table[byte] = crc & width_mask
    return table


_CRC32_TABLE = _build_table(CRC32_POLY, 0xFFFFFFFF).astype(np.uint32)
_CRC16_TABLE = _build_table(CRC16_POLY, 0xFFFF).astype(np.uint16)


def crc32_bitwise(data: bytes) -> int:
    """Reference bit-at-a-time CRC-32 (matches ``zlib.crc32``)."""
    crc = _CRC32_INIT
    for byte in data:
        crc ^= byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ CRC32_POLY
            else:
                crc >>= 1
    return crc ^ 0xFFFFFFFF


def crc32(data: bytes) -> int:
    """Table-driven CRC-32 of ``data`` (matches ``zlib.crc32``)."""
    crc = _CRC32_INIT
    table = _CRC32_TABLE
    for byte in data:
        crc = int(table[(crc ^ byte) & 0xFF]) ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def crc16(data: bytes) -> int:
    """Table-driven reflected CRC-16/CCITT of ``data``."""
    crc = _CRC16_INIT
    table = _CRC16_TABLE
    for byte in data:
        crc = int(table[(crc ^ byte) & 0xFF]) ^ (crc >> 8)
    return crc ^ 0xFFFF


def crc32_blocks(blocks: np.ndarray) -> np.ndarray:
    """CRC-32 of every row of a ``(n, k)`` uint8 array, vectorized.

    Processes one byte column at a time, so the work is ``k`` numpy
    passes over ``n`` running CRC registers instead of ``n * k`` Python
    byte operations.
    """
    blocks = _as_block_matrix(blocks)
    crcs = np.full(blocks.shape[0], _CRC32_INIT, dtype=np.uint32)
    for col in range(blocks.shape[1]):
        index = (crcs ^ blocks[:, col]) & 0xFF
        crcs = _CRC32_TABLE[index] ^ (crcs >> np.uint32(8))
    return crcs ^ np.uint32(0xFFFFFFFF)


def crc16_blocks(blocks: np.ndarray) -> np.ndarray:
    """CRC-16 of every row of a ``(n, k)`` uint8 array, vectorized."""
    blocks = _as_block_matrix(blocks)
    crcs = np.full(blocks.shape[0], _CRC16_INIT, dtype=np.uint16)
    for col in range(blocks.shape[1]):
        index = (crcs ^ blocks[:, col]) & np.uint16(0xFF)
        crcs = _CRC16_TABLE[index] ^ (crcs >> np.uint16(8))
    return crcs ^ np.uint16(0xFFFF)


def _as_block_matrix(blocks: np.ndarray) -> np.ndarray:
    blocks = np.asarray(blocks)
    if blocks.dtype != np.uint8:
        raise TypeError(f"blocks must be uint8, got {blocks.dtype}")
    if blocks.ndim != 2:
        raise ValueError(f"blocks must be 2-D (n, k), got shape {blocks.shape}")
    return blocks
