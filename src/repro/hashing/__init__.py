"""Digest generation for MACH tags (CRC32/CRC16/MD5/SHA1)."""

from .crc import (
    CRC16_POLY,
    CRC32_POLY,
    crc16,
    crc16_blocks,
    crc32,
    crc32_bitwise,
    crc32_blocks,
)
from .digest import DigestScheme, available_schemes, get_scheme

__all__ = [
    "CRC16_POLY",
    "CRC32_POLY",
    "crc16",
    "crc16_blocks",
    "crc32",
    "crc32_bitwise",
    "crc32_blocks",
    "DigestScheme",
    "available_schemes",
    "get_scheme",
]
