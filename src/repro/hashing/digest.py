"""Digest schemes for MACH tags, and the paper's hash comparison.

The paper tags each 48-byte mab/gab with a 4-byte digest.  CRC32 is the
default; Fig. 12d compares it against MD5 and SHA1 (truncated to 32
bits) and finds no meaningful difference, with roughly one colliding
block in ~200 frames.  Sec. 6.3 then adds a CRC16 auxiliary field
("deep hashing") that detects CRC32 collisions and spills the colliding
entries into a CO-MACH.

A deliberately *weak* scheme (additive checksum) is included so that
tests and the sensitivity bench can demonstrate what a bad digest does
to the collision rate.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from ..errors import ConfigError
from .crc import crc16_blocks, crc32_blocks


@dataclass(frozen=True)
class DigestScheme:
    """A way of turning an ``(n, k)`` uint8 block array into n tags.

    ``digest_blocks`` returns a uint64 array so that deep (48-bit)
    digests fit; plain 32-bit schemes use the low 32 bits.
    """

    name: str
    bits: int
    digest_blocks: Callable[[np.ndarray], np.ndarray]

    def digest_one(self, block: np.ndarray) -> int:
        """Digest a single flat uint8 block."""
        return int(self.digest_blocks(block.reshape(1, -1))[0])


def _crc32_scheme(blocks: np.ndarray) -> np.ndarray:
    return crc32_blocks(blocks).astype(np.uint64)


def _crc48_scheme(blocks: np.ndarray) -> np.ndarray:
    """CRC32 || CRC16 concatenation — the paper's deep-hash tag."""
    low = crc32_blocks(blocks).astype(np.uint64)
    high = crc16_blocks(blocks).astype(np.uint64)
    return (high << np.uint64(32)) | low


def _hashlib_scheme(algorithm: str) -> Callable[[np.ndarray], np.ndarray]:
    def digest_blocks(blocks: np.ndarray) -> np.ndarray:
        out = np.empty(blocks.shape[0], dtype=np.uint64)
        contiguous = np.ascontiguousarray(blocks)
        for i in range(contiguous.shape[0]):
            raw = hashlib.new(algorithm, contiguous[i].tobytes()).digest()
            out[i] = int.from_bytes(raw[:4], "little")
        return out

    return digest_blocks


def _weak_sum_scheme(blocks: np.ndarray) -> np.ndarray:
    """Additive checksum: collides for any permutation of the bytes."""
    return blocks.astype(np.uint64).sum(axis=1) & np.uint64(0xFFFFFFFF)


_SCHEMES: Dict[str, DigestScheme] = {
    "crc32": DigestScheme("crc32", 32, _crc32_scheme),
    "crc48": DigestScheme("crc48", 48, _crc48_scheme),
    "md5": DigestScheme("md5", 32, _hashlib_scheme("md5")),
    "sha1": DigestScheme("sha1", 32, _hashlib_scheme("sha1")),
    "weak-sum": DigestScheme("weak-sum", 32, _weak_sum_scheme),
}


def get_scheme(name: str) -> DigestScheme:
    """Look up a digest scheme by name (raises ConfigError if unknown)."""
    try:
        return _SCHEMES[name]
    except KeyError:
        raise ConfigError(
            f"unknown digest scheme {name!r}; known: {sorted(_SCHEMES)}"
        ) from None


def available_schemes() -> Tuple[str, ...]:
    """Names of all registered digest schemes."""
    return tuple(sorted(_SCHEMES))


class CollisionTracker:
    """Counts digest collisions against ground-truth block contents.

    A *collision* is two blocks with equal digests but different bytes.
    The tracker keeps one representative block content per digest value
    (as compact bytes), which is exact and small because the number of
    distinct digests seen per run is bounded by the content diversity.
    """

    def __init__(self) -> None:
        self._seen: Dict[int, bytes] = {}
        self.collisions = 0
        self.lookups = 0

    def observe(self, digest: int, block_bytes: bytes) -> bool:
        """Record one block; returns True if it collided."""
        self.lookups += 1
        existing = self._seen.get(digest)
        if existing is None:
            self._seen[digest] = block_bytes
            return False
        if existing != block_bytes:
            self.collisions += 1
            return True
        return False

    def observe_frame(self, digests: np.ndarray, blocks: np.ndarray) -> int:
        """Record every block of a frame; returns collisions found."""
        found = 0
        contiguous = np.ascontiguousarray(blocks)
        for i in range(contiguous.shape[0]):
            if self.observe(int(digests[i]), contiguous[i].tobytes()):
                found += 1
        return found

    @property
    def collision_rate(self) -> float:
        return self.collisions / self.lookups if self.lookups else 0.0
