"""Shared checkpoint persistence with quarantine-on-corruption.

A multi-hour run must survive a power cut without discarding completed
work — and must also survive its *own checkpoint* being the casualty:
losing a half-written file to a crash is exactly the failure mode
checkpointing exists to absorb, so an unusable checkpoint is moved
aside (``<path>.corrupt``) and the run starts fresh instead of raising.

Both durable-run sites — the matrix runner (:mod:`repro.runner`) and
the fleet stripe supervisor (:mod:`repro.fleet.shard`) — go through
this one audited code path, so the parse/validate/quarantine
discipline cannot drift between them:

* top level must be a JSON object with the expected ``version``;
* the saved ``meta`` must equal the current run's meta (a checkpoint
  written by a *different* run is quarantined, never merged);
* every ``completed`` entry must decode through the caller's
  ``decode_entry`` — one bad entry poisons the file (the writer is
  atomic, so partial validity means corruption, not partial progress);
* writes are atomic (tmp + rename), so the file on disk is always
  either the old complete checkpoint or the new complete one.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, List, Tuple, Type, TypeVar

from .errors import ReproError, RunnerError

T = TypeVar("T")


def quarantine(path: str, reason: str,
               error: Type[ReproError] = RunnerError) -> Tuple[str, str]:
    """Move an unusable checkpoint to ``<path>.corrupt``.

    The evidence survives for post-mortems while the original path is
    freed for a fresh checkpoint.  Returns ``(moved-to path, reason)``;
    raises ``error`` if even the rename fails (e.g. a read-only
    checkpoint directory), because then no fresh checkpoint could be
    written either and silently running without durability would
    betray the caller's intent.
    """
    target = path + ".corrupt"
    try:
        os.replace(path, target)
    except OSError as exc:
        raise error(
            f"cannot quarantine checkpoint {path!r} to {target!r}: "
            f"{exc}") from exc
    return target, reason


def parse_checkpoint(data: object, version: int, meta: Dict[str, object],
                     decode_entry: Callable[[object], T]) -> List[T]:
    """Validate a decoded checkpoint payload entry by entry.

    Raises :class:`ValueError` with a quarantine-ready reason on any
    structural problem; ``decode_entry`` failures (``KeyError`` /
    ``TypeError`` / ``ValueError`` / ``AttributeError``) are wrapped
    with the entry index so the reason names the poisoned record.
    """
    if not isinstance(data, dict):
        raise ValueError(f"top level is {type(data).__name__}, not an "
                         "object")
    if data.get("version") != version:
        raise ValueError(f"version {data.get('version')!r}, expected "
                         f"{version}")
    if data.get("meta") != meta:
        raise ValueError(
            "written by a different run (saved meta "
            f"{data.get('meta')!r} != current {meta!r})")
    entries = data.get("completed", [])
    if not isinstance(entries, list):
        raise ValueError("'completed' is not a list")
    decoded: List[T] = []
    for index, entry in enumerate(entries):
        try:
            decoded.append(decode_entry(entry))
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ValueError(
                f"completed[{index}] does not decode: "
                f"{type(exc).__name__}: {exc}") from exc
    return decoded


def load_checkpoint(path: str, version: int, meta: Dict[str, object],
                    decode_entry: Callable[[object], T],
                    error: Type[ReproError] = RunnerError,
                    ) -> Tuple[List[T], Dict[str, str]]:
    """Read completed entries from ``path`` (empty if absent).

    An unusable file — truncated or non-JSON, wrong version, written
    by a different run, or holding entries that ``decode_entry``
    rejects — is quarantined to ``<path>.corrupt`` and the run starts
    fresh.  Returns ``(decoded entries, {quarantine path: reason})``.
    """
    if not os.path.exists(path):
        return [], {}
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        # Not corruption: the filesystem refused us, and a quarantine
        # rename would likely fail the same way.
        raise error(f"unreadable checkpoint {path!r}: {exc}") from exc
    except ValueError as exc:
        moved, reason = quarantine(path, f"not valid JSON: {exc}", error)
        return [], {moved: reason}
    try:
        decoded = parse_checkpoint(data, version, meta, decode_entry)
    except ValueError as exc:
        moved, reason = quarantine(path, str(exc), error)
        return [], {moved: reason}
    return decoded, {}


def save_checkpoint(path: str, version: int, meta: Dict[str, object],
                    entries: List[Dict[str, object]]) -> None:
    """Atomically persist every finished entry (tmp + rename)."""
    payload = {"version": version, "meta": meta, "completed": entries}
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    os.replace(tmp, path)
