"""Supervised parallel experiment runner.

The benchmark suite runs at a reduced frame count so it finishes in
minutes; reproducing the paper at the *full* Table 1 frame counts
(70 K+ frames across schemes) is embarrassingly parallel across
(video, scheme) pairs.  :func:`run_matrix` fans those out over a
process pool and returns the results keyed by pair.

A multi-hour matrix must also survive the real world: one crashing
job must not take down the other 95, a wedged worker must not hold
the pool forever, and a power cut must not discard completed work.
The runner therefore supervises its jobs — per-job timeout, bounded
retries paced by seeded exponential backoff (:mod:`repro.backoff`),
crashed jobs isolated into ``MatrixResult.errors`` — and can persist
finished jobs to a JSON checkpoint that a rerun resumes from
(:mod:`repro.checkpointing` holds the shared quarantine discipline).

Simulations are deterministic, so the parallel matrix — and a
checkpoint-resumed one — is bit-identical to a sequential run.
"""

from __future__ import annotations

import os
import time
from collections.abc import Mapping
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .backoff import SITE_MATRIX_RETRY, backoff_delay
from .checkpointing import load_checkpoint, save_checkpoint
from .config import FIG11_SCHEMES, SchemeConfig, SimulationConfig
from .core.pipeline import simulate
from .core.results import RunResult
from .errors import ReproError, RunnerError
from .video import workload, workload_keys

MatrixKey = Tuple[str, str]  # (video key, scheme name)
_Job = Tuple[str, SchemeConfig, Optional[int], int,
             Optional[SimulationConfig]]

_CHECKPOINT_VERSION = 1


@dataclass
class MatrixResult(Mapping):
    """A matrix run's results plus the jobs that did not survive.

    Behaves as a read-only mapping ``{(video, scheme): RunResult}`` of
    the *successful* jobs, so existing callers that iterate or index a
    plain dict keep working; supervision outcomes live alongside:

    * ``errors`` — ``{(video, scheme): "ExcType: message"}`` for jobs
      that exhausted their retries (always a ``repro.errors`` type:
      foreign exceptions are wrapped into ``RunnerError`` at the
      isolation boundary);
    * ``retried`` — jobs that failed at least once but recovered;
    * ``resumed`` — jobs loaded from a checkpoint instead of run;
    * ``quarantined`` — ``{moved-to path: reason}`` for checkpoint
      files that were unusable (corrupt, truncated, or written by a
      different matrix) and were set aside instead of trusted.
    """

    results: Dict[MatrixKey, RunResult] = field(default_factory=dict)
    errors: Dict[MatrixKey, str] = field(default_factory=dict)
    retried: List[MatrixKey] = field(default_factory=list)
    resumed: List[MatrixKey] = field(default_factory=list)
    quarantined: Dict[str, str] = field(default_factory=dict)

    def __getitem__(self, key: MatrixKey) -> RunResult:
        return self.results[key]

    def __iter__(self) -> Iterator[MatrixKey]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def ok(self) -> bool:
        return not self.errors


def _run_one(args: _Job) -> Tuple[MatrixKey, RunResult]:
    video_key, scheme, n_frames, seed, config = args
    result = simulate(workload(video_key), scheme, n_frames=n_frames,
                      seed=seed, config=config)
    return (video_key, scheme.name), result


def _job_key(job: _Job) -> MatrixKey:
    return job[0], job[1].name


# -- checkpointing -------------------------------------------------------------


def _decode_entry(entry: object) -> Tuple[MatrixKey, RunResult]:
    """One checkpoint record back to its (key, result) pair."""
    if not isinstance(entry, dict):
        raise TypeError(f"entry is {type(entry).__name__}, not an object")
    key = (str(entry["video"]), str(entry["scheme"]))
    return key, RunResult.from_jsonable(entry["result"])


def _load_matrix_checkpoint(path: str, meta: Dict[str, object]
                            ) -> Tuple[Dict[MatrixKey, RunResult],
                                       Dict[str, str]]:
    """Completed jobs from ``path`` via the shared quarantine path."""
    entries, quarantined = load_checkpoint(
        path, _CHECKPOINT_VERSION, meta, _decode_entry, RunnerError)
    return dict(entries), quarantined


def _save_matrix_checkpoint(path: str, meta: Dict[str, object],
                            results: Dict[MatrixKey, RunResult]) -> None:
    """Atomically persist every finished job (tmp + rename)."""
    save_checkpoint(path, _CHECKPOINT_VERSION, meta, [
        {"video": video, "scheme": scheme, "result": result.to_jsonable()}
        for (video, scheme), result in sorted(results.items())
    ])


# -- supervised execution ------------------------------------------------------


def _failure_message(exc: BaseException) -> str:
    """Describe a failed job with a ``repro.errors`` type.

    Deliberate simulator failures already carry their typed class; a
    foreign exception (a bug, a numpy error, a KeyError from a bad
    workload key) is re-wrapped into :class:`RunnerError` at this
    boundary so ``MatrixResult.errors`` never exposes raw exception
    types to downstream consumers.
    """
    if isinstance(exc, ReproError):
        return f"{type(exc).__name__}: {exc}"
    wrapped = RunnerError(f"job raised {type(exc).__name__}: {exc}")
    return f"{type(wrapped).__name__}: {wrapped}"


def _run_round_inline(jobs: Sequence[_Job]
                      ) -> Tuple[Dict[MatrixKey, RunResult],
                                 List[Tuple[_Job, str]]]:
    """One attempt over ``jobs`` without a pool (timeouts inapplicable:
    there is no worker to abandon, so a wedged job wedges the caller
    exactly as it would without the runner)."""
    done: Dict[MatrixKey, RunResult] = {}
    failed: List[Tuple[_Job, str]] = []
    for job in jobs:
        try:
            key, result = _run_one(job)
            done[key] = result
        except ReproError as exc:
            failed.append((job, _failure_message(exc)))
        except Exception as exc:  # repro-lint: disable=E002 isolation boundary: a non-Repro crash is re-wrapped into RunnerError, never propagated into the matrix
            failed.append((job, _failure_message(exc)))
    return done, failed


def _run_round_pool(jobs: Sequence[_Job], processes: int,
                    job_timeout: Optional[float]
                    ) -> Tuple[Dict[MatrixKey, RunResult],
                               List[Tuple[_Job, str]]]:
    """One attempt over ``jobs`` on a fresh process pool.

    ``job_timeout`` bounds how long the caller waits on each future.
    Futures are drained in submission order while all jobs run in
    parallel, so the wait on the first future spans its full runtime
    and later futures are typically already resolved — the bound is an
    approximation of per-job wall-clock, not of CPU time.  A timed-out
    worker cannot be killed through ``concurrent.futures``; its future
    is cancelled and its result, if it ever arrives, is discarded when
    the round's pool shuts down.
    """
    done: Dict[MatrixKey, RunResult] = {}
    failed: List[Tuple[_Job, str]] = []
    with ProcessPoolExecutor(
            max_workers=min(processes, len(jobs))) as pool:
        futures = [(job, pool.submit(_run_one, job)) for job in jobs]
        for job, future in futures:
            try:
                key, result = future.result(timeout=job_timeout)
                done[key] = result
            except (TimeoutError, _FuturesTimeout):
                future.cancel()
                failed.append((job, _failure_message(RunnerError(
                    f"job exceeded its {job_timeout}s timeout and was "
                    "abandoned"))))
            except ReproError as exc:
                failed.append((job, _failure_message(exc)))
            except Exception as exc:  # repro-lint: disable=E002 isolation boundary: a non-Repro crash is re-wrapped into RunnerError, never propagated into the matrix
                failed.append((job, _failure_message(exc)))
    return done, failed


def run_matrix(
    videos: Optional[Sequence[str]] = None,
    schemes: Sequence[SchemeConfig] = FIG11_SCHEMES,
    n_frames: Optional[int] = None,
    seed: int = 0,
    config: Optional[SimulationConfig] = None,
    processes: Optional[int] = None,
    job_timeout: Optional[float] = None,
    max_retries: int = 0,
    retry_backoff: float = 0.25,
    retry_backoff_cap: float = 8.0,
    checkpoint: Optional[str] = None,
    isolate_errors: bool = True,
) -> MatrixResult:
    """Run every (video, scheme) pair under supervision.

    Args:
        videos: workload keys (default: all 16).
        schemes: scheme configurations (default: the Fig. 11 six).
        n_frames: frames per video (None = each video's full Table 1
            length — the multi-hour full reproduction).
        seed: content seed shared across the matrix.
        config: simulation configuration.
        processes: worker processes.  ``None`` (the default) uses
            every core (``os.cpu_count()``); pass 1 to force the
            inline, pool-free path.
        job_timeout: seconds to wait per job before abandoning it
            (pool mode only; ``None`` waits forever).
        max_retries: extra attempts for a failed or timed-out job
            before it lands in ``errors``.
        retry_backoff: base seconds of the exponential backoff slept
            before each retry round (seeded jitter, deterministic in
            ``seed`` — see :func:`repro.backoff.backoff_delay`).
            ``0`` retries immediately.
        retry_backoff_cap: ceiling on one backoff sleep, seconds.
        checkpoint: JSON file to persist finished jobs to.  If it
            already exists (same matrix meta), its jobs are loaded
            instead of re-run, so a killed matrix resumes where it
            stopped — bit-identically, since simulations are
            deterministic.  Checkpointed jobs outside the requested
            matrix (a stale superset) are ignored, not merged.  A
            corrupt, truncated, or wrong-matrix checkpoint is
            quarantined to ``<checkpoint>.corrupt`` (recorded in
            ``MatrixResult.quarantined``) and the matrix starts fresh
            instead of raising.
        isolate_errors: collect failing jobs into ``errors`` (the
            default) instead of re-raising the first failure.

    Returns:
        A :class:`MatrixResult` — mapping of successful
        ``{(video_key, scheme_name): RunResult}`` plus ``errors``.
    """
    if processes is None:
        processes = os.cpu_count() or 1
    if max_retries < 0:
        raise RunnerError(f"max_retries must be >= 0, got {max_retries}")
    keys = list(videos) if videos is not None else list(workload_keys())
    jobs: List[_Job] = [(video_key, scheme, n_frames, seed, config)
                        for video_key in keys for scheme in schemes]

    matrix = MatrixResult()
    meta: Dict[str, object] = {"n_frames": n_frames, "seed": seed}
    if checkpoint is not None:
        wanted = {_job_key(job) for job in jobs}
        completed, matrix.quarantined = _load_matrix_checkpoint(
            checkpoint, meta)
        for key, result in completed.items():
            if key in wanted:
                matrix.results[key] = result
                matrix.resumed.append(key)
        jobs = [job for job in jobs if _job_key(job) not in matrix.results]

    remaining = jobs
    last_error: Dict[MatrixKey, str] = {}
    for attempt in range(1 + max_retries):
        if not remaining:
            break
        if attempt > 0:
            # Transient failures (a wedged worker, a briefly exhausted
            # machine) should not be hammered back-to-back; the delay
            # is seeded, so reruns sleep the same schedule.
            delay = backoff_delay(seed, SITE_MATRIX_RETRY, 0, attempt - 1,
                                  base=retry_backoff,
                                  cap=retry_backoff_cap)
            if delay > 0.0:
                time.sleep(delay)
        if processes <= 1 or len(remaining) <= 1:
            done, failures = _run_round_inline(remaining)
        else:
            done, failures = _run_round_pool(remaining, processes,
                                             job_timeout)
        for key in done:
            if key in last_error:
                matrix.retried.append(key)
        matrix.results.update(done)
        if done and checkpoint is not None:
            _save_matrix_checkpoint(checkpoint, meta, matrix.results)
        remaining = [job for job, _ in failures]
        last_error = {_job_key(job): message for job, message in failures}

    matrix.errors = last_error
    if matrix.errors and not isolate_errors:
        key, message = next(iter(matrix.errors.items()))
        raise RunnerError(
            f"job {key} failed after {1 + max_retries} attempt(s): "
            f"{message}")
    return matrix


def normalized_matrix(
    results: Mapping,
    baseline_name: str = "Baseline",
) -> Dict[str, Dict[str, float]]:
    """Reduce a matrix to {video: {scheme: normalized energy}}."""
    videos = sorted({video for video, _ in results},
                    key=lambda key: (len(key), key))
    table: Dict[str, Dict[str, float]] = {}
    for video in videos:
        if (video, baseline_name) not in results:
            available = sorted(scheme for v, scheme in results
                               if v == video)
            raise ReproError(
                f"cannot normalize video {video!r}: no "
                f"{baseline_name!r} run in the matrix (schemes present: "
                f"{available}); run the baseline scheme or pass "
                "baseline_name=")
        base = results[video, baseline_name].energy.total
        table[video] = {
            scheme: run.energy.total / base
            for (v, scheme), run in results.items() if v == video
        }
    return table
