"""Parallel experiment runner.

The benchmark suite runs at a reduced frame count so it finishes in
minutes; reproducing the paper at the *full* Table 1 frame counts
(70 K+ frames across schemes) is embarrassingly parallel across
(video, scheme) pairs.  :func:`run_matrix` fans those out over a
process pool and returns the results keyed by pair.

Simulations are deterministic, so the parallel matrix is bit-identical
to a sequential run.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Optional, Sequence, Tuple

from .config import FIG11_SCHEMES, SchemeConfig, SimulationConfig
from .core.pipeline import simulate
from .core.results import RunResult
from .video import workload, workload_keys

MatrixKey = Tuple[str, str]  # (video key, scheme name)


def _run_one(args) -> Tuple[MatrixKey, RunResult]:
    video_key, scheme, n_frames, seed, config = args
    result = simulate(workload(video_key), scheme, n_frames=n_frames,
                      seed=seed, config=config)
    return (video_key, scheme.name), result


def run_matrix(
    videos: Optional[Sequence[str]] = None,
    schemes: Sequence[SchemeConfig] = FIG11_SCHEMES,
    n_frames: Optional[int] = None,
    seed: int = 0,
    config: Optional[SimulationConfig] = None,
    processes: Optional[int] = None,
) -> Dict[MatrixKey, RunResult]:
    """Run every (video, scheme) pair, optionally in parallel.

    Args:
        videos: workload keys (default: all 16).
        schemes: scheme configurations (default: the Fig. 11 six).
        n_frames: frames per video (None = each video's full Table 1
            length — the multi-hour full reproduction).
        seed: content seed shared across the matrix.
        config: simulation configuration.
        processes: worker processes.  ``None`` (the default) uses
            every core (``os.cpu_count()``); pass 1 to force the
            inline, pool-free path.

    Returns:
        ``{(video_key, scheme_name): RunResult}``.
    """
    if processes is None:
        processes = os.cpu_count() or 1
    keys = list(videos) if videos is not None else list(workload_keys())
    jobs = [(video_key, scheme, n_frames, seed, config)
            for video_key in keys for scheme in schemes]
    results: Dict[MatrixKey, RunResult] = {}
    if processes <= 1 or len(jobs) <= 1:
        for job in jobs:
            key, result = _run_one(job)
            results[key] = result
        return results
    with ProcessPoolExecutor(max_workers=min(processes, len(jobs))) as pool:
        for key, result in pool.map(_run_one, jobs):
            results[key] = result
    return results


def normalized_matrix(
    results: Dict[MatrixKey, RunResult],
    baseline_name: str = "Baseline",
) -> Dict[str, Dict[str, float]]:
    """Reduce a matrix to {video: {scheme: normalized energy}}."""
    videos = sorted({video for video, _ in results},
                    key=lambda key: (len(key), key))
    table: Dict[str, Dict[str, float]] = {}
    for video in videos:
        base = results[video, baseline_name].energy.total
        table[video] = {
            scheme: run.energy.total / base
            for (v, scheme), run in results.items() if v == video
        }
    return table
