"""Frame compression baselines (Delta Colour Compression)."""

from .dcc import compressed_sizes, dcc_ratio

__all__ = ["compressed_sizes", "dcc_ratio"]
