"""Delta Colour Compression (DCC) — the paper's Sec. 6.2 comparison.

Commercial DCC (AMD Polaris, NVIDIA Pascal) is an *intra-block* scheme:
it stores each block as a base pixel plus per-pixel deltas at the
narrowest bit width that holds them, so flat and smoothly shaded blocks
shrink while noisy blocks stay raw.  MACH is *inter-block* (it reuses
whole blocks already in memory), which is why the paper can stack GAB
on top of DCC and gain further savings.

The model: a block of ``p`` RGB pixels compresses to

    1 (width header) + 3 (base pixel) + ceil((p - 1) * 3 * bits / 8)

bytes, where ``bits`` is the signed width of the largest base-relative
delta (ring arithmetic mod 256), capped at the raw size when the
"compressed" form would be bigger.
"""

from __future__ import annotations

import numpy as np

from ..errors import GeometryError

_HEADER_BYTES = 1
_BASE_BYTES = 3


def compressed_sizes(blocks: np.ndarray) -> np.ndarray:
    """Per-block DCC size in bytes for an ``(n, 3p)`` uint8 matrix."""
    blocks = np.asarray(blocks)
    if blocks.ndim != 2 or blocks.shape[1] % 3 or blocks.dtype != np.uint8:
        raise GeometryError(
            f"expected (n, 3p) uint8 block matrix, got {blocks.shape} "
            f"{blocks.dtype}")
    n, k = blocks.shape
    pixels = k // 3
    bases = np.tile(blocks[:, :3], (1, pixels))
    # Signed delta on the mod-256 ring, in [-128, 127].
    deltas = ((blocks.astype(np.int16) - bases.astype(np.int16) + 128) % 256
              ) - 128
    max_abs = np.abs(deltas[:, 3:]).max(axis=1) if pixels > 1 else np.zeros(n)
    # Signed width: 0 bits for all-zero deltas, else floor(log2 m) + 2.
    bits = np.where(
        max_abs == 0, 0,
        np.floor(np.log2(np.maximum(max_abs, 1))).astype(np.int64) + 2)
    payload = ((pixels - 1) * 3 * bits + 7) // 8
    sizes = _HEADER_BYTES + _BASE_BYTES + payload
    return np.minimum(sizes, k).astype(np.int64)


def dcc_ratio(blocks: np.ndarray) -> float:
    """Whole-frame compression ratio (compressed / raw; lower is better)."""
    blocks = np.asarray(blocks)
    raw = blocks.shape[0] * blocks.shape[1]
    return float(compressed_sizes(blocks).sum()) / raw if raw else 1.0
