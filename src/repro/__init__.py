"""repro — reproduction of "Race-To-Sleep + Content Caching + Display
Caching: A Recipe for Energy-efficient Video Streaming on Handhelds"
(Zhang et al., MICRO-50, 2017).

The package simulates the paper's end-to-end video-processing pipeline
on a handheld SoC — hardware video decoder, LPDDR3 memory, and display
controller — and implements its three techniques:

* **Race-to-Sleep** (frame batching + frequency boosting),
* **MACH content caching** (digest-tagged macroblock reuse), and
* **display caching** (display cache + MACH buffer at the DC),

plus the baselines they are compared against.  See DESIGN.md for the
full system inventory and EXPERIMENTS.md for paper-vs-measured results.

Quickstart::

    from repro import simulate, workload, GAB, BASELINE

    result = simulate(workload("V8"), GAB, n_frames=240)
    base = simulate(workload("V8"), BASELINE, n_frames=240)
    print(f"energy saving: {1 - result.energy.total / base.energy.total:.1%}")
"""

from .config import (
    BASELINE,
    BATCHING,
    DCC_ONLY,
    FIG11_SCHEMES,
    GAB,
    GAB_DCC,
    MAB,
    RACE_TO_SLEEP,
    RACING,
    FaultConfig,
    MachConfig,
    RealtimeConfig,
    SchemeConfig,
    SimulationConfig,
    ThermalConfig,
    VideoConfig,
)
from .video import PAPER_WORKLOADS, SyntheticVideo, VideoProfile, workload

_CORE_EXPORTS = {
    "simulate": ("core.pipeline", "simulate"),
    "RunResult": ("core.results", "RunResult"),
    "SchemeComparison": ("core.results", "SchemeComparison"),
    "compare_schemes": ("core.results", "compare_schemes"),
    "FrameTrace": ("video.trace", "FrameTrace"),
    "RecordingPipeline": ("core.pipelines", "RecordingPipeline"),
    "RenderPipeline": ("core.pipelines", "RenderPipeline"),
    "simulate_slack_dvfs": ("core.related_work", "simulate_slack_dvfs"),
    "Play": ("core.session", "Play"),
    "Pause": ("core.session", "Pause"),
    "SessionResult": ("core.session", "SessionResult"),
    "simulate_session": ("core.session", "simulate_session"),
    "BandwidthTrace": ("network.bandwidth", "BandwidthTrace"),
    "DeliveryResult": ("network.delivery", "DeliveryResult"),
    "DeliveredNetworkModel": ("network.delivery", "DeliveredNetworkModel"),
    "simulate_delivery": ("network.delivery", "simulate_delivery"),
    "deliver_for_config": ("network.delivery", "deliver_for_config"),
    "run_matrix": ("runner", "run_matrix"),
    "normalized_matrix": ("runner", "normalized_matrix"),
    "MatrixResult": ("runner", "MatrixResult"),
    "FaultPlan": ("faults", "FaultPlan"),
    "ThermalModel": ("thermal", "ThermalModel"),
    "ThermalPlan": ("thermal", "ThermalPlan"),
    "ThermalSnapshot": ("thermal", "ThermalSnapshot"),
    "AdaptiveRtSGovernor": ("core.race_to_sleep", "AdaptiveRtSGovernor"),
    "validate_against_paper": ("validation", "validate_against_paper"),
    "PopulationSpec": ("fleet.population", "PopulationSpec"),
    "DeviceClass": ("fleet.population", "DeviceClass"),
    "RegionSpec": ("fleet.population", "RegionSpec"),
    "PopulationModel": ("fleet.population", "PopulationModel"),
    "default_population": ("fleet.population", "default_population"),
    "FleetCalibration": ("fleet.surrogate", "FleetCalibration"),
    "load_or_calibrate": ("fleet.surrogate", "load_or_calibrate"),
    "FleetResult": ("fleet.engine", "FleetResult"),
    "CohortAggregate": ("fleet.engine", "CohortAggregate"),
    "run_fleet": ("fleet.engine", "run_fleet"),
    "BottleneckLink": ("realtime.link", "BottleneckLink"),
    "DelayLossController": ("realtime.congestion", "DelayLossController"),
    "RealtimeResult": ("realtime.session", "RealtimeResult"),
    "simulate_realtime": ("realtime.session", "simulate_realtime"),
    "realtime_playback": ("realtime.session", "realtime_playback"),
    "ChaosRegime": ("realtime.chaos", "ChaosRegime"),
    "ChaosResult": ("realtime.chaos", "ChaosResult"),
    "CHAOS_REGIMES": ("realtime.chaos", "CHAOS_REGIMES"),
    "run_chaos": ("realtime.chaos", "run_chaos"),
}


def __getattr__(name: str) -> object:
    """Defer core imports so substrate subpackages stay importable alone."""
    if name in _CORE_EXPORTS:
        import importlib

        module_name, attribute = _CORE_EXPORTS[name]
        module = importlib.import_module(f".{module_name}", __name__)
        return getattr(module, attribute)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__version__ = "1.0.0"

__all__ = [
    "BASELINE",
    "BATCHING",
    "DCC_ONLY",
    "FIG11_SCHEMES",
    "GAB",
    "GAB_DCC",
    "MAB",
    "RACE_TO_SLEEP",
    "RACING",
    "AdaptiveRtSGovernor",
    "FaultConfig",
    "FaultPlan",
    "MatrixResult",
    "MachConfig",
    "SchemeConfig",
    "SimulationConfig",
    "ThermalConfig",
    "ThermalModel",
    "ThermalPlan",
    "ThermalSnapshot",
    "VideoConfig",
    "simulate",
    "RunResult",
    "SchemeComparison",
    "compare_schemes",
    "FrameTrace",
    "RecordingPipeline",
    "RenderPipeline",
    "simulate_slack_dvfs",
    "BandwidthTrace",
    "DeliveryResult",
    "DeliveredNetworkModel",
    "simulate_delivery",
    "deliver_for_config",
    "PAPER_WORKLOADS",
    "SyntheticVideo",
    "VideoProfile",
    "workload",
    "PopulationSpec",
    "DeviceClass",
    "RegionSpec",
    "PopulationModel",
    "default_population",
    "FleetCalibration",
    "load_or_calibrate",
    "FleetResult",
    "CohortAggregate",
    "run_fleet",
    "RealtimeConfig",
    "BottleneckLink",
    "DelayLossController",
    "RealtimeResult",
    "simulate_realtime",
    "realtime_playback",
    "ChaosRegime",
    "ChaosResult",
    "CHAOS_REGIMES",
    "run_chaos",
    "__version__",
]
