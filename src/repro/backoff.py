"""Deterministic retry pacing shared by the runner and shard supervisor.

Retries that fire back-to-back hammer whatever transient condition
caused the failure; retries paced by a *stateful* RNG would make the
schedule depend on how many other retries happened first.  This module
gives every retry site one audited policy: exponential backoff with
*seeded* jitter, where each delay is a pure splitmix64 hash of
``(seed, site, index, attempt)`` — the same order-free determinism
contract as :mod:`repro.faults`.  Two runs of the same supervised job
therefore sleep the same schedule, and tests can predict every delay
without sleeping at all.
"""

from __future__ import annotations

from .faults import hash_u01

#: Hash-site discriminators (style of :mod:`repro.faults`): matrix-runner
#: retry rounds and shard-stripe retries must never correlate.
SITE_MATRIX_RETRY = 0x4D58
SITE_STRIPE_RETRY = 0x5348


def backoff_delay(seed: int, site: int, index: int, attempt: int,
                  base: float, cap: float,
                  jitter: float = 0.5) -> float:
    """Seconds to wait before retry ``attempt`` (0-based) of ``index``.

    The schedule is ``min(cap, base * 2**attempt)`` scaled by a seeded
    jitter factor in ``[1 - jitter, 1)``, so concurrent retriers with
    different indices decorrelate instead of thundering together.  A
    non-positive ``base`` disables backoff entirely (returns 0.0).
    """
    if base <= 0.0:
        return 0.0
    scale = min(cap, base * (2.0 ** attempt))
    u = hash_u01(seed, site, index, attempt)
    return scale * (1.0 - jitter + jitter * u)
