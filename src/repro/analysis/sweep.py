"""Parameter sweeps over nested simulation configuration.

Sensitivity studies (Fig. 12 and beyond) all share a shape: vary one
deeply nested configuration field, re-run, collect a metric.  This
helper does the plumbing — dotted-path access into the frozen
dataclass tree with ``dataclasses.replace`` rebuilding the chain — so a
sweep is one call:

    sweep = sweep_config(
        SimulationConfig(), "mach.num_machs", [2, 4, 8, 16],
        lambda cfg, value: simulate(workload("V8"), GAB, n_frames=96,
                                    config=cfg).write_savings)
"""

from __future__ import annotations

from dataclasses import is_dataclass, replace
from typing import Any, Callable, List, Sequence, Tuple

from ..errors import ConfigError


def set_config_field(config: Any, path: str, value: Any) -> Any:
    """Return a copy of a frozen dataclass tree with ``path`` replaced.

    ``path`` is a dotted field path, e.g. ``"dram.act_pre_energy"`` or
    ``"mach.num_machs"``; every segment except the last must name a
    dataclass field holding another dataclass.
    """
    parts = path.split(".")
    if not all(parts):
        raise ConfigError(f"malformed config path {path!r}")

    def rebuild(node: Any, remaining: List[str]) -> Any:
        if not is_dataclass(node):
            raise ConfigError(
                f"path {path!r} descends into non-dataclass "
                f"{type(node).__name__}")
        name = remaining[0]
        if not hasattr(node, name):
            raise ConfigError(
                f"{type(node).__name__} has no field {name!r} "
                f"(path {path!r})")
        if len(remaining) == 1:
            return replace(node, **{name: value})
        child = rebuild(getattr(node, name), remaining[1:])
        return replace(node, **{name: child})

    return rebuild(config, parts)


def get_config_field(config: Any, path: str) -> Any:
    """Read a dotted field path from a dataclass tree."""
    node = config
    for name in path.split("."):
        if not hasattr(node, name):
            raise ConfigError(
                f"{type(node).__name__} has no field {name!r} "
                f"(path {path!r})")
        node = getattr(node, name)
    return node


def sweep_config(
    config: Any,
    path: str,
    values: Sequence[Any],
    metric: Callable[[Any, Any], Any],
) -> List[Tuple[Any, Any]]:
    """Evaluate ``metric(config_with_value, value)`` for each value."""
    results = []
    for value in values:
        varied = set_config_field(config, path, value)
        results.append((value, metric(varied, value)))
    return results
