"""Terminal plotting: sparklines and stacked-area charts.

The benchmark harness and the examples render the paper's figures as
text; these helpers keep that rendering consistent without pulling in
a plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

_SPARK_LEVELS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], lo: float = None,
              hi: float = None) -> str:
    """One-line sparkline of a series."""
    data = np.asarray(list(values), dtype=np.float64)
    if len(data) == 0:
        return ""
    low = float(data.min()) if lo is None else lo
    high = float(data.max()) if hi is None else hi
    span = high - low
    if span <= 0:
        return _SPARK_LEVELS[4] * len(data)
    levels = np.clip(((data - low) / span * 8).round(), 0, 8).astype(int)
    return "".join(_SPARK_LEVELS[level] for level in levels)


def stacked_area(series: Dict[str, Sequence[float]], width: int = 64,
                 height: int = 12) -> str:
    """A character stacked-area chart of fraction series.

    Each input series gives per-x fractions in [0, 1] that sum to ~1
    across series (like the paper's stacked CDFs).  Each series is
    painted with the first letter of its name, bottom-up in insertion
    order.
    """
    names = list(series)
    if not names:
        return ""
    arrays = [np.asarray(list(series[name]), dtype=np.float64)
              for name in names]
    n = len(arrays[0])
    if any(len(a) != n for a in arrays) or n == 0:
        raise ValueError("series must be equal-length and non-empty")
    # Resample to the chart width.
    xs = np.linspace(0, n - 1, width).round().astype(int)
    columns = np.stack([a[xs] for a in arrays])  # (series, width)
    cumulative = np.cumsum(columns, axis=0)
    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for col in range(width):
        previous = 0
        for index, name in enumerate(names):
            top = int(round(cumulative[index, col] * height))
            for row in range(previous, min(top, height)):
                grid[height - 1 - row][col] = name[0].lower()
            previous = max(previous, top)
    lines = ["".join(row) for row in grid]
    legend = "  ".join(f"{name[0].lower()}={name}" for name in names)
    return "\n".join(lines + [legend])


def bar_chart(labels: Sequence[str], values: Sequence[float],
              width: int = 50, reference: float = None) -> str:
    """Horizontal bars, with an optional reference tick (e.g. 1.0)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not values:
        return ""
    peak = max(max(values), reference or 0.0)
    lines = []
    label_width = max(len(label) for label in labels)
    for label, value in zip(labels, values):
        bar_len = int(round(value / peak * width)) if peak else 0
        bar = "#" * bar_len
        if reference is not None and peak:
            tick = int(round(reference / peak * width))
            bar = (bar.ljust(tick) + "|" if tick >= len(bar)
                   else bar[:tick] + "|" + bar[tick + 1:])
        lines.append(f"{label.ljust(label_width)}  {bar} {value:.3f}")
    return "\n".join(lines)
