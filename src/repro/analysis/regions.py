"""Frame region classification (paper Fig. 2b).

Frames are bucketed by their decode-time slack against the 16.6 ms
deadline:

* **Region I** — dropped: decode exceeded the deadline;
* **Region II** — met the deadline but the slack is too short for any
  sleep state to break even;
* **Region III** — slack funds S1 but not S3;
* **Region IV** — slack funds deep sleep (S3).
"""

from __future__ import annotations

from enum import Enum
from typing import Dict

import numpy as np

from ..config import PowerStateConfig


class Region(Enum):
    I = "I"  # noqa: E741 - the paper's region names
    II = "II"
    III = "III"
    IV = "IV"


def classify_frames(decode_times: np.ndarray, deadline: float,
                    power: PowerStateConfig) -> np.ndarray:
    """Region of each frame, as an array of :class:`Region`."""
    decode_times = np.asarray(decode_times, dtype=np.float64)
    slack = deadline - decode_times
    s1 = power.sleep_breakeven("S1")
    s3 = power.sleep_breakeven("S3")
    out = np.empty(len(decode_times), dtype=object)
    out[slack < 0] = Region.I
    out[(slack >= 0) & (slack < s1)] = Region.II
    out[(slack >= s1) & (slack < s3)] = Region.III
    out[slack >= s3] = Region.IV
    return out


def region_mix(decode_times: np.ndarray, deadline: float,
               power: PowerStateConfig) -> Dict[Region, float]:
    """Fraction of frames in each region."""
    regions = classify_frames(decode_times, deadline, power)
    n = len(regions)
    if n == 0:
        return {region: 0.0 for region in Region}
    return {
        region: float((regions == region).sum()) / n for region in Region
    }
