"""Fixed-width text tables for benchmark output.

Every benchmark prints the rows/series its paper figure reports; this
keeps the rendering consistent and dependency-free.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def _render(value: Cell, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]],
                 precision: int = 3, title: str = "") -> str:
    """Render an aligned text table (right-aligned numeric columns)."""
    rendered: List[List[str]] = [[str(h) for h in headers]]
    numeric: List[bool] = [True] * len(headers)
    for row in rows:
        cells = [_render(cell, precision) for cell in row]
        if len(cells) != len(headers):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            if isinstance(cell, str):
                numeric[i] = False
        rendered.append(cells)
    widths = [max(len(r[i]) for r in rendered) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    for row_index, cells in enumerate(rendered):
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.rjust(widths[i]) if numeric[i]
                         else cell.ljust(widths[i]))
        lines.append("  ".join(parts).rstrip())
        if row_index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
