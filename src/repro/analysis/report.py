"""Markdown reports over scheme comparisons."""

from __future__ import annotations

from typing import Sequence

from ..core.results import SchemeComparison
from .tables import format_table


def comparison_report(comparisons: Sequence[SchemeComparison]) -> str:
    """A Fig. 11-style report: normalized energy per video and scheme.

    The final row is the cross-video average, matching the paper's
    "Avg" group.
    """
    if not comparisons:
        raise ValueError("need at least one comparison")
    scheme_names = [r.scheme_name for r in comparisons[0].results]
    headers = ["video"] + scheme_names
    rows = []
    sums = [0.0] * len(scheme_names)
    for comparison in comparisons:
        normalized = comparison.normalized_energy()
        row = [comparison.profile_key]
        for i, name in enumerate(scheme_names):
            row.append(normalized[name])
            sums[i] += normalized[name]
        rows.append(row)
    rows.append(["Avg"] + [s / len(comparisons) for s in sums])
    table = format_table(headers, rows, precision=3)
    lines = [
        "# Normalized energy (lower is better; baseline = 1.000)",
        "",
        "```",
        table,
        "```",
        "",
    ]
    gab = [c.normalized_energy().get("GAB") for c in comparisons]
    gab = [value for value in gab if value is not None]
    if gab:
        average_saving = 1.0 - sum(gab) / len(gab)
        best = 1.0 - min(gab)
        lines.append(
            f"GAB saves {average_saving:.1%} on average "
            f"(best video: {best:.1%}); the paper reports 21 % "
            "average and 33 % best (V8).")
    return "\n".join(lines)
