"""Exact content-similarity census (paper Fig. 7b).

For every block of every frame, decide whether identical content
appeared earlier in the *same* frame (intra match), in one of the
previous ``window`` frames (inter match), or nowhere (no match).  This
is the ground-truth upper bound that MACH's realized match rate is
compared against: the census window is 16 frames and unbounded in
capacity, while MACH only remembers 8 frames of 256 digests.

Blocks are compared by 48-bit digest (CRC32||CRC16), whose collision
probability over a census is negligible; ``use_gradient=True`` runs the
census on gradient blocks instead (the gab upper bound).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Iterable, List

import numpy as np

from ..core.gradient import to_gradient
from ..hashing.crc import crc16_blocks, crc32_blocks
from ..video.frame import DecodedFrame


@dataclass
class CensusResult:
    """Aggregate and per-frame census outcomes."""

    intra: int = 0
    inter: int = 0
    none: int = 0
    per_frame: List[tuple] = field(default_factory=list)

    @property
    def total(self) -> int:
        return self.intra + self.inter + self.none

    @property
    def intra_fraction(self) -> float:
        return self.intra / self.total if self.total else 0.0

    @property
    def inter_fraction(self) -> float:
        return self.inter / self.total if self.total else 0.0

    @property
    def none_fraction(self) -> float:
        return self.none / self.total if self.total else 0.0

    @property
    def match_fraction(self) -> float:
        return self.intra_fraction + self.inter_fraction


def _deep_digests(blocks: np.ndarray) -> np.ndarray:
    low = crc32_blocks(blocks).astype(np.uint64)
    high = crc16_blocks(blocks).astype(np.uint64)
    return (high << np.uint64(32)) | low


def content_census(frames: Iterable[DecodedFrame], window: int = 16,
                   use_gradient: bool = False) -> CensusResult:
    """Run the Fig. 7b census over a frame stream."""
    result = CensusResult()
    history: Deque[np.ndarray] = deque(maxlen=window)
    for frame in frames:
        blocks = frame.blocks
        if use_gradient:
            blocks, _ = to_gradient(blocks)
        digests = _deep_digests(blocks)
        uniques, first_index, inverse = np.unique(
            digests, return_index=True, return_inverse=True)
        n = len(digests)
        # A block is an intra match iff an identical block occurs
        # earlier in the same frame (it is not the first occurrence).
        is_intra = np.arange(n) != first_index[inverse]
        # First occurrences are inter matches iff seen in the window.
        if history:
            window_digests = np.concatenate(list(history))
            seen = np.isin(uniques, window_digests)
        else:
            seen = np.zeros(len(uniques), dtype=bool)
        is_inter = seen[inverse] & ~is_intra
        intra = int(is_intra.sum())
        inter = int(is_inter.sum())
        none = n - intra - inter
        result.intra += intra
        result.inter += inter
        result.none += none
        result.per_frame.append((frame.index, intra, inter, none))
        history.append(uniques)
    return result
