"""Analysis utilities: CDFs, region classification, content census, and
text reports backing the paper's figures."""

from .ascii_plot import bar_chart, sparkline, stacked_area
from .cdf import StackedCdf, stacked_time_cdf, stacked_energy_cdf
from .sweep import get_config_field, set_config_field, sweep_config
from .census import CensusResult, content_census
from .regions import Region, classify_frames, region_mix
from .tables import format_table
from .report import comparison_report

__all__ = [
    "bar_chart",
    "sparkline",
    "stacked_area",
    "get_config_field",
    "set_config_field",
    "sweep_config",
    "StackedCdf",
    "stacked_time_cdf",
    "stacked_energy_cdf",
    "CensusResult",
    "content_census",
    "Region",
    "classify_frames",
    "region_mix",
    "format_table",
    "comparison_report",
]
