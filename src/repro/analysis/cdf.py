"""Stacked per-frame CDFs (paper Figs. 2b-2e and 4).

The paper sorts frames by decode time (or energy) and plots, for each
frame, how its fixed 16.6 ms budget (or 5 mJ energy budget) splits
across execution, short slack, transitions, S1, and S3.  This module
computes those stacked series from a run's :class:`FrameTimeline`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..core.results import FrameTimeline

_STATES = ("execution", "short_slack", "transition", "s1", "s3")


@dataclass(frozen=True)
class StackedCdf:
    """Per-frame stacked series, frames sorted by the sort key."""

    fractions: Dict[str, np.ndarray]  # state -> per-frame fraction
    sort_key: np.ndarray  # the sorted decode times (or energies)

    @property
    def n_frames(self) -> int:
        return len(self.sort_key)

    def mean_fraction(self, state: str) -> float:
        """Average share of the budget spent in ``state``."""
        values = self.fractions[state]
        return float(values.mean()) if len(values) else 0.0

    def series(self, state: str) -> np.ndarray:
        return self.fractions[state]


def _stack(parts: Dict[str, np.ndarray], order: np.ndarray,
           key: np.ndarray) -> StackedCdf:
    total = sum(parts.values())
    # Guard against zero-length frames (should not happen in practice).
    total = np.where(total <= 0, 1.0, total)
    fractions = {
        name: (values / total)[order] for name, values in parts.items()
    }
    return StackedCdf(fractions=fractions, sort_key=key[order])


def stacked_time_cdf(timeline: FrameTimeline) -> StackedCdf:
    """Fig. 2b/2d: per-frame time split, sorted by decode time."""
    parts = {
        "execution": timeline.decode_time,
        "short_slack": timeline.idle_time,
        "transition": timeline.transition_time,
        "s1": timeline.s1_time,
        "s3": timeline.s3_time,
    }
    order = np.argsort(timeline.decode_time, kind="stable")
    return _stack(parts, order, timeline.decode_time)


def stacked_energy_cdf(timeline: FrameTimeline) -> StackedCdf:
    """Fig. 2c/2e: per-frame energy split, sorted by frame energy."""
    parts = {
        "execution": timeline.exec_energy,
        "short_slack": timeline.idle_energy,
        "transition": timeline.transition_energy,
        "s1": timeline.s1_energy,
        "s3": timeline.s3_energy,
    }
    totals = timeline.total_energy
    order = np.argsort(totals, kind="stable")
    return _stack(parts, order, totals)
