"""Seeded, deterministic fault injection (the chaos half of resilience).

Real handheld streaming survives lossy radios and bit errors; the
simulator's perfect-world pipeline never exercised the machinery that
absorbs them.  This module supplies the *injection* side: a
:class:`FaultPlan` that answers, as a pure function of ``(seed, site,
indices)``, whether a given event is faulted.

Determinism is the design center.  Faults are **not** drawn from a
shared stateful RNG — that would make the schedule depend on call
order, so adding one lookup anywhere would reshuffle every fault after
it.  Instead each decision hashes its coordinates (fault site, segment
or frame index, attempt or block index) together with the seed through
a splitmix64 mixer and converts the result to a uniform in ``[0, 1)``.
Two runs with the same :class:`~repro.config.FaultConfig` therefore
see byte-identical faults regardless of how the surrounding simulation
evolves, and ``fault_rate=0`` plans are exactly inert.

The *resilience* consumers live where the faults strike:

* :mod:`repro.network.delivery` — retry with exponential backoff,
  per-attempt timeouts, ABR panic-down, bounded abandonment;
* :mod:`repro.core.pipeline` — macroblock error concealment
  (:func:`conceal_blocks`), counting concealed blocks and their extra
  reference-read traffic;
* :mod:`repro.core.writeback` — MACH digest verification that falls
  back to a full block store on an injected collision.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

import numpy as np

from .config import FaultConfig
from .errors import FaultError

# Fault-site discriminators mixed into the hash so the same index never
# correlates across sites (a lost segment 7 says nothing about frame 7).
_SITE_SEGMENT = 0x5E67
_SITE_LOSS_FRACTION = 0x10F5
_SITE_BLOCK = 0xB10C
_SITE_COLLISION = 0xC011
_SITE_PACKET = 0x9ACF
_SITE_STRIPE_FAULT = 0x57A1
_SITE_STRIPE_SLOW = 0x57A2

_MASK64 = (1 << 64) - 1
#: 2**-53 — maps the top 53 bits of a hash to a uniform in [0, 1).
_INV_2_53 = 1.0 / (1 << 53)


def _splitmix64(x: int) -> int:
    """One splitmix64 finalization round (Steele et al.)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def _hash_u01(seed: int, site: int, *indices: int) -> float:
    """Uniform in [0, 1) from hashed coordinates — pure and order-free."""
    state = _splitmix64((seed ^ (site << 32)) & _MASK64)
    for index in indices:
        state = _splitmix64((state ^ index) & _MASK64)
    return (state >> 11) * _INV_2_53


#: Public alias for sibling injection schedules (:mod:`repro.thermal`
#: draws its throttle events from the same order-free mixer so thermal
#: and fault plans share one determinism story).
hash_u01 = _hash_u01


def _hash_u01_vector(seed: int, site: int, index: int,
                     count: int) -> np.ndarray:
    """Vectorized ``_hash_u01`` over ``count`` sub-indices (numpy u64)."""
    base = np.uint64(_splitmix64(
        _splitmix64((seed ^ (site << 32)) & _MASK64) ^ index))
    x = base ^ np.arange(count, dtype=np.uint64)
    with np.errstate(over="ignore"):
        x = x + np.uint64(0x9E3779B97F4A7C15)
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        x = x ^ (x >> np.uint64(31))
    return (x >> np.uint64(11)).astype(np.float64) * _INV_2_53


class SegmentFault(Enum):
    """What an injected delivery fault does to a download attempt."""

    LOSS = "loss"  # transfer dies partway; partial radio time wasted
    CORRUPT = "corrupt"  # full transfer, checksum fails on arrival
    TIMEOUT = "timeout"  # the download hangs until the attempt timeout


@dataclass(frozen=True)
class FaultPlan:
    """A pure-function fault schedule derived from a :class:`FaultConfig`.

    Every query is deterministic in ``(config.seed, site, indices)``;
    the plan holds no mutable state and can be shared freely across
    delivery, decode, and writeback.
    """

    config: FaultConfig

    @classmethod
    def from_config(cls, config: FaultConfig) -> Optional["FaultPlan"]:
        """A plan for ``config``, or ``None`` when injection is off."""
        return cls(config) if config.enabled else None

    # -- delivery ---------------------------------------------------------

    def segment_fault(self, segment_index: int,
                      attempt: int) -> Optional[SegmentFault]:
        """Fault (if any) striking download ``attempt`` of a segment."""
        cfg = self.config
        if not cfg.injects_delivery:
            return None
        u = _hash_u01(cfg.seed, _SITE_SEGMENT, segment_index, attempt)
        if u < cfg.segment_loss:
            return SegmentFault.LOSS
        if u < cfg.segment_loss + cfg.segment_corruption:
            return SegmentFault.CORRUPT
        if u < (cfg.segment_loss + cfg.segment_corruption
                + cfg.segment_timeout_rate):
            return SegmentFault.TIMEOUT
        return None

    def loss_fraction(self, segment_index: int, attempt: int) -> float:
        """How far through the transfer a LOSS fault strikes, in (0, 1)."""
        u = _hash_u01(self.config.seed, _SITE_LOSS_FRACTION,
                      segment_index, attempt)
        return 0.05 + 0.90 * u  # never exactly 0 or 1

    def packet_lost(self, frame_index: int, packet_index: int,
                    attempt: int) -> bool:
        """Injected erasure of one realtime packet (past the bottleneck).

        Keyed on ``(frame, packet, attempt)`` so the draw is
        order-free: retransmissions of the same packet re-roll, and
        composing with emergent queue loss cannot reshuffle the
        schedule (the emergent drops use the realtime seed and a
        different site, not this plan).
        """
        rate = self.config.packet_loss
        if rate <= 0.0:
            return False
        return _hash_u01(self.config.seed, _SITE_PACKET, frame_index,
                         packet_index, attempt) < rate

    # -- decode -----------------------------------------------------------

    def corrupt_block_indices(self, frame_index: int, n_blocks: int,
                              block_bytes: int) -> np.ndarray:
        """Indices of macroblocks hit by bit errors in one frame.

        ``block_bit_error`` is a per-bit rate; a block of ``b`` bytes
        is corrupted with probability ``1 - (1 - p)**(8 b)``.
        """
        ber = self.config.block_bit_error
        if ber <= 0.0 or n_blocks <= 0:
            return np.empty(0, dtype=np.int64)
        p_block = 1.0 - (1.0 - ber) ** (8 * block_bytes)
        u = _hash_u01_vector(self.config.seed, _SITE_BLOCK, frame_index,
                             n_blocks)
        return np.flatnonzero(u < p_block).astype(np.int64)

    # -- MACH -------------------------------------------------------------

    def digest_collision(self, frame_index: int, block_index: int) -> bool:
        """Is this MACH match actually an injected hash collision?"""
        rate = self.config.digest_collision
        if rate <= 0.0:
            return False
        return _hash_u01(self.config.seed, _SITE_COLLISION, frame_index,
                         block_index) < rate


class ShardFault(Enum):
    """What an injected shard fault does to one stripe attempt."""

    CRASH = "crash"  # worker process dies after compute, before reply
    STALL = "stall"  # worker stops heartbeating; lease must revoke it
    CORRUPT = "corrupt"  # partial arrives with a mutated payload
    SLOW = "slow"  # worker finishes correctly, but late (straggler)


@dataclass(frozen=True)
class ShardFaultConfig:
    """Rates and shape of an injected shard-fault campaign.

    The four rates are cumulative-threshold probabilities per stripe
    *attempt* (a retried stripe re-rolls); their sum must stay <= 1.
    ``max_faulty_attempts`` bounds injection to the first N attempts of
    each stripe, so a run with ``max_retries >= max_faulty_attempts``
    is guaranteed to eventually complete — chaos tests assert on the
    *result* of a finished run, not on livelocks.
    """

    crash_rate: float = 0.0
    stall_rate: float = 0.0
    corrupt_rate: float = 0.0
    slow_rate: float = 0.0
    slow_seconds: float = 0.5
    max_faulty_attempts: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        rates = (self.crash_rate, self.stall_rate, self.corrupt_rate,
                 self.slow_rate)
        if any(rate < 0.0 for rate in rates):
            raise FaultError(f"shard fault rates must be >= 0, got {rates}")
        if sum(rates) > 1.0:
            raise FaultError(
                f"shard fault rates sum to {sum(rates)} > 1")
        if self.slow_seconds < 0.0:
            raise FaultError(
                f"slow_seconds must be >= 0, got {self.slow_seconds}")
        if self.max_faulty_attempts < 0:
            raise FaultError("max_faulty_attempts must be >= 0, got "
                             f"{self.max_faulty_attempts}")

    @property
    def enabled(self) -> bool:
        return (self.crash_rate + self.stall_rate + self.corrupt_rate
                + self.slow_rate) > 0.0


@dataclass(frozen=True)
class ShardFaultPlan:
    """Order-free fault schedule for supervised stripe execution.

    Like :class:`FaultPlan`, every decision is a pure splitmix64 hash
    of its coordinates — here ``(seed, site, phase, stripe, attempt)``
    — so which worker picks up a stripe, and in what order, cannot
    change which attempts are faulted.  The phase string is folded to
    an integer via its UTF-8 bytes so "load" and "score" attempts of
    the same stripe draw independently.
    """

    config: ShardFaultConfig

    @classmethod
    def from_config(cls, config: Optional[ShardFaultConfig]
                    ) -> Optional["ShardFaultPlan"]:
        """A plan for ``config``, or ``None`` when injection is off."""
        if config is None or not config.enabled:
            return None
        return cls(config)

    @staticmethod
    def _phase_index(phase: str) -> int:
        return int.from_bytes(phase.encode("utf-8"), "big") & _MASK64

    def stripe_fault(self, phase: str, stripe_id: int,
                     attempt: int) -> Optional[ShardFault]:
        """Fault (if any) injected into one stripe attempt."""
        cfg = self.config
        if attempt >= cfg.max_faulty_attempts:
            return None
        u = _hash_u01(cfg.seed, _SITE_STRIPE_FAULT,
                      self._phase_index(phase), stripe_id, attempt)
        if u < cfg.crash_rate:
            return ShardFault.CRASH
        if u < cfg.crash_rate + cfg.stall_rate:
            return ShardFault.STALL
        if u < cfg.crash_rate + cfg.stall_rate + cfg.corrupt_rate:
            return ShardFault.CORRUPT
        if u < (cfg.crash_rate + cfg.stall_rate + cfg.corrupt_rate
                + cfg.slow_rate):
            return ShardFault.SLOW
        return None

    def slow_seconds(self, phase: str, stripe_id: int,
                     attempt: int) -> float:
        """How long a SLOW fault delays this attempt (jittered in
        ``[0.5, 1.5) * config.slow_seconds``)."""
        u = _hash_u01(self.config.seed, _SITE_STRIPE_SLOW,
                      self._phase_index(phase), stripe_id, attempt)
        return self.config.slow_seconds * (0.5 + u)


def conceal_blocks(blocks: np.ndarray, corrupt: np.ndarray,
                   previous: Optional[np.ndarray]) -> int:
    """Conceal corrupted macroblocks in-place; returns the count.

    Temporal concealment copies the co-located block from the previous
    decoded frame (what hardware decoders do for a lost macroblock).
    Without a previous frame — the very first frame of a stream — the
    block is painted mid-gray, the standard "no reference" fallback.
    """
    if len(corrupt) == 0:
        return 0
    if corrupt.max(initial=-1) >= blocks.shape[0]:
        raise FaultError("corrupt block index beyond the frame")
    if previous is not None and previous.shape == blocks.shape:
        blocks[corrupt] = previous[corrupt]
    else:
        blocks[corrupt] = 128
    return int(len(corrupt))
