"""Exception hierarchy for the repro package.

All exceptions raised deliberately by this package derive from
:class:`ReproError`, so callers can catch simulator problems without
swallowing unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro simulator."""


class ConfigError(ReproError):
    """A configuration value is inconsistent or out of range."""


class GeometryError(ReproError):
    """Frame/block geometry does not divide evenly or mismatches."""


class CacheError(ReproError):
    """Invalid cache parameterization (non-power-of-two sets, etc.)."""


class MemoryModelError(ReproError):
    """Invalid DRAM parameterization or address out of range."""


class SchedulingError(ReproError):
    """The frame scheduler was driven into an impossible state."""


class CodecError(ReproError):
    """Encoding/decoding failed or produced inconsistent structures."""


class LayoutError(ReproError):
    """A frame-buffer layout record is malformed."""


class NetworkError(ReproError):
    """The delivery scheduler was misconfigured or the link failed
    in a way the client cannot absorb (no bandwidth, bad mode, ...)."""


class FaultError(ReproError):
    """A fault-injection plan is inconsistent or was misapplied."""


class RunnerError(ReproError):
    """The experiment runner could not supervise a job (timeout,
    checkpoint mismatch, exhausted retries)."""


class ThermalError(ReproError):
    """A thermal/power-budget model was misconfigured or driven
    backwards in time."""


class FleetError(ReproError):
    """A fleet-scale population run was misconfigured or its online
    aggregates were merged inconsistently (mismatched sketch params,
    stale calibration, shard bookkeeping errors)."""


class ShardError(FleetError):
    """The supervised shard service could not complete a stripe
    (lease exhausted its retries, a worker pool failed to start, or
    the merge plane was driven inconsistently)."""


class RealtimeError(ReproError):
    """The realtime (live/interactive) mode was misconfigured or a
    chaos campaign's shards disagreed on their aggregation params."""


class LintError(ReproError):
    """The static-analysis pass was misconfigured or could not read
    a target (unknown rule id, unparseable file, bad baseline)."""
