"""Exception hierarchy for the repro package.

All exceptions raised deliberately by this package derive from
:class:`ReproError`, so callers can catch simulator problems without
swallowing unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro simulator."""


class ConfigError(ReproError):
    """A configuration value is inconsistent or out of range."""


class GeometryError(ReproError):
    """Frame/block geometry does not divide evenly or mismatches."""


class CacheError(ReproError):
    """Invalid cache parameterization (non-power-of-two sets, etc.)."""


class MemoryModelError(ReproError):
    """Invalid DRAM parameterization or address out of range."""


class SchedulingError(ReproError):
    """The frame scheduler was driven into an impossible state."""


class CodecError(ReproError):
    """Encoding/decoding failed or produced inconsistent structures."""


class LayoutError(ReproError):
    """A frame-buffer layout record is malformed."""
