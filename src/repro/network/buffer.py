"""Playback-buffer dynamics.

The client-side buffer holds downloaded-but-unplayed content, measured
in content seconds (the natural unit for ABR decisions and stall
accounting — a second of buffer survives a second of outage no matter
which rung it was fetched at).  Downloads fill it a segment at a time;
playback drains it at one content-second per wall-second; an empty
buffer during playback is a user-visible stall.
"""

from __future__ import annotations

from ..errors import ConfigError


class PlaybackBuffer:
    """Seconds-denominated playback buffer with stall accounting."""

    def __init__(self, capacity_seconds: float) -> None:
        if capacity_seconds <= 0:
            raise ConfigError("buffer capacity must be positive")
        self.capacity = float(capacity_seconds)
        self.level = 0.0
        self.stall_seconds = 0.0
        self.stall_events = 0
        self._in_stall = False

    @property
    def room(self) -> float:
        """Content seconds the buffer can still accept."""
        return max(0.0, self.capacity - self.level)

    def fill(self, seconds: float) -> None:
        """A downloaded segment lands (fills past capacity are a
        scheduler bug, not a clamp — the scheduler gates on ``room``)."""
        if seconds < 0:
            raise ConfigError("cannot fill a negative duration")
        self.level += seconds
        if self.level > self.capacity + 1e-9:
            raise ConfigError(
                f"buffer overfilled: {self.level:.3f}s > "
                f"{self.capacity:.3f}s capacity")

    def play(self, wall_seconds: float, content_remaining: float) -> float:
        """Drain for ``wall_seconds`` of playback; returns the content
        seconds actually played.

        The shortfall (``wall_seconds`` minus the return value) is
        recorded as a stall only while undelivered content remains —
        an empty buffer after the title finishes is not a stall.
        """
        if wall_seconds < 0:
            raise ConfigError("cannot play a negative duration")
        played = min(self.level, wall_seconds)
        self.level -= played
        shortfall = wall_seconds - played
        if shortfall > 1e-12 and content_remaining > 1e-12:
            self.stall_seconds += shortfall
            if not self._in_stall:
                self.stall_events += 1
                self._in_stall = True
        elif played > 0:
            self._in_stall = False
        return played

    def drain_time_to(self, target_level: float) -> float:
        """Wall seconds of uninterrupted playback until the buffer
        drains to ``target_level`` (0 if already at or below it)."""
        return max(0.0, self.level - target_level)
