"""Bandwidth traces: synthetic generators and trace-file loading.

The delivery simulator consumes a :class:`BandwidthTrace` — a
piecewise-constant link-capacity signal in the package's canonical
units (bytes per second over seconds).  Traces come from three places:

* **synthetic generators** (:func:`constant_trace`,
  :func:`lte_trace`, :func:`step_trace`) — seeded and deterministic,
  so a delivery run is reproducible bit-for-bit;
* **trace files** (:func:`load_trace`) in the two-column
  ``timestamp,bytes_per_sec`` format used by trace-driven network
  simulators (net-rl / Pensieve-style), one sample per line, comma or
  whitespace separated, ``#`` comments ignored;
* any code that builds the arrays directly.

The last sample's rate holds forever, so a trace shorter than the
session never runs out of signal (an explicit trailing 0-rate sample
models a dead link instead).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..errors import ConfigError


@dataclass(frozen=True)
class BandwidthTrace:
    """A piecewise-constant link capacity signal.

    ``rates[i]`` (bytes/s) holds from ``timestamps[i]`` until
    ``timestamps[i + 1]`` (or forever, for the last sample).
    """

    timestamps: Tuple[float, ...]
    rates: Tuple[float, ...]
    name: str = "trace"

    def __post_init__(self) -> None:
        if not self.timestamps or len(self.timestamps) != len(self.rates):
            raise ConfigError("trace needs matching, non-empty samples")
        if self.timestamps[0] != 0.0:
            raise ConfigError("trace must start at t=0")
        if any(b <= a for a, b in zip(self.timestamps, self.timestamps[1:])):
            raise ConfigError("trace timestamps must strictly increase")
        if any(rate < 0 for rate in self.rates):
            raise ConfigError("trace rates must be non-negative")

    @property
    def duration(self) -> float:
        """Span covered by explicit samples (the last rate holds after)."""
        return self.timestamps[-1]

    @property
    def mean_rate(self) -> float:
        """Sample-duration-weighted mean rate over ``duration`` (bytes/s)."""
        if len(self.timestamps) == 1:
            return self.rates[0]
        spans = [b - a for a, b in zip(self.timestamps, self.timestamps[1:])]
        total = sum(spans)
        return sum(r * s for r, s in zip(self.rates, spans)) / total

    def rate_at(self, time: float) -> float:
        """Link capacity at ``time`` (bytes/s)."""
        if time <= 0.0:
            return self.rates[0]
        index = bisect.bisect_right(self.timestamps, time) - 1
        return self.rates[index]

    def bytes_between(self, start: float, end: float) -> float:
        """Bytes the link can carry over ``[start, end]``."""
        if end <= start:
            return 0.0
        total = 0.0
        cursor = start
        index = max(0, bisect.bisect_right(self.timestamps, start) - 1)
        while cursor < end:
            boundary = (self.timestamps[index + 1]
                        if index + 1 < len(self.timestamps) else math.inf)
            upto = min(end, boundary)
            total += self.rates[index] * (upto - cursor)
            cursor = upto
            index += 1
        return total

    def transfer_time(self, nbytes: float, start: float) -> float:
        """Wall-clock time at which a ``nbytes`` download starting at
        ``start`` completes, or ``inf`` if the link stays dead."""
        if nbytes <= 0:
            return start
        remaining = float(nbytes)
        cursor = max(0.0, start)
        index = max(0, bisect.bisect_right(self.timestamps, cursor) - 1)
        while True:
            rate = self.rates[index]
            boundary = (self.timestamps[index + 1]
                        if index + 1 < len(self.timestamps) else math.inf)
            if rate > 0:
                needed = remaining / rate
                if cursor + needed <= boundary:
                    return cursor + needed
                remaining -= rate * (boundary - cursor)
            elif boundary == math.inf:
                return math.inf
            cursor = boundary
            index += 1


# --- synthetic generators ----------------------------------------------


def constant_trace(bytes_per_sec: float, name: str = "constant",
                   ) -> BandwidthTrace:
    """A flat link (the sanity-check trace)."""
    return BandwidthTrace((0.0,), (float(bytes_per_sec),), name=name)


#: LTE-like Markov states as multipliers of the mean rate: deep fade,
#: weak cell edge, nominal, good, peak carrier-aggregation bursts.
_LTE_LEVELS = (0.08, 0.45, 1.0, 1.55, 2.3)

#: Sticky transition matrix over the five levels (rows sum to 1).
_LTE_TRANSITIONS = (
    (0.60, 0.30, 0.10, 0.00, 0.00),
    (0.10, 0.55, 0.30, 0.05, 0.00),
    (0.02, 0.13, 0.60, 0.20, 0.05),
    (0.00, 0.05, 0.30, 0.50, 0.15),
    (0.00, 0.02, 0.18, 0.30, 0.50),
)


def lte_trace(mean_bytes_per_sec: float, duration: float, seed: int = 1,
              step: float = 1.0, name: str = "lte") -> BandwidthTrace:
    """An LTE-like trace: a sticky Markov chain over capacity levels
    with per-step lognormal fading jitter.

    Deterministic for a given ``(mean, duration, seed, step)``; the
    realized mean is renormalized to ``mean_bytes_per_sec`` so traces
    with different seeds stay comparable.
    """
    if duration <= 0 or step <= 0:
        raise ConfigError("lte trace needs positive duration and step")
    rng = np.random.default_rng(seed)
    n = max(1, int(math.ceil(duration / step)))
    levels = np.empty(n, dtype=np.int64)
    levels[0] = 2  # start at the nominal level
    matrix = np.asarray(_LTE_TRANSITIONS)
    for i in range(1, n):
        levels[i] = rng.choice(len(_LTE_LEVELS), p=matrix[levels[i - 1]])
    jitter = rng.lognormal(mean=0.0, sigma=0.18, size=n)
    rates = np.asarray(_LTE_LEVELS)[levels] * jitter
    rates *= mean_bytes_per_sec / float(np.mean(rates))
    timestamps = tuple(i * step for i in range(n))
    return BandwidthTrace(timestamps, tuple(float(r) for r in rates),
                          name=f"{name}-s{seed}")


def step_trace(levels_bytes_per_sec: Sequence[float], period: float,
               repeats: int = 1, name: str = "step") -> BandwidthTrace:
    """Cycle through fixed capacity levels (a 0 level is an outage)."""
    if not levels_bytes_per_sec or period <= 0 or repeats < 1:
        raise ConfigError("step trace needs levels, a period, and repeats")
    timestamps = []
    rates = []
    for cycle in range(repeats):
        for i, level in enumerate(levels_bytes_per_sec):
            timestamps.append((cycle * len(levels_bytes_per_sec) + i)
                              * period)
            rates.append(float(level))
    return BandwidthTrace(tuple(timestamps), tuple(rates), name=name)


# --- trace files --------------------------------------------------------


def load_trace(path: str, name: str | None = None) -> BandwidthTrace:
    """Load a two-column ``timestamp,bytes_per_sec`` trace file."""
    timestamps = []
    rates = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            text = line.split("#", 1)[0].strip()
            if not text:
                continue
            parts = text.replace(",", " ").split()
            if len(parts) != 2:
                raise ConfigError(
                    f"{path}:{lineno}: expected 'timestamp,bytes_per_sec'")
            timestamps.append(float(parts[0]))
            rates.append(float(parts[1]))
    if not timestamps:
        raise ConfigError(f"{path}: empty trace file")
    if timestamps[0] != 0.0:
        # Re-anchor recorded traces that start mid-capture.
        base = timestamps[0]
        timestamps = [t - base for t in timestamps]
    return BandwidthTrace(tuple(timestamps), tuple(rates),
                          name=name or path)


def save_trace(trace: BandwidthTrace, path: str) -> None:
    """Write a trace in the ``timestamp,bytes_per_sec`` file format."""
    with open(path, "w") as handle:
        handle.write(f"# bandwidth trace: {trace.name}\n")
        for timestamp, rate in zip(trace.timestamps, trace.rates):
            handle.write(f"{timestamp:.6f},{rate:.3f}\n")
