"""Adaptive-bitrate policies.

Each policy maps the client's observable state (buffer level, recent
throughput) to a ladder rung for the next segment.  Policies are pure
functions of their inputs, so delivery runs stay deterministic.

* :class:`FixedAbr` — always the same rung (the non-adaptive control);
* :class:`RateBasedAbr` — classic throughput-rule ABR: the highest
  rung below a safety fraction of the harmonic-mean throughput;
* :class:`BufferBasedAbr` — BBA-style: rung is a linear function of
  buffer occupancy between a reservoir and a cushion, ignoring
  throughput estimates entirely [Huang et al., SIGCOMM'14].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import ConfigError


@dataclass(frozen=True)
class AbrContext:
    """What the client knows when it picks the next segment's rung."""

    buffer_seconds: float
    buffer_capacity: float
    throughput: float  # harmonic-mean recent throughput, bytes/s (0 = none)
    last_rung: int  # rung of the previous segment (-1 before the first)
    consecutive_failures: int = 0  # failed attempts on the current segment


def panic_rung(rung: int, context: AbrContext,
               panic_after_failures: int) -> int:
    """Panic-down override applied on top of any policy's choice.

    After ``panic_after_failures`` consecutive failed download
    attempts the client stops trusting its throughput/buffer signals
    — the link is hostile — and fetches the lowest rung until a
    download succeeds.  Every policy gets this behaviour for free
    because the delivery scheduler applies it after ``select``.
    """
    if (panic_after_failures > 0
            and context.consecutive_failures >= panic_after_failures):
        return 0
    return rung


class AbrPolicy:
    """Base class: pick a ladder rung for the next segment."""

    name = "abstract"

    def select(self, ladder: Tuple[float, ...], context: AbrContext) -> int:
        raise NotImplementedError


class FixedAbr(AbrPolicy):
    """Always fetch the same rung (clamped to the ladder)."""

    name = "fixed"

    def __init__(self, rung: int = 0) -> None:
        self.rung = rung

    def select(self, ladder: Tuple[float, ...], context: AbrContext) -> int:
        return max(0, min(self.rung, len(ladder) - 1))


class RateBasedAbr(AbrPolicy):
    """Highest rung whose rate fits under ``safety x throughput``."""

    name = "rate"

    def __init__(self, safety: float = 0.85) -> None:
        if not 0.0 < safety <= 1.0:
            raise ConfigError("rate-ABR safety must be in (0, 1]")
        self.safety = safety

    def select(self, ladder: Tuple[float, ...], context: AbrContext) -> int:
        if context.throughput <= 0:
            return 0  # no estimate yet: start conservative
        budget = self.safety * context.throughput
        rung = 0
        for index, rate in enumerate(ladder):
            if rate <= budget:
                rung = index
        return rung


class BufferBasedAbr(AbrPolicy):
    """BBA-style linear map from buffer occupancy to rung.

    Below the ``reservoir`` the lowest rung is fetched (refill fast);
    above ``reservoir + cushion`` the top rung is; in between the rung
    interpolates linearly.  Both knobs scale with the buffer capacity
    when left as fractions.
    """

    name = "bba"

    def __init__(self, reservoir_fraction: float = 0.2,
                 cushion_fraction: float = 0.6) -> None:
        if not 0.0 < reservoir_fraction < 1.0:
            raise ConfigError("reservoir fraction must be in (0, 1)")
        if not 0.0 < cushion_fraction <= 1.0 - reservoir_fraction:
            raise ConfigError("reservoir + cushion must fit in the buffer")
        self.reservoir_fraction = reservoir_fraction
        self.cushion_fraction = cushion_fraction

    def select(self, ladder: Tuple[float, ...], context: AbrContext) -> int:
        reservoir = self.reservoir_fraction * context.buffer_capacity
        cushion = self.cushion_fraction * context.buffer_capacity
        top = len(ladder) - 1
        if context.buffer_seconds <= reservoir:
            return 0
        if context.buffer_seconds >= reservoir + cushion:
            return top
        slope = (context.buffer_seconds - reservoir) / cushion
        return int(slope * top)


_POLICIES = {
    "fixed": FixedAbr,
    "rate": RateBasedAbr,
    "bba": BufferBasedAbr,
}


def make_abr(name: str, **kwargs: object) -> AbrPolicy:
    """Instantiate an ABR policy by registry name."""
    try:
        factory = _POLICIES[name.lower()]
    except KeyError:
        raise ConfigError(
            f"unknown ABR policy {name!r}; "
            f"choose from {sorted(_POLICIES)}") from None
    return factory(**kwargs)


def abr_names() -> Tuple[str, ...]:
    return tuple(sorted(_POLICIES))
