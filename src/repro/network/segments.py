"""Segmented video representations for trace-driven delivery.

DASH/HLS servers cut a title into fixed-duration segments and encode
each at every rung of a bitrate ladder; the client downloads one
(segment, rung) pair at a time.  This module derives such a segmented
view from the repo's existing content sources: a Table-1
:class:`~repro.video.synthesis.VideoProfile` contributes its frame
count and complexity statistics (complex content costs more bytes at
the same rung), while a bare frame count works for traces and custom
streams.

Sizes are deterministic for a given ``(source, ladder, seed)`` so the
delivery simulation is reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..config import DEFAULT_LADDER, VideoConfig
from ..errors import ConfigError
from ..video.synthesis import VideoProfile

#: Lognormal sigma of per-segment size variation when the source gives
#: no complexity spread of its own (scene cuts, GOP phase, etc.).
_SIZE_SIGMA = 0.10


@dataclass(frozen=True)
class Segment:
    """One fixed-duration chunk of the title, at every ladder rung."""

    index: int
    duration: float  # content seconds (the tail segment may be shorter)
    n_frames: int
    sizes: Tuple[int, ...]  # encoded bytes, one per ladder rung

    def size(self, rung: int) -> int:
        return self.sizes[rung]


@dataclass(frozen=True)
class SegmentedVideo:
    """A title cut into segments against a bitrate ladder."""

    ladder: Tuple[float, ...]  # bytes/s, ascending
    segments: Tuple[Segment, ...]
    fps: float
    source_key: str = "stream"

    def __post_init__(self) -> None:
        if not self.segments:
            raise ConfigError("segmented video needs at least one segment")
        if not self.ladder or any(
                b <= a for a, b in zip(self.ladder, self.ladder[1:])):
            raise ConfigError("ladder must be ascending and non-empty")
        if self.ladder[0] <= 0:
            raise ConfigError("ladder rates must be positive")

    @property
    def n_segments(self) -> int:
        return len(self.segments)

    @property
    def n_frames(self) -> int:
        return sum(segment.n_frames for segment in self.segments)

    @property
    def duration(self) -> float:
        """Total content seconds."""
        return sum(segment.duration for segment in self.segments)

    @property
    def top_rung(self) -> int:
        return len(self.ladder) - 1

    def content_start(self, index: int) -> float:
        """Content position (s) at which segment ``index`` begins."""
        return sum(s.duration for s in self.segments[:index])


def segment_video(
    source: Optional[VideoProfile],
    video: VideoConfig,
    n_frames: Optional[int] = None,
    ladder: Tuple[float, ...] = DEFAULT_LADDER,
    segment_seconds: float = 1.0,
    seed: int = 0,
) -> SegmentedVideo:
    """Cut ``source`` into a :class:`SegmentedVideo`.

    Args:
        source: a :class:`VideoProfile` (its frame count and complexity
            shape the per-segment sizes), or ``None`` for a generic
            stream described only by ``n_frames``.
        video: geometry/fps of the playing stream.
        n_frames: override the source's frame count (required when
            ``source`` is ``None``).
        ladder: ascending encoded rates, bytes/s.
        segment_seconds: nominal content seconds per segment.
        seed: size-jitter seed (deterministic per ``(source, seed)``).
    """
    if segment_seconds <= 0:
        raise ConfigError("segment duration must be positive")
    if source is not None:
        count = n_frames if n_frames is not None else source.n_frames
        complexity_mean = source.complexity_mean
        sigma = math.hypot(_SIZE_SIGMA, source.complexity_sigma)
        key = source.key
    else:
        if n_frames is None:
            raise ConfigError("need n_frames when no profile is given")
        count = n_frames
        complexity_mean = 1.0
        sigma = _SIZE_SIGMA
        key = "stream"
    if count < 1:
        raise ConfigError("need at least one frame to segment")

    frames_per_segment = max(1, int(round(segment_seconds * video.fps)))
    n_segments = -(-count // frames_per_segment)
    rng = np.random.default_rng(seed ^ 0xC4A11CE)
    # One multiplier per segment, shared by every rung so rung ordering
    # is preserved segment-by-segment.
    jitter = rng.lognormal(mean=0.0, sigma=sigma, size=n_segments)
    jitter *= complexity_mean / float(np.mean(jitter))

    segments = []
    remaining = count
    for index in range(n_segments):
        seg_frames = min(frames_per_segment, remaining)
        remaining -= seg_frames
        duration = seg_frames / video.fps
        sizes = tuple(
            max(1, int(round(rate * duration * jitter[index])))
            for rate in ladder)
        segments.append(Segment(index=index, duration=duration,
                                n_frames=seg_frames, sizes=sizes))
    return SegmentedVideo(ladder=tuple(float(r) for r in ladder),
                         segments=tuple(segments), fps=video.fps,
                         source_key=key)
