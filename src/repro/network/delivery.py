"""Event-driven segment-download scheduler.

:func:`simulate_delivery` plays the client side of a streaming session
over a bandwidth trace: an ABR policy picks a rung for each segment,
the segment is fetched over the trace (paying a radio promotion when
the modem was idle), the playback buffer fills on arrival and drains
at one content-second per wall-second, and stalls emerge wherever the
buffer runs dry.  Two download modes bracket the radio's energy story:

* **steady** — fetch the next segment as soon as there is room for
  it.  Once the buffer is full this drips one segment per segment
  duration, so the modem's tail timer never expires: the radio sits
  in its high-power tail for the whole session.
* **burst** — fill the buffer back-to-back, then let the modem sleep
  until the buffer drains to a low watermark (BurstLink's recipe —
  the delivery-side mirror of the paper's VD race-to-sleep).

Everything is deterministic: the same ``(segmented, trace, abr,
config)`` inputs produce a bit-identical :class:`DeliveryResult`.

:class:`DeliveredNetworkModel` adapts a result to the
``frames_available`` / ``time_when_available`` interface of
:class:`repro.core.batching.NetworkModel`, with arrivals expressed in
*playback* time (stall intervals removed), so the decode pipeline's
Race-to-Sleep batcher sees exactly the downloaded-but-undecoded
frames the delivery produced.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..config import NetworkConfig, RadioConfig, VideoConfig
from ..errors import SchedulingError
from ..video.synthesis import VideoProfile
from .abr import AbrContext, AbrPolicy, make_abr
from .bandwidth import (
    BandwidthTrace,
    constant_trace,
    load_trace,
    lte_trace,
    step_trace,
)
from .buffer import PlaybackBuffer
from .radio import RadioEnergy, RadioModel
from .segments import SegmentedVideo, segment_video

#: Throughput-estimator window (harmonic mean of the last N segments).
_THROUGHPUT_WINDOW = 3


@dataclass(frozen=True)
class ChunkArrival:
    """One downloaded segment."""

    index: int
    rung: int
    size_bytes: int
    n_frames: int
    start: float  # wall time the radio went active for this chunk
    finish: float  # wall time the last byte landed
    playback_position: float  # content seconds consumed at ``finish``

    @property
    def throughput(self) -> float:
        """Realized transfer rate, bytes/s."""
        span = self.finish - self.start
        return self.size_bytes / span if span > 0 else math.inf


@dataclass(frozen=True)
class DeliveryResult:
    """Outcome of one trace-driven delivery run."""

    chunks: Tuple[ChunkArrival, ...]
    startup_seconds: float  # cold-start wait until the pre-roll filled
    stall_seconds: float  # mid-playback rebuffering (buffer ran dry)
    stall_events: int
    switches: int  # rung changes between consecutive segments
    radio: RadioEnergy
    wall_seconds: float  # wall clock from first request to last frame
    fps: float
    n_frames: int
    mean_rate: float  # duration-weighted mean of the fetched rungs

    @property
    def total_stall_seconds(self) -> float:
        return self.startup_seconds + self.stall_seconds

    def frame_arrival_playback(self) -> np.ndarray:
        """Per-frame availability in *playback* time (stalls removed).

        Frames of a segment that landed when the playhead was at
        ``playback_position`` become decodable at that playback time,
        which is exactly what the decode pipeline's clock measures.
        """
        times = np.empty(self.n_frames, dtype=np.float64)
        cursor = 0
        for chunk in self.chunks:
            times[cursor:cursor + chunk.n_frames] = chunk.playback_position
            cursor += chunk.n_frames
        return times


class DeliveredNetworkModel:
    """``NetworkModel``-compatible availability from a delivery run."""

    def __init__(self, result: DeliveryResult,
                 total_frames: Optional[int] = None) -> None:
        times = result.frame_arrival_playback()
        if total_frames is not None:
            if total_frames > len(times):
                raise SchedulingError(
                    f"delivery covered {len(times)} frames but the "
                    f"pipeline needs {total_frames}")
            times = times[:total_frames]
        self._times = times
        self.total_frames = len(times)

    def frames_available(self, time: float) -> int:
        """Frames downloaded by playback-time ``time``."""
        if time < 0:
            return 0
        return int(np.searchsorted(self._times, time + 1e-12,
                                   side="right"))

    def time_when_available(self, count: int) -> float:
        """Earliest playback time at which ``count`` frames are in."""
        count = min(count, self.total_frames)
        if count <= 0:
            return 0.0
        return float(self._times[count - 1])


def _resolve_trace(network: NetworkConfig) -> BandwidthTrace:
    """Build the configured bandwidth trace."""
    kind = network.trace_kind
    if kind == "constant":
        return constant_trace(network.mean_bandwidth)
    if kind == "lte":
        # Cover long sessions; the last sample holds beyond duration.
        return lte_trace(network.mean_bandwidth, duration=600.0,
                         seed=network.trace_seed)
    if kind == "step":
        return step_trace(
            (network.mean_bandwidth * 1.6, network.mean_bandwidth * 0.4,
             network.mean_bandwidth * 1.6, 0.0),
            period=8.0, repeats=80)
    return load_trace(network.trace_path)


def _resolve_abr(network: NetworkConfig) -> AbrPolicy:
    if network.abr == "fixed":
        return make_abr("fixed", rung=network.abr_fixed_rung)
    return make_abr(network.abr)


def _harmonic_mean(samples) -> float:
    values = [s for s in samples if s > 0 and not math.isinf(s)]
    if not values:
        return 0.0
    return len(values) / sum(1.0 / v for v in values)


def simulate_delivery(
    segmented: SegmentedVideo,
    trace: BandwidthTrace,
    abr: AbrPolicy,
    radio: RadioConfig,
    download_mode: str = "burst",
    preroll_seconds: float = 2.0,
    capacity_seconds: float = 10.0,
    low_watermark_seconds: float = 3.0,
) -> DeliveryResult:
    """Run the download/playback loop for one title.

    The loop alternates between segment arrivals and buffer-drain
    waits, advancing playback between events.  Playback starts once
    ``preroll_seconds`` of content are buffered (or the whole title
    is, for titles shorter than the pre-roll) and thereafter drains in
    wall time, stalling when the buffer empties before the next
    segment lands.
    """
    if download_mode not in ("steady", "burst"):
        raise SchedulingError(f"unknown download mode: {download_mode!r}")
    max_segment = max(s.duration for s in segmented.segments)
    if capacity_seconds < max_segment:
        raise SchedulingError("buffer cannot hold even one segment")
    preroll = min(preroll_seconds, segmented.duration,
                  capacity_seconds - 1e-9)
    low_watermark = max(0.0, min(low_watermark_seconds,
                                 capacity_seconds - max_segment))

    model = RadioModel(radio)
    buffer = PlaybackBuffer(capacity_seconds)
    throughputs = deque(maxlen=_THROUGHPUT_WINDOW)
    chunks = []
    busy = []
    switches = 0
    last_rung = -1

    now = 0.0  # wall clock
    played = 0.0  # content seconds consumed
    playing = False
    startup = 0.0
    last_busy_end = float("-inf")

    def advance(upto: float) -> None:
        """Advance the wall clock, draining the buffer if playing."""
        nonlocal now, played
        if upto <= now:
            return
        if playing:
            remaining = segmented.duration - played - buffer.level
            played += buffer.play(upto - now, remaining)
        now = upto

    for segment in segmented.segments:
        # --- gate the next request on buffer room ---------------------
        if playing and buffer.room < segment.duration:
            if download_mode == "burst":
                # High watermark hit: park the radio until the buffer
                # drains to the low watermark, then burst-refill.
                advance(now + buffer.drain_time_to(low_watermark))
            else:
                # Steady: request as soon as one segment fits, so the
                # modem drips along at the playback rate.
                advance(now + buffer.drain_time_to(
                    capacity_seconds - segment.duration))
        elif not playing and buffer.room < segment.duration:
            raise SchedulingError(
                "pre-roll filled the buffer before playback started")

        # --- pick a rung and fetch -----------------------------------
        context = AbrContext(
            buffer_seconds=buffer.level,
            buffer_capacity=capacity_seconds,
            throughput=_harmonic_mean(throughputs),
            last_rung=last_rung,
        )
        rung = abr.select(segmented.ladder, context)
        if last_rung >= 0 and rung != last_rung:
            switches += 1
        size = segment.size(rung)

        start = now
        if model.is_idle_at(start, last_busy_end):
            start += radio.promotion_latency
        finish = trace.transfer_time(size, start)
        if math.isinf(finish):
            raise SchedulingError(
                f"trace {trace.name!r} has no bandwidth left for "
                f"segment {segment.index}")
        advance(finish)
        busy.append((start, finish))
        last_busy_end = finish
        throughputs.append(size / max(finish - start, 1e-12))
        buffer.fill(segment.duration)
        chunks.append(ChunkArrival(
            index=segment.index, rung=rung, size_bytes=size,
            n_frames=segment.n_frames, start=start, finish=finish,
            playback_position=played))
        last_rung = rung

        if not playing and (buffer.level >= preroll - 1e-9
                            or segment.index == segmented.n_segments - 1):
            playing = True
            startup = now

    # Play out whatever is still buffered.
    advance(now + buffer.level)

    mean_rate = (sum(segmented.ladder[c.rung]
                     * segmented.segments[c.index].duration
                     for c in chunks) / segmented.duration)
    radio_energy = model.energy(busy, horizon=now)
    return DeliveryResult(
        chunks=tuple(chunks),
        startup_seconds=startup,
        stall_seconds=buffer.stall_seconds,
        stall_events=buffer.stall_events,
        switches=switches,
        radio=radio_energy,
        wall_seconds=now,
        fps=segmented.fps,
        n_frames=segmented.n_frames,
        mean_rate=mean_rate,
    )


def deliver_for_config(
    network: NetworkConfig,
    video: VideoConfig,
    source: Optional[VideoProfile] = None,
    n_frames: Optional[int] = None,
    seed: int = 0,
) -> DeliveryResult:
    """Convenience wrapper: build trace + segments + ABR from a
    :class:`NetworkConfig` and run :func:`simulate_delivery`."""
    segmented = segment_video(
        source, video, n_frames=n_frames, ladder=network.ladder,
        segment_seconds=network.segment_seconds, seed=seed)
    return simulate_delivery(
        segmented,
        trace=_resolve_trace(network),
        abr=_resolve_abr(network),
        radio=network.radio,
        download_mode=network.download_mode,
        preroll_seconds=network.preroll_seconds(video.fps),
        capacity_seconds=network.buffer_seconds(video.fps),
        low_watermark_seconds=network.low_watermark_seconds,
    )
