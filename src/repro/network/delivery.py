"""Event-driven segment-download scheduler.

:func:`simulate_delivery` plays the client side of a streaming session
over a bandwidth trace: an ABR policy picks a rung for each segment,
the segment is fetched over the trace (paying a radio promotion when
the modem was idle), the playback buffer fills on arrival and drains
at one content-second per wall-second, and stalls emerge wherever the
buffer runs dry.  Two download modes bracket the radio's energy story:

* **steady** — fetch the next segment as soon as there is room for
  it.  Once the buffer is full this drips one segment per segment
  duration, so the modem's tail timer never expires: the radio sits
  in its high-power tail for the whole session.
* **burst** — fill the buffer back-to-back, then let the modem sleep
  until the buffer drains to a low watermark (BurstLink's recipe —
  the delivery-side mirror of the paper's VD race-to-sleep).

Everything is deterministic: the same ``(segmented, trace, abr,
config)`` inputs produce a bit-identical :class:`DeliveryResult` —
including under fault injection, whose schedule is a pure function of
the fault seed (:class:`repro.faults.FaultPlan`).

When a :class:`~repro.faults.FaultPlan` is supplied, each segment
download becomes a bounded retry loop: an attempt can be lost
mid-transfer, arrive corrupted (checksum failure), or hang until the
per-attempt timeout; every failed attempt still costs radio energy,
the client backs off exponentially, and after
``panic_after_failures`` consecutive failures the ABR panics down to
the lowest rung.  A segment that exhausts ``max_retries`` is
**abandoned**: its content seconds play as a concealed freeze (the
buffer advances, the frames repeat the last good content), which is
quality loss, not a crash.

:class:`DeliveredNetworkModel` adapts a result to the
``frames_available`` / ``time_when_available`` interface of
:class:`repro.core.batching.NetworkModel`, with arrivals expressed in
*playback* time (stall intervals removed), so the decode pipeline's
Race-to-Sleep batcher sees exactly the downloaded-but-undecoded
frames the delivery produced.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

import numpy as np

from ..config import FaultConfig, NetworkConfig, RadioConfig, VideoConfig
from ..errors import NetworkError
from ..faults import FaultPlan, SegmentFault
from ..video.synthesis import VideoProfile
from .abr import AbrContext, AbrPolicy, make_abr, panic_rung
from .bandwidth import (
    BandwidthTrace,
    constant_trace,
    load_trace,
    lte_trace,
    step_trace,
)
from .buffer import PlaybackBuffer
from .radio import RadioEnergy, RadioModel
from .segments import SegmentedVideo, segment_video

#: Throughput-estimator window (harmonic mean of the last N segments).
_THROUGHPUT_WINDOW = 3


@dataclass(frozen=True)
class ChunkArrival:
    """One downloaded segment."""

    index: int
    rung: int
    size_bytes: int
    n_frames: int
    start: float  # wall time the radio went active for this chunk
    finish: float  # wall time the last byte landed
    playback_position: float  # content seconds consumed at ``finish``
    attempts: int = 1  # download attempts this segment consumed
    abandoned: bool = False  # retries exhausted: plays as a freeze

    @property
    def throughput(self) -> float:
        """Realized transfer rate, bytes/s."""
        span = self.finish - self.start
        return self.size_bytes / span if span > 0 else math.inf


@dataclass(frozen=True)
class DeliveryResult:
    """Outcome of one trace-driven delivery run."""

    chunks: Tuple[ChunkArrival, ...]
    startup_seconds: float  # cold-start wait until the pre-roll filled
    stall_seconds: float  # mid-playback rebuffering (buffer ran dry)
    stall_events: int
    switches: int  # rung changes between consecutive segments
    radio: RadioEnergy
    wall_seconds: float  # wall clock from first request to last frame
    fps: float
    n_frames: int
    mean_rate: float  # duration-weighted mean of the fetched rungs

    # Fault/resilience accounting (all zero on a fault-free run).
    retries: int = 0  # failed download attempts that were retried
    losses: int = 0  # attempts that died mid-transfer
    corruptions: int = 0  # attempts that failed their arrival checksum
    timeouts: int = 0  # attempts that hit the per-attempt timeout
    abandoned_segments: int = 0  # segments that exhausted max_retries
    panic_fetches: int = 0  # attempts forced to rung 0 by panic-down

    @property
    def total_stall_seconds(self) -> float:
        return self.startup_seconds + self.stall_seconds

    @property
    def failed_attempts(self) -> int:
        """Download attempts that did not deliver a segment."""
        return self.losses + self.corruptions + self.timeouts

    def frame_arrival_playback(self) -> np.ndarray:
        """Per-frame availability in *playback* time (stalls removed).

        Frames of a segment that landed when the playhead was at
        ``playback_position`` become decodable at that playback time,
        which is exactly what the decode pipeline's clock measures.
        """
        times = np.empty(self.n_frames, dtype=np.float64)
        cursor = 0
        for chunk in self.chunks:
            times[cursor:cursor + chunk.n_frames] = chunk.playback_position
            cursor += chunk.n_frames
        return times


class DeliveredNetworkModel:
    """``NetworkModel``-compatible availability from a delivery run."""

    def __init__(self, result: DeliveryResult,
                 total_frames: Optional[int] = None) -> None:
        times = result.frame_arrival_playback()
        if total_frames is not None:
            if total_frames > len(times):
                raise NetworkError(
                    f"delivery covered {len(times)} frames but the "
                    f"pipeline needs {total_frames}")
            times = times[:total_frames]
        self._times = times
        self.total_frames = len(times)

    def frames_available(self, time: float) -> int:
        """Frames downloaded by playback-time ``time``."""
        if time < 0:
            return 0
        return int(np.searchsorted(self._times, time + 1e-12,
                                   side="right"))

    def time_when_available(self, count: int) -> float:
        """Earliest playback time at which ``count`` frames are in."""
        count = min(count, self.total_frames)
        if count <= 0:
            return 0.0
        return float(self._times[count - 1])


def _resolve_trace(network: NetworkConfig) -> BandwidthTrace:
    """Build the configured bandwidth trace."""
    kind = network.trace_kind
    if kind == "constant":
        return constant_trace(network.mean_bandwidth)
    if kind == "lte":
        # Cover long sessions; the last sample holds beyond duration.
        return lte_trace(network.mean_bandwidth, duration=600.0,
                         seed=network.trace_seed)
    if kind == "step":
        return step_trace(
            (network.mean_bandwidth * 1.6, network.mean_bandwidth * 0.4,
             network.mean_bandwidth * 1.6, 0.0),
            period=8.0, repeats=80)
    return load_trace(network.trace_path)


def _resolve_abr(network: NetworkConfig) -> AbrPolicy:
    if network.abr == "fixed":
        return make_abr("fixed", rung=network.abr_fixed_rung)
    return make_abr(network.abr)


def _harmonic_mean(samples: Iterable[float]) -> float:
    values = [s for s in samples if s > 0 and not math.isinf(s)]
    if not values:
        return 0.0
    return len(values) / sum(1.0 / v for v in values)


def simulate_delivery(
    segmented: SegmentedVideo,
    trace: BandwidthTrace,
    abr: AbrPolicy,
    radio: RadioConfig,
    download_mode: str = "burst",
    preroll_seconds: float = 2.0,
    capacity_seconds: float = 10.0,
    low_watermark_seconds: float = 3.0,
    faults: Optional[FaultPlan] = None,
) -> DeliveryResult:
    """Run the download/playback loop for one title.

    The loop alternates between segment arrivals and buffer-drain
    waits, advancing playback between events.  Playback starts once
    ``preroll_seconds`` of content are buffered (or the whole title
    is, for titles shorter than the pre-roll) and thereafter drains in
    wall time, stalling when the buffer empties before the next
    segment lands.

    ``faults`` enables lossy-link behaviour (see the module
    docstring); ``faults=None`` follows the fault-free fast path
    bit-for-bit.
    """
    if download_mode not in ("steady", "burst"):
        raise NetworkError(f"unknown download mode: {download_mode!r}")
    max_segment = max(s.duration for s in segmented.segments)
    if capacity_seconds < max_segment:
        raise NetworkError("buffer cannot hold even one segment")
    preroll = min(preroll_seconds, segmented.duration,
                  capacity_seconds - 1e-9)
    low_watermark = max(0.0, min(low_watermark_seconds,
                                 capacity_seconds - max_segment))

    model = RadioModel(radio)
    buffer = PlaybackBuffer(capacity_seconds)
    throughputs = deque(maxlen=_THROUGHPUT_WINDOW)
    chunks = []
    busy = []
    switches = 0
    last_rung = -1
    fault_cfg = faults.config if faults is not None else None
    retries = losses = corruptions = timeouts = 0
    abandoned = panic_fetches = 0

    now = 0.0  # wall clock
    played = 0.0  # content seconds consumed
    playing = False
    startup = 0.0
    last_busy_end = float("-inf")

    def advance(upto: float) -> None:
        """Advance the wall clock, draining the buffer if playing."""
        nonlocal now, played
        if upto <= now:
            return
        if playing:
            remaining = segmented.duration - played - buffer.level
            played += buffer.play(upto - now, remaining)
        now = upto

    for segment in segmented.segments:
        # --- gate the next request on buffer room ---------------------
        if playing and buffer.room < segment.duration:
            if download_mode == "burst":
                # High watermark hit: park the radio until the buffer
                # drains to the low watermark, then burst-refill.
                advance(now + buffer.drain_time_to(low_watermark))
            else:
                # Steady: request as soon as one segment fits, so the
                # modem drips along at the playback rate.
                advance(now + buffer.drain_time_to(
                    capacity_seconds - segment.duration))
        elif not playing and buffer.room < segment.duration:
            raise NetworkError(
                "pre-roll filled the buffer before playback started")

        # --- pick a rung and fetch (retrying under faults) -----------
        attempt = 0
        consecutive = 0
        delivered = None
        max_attempts = 1 + (fault_cfg.max_retries if fault_cfg else 0)
        while attempt < max_attempts:
            context = AbrContext(
                buffer_seconds=buffer.level,
                buffer_capacity=capacity_seconds,
                throughput=_harmonic_mean(throughputs),
                last_rung=last_rung,
                consecutive_failures=consecutive,
            )
            rung = abr.select(segmented.ladder, context)
            if fault_cfg is not None:
                panicked = panic_rung(rung, context,
                                      fault_cfg.panic_after_failures)
                if panicked != rung:
                    panic_fetches += 1
                    rung = panicked
            size = segment.size(rung)

            start = now
            if model.is_idle_at(start, last_busy_end):
                start += radio.promotion_latency
            finish = trace.transfer_time(size, start)
            if math.isinf(finish) and fault_cfg is None:
                # Without a fault plan there is no timeout machinery to
                # bound the attempt, so a dead tail is fatal.  With one,
                # every branch below yields a finite failure_end: the
                # natural-timeout check catches ``inf > timeout_end``
                # (also shielding CORRUPT's full-transfer accounting)
                # and LOSS clamps ``inf * frac`` to the timeout — the
                # attempt times out deterministically instead of
                # depending on where the retry landed in the trace.
                raise NetworkError(
                    f"trace {trace.name!r} has no bandwidth left for "
                    f"segment {segment.index}")

            # Decide whether this attempt fails, and when.  Failed
            # attempts still occupy the radio (retry energy), but no
            # bytes reach the buffer or the throughput estimator.
            failure_end = None
            if fault_cfg is not None:
                fault = faults.segment_fault(segment.index, attempt)
                timeout_end = start + fault_cfg.segment_timeout
                if fault is SegmentFault.TIMEOUT:
                    timeouts += 1
                    failure_end = timeout_end
                elif fault is SegmentFault.LOSS:
                    losses += 1
                    frac = faults.loss_fraction(segment.index, attempt)
                    failure_end = min(start + frac * (finish - start),
                                      timeout_end)
                elif finish > timeout_end:
                    timeouts += 1  # natural timeout: link too slow
                    failure_end = timeout_end
                elif fault is SegmentFault.CORRUPT:
                    corruptions += 1
                    failure_end = finish  # full transfer, bad checksum

            if failure_end is not None:
                advance(failure_end)
                busy.append((start, failure_end))
                last_busy_end = failure_end
                consecutive += 1
                attempt += 1
                if attempt < max_attempts:
                    retries += 1
                    backoff = fault_cfg.retry_backoff * (2 ** (attempt - 1))
                    advance(now + backoff)
                continue

            advance(finish)
            busy.append((start, finish))
            last_busy_end = finish
            throughputs.append(size / max(finish - start, 1e-12))
            buffer.fill(segment.duration)
            chunks.append(ChunkArrival(
                index=segment.index, rung=rung, size_bytes=size,
                n_frames=segment.n_frames, start=start, finish=finish,
                playback_position=played, attempts=attempt + 1))
            if last_rung >= 0 and rung != last_rung:
                switches += 1
            last_rung = rung
            delivered = rung
            break

        if delivered is None:
            # Retries exhausted: abandon the segment.  Its content
            # seconds play as a concealed freeze — the buffer advances
            # so playback (and every later segment) proceeds, but no
            # bytes ever arrive for these frames.
            abandoned += 1
            buffer.fill(segment.duration)
            chunks.append(ChunkArrival(
                index=segment.index, rung=0, size_bytes=0,
                n_frames=segment.n_frames, start=now, finish=now,
                playback_position=played, attempts=max_attempts,
                abandoned=True))

        if not playing and (buffer.level >= preroll - 1e-9
                            or segment.index == segmented.n_segments - 1):
            playing = True
            startup = now

    # Play out whatever is still buffered.
    advance(now + buffer.level)

    mean_rate = (sum(0.0 if c.abandoned else segmented.ladder[c.rung]
                     * segmented.segments[c.index].duration
                     for c in chunks) / segmented.duration)
    radio_energy = model.energy(busy, horizon=now)
    return DeliveryResult(
        chunks=tuple(chunks),
        startup_seconds=startup,
        stall_seconds=buffer.stall_seconds,
        stall_events=buffer.stall_events,
        switches=switches,
        radio=radio_energy,
        wall_seconds=now,
        fps=segmented.fps,
        n_frames=segmented.n_frames,
        mean_rate=mean_rate,
        retries=retries,
        losses=losses,
        corruptions=corruptions,
        timeouts=timeouts,
        abandoned_segments=abandoned,
        panic_fetches=panic_fetches,
    )


def deliver_for_config(
    network: NetworkConfig,
    video: VideoConfig,
    source: Optional[VideoProfile] = None,
    n_frames: Optional[int] = None,
    seed: int = 0,
    faults: Optional[FaultConfig] = None,
) -> DeliveryResult:
    """Convenience wrapper: build trace + segments + ABR from a
    :class:`NetworkConfig` and run :func:`simulate_delivery`.

    ``faults`` (a :class:`~repro.config.FaultConfig`) turns on
    deterministic delivery-side fault injection; inert configs (all
    rates zero) are equivalent to ``None``.
    """
    segmented = segment_video(
        source, video, n_frames=n_frames, ladder=network.ladder,
        segment_seconds=network.segment_seconds, seed=seed)
    plan = FaultPlan.from_config(faults) if faults is not None else None
    return simulate_delivery(
        segmented,
        trace=_resolve_trace(network),
        abr=_resolve_abr(network),
        radio=network.radio,
        download_mode=network.download_mode,
        preroll_seconds=network.preroll_seconds(video.fps),
        capacity_seconds=network.buffer_seconds(video.fps),
        low_watermark_seconds=network.low_watermark_seconds,
        faults=plan,
    )
