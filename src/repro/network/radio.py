"""Radio (modem) power-state model.

A cellular/Wi-Fi modem is its own race-to-sleep machine: it burns
~1 W while bits flow (**active**), lingers in a high-power **tail**
for an inactivity-timer period after the last bit (LTE RRC/DRX), and
only then demotes to a ~10 mW **idle** state; waking back up costs a
promotion delay and energy.  BurstLink-style delivery exploits exactly
this shape — download in bursts and let the tail amortize over many
segments — which is the delivery-side mirror of the paper's VD
race-to-sleep.

:class:`RadioModel` integrates a list of busy (downloading) intervals
into a :class:`RadioEnergy` breakdown.  The same tail rule decides
both energy attribution here and the promotion latency the delivery
scheduler pays before a cold transfer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..config import RadioConfig


@dataclass(frozen=True)
class RadioEnergy:
    """Energy and residency breakdown of one delivery run."""

    active_energy: float  # J
    tail_energy: float  # J
    idle_energy: float  # J
    promotion_energy: float  # J
    active_seconds: float
    tail_seconds: float
    idle_seconds: float
    promotions: int

    @property
    def total(self) -> float:
        return (self.active_energy + self.tail_energy
                + self.idle_energy + self.promotion_energy)

    @property
    def total_seconds(self) -> float:
        return self.active_seconds + self.tail_seconds + self.idle_seconds

    @property
    def average_power(self) -> float:
        return (self.total / self.total_seconds
                if self.total_seconds else 0.0)


class RadioModel:
    """Integrates busy intervals into the three-state energy model."""

    def __init__(self, config: RadioConfig) -> None:
        self.config = config

    def is_idle_at(self, time: float, last_busy_end: float) -> bool:
        """Has the tail timer expired by ``time``? (``-inf`` last end
        means the radio has never been used: it starts idle.)"""
        return time - last_busy_end >= self.config.tail_seconds

    def energy(self, busy: Sequence[Tuple[float, float]],
               horizon: float) -> RadioEnergy:
        """Integrate over ``[0, horizon]`` given sorted, non-overlapping
        ``(start, end)`` busy intervals (sequential downloads)."""
        cfg = self.config
        active_s = tail_s = idle_s = 0.0
        promotions = 0
        cursor = 0.0
        last_end = float("-inf")
        for start, end in busy:
            start = max(cursor, start)
            end = max(start, end)
            # Split the gap before this interval into tail then idle.
            if last_end == float("-inf"):
                idle_s += max(0.0, start - cursor)
                promotions += 1
            else:
                tail_part = min(start - cursor, cfg.tail_seconds
                                - (cursor - last_end))
                tail_part = max(0.0, min(tail_part, start - cursor))
                tail_s += tail_part
                idle_part = (start - cursor) - tail_part
                idle_s += idle_part
                if idle_part > 0:
                    promotions += 1
            active_s += end - start
            cursor = end
            last_end = end
        # Trailing gap out to the horizon.
        if horizon > cursor:
            if last_end == float("-inf"):
                idle_s += horizon - cursor
            else:
                tail_part = max(0.0, min(horizon - cursor,
                                         cfg.tail_seconds))
                tail_s += tail_part
                idle_s += (horizon - cursor) - tail_part
        return RadioEnergy(
            active_energy=active_s * cfg.active_power,
            tail_energy=tail_s * cfg.tail_power,
            idle_energy=idle_s * cfg.idle_power,
            promotion_energy=promotions * cfg.promotion_energy,
            active_seconds=active_s,
            tail_seconds=tail_s,
            idle_seconds=idle_s,
            promotions=promotions,
        )
