"""Trace-driven streaming delivery, ABR, and radio burst energy.

The delivery-side half of the energy story: where the decode pipeline
(:mod:`repro.core`) races the video decoder to sleep, this subpackage
models how encoded frames *arrive* — segments fetched over a
bandwidth trace under an adaptive-bitrate policy, a playback buffer
whose occupancy produces stalls, and a modem whose RRC-style power
states make burst downloads the radio's own race-to-sleep.

Entry points:

* :func:`simulate_delivery` / :func:`deliver_for_config` — run the
  event-driven download scheduler, returning a
  :class:`DeliveryResult`;
* :class:`DeliveredNetworkModel` — feed a delivery's arrivals into
  the decode pipeline (``simulate(..., network_model=...)``);
* :mod:`~repro.network.bandwidth` — seeded synthetic traces
  (constant / LTE-like Markov / step-outage) and trace-file loading.
"""

from .abr import (
    AbrContext,
    AbrPolicy,
    BufferBasedAbr,
    FixedAbr,
    RateBasedAbr,
    abr_names,
    make_abr,
)
from .bandwidth import (
    BandwidthTrace,
    constant_trace,
    load_trace,
    lte_trace,
    save_trace,
    step_trace,
)
from .buffer import PlaybackBuffer
from .delivery import (
    ChunkArrival,
    DeliveredNetworkModel,
    DeliveryResult,
    deliver_for_config,
    simulate_delivery,
)
from .radio import RadioEnergy, RadioModel
from .segments import Segment, SegmentedVideo, segment_video

__all__ = [
    "AbrContext",
    "AbrPolicy",
    "BufferBasedAbr",
    "FixedAbr",
    "RateBasedAbr",
    "abr_names",
    "make_abr",
    "BandwidthTrace",
    "constant_trace",
    "load_trace",
    "lte_trace",
    "save_trace",
    "step_trace",
    "PlaybackBuffer",
    "ChunkArrival",
    "DeliveredNetworkModel",
    "DeliveryResult",
    "deliver_for_config",
    "simulate_delivery",
    "RadioEnergy",
    "RadioModel",
    "Segment",
    "SegmentedVideo",
    "segment_video",
]
