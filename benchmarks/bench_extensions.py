"""Extension studies beyond the core figures.

* Sec. 6.4 — MACH on the recording (camera->encoder) and graphics
  (GPU->display) pipelines;
* Sec. 7 — the related-work comparison: history-based slack-prediction
  DVFS saves decoder energy but drops frames, Race-to-Sleep does not;
* Sec. 3.3 — network adaptivity: Race-to-Sleep keeps working (and
  keeps its zero-drop property) when the streaming buffer runs thin;
* coalescing ablation (Sec. 4.4): the write-combining buffers are what
  keep MACH's metadata from flooding the bus.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis import format_table
from repro.config import (
    BASELINE,
    GAB,
    RACE_TO_SLEEP,
    NetworkConfig,
    SimulationConfig,
)
from repro.core.pipelines import RecordingPipeline, RenderPipeline
from repro.core.related_work import simulate_slack_dvfs
from repro.video import SyntheticVideo, workload
from .conftest import BENCH_FRAMES, BENCH_SEED, cached_run

_FRAMES = min(BENCH_FRAMES, 96)


def test_sec64_extension_pipelines(benchmark, emit, config):
    def run():
        rows = []
        for key in ("V1", "V8", "V12"):
            frames = list(SyntheticVideo(config.video, workload(key),
                                         seed=BENCH_SEED, n_frames=48))
            recording = RecordingPipeline(config).run(iter(frames))
            rendering = RenderPipeline(config).run(iter(frames))
            rows.append([key, recording.total_savings,
                         rendering.total_savings])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["video", "recording pipeline savings", "render pipeline savings"],
        rows, title="Sec. 6.4: MACH on camera/encoder and GPU/display "
                    "pipelines"))
    for row in rows:
        assert row[1] > 0.05 and row[2] > 0.05


def test_sec7_slack_dvfs_comparison(benchmark, emit):
    def run():
        rows = []
        for key in ("V1", "V6", "V8"):
            dvfs = simulate_slack_dvfs(workload(key), _FRAMES,
                                       seed=BENCH_SEED)
            base = cached_run(key, BASELINE, n_frames=_FRAMES)
            rts = cached_run(key, RACE_TO_SLEEP, n_frames=_FRAMES)
            rows.append([
                key,
                dvfs.vd_energy / base.energy.vd_total,
                dvfs.drops,
                rts.energy.vd_total / base.energy.vd_total,
                rts.drops,
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["video", "DVFS vd-energy (norm)", "DVFS drops",
         "RtS vd-energy (norm)", "RtS drops"],
        rows, title="Sec. 7: slack-prediction DVFS vs Race-to-Sleep "
                    "(paper: DVFS's savings cost frame drops)"))
    for row in rows:
        assert row[4] == 0, "Race-to-Sleep must never drop"
        assert row[2] > 0, "slack DVFS must drop frames on this content"


def test_sec33_network_adaptivity(benchmark, emit):
    """Race-to-Sleep adapts to however many frames are buffered."""
    prerolls = (4, 16, 120)

    def run():
        rows = []
        for preroll in prerolls:
            network = NetworkConfig(preroll_frames=preroll,
                                    chunk_interval=0.45)
            cfg = SimulationConfig(network=network)
            base = cached_run("V8", BASELINE, n_frames=_FRAMES, config=cfg)
            rts = cached_run("V8", RACE_TO_SLEEP, n_frames=_FRAMES,
                             config=cfg)
            rows.append([preroll, rts.energy.total / base.energy.total,
                         base.drops, rts.drops])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["preroll frames", "RtS normalized energy", "baseline drops",
         "RtS drops"], rows,
        title="Sec. 3.3: Race-to-Sleep vs streaming-buffer depth "
              "(thin buffers cause network-underrun drops for *every* "
              "scheme; RtS adapts its batches and still saves energy)"))
    for row in rows:
        assert row[1] < 1.0, "RtS must save energy at every buffer depth"
        assert row[3] <= row[2], "RtS must never drop more than baseline"
    # With a healthy buffer RtS recovers its zero-drop property.
    assert rows[-1][3] == 0
    # Deeper buffers allow fuller batches and at least as much saving.
    assert rows[-1][1] <= rows[0][1] + 0.02


def test_sec44_coalescing_ablation(benchmark, emit, config):
    def run():
        mach_off = replace(config.mach, coalescing=False)
        cfg_off = SimulationConfig(mach=mach_off)
        with_c = cached_run("V8", GAB, n_frames=_FRAMES)
        without_c = cached_run("V8", GAB, n_frames=_FRAMES, config=cfg_off)
        return with_c, without_c

    with_c, without_c = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["coalesced", with_c.energy.total, with_c.write_savings],
        ["uncoalesced", without_c.energy.total, without_c.write_savings],
    ]
    emit(format_table(["write path", "energy (J)", "write savings"], rows,
                      title="Sec. 4.4 ablation: MACH without coalescing "
                            "buffers"))
    assert without_c.energy.total > with_c.energy.total, (
        "dropping the coalescing buffers must cost energy")
