"""Fig. 12 — sensitivity studies and the CO-MACH extension.

(a) extra frame buffers vs the number of MACHs (the retention window);
(b) energy vs MACH-buffer entries (2 K chosen);
(c) mab size sweep on V14 (4x4 optimal);
(d) digest-scheme comparison (CRC32 ≈ MD5 ≈ SHA1; a weak checksum
collides wildly) and the CO-MACH + CRC48 deep-hash fix (Sec. 6.3).
"""

from __future__ import annotations

from dataclasses import replace


from repro.analysis import format_table
from repro.config import GAB, SimulationConfig, VideoConfig
from repro.core.gradient import to_gradient
from repro.core.writeback import WritebackEngine
from repro.hashing.digest import CollisionTracker, get_scheme
from repro.video import SyntheticVideo, workload
from .conftest import BENCH_FRAMES, BENCH_SEED, cached_run

_FRAMES = min(BENCH_FRAMES, 64)


def test_fig12a_frame_buffers_vs_machs(benchmark, emit, config):
    counts = (2, 4, 8, 16)

    def run():
        rows = []
        for num in counts:
            mach = replace(config.mach, num_machs=num)
            cfg = SimulationConfig(mach=mach)
            result = cached_run("V8", GAB, config=cfg)
            rows.append([num, result.peak_footprint_native_mb,
                         result.write_savings])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["#MACHs", "peak footprint (4K MB)", "write savings"], rows,
        title="Fig. 12a: retention cost vs number of MACHs "
              "(paper: 8 chosen; 16 needs ~300MB)"))
    footprints = [row[1] for row in rows]
    assert footprints == sorted(footprints), (
        "more MACHs must retain more frame-buffer memory")
    # More MACHs also find more (or equal) matches.
    assert rows[-1][2] >= rows[0][2] - 0.02


def test_fig12b_mach_buffer_entries(benchmark, emit, config):
    entries = (64, 256, 1024, 2048, 8192)

    def run():
        rows = []
        for count in entries:
            mach = replace(config.mach, buffer_entries=count)
            cfg = SimulationConfig(mach=mach)
            result = cached_run("V8", GAB, config=cfg)
            stats = result.read_stats
            rows.append([count, stats.mb_hits
                         / max(stats.mb_hits + stats.mb_misses, 1),
                         result.read_savings])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["entries (native)", "buffer hit rate", "DC savings"], rows,
        title="Fig. 12b: MACH-buffer entry sweep (paper picks 2K)"))
    hit_rates = [row[1] for row in rows]
    assert hit_rates[-1] >= hit_rates[0]


def test_fig12c_mab_size(benchmark, emit):
    """Content similarity lives at a fixed spatial scale, so the MACH
    block size is swept against the *same* pixel stream: tiny blocks
    drown in per-block metadata, huge blocks rarely match exactly."""
    from repro.video import join_blocks, split_blocks
    from repro.video.frame import DecodedFrame

    sizes = (2, 4, 8)

    def run():
        base_video = VideoConfig(width=192, height=120, block_size=4)
        frames = list(SyntheticVideo(base_video, workload("V14"),
                                     seed=BENCH_SEED, n_frames=32))
        rows = []
        for block in sizes:
            video = VideoConfig(width=192, height=120, block_size=block)
            mach = SimulationConfig().mach.scaled_for(video)
            engine = WritebackEngine(video, mach, GAB)
            written = raw = 0
            for frame in frames:
                image = join_blocks(frame.blocks, base_video.width,
                                    base_video.height, 4)
                reblocked = DecodedFrame(
                    index=frame.index, frame_type=frame.frame_type,
                    blocks=split_blocks(image, block),
                    complexity=frame.complexity,
                    encoded_bits=frame.encoded_bits)
                result = engine.process_frame(reblocked,
                                              frame.index << 20)
                written += result.bytes_written
                raw += result.layout.raw_bytes
            rows.append([f"{block}x{block}", 1.0 - written / raw])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(["mab size", "write savings"], rows,
                      title="Fig. 12c: mab-size sweep on V14 "
                            "(paper: 4x4 optimal)"))
    best = max(rows, key=lambda row: row[1])
    assert best[0] == "4x4", f"expected 4x4 optimal, got {best[0]}"


def test_fig12d_hash_comparison(benchmark, emit, config):
    schemes = ("crc32", "md5", "sha1", "weak-sum")

    def run():
        stream = list(SyntheticVideo(config.video, workload("V14"),
                                     seed=BENCH_SEED, n_frames=24))
        rows = []
        for name in schemes:
            scheme = get_scheme(name)
            tracker = CollisionTracker()
            for frame in stream:
                gabs, _ = to_gradient(frame.blocks)
                tracker.observe_frame(scheme.digest_blocks(gabs), gabs)
            rows.append([name, tracker.collisions, tracker.lookups,
                         tracker.collision_rate])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(["digest", "collisions", "blocks", "rate"], rows,
                      title="Fig. 12d: digest collision comparison "
                            "(paper: ~1 block per 200 frames for CRC32)"))
    by_name = {row[0]: row for row in rows}
    for good in ("crc32", "md5", "sha1"):
        assert by_name[good][3] < 1e-3, f"{good} must be near-collision-free"
    assert by_name["weak-sum"][1] > by_name["crc32"][1], (
        "the weak checksum must collide more")


def test_sec63_co_mach(benchmark, emit, config):
    """CO-MACH detects CRC32 collisions and serves them correctly."""

    def run():
        video = config.video
        results = {}
        for co_mach in (False, True):
            mach = replace(config.mach, co_mach=co_mach).scaled_for(video)
            engine = WritebackEngine(video, mach, GAB)
            stream = SyntheticVideo(video, workload("V8"),
                                    seed=BENCH_SEED, n_frames=24)
            for frame in stream:
                engine.process_frame(frame, frame.index << 20)
            stats = engine.stats
            results[co_mach] = (stats.silent_collisions,
                                stats.detected_collisions)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [["plain CRC32", results[False][0], results[False][1]],
            ["CO-MACH + CRC48", results[True][0], results[True][1]]]
    emit(format_table(["configuration", "silent collisions", "detected"],
                      rows,
                      title="Sec. 6.3: CO-MACH deep hashing "
                            "(paper: collisions to practically zero)"))
    # With CO-MACH no collision goes unnoticed.
    assert results[True][0] == 0
