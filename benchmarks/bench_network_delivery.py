"""Network-delivery studies: BurstLink-style radio energy and ABR.

The paper's race-to-sleep idea — do the work fast, then deep-sleep the
slack — applies to the modem as much as the decoder.  These benches run
the trace-driven delivery model over an LTE-like bandwidth trace and
show:

* **steady vs burst downloads** — dripping one segment per segment
  duration keeps the radio's tail timer from ever expiring; bursting
  the buffer full and parking the modem until the low watermark turns
  that tail time into idle time.  The acceptance check: burst radio
  energy strictly below steady at an equal stall count.
* **ABR policies** — fixed / rate-based / buffer-based (BBA) on the
  same trace, comparing delivered bitrate, stalls, and radio energy.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.config import RadioConfig, VideoConfig
from repro.network import (
    lte_trace,
    make_abr,
    segment_video,
    simulate_delivery,
)
from repro.units import MBPS, mbps
from repro.video import workload
from .conftest import BENCH_SEED

#: One minute of 60 fps video — long enough for the tail-energy gap to
#: dominate, short enough to finish instantly.
_FRAMES = 3600


def _segments(seed=BENCH_SEED):
    return segment_video(workload("V8"), VideoConfig(), n_frames=_FRAMES,
                         seed=seed)


def _deliver(mode, abr, seed=BENCH_SEED):
    trace = lte_trace(mbps(24), duration=120, seed=seed)
    return simulate_delivery(_segments(seed), trace, abr, RadioConfig(),
                             download_mode=mode)


def test_burst_vs_steady_radio_energy(benchmark, emit):
    """Burst downloads must beat steady at an equal stall count."""
    seeds = (0, BENCH_SEED, 11)

    def run():
        rows = []
        for seed in seeds:
            abr = make_abr("fixed", rung=2)
            steady = _deliver("steady", abr, seed=seed)
            burst = _deliver("burst", abr, seed=seed)
            rows.append([seed, steady.stall_events, burst.stall_events,
                         steady.radio.total, burst.radio.total,
                         burst.radio.total / steady.radio.total])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["trace seed", "steady stalls", "burst stalls",
         "steady radio (J)", "burst radio (J)", "burst/steady"],
        rows, title="BurstLink effect on an LTE-like trace: burst "
                    "downloads deep-sleep the modem between fills"))
    for row in rows:
        assert row[1] == row[2], "modes must stall equally often"
        assert row[4] < row[3], (
            "burst radio energy must be strictly below steady")


def test_abr_policy_comparison(benchmark, emit):
    policies = [("fixed-0", make_abr("fixed", rung=0)),
                ("fixed-top", make_abr("fixed", rung=99)),
                ("rate", make_abr("rate")),
                ("bba", make_abr("bba"))]

    def run():
        rows = []
        for name, abr in policies:
            result = _deliver("burst", abr)
            delivered = sum(c.size_bytes for c in result.chunks)
            rows.append([name,
                         delivered / result.n_frames * 60.0 / MBPS,
                         result.stall_seconds, result.switches,
                         result.radio.total])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["ABR", "delivered Mbit/s", "stall (s)", "switches", "radio (J)"],
        rows, title="ABR policies on the same 24 Mbit/s LTE-like trace"))
    by_name = {row[0]: row for row in rows}
    # The adaptive policies deliver more bits than the floor rung
    # without stalling more.
    assert by_name["bba"][1] > by_name["fixed-0"][1]
    assert by_name["rate"][1] > by_name["fixed-0"][1]
    # Higher delivered bitrate costs more radio-active energy.
    assert by_name["fixed-top"][4] > by_name["fixed-0"][4]


def test_tail_timer_sensitivity(benchmark, emit):
    """Burst savings come from idle time the tail timer doesn't eat.

    Steady mode is expensive at *every* tail setting — short tails just
    shift its penalty from tail power to per-segment re-promotions.
    Burst mode's idle periods shrink as the tail timer grows, so its
    relative saving decreases monotonically with tail length.
    """
    tails = (0.5, 2.5, 5.0)

    def run():
        rows = []
        abr = make_abr("fixed", rung=2)
        trace = lte_trace(mbps(24), duration=120, seed=BENCH_SEED)
        for tail in tails:
            radio = RadioConfig(tail_seconds=tail)
            steady = simulate_delivery(_segments(), trace, abr, radio,
                                       download_mode="steady")
            burst = simulate_delivery(_segments(), trace, abr, radio,
                                      download_mode="burst")
            rows.append([tail, steady.radio.total, steady.radio.promotions,
                         burst.radio.total,
                         1.0 - burst.radio.total / steady.radio.total])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["tail timer (s)", "steady radio (J)", "steady promotions",
         "burst radio (J)", "burst saving"],
        rows, title="Tail-timer sweep: bursting wins everywhere, most "
                    "when the tail timer lets the modem reach idle"))
    savings = [row[4] for row in rows]
    assert savings == sorted(savings, reverse=True), (
        "burst saving must shrink as the tail timer eats the idle gaps")
    assert all(s > 0 for s in savings), "bursting must always win"
