"""Fig. 6 — energy vs batch size (1..16) at both VD frequencies.

The paper: batching just 2 frames already saves ~7 %, saturating at
~12.9 % with 16 frames at the high frequency; the high-frequency curve
dominates the low-frequency one.  (Those percentages are VD+memory
side; our table reports whole-system energy normalized to batch=1 at
low frequency.)
"""

from __future__ import annotations

from repro.config import SchemeConfig
from repro.analysis import format_table
from .conftest import cached_run

_BATCHES = (1, 2, 4, 8, 16)


def _scheme(batch: int, racing: bool) -> SchemeConfig:
    name = f"b{batch}-{'hi' if racing else 'lo'}"
    return SchemeConfig(name=name, batch_size=batch, racing=racing)


def test_fig06_batch_sweep(benchmark, emit):
    def run():
        base = cached_run("V8", _scheme(1, racing=False)).energy.total
        rows = []
        curves = {False: [], True: []}
        for batch in _BATCHES:
            row = [batch]
            for racing in (False, True):
                result = cached_run("V8", _scheme(batch, racing))
                normalized = result.energy.total / base
                row.append(normalized)
                curves[racing].append(normalized)
            rows.append(row)
        return rows, curves

    rows, curves = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["batch", "150 MHz", "300 MHz"], rows,
        title="Fig. 6: normalized energy vs batch size "
              "(paper: best = 16 frames @ high freq, -12.9% VD+mem)"))
    low, high = curves[False], curves[True]
    # Larger batches monotonically help (within noise) at low freq.
    assert low[-1] < low[0]
    assert high[-1] < high[0]
    # The best configuration is racing + max batching.
    assert high[-1] == min(low + high)
    # Racing without batching costs energy (Fig. 11's Racing bar).
    assert high[0] > low[0]
