"""Table 2 — the simulation configuration.

Prints the platform parameters the simulator runs with and asserts the
paper-specified ones are intact.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.memory import peak_bandwidth
from .conftest import cached_run
from repro.config import BASELINE


def test_table2_configuration(benchmark, emit, config):
    def run():
        # A short run proves the configuration actually simulates.
        result = cached_run("V1", BASELINE, n_frames=16)
        return result.n_frames

    frames = benchmark.pedantic(run, rounds=1, iterations=1)
    assert frames == 16

    dram, decoder, display, mach = (config.dram, config.decoder,
                                    config.display, config.mach)
    rows = [
        ["DRAM", f"{dram.channels} channels x {dram.ranks_per_channel} rank "
                 f"x {dram.banks_per_rank} banks, "
                 f"{peak_bandwidth(dram) / 1e9:.1f} GB/s"],
        ["DRAM timing", f"tCL/tRP/tRCD = {dram.t_cl * 1e9:.0f}/"
                        f"{dram.t_rp * 1e9:.0f}/{dram.t_rcd * 1e9:.0f} ns, "
                        f"{dram.io_freq / 1e6:.0f} MHz, RoRaBaCoCh"],
        ["VD", f"{decoder.low_freq_power:.2f}W@"
               f"{decoder.low_freq / 1e6:.0f}MHz; "
               f"{decoder.high_freq_power:.2f}W@"
               f"{decoder.high_freq / 1e6:.0f}MHz"],
        ["Display", f"3840x2160@{display.refresh_hz:.0f}Hz, "
                    f"{display.power:.2f}W"],
        ["MACH", f"{mach.num_machs} MACHs x {mach.entries_per_mach} "
                 f"entries, {mach.ways}-way; "
                 f"total {mach.total_entries} entries"],
        ["MACH buffer", f"{mach.buffer_entries} entries"],
        ["Display cache", f"{display.display_cache_bytes // 1024}KB "
                          "direct-mapped"],
    ]
    emit(format_table(["parameter", "value"], rows,
                      title="Table 2: simulation configuration"))
    # Paper-specified values.
    assert decoder.low_freq_power == 0.30
    assert decoder.high_freq_power == 0.69
    assert dram.channels == 2 and dram.banks_per_rank == 8
    assert mach.num_machs == 8 and mach.entries_per_mach == 256
    assert mach.total_entries == 2048
    assert display.display_cache_bytes == 16 * 1024
    assert display.power == 0.12
