"""Fig. 9 — MACH's memory-access and space savings.

(a) mab-based MACH saves ~13 % of frame-buffer traffic, gab-based
~34 %, and the LRU realization trails the capacity-oracle ("optimal")
by ~7 points.  (b) gab digests concentrate matches: the single most
popular gab digest owns over half the matches, far more than the top
mab digest.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.config import GAB, MAB
from repro.core.writeback import WritebackEngine
from repro.video import SyntheticVideo, workload
from .conftest import BENCH_FRAMES, BENCH_SEED, cached_run

_MIX = ("V1", "V4", "V8", "V9", "V12", "V14")


def test_fig09a_savings(benchmark, emit):
    def run():
        rows = []
        mab_avg = gab_avg = opt_avg = 0.0
        for key in _MIX:
            mab = cached_run(key, MAB)
            gab = cached_run(key, GAB)
            optimal = cached_run(key, GAB, unbounded_mach=True)
            rows.append([key, mab.write_savings, gab.write_savings,
                         optimal.write_savings])
            mab_avg += mab.write_savings / len(_MIX)
            gab_avg += gab.write_savings / len(_MIX)
            opt_avg += optimal.write_savings / len(_MIX)
        rows.append(["Avg", mab_avg, gab_avg, opt_avg])
        rows.append(["paper", 0.13, 0.34, 0.41])
        return rows, mab_avg, gab_avg, opt_avg

    rows, mab_avg, gab_avg, opt_avg = benchmark.pedantic(
        run, rounds=1, iterations=1)
    emit(format_table(["video", "mab", "gab", "optimal(gab)"], rows,
                      title="Fig. 9a: frame-buffer write savings"))
    assert gab_avg > mab_avg + 0.1, "gab must clearly beat mab"
    assert 0.2 < gab_avg < 0.5
    assert opt_avg > gab_avg, "the capacity oracle must beat LRU"


def test_fig09b_top_digest_share(benchmark, emit, config):
    def run():
        shares = {}
        for scheme in (MAB, GAB):
            video_cfg = config.video
            mach_cfg = config.with_scheme_mach(scheme).scaled_for(video_cfg)
            engine = WritebackEngine(video_cfg, mach_cfg, scheme)
            stream = SyntheticVideo(video_cfg, workload("V8"),
                                    seed=BENCH_SEED,
                                    n_frames=min(BENCH_FRAMES, 64))
            for frame in stream:
                engine.process_frame(frame, frame.index << 20)
            stats = engine.stats
            shares[scheme.name] = (stats.top_match_share(1),
                                   stats.top_match_share(8))
        return shares

    shares = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, top1, top8] for name, (top1, top8) in shares.items()]
    rows.append(["paper (top-1)", 0.20, float("nan")])
    rows.append(["paper (top-1 gab)", 0.58, float("nan")])
    emit(format_table(["scheme", "top-1 share", "top-8 share"], rows,
                      title="Fig. 9b: share of matches owned by the "
                            "hottest digests"))
    # The top gab digest (the flat block) dominates far more than the
    # top mab digest can.
    assert shares["GAB"][0] > shares["MAB"][0] * 1.5
    assert shares["GAB"][0] > 0.3
