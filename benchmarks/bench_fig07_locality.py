"""Fig. 7 — address locality vs value locality.

(a) Growing the conventional VD cache helps the compute-phase accesses
but not the decoded-frame writeback stream.  (b) The content census:
~42 % of blocks match within the frame, ~15 % in the previous 16
frames, ~43 % nowhere.
"""

from __future__ import annotations

from repro.analysis import content_census, format_table
from repro.decoder import vd_cache_study
from repro.video import SyntheticVideo, workload, workload_keys
from .conftest import BENCH_FRAMES, BENCH_SEED


def test_fig07a_vd_cache_study(benchmark, emit, config):
    capacities = [2048, 4096, 8192, 16384, 32768]

    def run():
        return vd_cache_study(config.video, capacities, frames=3)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[f"{r.capacity_bytes // 1024}KB*",
             r.compute_miss_rate, r.writeback_miss_rate] for r in results]
    emit(format_table(
        ["capacity", "compute miss", "writeback miss"], rows,
        title="Fig. 7a: conventional cache sweep (*capacities scaled "
              "with the sim resolution; paper sweeps 32-512KB at 4K)"))
    assert results[-1].compute_miss_rate < results[0].compute_miss_rate
    # The writeback stream never caches, at any capacity.
    for result in results:
        assert result.writeback_miss_rate > 0.9


def test_fig07b_content_census(benchmark, emit, config):
    def run():
        rows = []
        totals = [0.0, 0.0, 0.0]
        for key in workload_keys():
            stream = SyntheticVideo(config.video, workload(key),
                                    seed=BENCH_SEED,
                                    n_frames=min(BENCH_FRAMES, 64))
            census = content_census(stream)
            rows.append([key, census.intra_fraction, census.inter_fraction,
                         census.none_fraction])
            totals[0] += census.intra_fraction / 16
            totals[1] += census.inter_fraction / 16
            totals[2] += census.none_fraction / 16
        rows.append(["Avg", *totals])
        rows.append(["paper", 0.42, 0.15, 0.43])
        return rows, totals

    rows, totals = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(["video", "intra", "inter", "none"], rows,
                      title="Fig. 7b: content-similarity census"))
    assert 0.30 < totals[0] < 0.55  # intra
    assert 0.08 < totals[1] < 0.30  # inter
    assert 0.30 < totals[2] < 0.55  # none
    assert totals[0] + totals[1] > 0.45  # over half the blocks match
