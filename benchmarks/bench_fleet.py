"""Fleet engine benchmark: sessions/sec throughput and bounded memory.

``repro.fleet`` prices millions of sessions through the calibrated
flow-level surrogate; its contract is *streaming* execution — peak RSS
must be set by the chunk size and the (fixed) contention field, not by
the population size.  This bench measures both halves of that claim:

* **throughput** — sessions scored per second on the reference
  100k-session default population (calibration excluded: it is cached
  and amortized across runs);
* **bounded memory** — peak RSS after scoring successively larger
  populations.  ``ru_maxrss`` is a process high-water mark, so scoring
  10x the sessions on a flat engine leaves it (near) unchanged; an
  engine that materialized per-session state would move it by the
  population ratio.

Run under pytest (``pytest benchmarks/bench_fleet.py``) for the full
tables, or standalone::

    python benchmarks/bench_fleet.py            # reference numbers
    python benchmarks/bench_fleet.py --smoke    # reduced CI sweep

both of which write the headline numbers to ``BENCH_fleet.json``.
"""

from __future__ import annotations

import resource
import time
from typing import Dict, List, Optional, Tuple

from repro.analysis import format_table
from repro.fleet import (
    DeviceClass,
    FleetCalibration,
    LognormalComponent,
    PopulationSpec,
    RegionSpec,
    calibrate,
    default_population,
    run_fleet,
)
from repro.units import MBPS

try:  # pytest package-relative; absolute when run as a script
    from .conftest import BENCH_SEED
except ImportError:  # pragma: no cover - script mode
    BENCH_SEED = 7

#: Reference population size for the headline sessions/sec figure.
REFERENCE_SESSIONS = 100_000

#: Population ladder for the bounded-memory check (full mode tops out
#: above the 1M-session acceptance bar).
MEMORY_LADDER = (100_000, 400_000, 1_000_000)

#: Peak-RSS growth allowed across a 10x population step, as a fraction
#: of the first rung's peak.  A per-session materialization would grow
#: linearly (x10); the streaming engine should stay within noise.
RSS_GROWTH_BUDGET = 0.10


def _smoke_spec() -> PopulationSpec:
    """A 1-device, 2-title population whose calibration runs in <1 s."""
    return PopulationSpec(
        device_classes=(DeviceClass(name="ref", scheme="gab"),),
        regions=(RegionSpec(
            name="town", cells=4, cell_capacity=40 * MBPS,
            bandwidth=(LognormalComponent(median=10 * MBPS, sigma=0.5),),
        ),),
        titles=("V1", "V8"),
        calib_frames=16,
        calib_seed=BENCH_SEED,
    )


def _peak_rss_bytes() -> int:
    """Process high-water RSS (ru_maxrss is KiB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def _throughput(spec: PopulationSpec, calibration: FleetCalibration,
                sessions: int) -> Dict[str, float]:
    start = time.perf_counter()
    result = run_fleet(spec, sessions, seed=BENCH_SEED, shards=4,
                       calibration=calibration)
    elapsed = time.perf_counter() - start
    fleet = result.cohort("fleet")
    return {
        "sessions": float(sessions),
        "elapsed_seconds": elapsed,
        "sessions_per_second": sessions / elapsed,
        "mean_energy_j": fleet.moments["total_energy"].mean,
        "mean_stall_seconds": fleet.moments["stall_seconds"].mean,
        "saturated_cell_epochs": float(result.saturated_cell_epochs),
    }


def _memory_ladder(spec: PopulationSpec, calibration: FleetCalibration,
                   ladder: Tuple[int, ...]) -> List[Dict[str, float]]:
    rows = []
    for sessions in ladder:
        run_fleet(spec, sessions, seed=BENCH_SEED, shards=4,
                  calibration=calibration)
        rows.append({"sessions": float(sessions),
                     "peak_rss_bytes": float(_peak_rss_bytes())})
    return rows


def _bench(spec: PopulationSpec,
           ladder: Tuple[int, ...],
           reference_sessions: int) -> Dict[str, object]:
    calibration = calibrate(spec)
    throughput = _throughput(spec, calibration, reference_sessions)
    memory = _memory_ladder(spec, calibration, ladder)
    first, last = memory[0], memory[-1]
    rss_growth = (last["peak_rss_bytes"] - first["peak_rss_bytes"]) \
        / first["peak_rss_bytes"]
    return {
        "seed": BENCH_SEED,
        "spec_fingerprint": spec.fingerprint(),
        "devices": len(spec.device_classes),
        "titles": len(spec.titles),
        "throughput": throughput,
        "memory_ladder": memory,
        "rss_growth_fraction": rss_growth,
        "session_ratio": last["sessions"] / first["sessions"],
    }


def _check(payload: Dict[str, object]) -> None:
    throughput = payload["throughput"]
    assert throughput["sessions_per_second"] > 10_000, (
        "fleet engine slower than 10k sessions/sec — the flow-level "
        "surrogate has stopped being a surrogate")
    assert payload["session_ratio"] >= 10.0
    assert payload["rss_growth_fraction"] < RSS_GROWTH_BUDGET, (
        f"peak RSS grew {payload['rss_growth_fraction']:.1%} across a "
        f"{payload['session_ratio']:g}x population step — memory is "
        "not bounded")


def test_throughput_and_bounded_memory(benchmark, emit):
    """Reference population: >10k sessions/s, RSS flat across 10x."""
    payload = benchmark.pedantic(
        _bench, rounds=1, iterations=1,
        args=(default_population(), MEMORY_LADDER, REFERENCE_SESSIONS))
    throughput = payload["throughput"]
    emit(format_table(
        ["sessions", "peak RSS MiB"],
        [[int(row["sessions"]), row["peak_rss_bytes"] / 2**20]
         for row in payload["memory_ladder"]],
        title="Fleet bounded-memory ladder "
              f"({throughput['sessions_per_second']:,.0f} sessions/s "
              f"at the {REFERENCE_SESSIONS:,}-session reference)"))
    _check(payload)


def _smoke(path: str = "BENCH_fleet.json",
           spec: Optional[PopulationSpec] = None,
           ladder: Tuple[int, ...] = (50_000, 500_000),
           reference_sessions: int = 50_000) -> Dict[str, object]:
    """CI smoke: reduced population, headline JSON artifact."""
    payload = _bench(spec or _smoke_spec(), ladder, reference_sessions)
    _check(payload)
    import json

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


if __name__ == "__main__":  # pragma: no cover - CI smoke entry
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced sweep for CI")
    parser.add_argument("--out", default="BENCH_fleet.json")
    args = parser.parse_args()
    if args.smoke:
        result = _smoke(args.out)
    else:
        result = _smoke(args.out, spec=default_population(),
                        ladder=MEMORY_LADDER,
                        reference_sessions=REFERENCE_SESSIONS)
    throughput = result["throughput"]
    ladder_rows = result["memory_ladder"]
    print(f"wrote {args.out}: "
          f"{throughput['sessions_per_second']:,.0f} sessions/s; peak "
          f"RSS {ladder_rows[0]['peak_rss_bytes'] / 2**20:.0f} -> "
          f"{ladder_rows[-1]['peak_rss_bytes'] / 2**20:.0f} MiB across "
          f"{result['session_ratio']:g}x sessions "
          f"(+{result['rss_growth_fraction']:.1%})")
