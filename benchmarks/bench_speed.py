"""Pipeline speed benchmark: frames/sec over a reference session matrix.

The per-frame hot path (digest + MACH classification, write coalescing,
readpath scans, display-cache and DRAM accounting) runs as batched
structure-of-arrays kernels (:mod:`repro.core.soa`,
:func:`repro.hashing.crc.crc_pair_blocks`, ...).  This bench pins the
resulting throughput on a fixed matrix of configurations spanning the
raw, MACH, and display-cache write paths, with and without the thermal
governor and a trace-driven network model — the same axes the paper's
figures sweep.

Frame streams are pre-materialized (``simulate`` accepts any sized
iterable of :class:`DecodedFrame`), so the numbers measure the pipeline
itself rather than content synthesis.  Three reference points live in
``BENCH_speed.json``:

* ``full.configs`` — vectorized frames/sec per configuration;
* ``scalar_reference`` — the same matrix with ``vectorized=False``
  (the retained scalar kernels, re-measurable at any commit — the
  equivalence suite proves the two paths bit-identical);
* ``pre_pr`` — a frozen anchor measured on the pre-vectorization tree
  (regenerate with ``--emit-anchor`` from a checkout of that commit).

Run standalone::

    python benchmarks/bench_speed.py                     # full matrix
    python benchmarks/bench_speed.py --smoke --check BENCH_speed.json

The ``--smoke`` form is the CI gate: it re-measures the reduced matrix
and fails when any configuration regresses more than ``--tolerance``
(default 20%) below the checked-in smoke numbers.
"""

from __future__ import annotations

import inspect
import json
import math
import platform
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro import simulate, workload
from repro.analysis import format_table
from repro.config import (
    BASELINE,
    GAB,
    GAB_DCC,
    MAB,
    RACE_TO_SLEEP,
    SchemeConfig,
    SimulationConfig,
    ThermalConfig,
)
from repro.video.frame import DecodedFrame
from repro.video.synthesis import SyntheticVideo

try:  # pytest package-relative; absolute when run as a script
    from .conftest import BENCH_SEED
except ImportError:  # pragma: no cover - script mode
    BENCH_SEED = 7

#: Reference workload (Table 1) behind every configuration.
WORKLOAD = "V8"

#: Frame counts for the full matrix and the CI smoke sweep.
FULL_FRAMES = 240
SMOKE_FRAMES = 48

#: Allowed fractional frames/sec drop before the CI gate fails.
DEFAULT_TOLERANCE = 0.20


@dataclass(frozen=True)
class MatrixEntry:
    """One benchmark configuration (scheme + pipeline toggles)."""

    name: str
    scheme: SchemeConfig
    thermal: bool = False
    network: bool = False


#: The reference session matrix: raw, MACH, and display-cache write
#: paths, plus the thermal governor and a delivered-network session.
MATRIX = (
    MatrixEntry("raw_baseline", BASELINE),
    MatrixEntry("race_to_sleep", RACE_TO_SLEEP),
    MatrixEntry("mach_intra", MAB),
    MatrixEntry("mach_global", GAB),
    MatrixEntry("mach_display_cache", GAB_DCC),
    MatrixEntry("mach_global_thermal", GAB, thermal=True),
    MatrixEntry("mach_global_network", GAB, network=True),
)


def _materialize(cfg: SimulationConfig, n_frames: int) -> List[DecodedFrame]:
    """Pre-decode the reference stream so timing excludes synthesis."""
    return list(SyntheticVideo(
        cfg.video, workload(WORKLOAD), seed=BENCH_SEED, n_frames=n_frames,
        complexity_sigma=cfg.calibration.complexity_sigma))


def _simulate_kwargs(entry: MatrixEntry, cfg: SimulationConfig,
                     n_frames: int, vectorized: bool) -> Dict[str, object]:
    kwargs: Dict[str, object] = {}
    # The pre-PR anchor tree predates the flag; gate on the signature
    # so the same bench file measures both trees.
    if "vectorized" in inspect.signature(simulate).parameters:
        kwargs["vectorized"] = vectorized
    if entry.network:
        from repro.network import DeliveredNetworkModel, deliver_for_config

        delivery = deliver_for_config(
            cfg.network, cfg.video, source=workload(WORKLOAD),
            n_frames=n_frames, seed=BENCH_SEED)
        kwargs["network_model"] = DeliveredNetworkModel(delivery, n_frames)
    return kwargs


def _entry_config(entry: MatrixEntry, cfg: SimulationConfig) -> SimulationConfig:
    if entry.thermal:
        return replace(cfg, thermal=ThermalConfig(enabled=True))
    return cfg


def _measure(entry: MatrixEntry, stream: Sequence[DecodedFrame],
             cfg: SimulationConfig, n_frames: int, repeats: int,
             vectorized: bool = True) -> Dict[str, float]:
    """Best-of-``repeats`` wall time for one configuration."""
    run_cfg = _entry_config(entry, cfg)
    kwargs = _simulate_kwargs(entry, run_cfg, n_frames, vectorized)
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        simulate(stream, entry.scheme, n_frames=n_frames, config=run_cfg,
                 seed=BENCH_SEED, **kwargs)
        best = min(best, time.perf_counter() - start)
    return {
        "frames_per_second": n_frames / best,
        "ms_per_frame": 1000.0 * best / n_frames,
    }


def _measure_matrix(n_frames: int, repeats: int, vectorized: bool = True,
                    progress: Optional[Callable[[str], None]] = None,
                    ) -> Dict[str, Dict[str, float]]:
    cfg = SimulationConfig()
    stream = _materialize(cfg, n_frames)
    configs: Dict[str, Dict[str, float]] = {}
    for entry in MATRIX:
        configs[entry.name] = _measure(
            entry, stream, cfg, n_frames, repeats, vectorized=vectorized)
        if progress is not None:
            row = configs[entry.name]
            progress(f"  {entry.name:22s} {row['frames_per_second']:8.0f} "
                     f"f/s  ({row['ms_per_frame']:.2f} ms/frame)")
    return configs


def _geomean(values: Sequence[float]) -> float:
    return float(np.exp(np.mean(np.log(values)))) if values else 0.0


def _speedups(fast: Dict[str, Dict[str, float]],
              slow: Dict[str, Dict[str, float]]) -> Dict[str, float]:
    return {
        name: fast[name]["frames_per_second"] / row["frames_per_second"]
        for name, row in slow.items()
        if name in fast and row.get("frames_per_second")
    }


def _bench(repeats: int = 3,
           anchor: Optional[Dict[str, object]] = None,
           progress: Optional[Callable[[str], None]] = None,
           ) -> Dict[str, object]:
    """Measure the full matrix and assemble the JSON payload."""
    say = progress or (lambda _line: None)
    say("vectorized (full):")
    full = _measure_matrix(FULL_FRAMES, repeats, progress=progress)
    say("vectorized (smoke size):")
    smoke = _measure_matrix(SMOKE_FRAMES, max(2, repeats - 1),
                            progress=progress)
    say("scalar reference:")
    scalar = _measure_matrix(FULL_FRAMES, 2, vectorized=False,
                             progress=progress)
    vs_scalar = _speedups(full, scalar)
    payload: Dict[str, object] = {
        "schema": 1,
        "seed": BENCH_SEED,
        "workload": WORKLOAD,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "full": {"n_frames": FULL_FRAMES, "repeats": repeats,
                 "configs": full},
        "smoke": {"n_frames": SMOKE_FRAMES, "repeats": max(2, repeats - 1),
                  "configs": smoke},
        "scalar_reference": {"n_frames": FULL_FRAMES, "repeats": 2,
                             "configs": scalar},
        "speedup_vs_scalar": vs_scalar,
        "aggregate": {
            "geomean_fps": _geomean(
                [row["frames_per_second"] for row in full.values()]),
            "geomean_speedup_vs_scalar": _geomean(list(vs_scalar.values())),
        },
    }
    if anchor is not None:
        vs_pre = _speedups(full, anchor["configs"])
        payload["pre_pr"] = anchor
        payload["speedup_vs_pre_pr"] = vs_pre
        payload["aggregate"]["geomean_speedup_vs_pre_pr"] = _geomean(
            list(vs_pre.values()))
    return payload


def check_regression(measured: Dict[str, Dict[str, float]],
                     reference: Dict[str, Dict[str, float]],
                     tolerance: float) -> List[str]:
    """Configurations whose frames/sec regressed beyond ``tolerance``."""
    failures = []
    for name, ref in reference.items():
        if name not in measured:
            failures.append(f"{name}: missing from measured matrix")
            continue
        got = measured[name]["frames_per_second"]
        want = ref["frames_per_second"]
        if got < (1.0 - tolerance) * want:
            failures.append(
                f"{name}: {got:.0f} f/s vs checked-in {want:.0f} f/s "
                f"({got / want - 1.0:+.1%}, tolerance -{tolerance:.0%})")
    return failures


def test_vectorized_speedup(emit):
    """The SoA kernels beat the scalar reference on the MACH matrix."""
    cfg = SimulationConfig()
    stream = _materialize(cfg, SMOKE_FRAMES)
    rows = []
    for entry in MATRIX:
        if not entry.scheme.uses_mach:
            continue
        fast = _measure(entry, stream, cfg, SMOKE_FRAMES, 2)
        slow = _measure(entry, stream, cfg, SMOKE_FRAMES, 2,
                        vectorized=False)
        ratio = (fast["frames_per_second"] / slow["frames_per_second"])
        rows.append([entry.name, fast["frames_per_second"],
                     slow["frames_per_second"], ratio])
    emit(format_table(
        ["config", "vectorized f/s", "scalar f/s", "speedup"], rows,
        title="SoA kernel speedup (reduced matrix)"))
    assert all(row[-1] > 1.5 for row in rows), (
        "vectorized write path no longer beats the scalar reference")


def _main() -> None:  # pragma: no cover - script entry
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced sweep for CI (vectorized only)")
    parser.add_argument("--check", metavar="JSON",
                        help="fail on fps regression vs this checked-in "
                             "BENCH_speed.json")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="allowed fractional fps drop (default 0.20)")
    parser.add_argument("--anchor", metavar="JSON",
                        help="frozen pre-PR numbers to embed (produced "
                             "by --emit-anchor on the pre-PR tree)")
    parser.add_argument("--emit-anchor", action="store_true",
                        help="measure this tree's default path and emit "
                             "an anchor JSON instead of the full payload")
    parser.add_argument("--out", default="BENCH_speed.json")
    args = parser.parse_args()

    if args.emit_anchor:
        configs = _measure_matrix(FULL_FRAMES, 2, progress=print)
        anchor = {"n_frames": FULL_FRAMES, "configs": configs,
                  "note": "measured on the pre-vectorization tree with "
                          "this same bench file"}
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(anchor, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote anchor {args.out}")
        return

    if args.smoke:
        print("smoke matrix:")
        configs = _measure_matrix(SMOKE_FRAMES, 2, progress=print)
        payload: Dict[str, object] = {
            "schema": 1, "mode": "smoke", "seed": BENCH_SEED,
            "workload": WORKLOAD,
            "smoke": {"n_frames": SMOKE_FRAMES, "repeats": 2,
                      "configs": configs},
        }
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")
        if args.check:
            with open(args.check, "r", encoding="utf-8") as handle:
                reference = json.load(handle)
            failures = check_regression(
                configs, reference["smoke"]["configs"], args.tolerance)
            if failures:
                raise SystemExit("fps regression vs " + args.check + ":\n  "
                                 + "\n  ".join(failures))
            print(f"no regression vs {args.check} "
                  f"(tolerance -{args.tolerance:.0%})")
        return

    anchor = None
    if args.anchor:
        with open(args.anchor, "r", encoding="utf-8") as handle:
            anchor = json.load(handle)
    payload = _bench(anchor=anchor, progress=print)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    agg = payload["aggregate"]
    line = (f"wrote {args.out}: geomean {agg['geomean_fps']:,.0f} f/s, "
            f"{agg['geomean_speedup_vs_scalar']:.1f}x vs scalar")
    if "geomean_speedup_vs_pre_pr" in agg:
        line += f", {agg['geomean_speedup_vs_pre_pr']:.1f}x vs pre-PR"
    print(line)


if __name__ == "__main__":  # pragma: no cover - script entry
    _main()
