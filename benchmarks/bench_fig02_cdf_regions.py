"""Fig. 2b-2e and the Sec. 2.2 inefficiency statistics.

CDFs of per-frame decode time/energy for the baseline (regions I-IV:
~4 % drops / 12 % short slack / 37 % S1-capable / 40 % S3-capable) and
the same plots with 16-frame batching (transitions shrink to ~1.2 % of
frame time and deep sleep grows).
"""

from __future__ import annotations


from repro.analysis import (
    Region,
    format_table,
    region_mix,
    stacked_energy_cdf,
    stacked_time_cdf,
)
from repro.config import BASELINE, BATCHING, SimulationConfig
from .conftest import cached_run

_MIX = ("V1", "V3", "V5", "V8", "V11", "V14")
_PAPER_REGIONS = {Region.I: 0.04, Region.II: 0.12,
                  Region.III: 0.37, Region.IV: 0.40}


def _region_table(config: SimulationConfig):
    totals = {region: 0.0 for region in Region}
    for key in _MIX:
        result = cached_run(key, BASELINE)
        mix = region_mix(result.timeline.decode_time,
                         config.video.frame_interval,
                         config.decoder.power_states)
        for region, fraction in mix.items():
            totals[region] += fraction / len(_MIX)
    return totals


def test_fig02b_region_mix(benchmark, emit, config):
    totals = benchmark.pedantic(_region_table, args=(config,),
                                rounds=1, iterations=1)
    rows = [[r.value, totals[r], _PAPER_REGIONS[r]] for r in Region]
    emit(format_table(["region", "measured", "paper"], rows,
                      title="Fig. 2b: baseline frame regions"))
    assert 0.01 < totals[Region.I] < 0.10
    assert totals[Region.III] + totals[Region.IV] > 0.6


def test_fig02_cdf_series(benchmark, emit):
    """Stacked time/energy CDF means, baseline vs batching."""

    def run():
        rows = []
        for scheme in (BASELINE, BATCHING):
            result = cached_run("V8", scheme)
            time_cdf = stacked_time_cdf(result.timeline)
            energy_cdf = stacked_energy_cdf(result.timeline)
            for label, cdf in (("time", time_cdf), ("energy", energy_cdf)):
                rows.append([f"{scheme.name}/{label}"]
                            + [cdf.mean_fraction(s) for s in
                               ("execution", "short_slack", "transition",
                                "s1", "s3")])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["series", "execution", "short_slack", "transition", "s1", "s3"],
        rows, title="Fig. 2b-2e: mean stacked fractions"))
    by_name = {row[0]: row for row in rows}
    # Batching slashes the per-frame transition share (paper: 16x,
    # down to ~1.2 % of frame time).
    base_trans = by_name["Baseline/time"][3]
    batch_trans = by_name["Batching/time"][3]
    assert batch_trans < base_trans / 4
    assert batch_trans < 0.03
    # And grows deep sleep.
    assert by_name["Batching/time"][5] > by_name["Baseline/time"][5]


def test_sec22_transition_overheads(benchmark, emit, config):
    """Sec. 2.2: transitions cost noticeable time and energy in the
    baseline even with active power management."""

    def run():
        result = cached_run("V8", BASELINE)
        timeline = result.timeline
        sleeping = timeline.transition_time > 0
        time_over = (timeline.transition_time[sleeping].sum()
                     / timeline.total_time[sleeping].sum())
        energy_over = (timeline.transition_energy[sleeping].sum()
                       / timeline.total_energy[sleeping].sum())
        return time_over, energy_over

    time_over, energy_over = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["metric", "measured", "paper"],
        [["transition time share (sleeping frames)", time_over, 0.138],
         ["transition energy share (sleeping frames)", energy_over, 0.126]],
        title="Sec. 2.2: baseline transition overheads"))
    assert time_over > 0.04
    assert energy_over > 0.04
