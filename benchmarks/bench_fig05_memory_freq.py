"""Fig. 5 — VD frequency vs DRAM row-buffer behaviour.

A 150 MHz decoder spaces its line accesses beyond the controller's
effective row-hold window, so rows are re-activated; at 300 MHz the
same traffic rides open rows.  The paper quantifies it as ~0.5 mJ more
VD energy per frame buying ~1 mJ of memory energy back.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.config import BASELINE, RACING
from .conftest import BENCH_FRAMES, cached_run

_MIX = ("V1", "V5", "V8", "V14")


def test_fig05_act_pre_vs_frequency(benchmark, emit):
    def run():
        rows = []
        act_cut = 0.0
        for key in _MIX:
            low = cached_run(key, BASELINE)
            high = cached_run(key, RACING)
            cut = 1 - high.activations / low.activations
            act_cut += cut / len(_MIX)
            rows.append([key, low.activations, high.activations, cut,
                         low.mem_stats.row_hit_rate,
                         high.mem_stats.row_hit_rate])
        return rows, act_cut

    rows, act_cut = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["video", "acts @150MHz", "acts @300MHz", "act cut",
         "row-hit @150", "row-hit @300"], rows,
        title="Fig. 5a/5b: Act/Pre vs VD frequency (paper: ~20% "
              "Act/Pre energy cut)"))
    assert 0.05 < act_cut < 0.5
    for row in rows:
        assert row[5] > row[4], "racing must improve the row-hit rate"


def test_fig05_energy_exchange(benchmark, emit):
    """Racing pays VD energy to buy more memory energy back."""

    def run():
        low = cached_run("V8", BASELINE)
        high = cached_run("V8", RACING)
        frames = BENCH_FRAMES
        vd_extra = (high.energy.vd_processing
                    - low.energy.vd_processing) / frames * 1e3
        mem_saved = (low.energy.mem_act_pre
                     - high.energy.mem_act_pre) / frames * 1e3
        return vd_extra, mem_saved

    vd_extra, mem_saved = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["metric", "measured mJ/frame", "paper mJ/frame"],
        [["extra VD energy", vd_extra, 0.5],
         ["memory Act/Pre saved", mem_saved, 1.0]],
        title="Fig. 5b: the racing energy exchange"))
    assert vd_extra > 0
    assert mem_saved > vd_extra, (
        "memory savings must outweigh the VD's frequency cost")
