"""Fig. 10 — display cache and MACH buffer.

(c) display-cache size sensitivity (the paper's knee at 16 KB);
(d) the split of block records into digest- vs pointer-indexed
(~38 % / 62 %), with >45 % of pointer fetches fragmenting; and
(e) the DC-side memory-access savings (~33.5 % total; the naive
pointer layout without the two structures needs >60 % *extra* reads).
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis import format_table
from repro.config import GAB, SimulationConfig
from .conftest import cached_run

_MIX = ("V1", "V8", "V11", "V14")


def test_fig10c_display_cache_size(benchmark, emit, config):
    sizes = (2048, 4096, 8192, 16384, 65536)

    def run():
        rows = []
        for size in sizes:
            display = replace(config.display, display_cache_bytes=size)
            cfg = SimulationConfig(display=display)
            result = cached_run("V8", GAB, config=cfg)
            rows.append([f"{size // 1024}KB", result.read_savings,
                         result.read_stats.dc_hits])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(["size (native)", "DC read savings", "dc hits"], rows,
                      title="Fig. 10c: display-cache size sensitivity "
                            "(paper: 16KB sufficient)"))
    savings = [row[1] for row in rows]
    # Saturating curve: the last doubling buys little.
    assert savings[-1] - savings[-2] < savings[-2] - savings[0] + 0.05
    assert savings[-1] >= savings[0]


def test_fig10d_record_split(benchmark, emit):
    def run():
        rows = []
        digest_avg = frag_avg = 0.0
        for key in _MIX:
            result = cached_run(key, GAB)
            stats = result.read_stats
            rows.append([key, stats.digest_fraction,
                         1 - stats.digest_fraction,
                         stats.fragmentation_rate])
            digest_avg += stats.digest_fraction / len(_MIX)
            frag_avg += stats.fragmentation_rate / len(_MIX)
        rows.append(["paper", 0.38, 0.62, 0.45])
        return rows, digest_avg, frag_avg

    rows, digest_avg, frag_avg = benchmark.pedantic(
        run, rounds=1, iterations=1)
    emit(format_table(
        ["video", "digest-indexed", "pointer-indexed", "fragmenting"],
        rows, title="Fig. 10d: gab record split at the DC"))
    assert 0.25 < digest_avg < 0.55
    assert frag_avg > 0.45


def test_fig10e_dc_savings(benchmark, emit):
    def run():
        rows = []
        savings_avg = naive_extra_avg = 0.0
        for key in _MIX:
            full = cached_run(key, GAB)
            naive = cached_run(key, GAB, use_display_cache=False,
                               use_mach_buffer=False)
            extra = (naive.read_stats.mem_reads
                     / naive.read_stats.raw_equivalent_lines) - 1.0
            rows.append([key, full.read_savings, -extra])
            savings_avg += full.read_savings / len(_MIX)
            naive_extra_avg += extra / len(_MIX)
        rows.append(["paper", 0.335, -0.60])
        return rows, savings_avg, naive_extra_avg

    rows, savings_avg, naive_extra = benchmark.pedantic(
        run, rounds=1, iterations=1)
    emit(format_table(
        ["video", "DC savings (full)", "naive layout 'savings'"], rows,
        title="Fig. 10e: DC memory-access savings "
              "(paper: +33.5% full, >60% extra reads when naive)"))
    assert savings_avg > 0.2
    assert naive_extra > 0.3, (
        "the pointer layout without display caching must cost extra reads")
