"""Fig. 11 — the headline result.

Normalized energy of Baseline / Batching / Racing / Race-to-Sleep /
MAB / GAB across all 16 videos plus the average, with the nine-part
component stack for the average.  The paper reports: Batching ~-7 %,
Racing ~+12 %, Race-to-Sleep -11.3 %, MAB -12.5 %, GAB -21 % (best
-33 % on V8), with GAB winning on every video and MAB losing to
Race-to-Sleep on V9.

Also covers the Sec. 6.2 DCC study: GAB+DCC vs plain DCC.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.config import (
    BASELINE,
    DCC_ONLY,
    FIG11_SCHEMES,
    GAB,
    GAB_DCC,
)
from .conftest import cached_run

PAPER_AVG = {
    "Baseline": 1.0, "Batching": 0.93, "Racing": 1.12,
    "Race-to-Sleep": 0.887, "MAB": 0.875, "GAB": 0.79,
}


def _run_all(all_videos):
    rows = []
    sums = [0.0] * len(FIG11_SCHEMES)
    per_video = {}
    for key in all_videos:
        results = [cached_run(key, scheme) for scheme in FIG11_SCHEMES]
        base = results[0].energy.total
        normalized = [r.energy.total / base for r in results]
        per_video[key] = normalized
        rows.append([key] + normalized)
        sums = [s + n for s, n in zip(sums, normalized)]
    avg = [s / len(all_videos) for s in sums]
    rows.append(["Avg"] + avg)
    rows.append(["paper"] + [PAPER_AVG[s.name] for s in FIG11_SCHEMES])
    return rows, avg, per_video


def test_fig11_normalized_energy(benchmark, emit, all_videos):
    rows, avg, per_video = benchmark.pedantic(
        _run_all, args=(all_videos,), rounds=1, iterations=1)
    emit(format_table(
        ["video"] + [s.name for s in FIG11_SCHEMES], rows,
        title="Fig. 11: normalized energy (lower is better)"))

    # Shape assertions mirroring the paper's claims.
    names = [s.name for s in FIG11_SCHEMES]
    avg_by = dict(zip(names, avg))
    assert avg_by["Racing"] > 1.0, "racing alone must cost energy"
    assert avg_by["Batching"] < 1.0
    assert avg_by["Race-to-Sleep"] < avg_by["Batching"]
    assert avg_by["GAB"] < avg_by["MAB"] < 1.0
    assert 0.75 < avg_by["GAB"] < 0.88
    # GAB wins on every single video (paper: "GAB outperforms all other
    # schemes in every scenario").
    for key, normalized in per_video.items():
        assert normalized[5] == min(normalized), f"GAB not best on {key}"
    # V9 is the paper's MAB regression: MAB worse than Race-to-Sleep.
    assert per_video["V9"][4] > per_video["V9"][3]


def test_fig11_component_stacks(benchmark, emit):
    """The nine-part stack for V8 under each scheme (Fig. 11 bars)."""

    def run():
        results = [cached_run("V8", scheme) for scheme in FIG11_SCHEMES]
        base = results[0].energy
        rows = []
        for result in results:
            stack = result.energy.normalized_to(base)
            rows.append([result.scheme_name] + list(stack.values()))
        header = ["scheme"] + list(base.as_dict().keys())
        return header, rows

    header, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(header, rows,
                      title="Fig. 11 (V8): component stacks, baseline=1.0"))


def test_sec62_gab_plus_dcc(benchmark, emit, all_videos):
    """Sec. 6.2: GAB stacks on DCC for extra bandwidth savings."""

    def run():
        rows = []
        extra = []
        for key in all_videos[:8]:
            dcc = cached_run(key, DCC_ONLY)
            combo = cached_run(key, GAB_DCC)
            base = cached_run(key, BASELINE)
            dcc_saving = 1.0 - (dcc.write_bytes + 0.0) / base.write_bytes
            combo_saving = 1.0 - (combo.write_bytes + 0.0) / base.write_bytes
            rows.append([key, dcc_saving, combo_saving,
                         combo_saving - dcc_saving])
            extra.append(combo_saving - dcc_saving)
        return rows, sum(extra) / len(extra)

    rows, avg_extra = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["video", "DCC saving", "GAB+DCC saving", "extra"], rows,
        title="Sec. 6.2: write-traffic savings, DCC vs GAB+DCC "
              "(paper: ~18% extra)"))
    assert avg_extra > 0.08, "GAB must add savings on top of DCC"
