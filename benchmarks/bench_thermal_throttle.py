"""Thermal-throttle studies: what graceful degradation buys and costs.

The thermal layer (``repro.thermal``) revokes the Race-to-Sleep boost
frequency for injected windows and can delay sleep-exit transitions;
the adaptive governor (``repro.core.race_to_sleep``) answers with its
degradation ladder.  These benches sweep the cap-drop duty — the
fraction of each throttle slot with boost revoked — and price the
response:

* **duty sweep, both governors** — the adaptive ladder must keep
  drops strictly below the fixed-batch governor's (zero, for this
  workload) at every severity, within 5 % of its energy;
* **monotone severity** — energy, throttled seconds, and summed
  ladder steps must all grow with the duty: a longer revocation can
  only cost more;
* **ladder accounting** — frames decoded at nominal frequency and
  degradation steps appear exactly when boost is revoked, never on a
  quiet run.

Run under pytest (``pytest benchmarks/bench_thermal_throttle.py``) for
the full tables, or standalone for CI::

    python benchmarks/bench_thermal_throttle.py --smoke

which writes the headline numbers to ``BENCH_thermal_throttle.json``.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis import format_table
from repro.config import RACE_TO_SLEEP, SimulationConfig, ThermalConfig
from repro.core.pipeline import simulate
from repro.video import workload

try:  # pytest package-relative; absolute when run as a script
    from .conftest import BENCH_FRAMES, BENCH_SEED
except ImportError:  # pragma: no cover - script mode
    BENCH_FRAMES, BENCH_SEED = 96, 7

#: Cap-drop duty fractions swept (0 = wake-delay injection only).
_DUTIES = (0.0, 0.25, 0.55, 0.85, 1.0)
_VIDEO = "V5"


def _pressed_config(duty: float, adaptive: bool) -> SimulationConfig:
    # Short pre-roll (just above the 27-frame delivery chunk) keeps
    # batch formation deadline-bound, so a revoked boost actually
    # threatens deadlines instead of hiding in buffered slack.
    base = SimulationConfig()
    return replace(
        base,
        network=replace(base.network, preroll_frames=30),
        thermal=ThermalConfig(
            enabled=True, adaptive=adaptive, seed=BENCH_SEED,
            event_interval=1.0, cap_drop_rate=1.0, cap_drop_duty=duty,
            delayed_transition_rate=0.5))


def _run(duty: float, adaptive: bool, frames: int):
    return simulate(workload(_VIDEO), RACE_TO_SLEEP, n_frames=frames,
                    seed=BENCH_SEED,
                    config=_pressed_config(duty, adaptive))


def _duty_sweep(frames: int):
    rows = []
    for duty in _DUTIES:
        for label, adaptive in (("adaptive", True), ("fixed", False)):
            run = _run(duty, adaptive, frames)
            rows.append([duty, label, run.drops,
                         run.throttle_seconds, run.degradation_steps,
                         run.frames_at_nominal,
                         run.deep_sleep_residency, run.energy.total])
    return rows


def test_ladder_beats_fixed_governor(benchmark, emit):
    """Adaptive drops stay below fixed at every severity, within 5%."""
    rows = benchmark.pedantic(_duty_sweep, rounds=1, iterations=1,
                              args=(BENCH_FRAMES,))
    emit(format_table(
        ["duty", "governor", "drops", "throttle s", "deg steps",
         "@nominal", "S3", "energy J"],
        rows, title=f"Cap-drop duty sweep ({_VIDEO}/Race-to-Sleep, "
                    "pre-roll 30): the degradation ladder vs the "
                    "fixed-batch governor"))
    by_gov = {"adaptive": [r for r in rows if r[1] == "adaptive"],
              "fixed": [r for r in rows if r[1] == "fixed"]}
    for a_row, f_row in zip(by_gov["adaptive"], by_gov["fixed"]):
        assert a_row[2] == 0, "the ladder must keep the zero-drop promise"
        assert a_row[2] <= f_row[2]
        assert abs(a_row[7] - f_row[7]) / f_row[7] < 0.05, (
            "graceful degradation must not cost >5% energy")
    worst_fixed = by_gov["fixed"][-1]
    assert worst_fixed[2] > 0, (
        "a fully revoked boost must cost the fixed governor drops")


def test_severity_prices_monotonically(benchmark, emit):
    """Energy, throttle time, and ladder depth grow with the duty."""
    rows = benchmark.pedantic(_duty_sweep, rounds=1, iterations=1,
                              args=(BENCH_FRAMES,))
    adaptive = [r for r in rows if r[1] == "adaptive"]
    emit(format_table(
        ["duty", "throttle s", "deg steps", "@nominal", "energy J"],
        [[r[0], r[3], r[4], r[5], r[7]] for r in adaptive],
        title="Severity must price monotonically (adaptive governor)"))
    throttles = [r[3] for r in adaptive]
    steps = [r[4] for r in adaptive]
    energies = [r[7] for r in adaptive]
    assert throttles == sorted(throttles)
    assert steps == sorted(steps)
    assert energies == sorted(energies)
    assert throttles[0] == 0 and throttles[-1] > 0
    assert adaptive[0][5] == 0, "duty 0 must decode no frame at nominal"
    assert adaptive[-1][5] > 0


def _smoke(path: str = "BENCH_thermal_throttle.json") -> dict:
    """CI smoke: tiny sweep, headline JSON artifact."""
    frames = min(BENCH_FRAMES, 96)
    rows = _duty_sweep(frames)
    payload = {
        "frames": frames,
        "video": _VIDEO,
        "duty_sweep": [
            {"duty": r[0], "governor": r[1], "drops": r[2],
             "throttle_seconds": r[3], "degradation_steps": r[4],
             "frames_at_nominal": r[5], "s3_residency": r[6],
             "energy_j": r[7]} for r in rows],
    }
    adaptive = [r for r in rows if r[1] == "adaptive"]
    fixed = [r for r in rows if r[1] == "fixed"]
    assert all(r[2] == 0 for r in adaptive)
    assert fixed[-1][2] > adaptive[-1][2]
    assert all(abs(a[7] - f[7]) / f[7] < 0.05
               for a, f in zip(adaptive, fixed))
    energies = [r[7] for r in adaptive]
    assert energies == sorted(energies)
    import json

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    return payload


if __name__ == "__main__":  # pragma: no cover - CI smoke entry
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="quick sweep, write "
                             "BENCH_thermal_throttle.json")
    parser.add_argument("--out", default="BENCH_thermal_throttle.json")
    args = parser.parse_args()
    result = _smoke(args.out)
    sweep = result["duty_sweep"]
    worst = [r for r in sweep if r["governor"] == "fixed"][-1]
    best = [r for r in sweep if r["governor"] == "adaptive"][-1]
    print(f"wrote {args.out}: {len(sweep)} sweep rows; at duty "
          f"{worst['duty']:g} fixed drops {worst['drops']}, "
          f"adaptive {best['drops']}")
