"""Shard supervision benchmark: overhead, chaos absorption, speculation.

``repro.fleet.shard`` + ``repro.fleet.supervision`` promise that fault
tolerance is *free at the result plane* (bit-identical merges no matter
the schedule) and *cheap at the time plane* (supervision costs a bounded
overhead on top of the serial fold).  This bench measures three claims:

* **overhead** — wall-clock ratio of an unfaulted supervised run
  (worker pool, leases, heartbeats) over the plain serial
  ``run_fleet`` fold on the same population;
* **chaos absorption** — a seeded crash/stall/corrupt schedule is
  absorbed (faults > 0) while the merged ``FleetResult`` stays
  bit-identical to the serial reference;
* **speculation** — under a seeded slow-worker distribution, enabling
  speculative re-execution cuts p99 stripe completion time without
  changing a bit of the result.

Run under pytest (``pytest benchmarks/bench_shard.py``) or standalone::

    python benchmarks/bench_shard.py            # reference numbers
    python benchmarks/bench_shard.py --smoke    # reduced CI sweep

both of which write the headline numbers to ``BENCH_shard.json``.
"""

from __future__ import annotations

import json
import time
from typing import Dict, Optional

from repro.analysis import format_table
from repro.faults import ShardFaultConfig
from repro.fleet import (
    DeviceClass,
    FleetCalibration,
    LognormalComponent,
    PopulationSpec,
    RegionSpec,
    SupervisorConfig,
    calibrate,
    default_population,
    run_fleet,
    run_fleet_supervised,
)
from repro.units import MBPS

try:  # pytest package-relative; absolute when run as a script
    from .conftest import BENCH_SEED
except ImportError:  # pragma: no cover - script mode
    BENCH_SEED = 7

#: Population sizes for the overhead comparison.
REFERENCE_SESSIONS = 50_000
SMOKE_SESSIONS = 5_000

#: Supervised wall-clock allowed relative to the serial fold.  The
#: worker pool forks per stripe and ships partials over pipes, so some
#: overhead is structural; it must stay a small constant factor, not
#: scale with faults or population.
OVERHEAD_BUDGET = 25.0

#: p99 stripe-seconds ratio (speculation on / off) under the seeded
#: slow-worker distribution.  Mirrors the validate check's bar.
SPECULATION_BUDGET = 0.7


def _smoke_spec() -> PopulationSpec:
    """A 1-device, 2-title population whose calibration runs in <1 s."""
    return PopulationSpec(
        device_classes=(DeviceClass(name="ref", scheme="gab"),),
        regions=(RegionSpec(
            name="town", cells=4, cell_capacity=40 * MBPS,
            bandwidth=(LognormalComponent(median=10 * MBPS, sigma=0.5),),
        ),),
        titles=("V1", "V8"),
        calib_frames=16,
        calib_seed=BENCH_SEED,
    )


def _supervisor(**overrides: object) -> SupervisorConfig:
    base: Dict[str, object] = dict(
        workers=2, lease_seconds=2.0, heartbeat_seconds=0.15,
        max_retries=6, backoff_base=0.02, backoff_cap=0.25,
        speculation_min_seconds=0.3)
    base.update(overrides)
    return SupervisorConfig(**base)  # type: ignore[arg-type]


def _overhead(spec: PopulationSpec, calibration: FleetCalibration,
              sessions: int, shards: int) -> Dict[str, object]:
    start = time.perf_counter()
    serial = run_fleet(spec, sessions, seed=BENCH_SEED, shards=1,
                       calibration=calibration)
    serial_seconds = time.perf_counter() - start
    start = time.perf_counter()
    supervised = run_fleet_supervised(
        spec, sessions, seed=BENCH_SEED, shards=shards,
        calibration=calibration, supervisor=_supervisor())
    supervised_seconds = time.perf_counter() - start
    identical = (json.dumps(serial.to_jsonable(), sort_keys=True)
                 == json.dumps(supervised.result.to_jsonable(),
                               sort_keys=True))
    return {
        "sessions": float(sessions),
        "shards": float(shards),
        "serial_seconds": serial_seconds,
        "supervised_seconds": supervised_seconds,
        "overhead_ratio": supervised_seconds / serial_seconds,
        "identical_to_serial": identical,
    }


def _chaos(spec: PopulationSpec, calibration: FleetCalibration,
           sessions: int, shards: int) -> Dict[str, object]:
    serial = run_fleet(spec, sessions, seed=BENCH_SEED, shards=1,
                       calibration=calibration)
    faults = ShardFaultConfig(crash_rate=0.25, stall_rate=0.1,
                              corrupt_rate=0.2, slow_rate=0.1,
                              slow_seconds=0.3, max_faulty_attempts=2,
                              seed=BENCH_SEED)
    chaos = run_fleet_supervised(
        spec, sessions, seed=BENCH_SEED, shards=shards,
        calibration=calibration, faults=faults,
        supervisor=_supervisor(lease_seconds=1.0,
                               heartbeat_seconds=0.1))
    identical = (json.dumps(serial.to_jsonable(), sort_keys=True)
                 == json.dumps(chaos.result.to_jsonable(),
                               sort_keys=True))
    return {
        "faults_absorbed": float(chaos.report.faults_absorbed),
        "crashes": float(chaos.report.crashes),
        "corrupt_rejected": float(chaos.report.corrupt_rejected),
        "lease_revocations": float(chaos.report.lease_revocations),
        "identical_to_serial": identical,
    }


def _speculation(spec: PopulationSpec, calibration: FleetCalibration,
                 sessions: int, shards: int) -> Dict[str, object]:
    slow = ShardFaultConfig(slow_rate=0.4, slow_seconds=2.0,
                            max_faulty_attempts=1, seed=BENCH_SEED + 2)

    def run(speculate: bool):
        return run_fleet_supervised(
            spec, sessions, seed=BENCH_SEED, shards=shards,
            contention=False, calibration=calibration, faults=slow,
            supervisor=_supervisor(lease_seconds=4.0,
                                   speculate=speculate,
                                   speculation_factor=3.0,
                                   speculation_min_completed=2,
                                   speculation_min_seconds=0.4))

    baseline = run(False)
    speculated = run(True)
    p99_off = baseline.report.p99_stripe_seconds("score")
    p99_on = speculated.report.p99_stripe_seconds("score")
    identical = (json.dumps(baseline.result.to_jsonable(), sort_keys=True)
                 == json.dumps(speculated.result.to_jsonable(),
                               sort_keys=True))
    return {
        "p99_off_seconds": p99_off,
        "p99_on_seconds": p99_on,
        "p99_ratio": p99_on / p99_off if p99_off else 1.0,
        "speculations": float(speculated.report.speculations),
        "identical": identical,
    }


def _bench(spec: PopulationSpec, sessions: int,
           shards: int) -> Dict[str, object]:
    calibration = calibrate(spec)
    return {
        "seed": BENCH_SEED,
        "spec_fingerprint": spec.fingerprint(),
        "overhead": _overhead(spec, calibration, sessions, shards),
        "chaos": _chaos(spec, calibration, sessions, shards),
        "speculation": _speculation(spec, calibration, sessions, 6),
    }


def _check(payload: Dict[str, object]) -> None:
    overhead = payload["overhead"]
    chaos = payload["chaos"]
    speculation = payload["speculation"]
    assert overhead["identical_to_serial"], (
        "supervised run diverged from the serial fold — the merge "
        "plane is not exact")
    assert overhead["overhead_ratio"] < OVERHEAD_BUDGET, (
        f"supervision overhead {overhead['overhead_ratio']:.1f}x over "
        "the serial fold — leases/heartbeats have stopped being cheap")
    assert chaos["identical_to_serial"], (
        "chaos run diverged from the serial fold despite completing")
    assert chaos["faults_absorbed"] > 0, (
        "chaos schedule injected no faults — the bench is vacuous")
    assert speculation["identical"], (
        "speculative re-execution changed the merged result")
    assert speculation["speculations"] > 0, (
        "no speculative attempts launched under the slow-worker plan")
    assert speculation["p99_ratio"] < SPECULATION_BUDGET, (
        f"speculation p99 ratio {speculation['p99_ratio']:.2f} — "
        "stragglers are not being cut")


def test_supervision_overhead_and_chaos(benchmark, emit):
    """Chaos absorbed bit-exactly; speculation cuts the p99 tail."""
    payload = benchmark.pedantic(
        _bench, rounds=1, iterations=1,
        args=(default_population(), REFERENCE_SESSIONS, 4))
    overhead = payload["overhead"]
    chaos = payload["chaos"]
    speculation = payload["speculation"]
    emit(format_table(
        ["metric", "value"],
        [["overhead ratio", overhead["overhead_ratio"]],
         ["faults absorbed", chaos["faults_absorbed"]],
         ["speculation p99 ratio", speculation["p99_ratio"]]],
        title="Shard supervision (bit-identical merges under chaos)"))
    _check(payload)


def _smoke(path: str = "BENCH_shard.json",
           spec: Optional[PopulationSpec] = None,
           sessions: int = SMOKE_SESSIONS) -> Dict[str, object]:
    """CI smoke: reduced population, headline JSON artifact."""
    payload = _bench(spec or _smoke_spec(), sessions, 4)
    _check(payload)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


if __name__ == "__main__":  # pragma: no cover - CI smoke entry
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced sweep for CI")
    parser.add_argument("--out", default="BENCH_shard.json")
    args = parser.parse_args()
    if args.smoke:
        result = _smoke(args.out)
    else:
        result = _smoke(args.out, spec=default_population(),
                        sessions=REFERENCE_SESSIONS)
    overhead = result["overhead"]
    chaos = result["chaos"]
    speculation = result["speculation"]
    print(f"wrote {args.out}: overhead "
          f"{overhead['overhead_ratio']:.1f}x, "
          f"{chaos['faults_absorbed']:.0f} faults absorbed "
          f"bit-exactly, speculation p99 ratio "
          f"{speculation['p99_ratio']:.2f}")
