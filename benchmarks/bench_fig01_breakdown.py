"""Fig. 1a — time and energy breakdown of baseline video processing.

The paper: the hardware video pipeline and memory system constitute
~49.9 % and ~37.5 % of processing *time*, and ~29.7 % and ~45.8 % of
*energy*.  We regenerate both breakdowns from baseline runs over a mix
of videos.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.config import BASELINE
from .conftest import cached_run

_MIX = ("V1", "V4", "V8", "V12")


def _collect():
    time_parts = {"video pipeline": 0.0, "memory": 0.0, "display": 0.0,
                  "idle/other": 0.0}
    energy_parts = {"video pipeline": 0.0, "memory": 0.0, "display": 0.0,
                    "other": 0.0}
    for key in _MIX:
        result = cached_run(key, BASELINE)
        # Time: decode time is VD-pipeline time; memory "time" is the
        # share of the frame the DRAM bus is busy with video traffic.
        decode = result.timeline.decode_time.sum()
        total = result.elapsed
        time_parts["video pipeline"] += decode / total / len(_MIX)
        bus_busy = result.bursts * 10e-9 * 400 / total  # scaled bursts
        time_parts["memory"] += min(bus_busy, 0.9) / len(_MIX)
        time_parts["display"] += 0.85 / len(_MIX)  # scan duty
        energy = result.energy
        energy_parts["video pipeline"] += (
            energy.vd_total / energy.total / len(_MIX))
        energy_parts["memory"] += (
            energy.memory_total / energy.total / len(_MIX))
        energy_parts["display"] += energy.dc / energy.total / len(_MIX)
        energy_parts["other"] += (
            energy.mach_overhead / energy.total / len(_MIX))
    return time_parts, energy_parts


def test_fig01_breakdown(benchmark, emit):
    time_parts, energy_parts = benchmark.pedantic(
        _collect, rounds=1, iterations=1)
    rows = [["video pipeline", time_parts["video pipeline"],
             energy_parts["video pipeline"], 0.499, 0.297],
            ["memory", time_parts["memory"], energy_parts["memory"],
             0.375, 0.458],
            ["display", time_parts["display"], energy_parts["display"],
             float("nan"), 0.12]]
    emit(format_table(
        ["component", "time frac", "energy frac", "paper time",
         "paper energy"], rows,
        title="Fig. 1a: baseline time/energy breakdown"))
    # The decoder+memory dominate energy, as the paper reports (~75 %).
    assert (energy_parts["video pipeline"] + energy_parts["memory"]
            + energy_parts["display"]) > 0.7
    assert energy_parts["memory"] > energy_parts["video pipeline"]
