"""Fault-resilience studies: what surviving a lossy world costs.

The resilience layer (``repro.faults``) turns segment losses into
retries, bit errors into concealed macroblocks, and digest collisions
into verified fallback stores.  These benches sweep each fault axis
and price the resilience:

* **loss-rate sweep** — per-attempt segment loss 0 → 10 % on a
  constant link with a pinned rung: retries and radio energy must rise
  monotonically with the loss rate, and the zero-loss row must be the
  exact fault-free result.
* **bit-error sweep** — decoded-block bit error rate 0 → 1e-5:
  concealment grows with the error rate while the energy overhead
  stays marginal (concealment is one extra block read, not a decode).
* **collision fallback** — injected digest collisions are always
  detected and fall back to full stores, so write traffic rises but
  correctness never degrades.

Run under pytest (``pytest benchmarks/bench_fault_resilience.py``) for
the full tables, or standalone for CI::

    python benchmarks/bench_fault_resilience.py --smoke

which writes the headline numbers to ``BENCH_fault_resilience.json``.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis import format_table
from repro.config import GAB, FaultConfig, NetworkConfig, SimulationConfig
from repro.core.pipeline import simulate
from repro.network import deliver_for_config
from repro.units import MBPS
from repro.video import workload

try:  # pytest package-relative; absolute when run as a script
    from .conftest import BENCH_FRAMES, BENCH_SEED
except ImportError:  # pragma: no cover - script mode
    BENCH_FRAMES, BENCH_SEED = 96, 7

_LOSS_RATES = (0.0, 0.02, 0.05, 0.10)
_BIT_ERROR_RATES = (0.0, 1e-6, 1e-5)
_DELIVERY_FRAMES = 3600


def _network() -> NetworkConfig:
    # Constant link + pinned rung: ABR cannot absorb the injected
    # losses, so the retry cost is visible and monotone.
    return NetworkConfig(mode="trace", trace_kind="constant",
                         mean_bandwidth=24 * MBPS, abr="fixed",
                         abr_fixed_rung=2, download_mode="burst",
                         trace_seed=BENCH_SEED)


def _loss_sweep():
    rows = []
    video = SimulationConfig().video
    for loss in _LOSS_RATES:
        faults = (FaultConfig(segment_loss=loss, seed=BENCH_SEED)
                  if loss else None)
        d = deliver_for_config(_network(), video, source=workload("V8"),
                               n_frames=_DELIVERY_FRAMES, seed=BENCH_SEED,
                               faults=faults)
        rows.append([loss, d.retries, d.abandoned_segments,
                     d.stall_seconds, d.radio.active_energy,
                     d.radio.total])
    return rows


def _bit_error_sweep(frames: int):
    rows = []
    for ber in _BIT_ERROR_RATES:
        cfg = replace(SimulationConfig(),
                      faults=FaultConfig(block_bit_error=ber,
                                         seed=BENCH_SEED))
        run = simulate(workload("V8"), GAB, n_frames=frames,
                       seed=BENCH_SEED, config=cfg)
        rows.append([ber, run.concealed_blocks, run.drops,
                     run.energy.total, run.write_savings])
    return rows


def _collision_sweep(frames: int):
    rows = []
    for rate in (0.0, 1e-4, 1e-3):
        cfg = replace(SimulationConfig(),
                      faults=FaultConfig(digest_collision=rate,
                                         seed=BENCH_SEED))
        run = simulate(workload("V8"), GAB, n_frames=frames,
                       seed=BENCH_SEED, config=cfg)
        rows.append([rate, run.injected_collisions, run.fallback_writes,
                     run.silent_collisions, run.write_bytes])
    return rows


def test_loss_rate_sweep(benchmark, emit):
    """Retries and radio energy must rise with the loss rate."""
    rows = benchmark.pedantic(_loss_sweep, rounds=1, iterations=1)
    emit(format_table(
        ["loss", "retries", "abandoned", "stall s", "active J",
         "radio J"],
        rows, title="Segment-loss sweep (constant 24 Mbps, rung pinned): "
                    "resilience priced in radio energy"))
    retries = [row[1] for row in rows]
    assert retries[0] == 0, "zero loss must mean zero retries"
    assert retries == sorted(retries), "retries must rise with loss"
    assert retries[-1] > 0, "10% loss must force retries"
    active = [row[4] for row in rows]
    assert active[-1] > active[0], "retries must cost radio energy"


def test_bit_error_concealment(benchmark, emit):
    """Concealment grows with BER; the energy overhead stays marginal."""
    rows = benchmark.pedantic(_bit_error_sweep, rounds=1, iterations=1,
                              args=(BENCH_FRAMES,))
    emit(format_table(
        ["bit error rate", "concealed blocks", "drops", "energy J",
         "write savings"],
        rows, title="Bit-error sweep (V8/GAB): concealment absorbs the "
                    "damage"))
    concealed = [row[1] for row in rows]
    assert concealed[0] == 0, "BER 0 must conceal nothing"
    assert concealed == sorted(concealed), "concealment grows with BER"
    assert concealed[-1] > 0
    clean, worst = rows[0][3], rows[-1][3]
    assert abs(worst - clean) / clean < 0.05, (
        "concealment must not blow up the energy budget")


def test_collision_fallback(benchmark, emit):
    """Every injected collision is detected; none is silently wrong."""
    rows = benchmark.pedantic(_collision_sweep, rounds=1, iterations=1,
                              args=(BENCH_FRAMES,))
    emit(format_table(
        ["collision rate", "injected", "fallback stores", "silent",
         "write bytes"],
        rows, title="Digest-collision sweep (V8/GAB): verification "
                    "trades write traffic for correctness"))
    base_silent = rows[0][3]
    for _, injected, fallback, silent, _ in rows:
        assert fallback == injected, "every collision must fall back"
        assert silent == base_silent, "no injected collision may slip"
    assert rows[-1][1] > 0, "1e-3 must inject collisions"
    assert rows[-1][4] >= rows[0][4], "fallbacks store full blocks"


def _smoke(path: str = "BENCH_fault_resilience.json") -> dict:
    """CI smoke: tiny sweep, headline JSON artifact."""
    frames = min(BENCH_FRAMES, 48)
    loss_rows = _loss_sweep()
    ber_rows = _bit_error_sweep(frames)
    collision_rows = _collision_sweep(frames)
    payload = {
        "frames": frames,
        "loss_sweep": [
            {"loss": r[0], "retries": r[1], "abandoned": r[2],
             "stall_seconds": r[3], "radio_active_j": r[4],
             "radio_total_j": r[5]} for r in loss_rows],
        "bit_error_sweep": [
            {"ber": r[0], "concealed_blocks": r[1], "drops": r[2],
             "energy_j": r[3]} for r in ber_rows],
        "collision_sweep": [
            {"rate": r[0], "injected": r[1], "fallback_writes": r[2],
             "silent": r[3]} for r in collision_rows],
    }
    retries = [r[1] for r in loss_rows]
    assert retries[0] == 0 and retries == sorted(retries)
    concealed = [r[1] for r in ber_rows]
    assert concealed[0] == 0 and concealed[-1] > 0
    assert all(r[1] == r[2] for r in collision_rows)
    import json

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    return payload


if __name__ == "__main__":  # pragma: no cover - CI smoke entry
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="quick sweep, write "
                             "BENCH_fault_resilience.json")
    parser.add_argument("--out", default="BENCH_fault_resilience.json")
    args = parser.parse_args()
    result = _smoke(args.out)
    print(f"wrote {args.out}: "
          f"{len(result['loss_sweep'])} loss rows, "
          f"{len(result['bit_error_sweep'])} BER rows, "
          f"{len(result['collision_sweep'])} collision rows")
