"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one of the paper's tables or
figures: it runs the relevant simulation under ``pytest-benchmark`` and
prints the same rows/series the paper reports (capture is released so
the tables land in the bench log).

Run with::

    pytest benchmarks/ --benchmark-only

``BENCH_FRAMES`` bounds the per-video frame count so the full suite
finishes in minutes; raise it for higher-fidelity numbers.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Tuple

import pytest

from repro import simulate, workload
from repro.config import SchemeConfig, SimulationConfig
from repro.core.results import RunResult
from repro.video import workload_keys

#: Frames simulated per (video, scheme) in benchmark runs.
BENCH_FRAMES = int(os.environ.get("BENCH_FRAMES", "96"))

#: Seed used by every benchmark (results are deterministic).
BENCH_SEED = 7

_RESULT_CACHE: Dict[Tuple, RunResult] = {}


def cached_run(video_key: str, scheme: SchemeConfig,
               n_frames: int = None, **kwargs) -> RunResult:
    """Memoized simulate() so benches can share each other's runs."""
    frames = n_frames if n_frames is not None else BENCH_FRAMES
    key = (video_key, scheme.name, frames, tuple(sorted(kwargs.items())))
    if key not in _RESULT_CACHE:
        _RESULT_CACHE[key] = simulate(
            workload(video_key), scheme, n_frames=frames, seed=BENCH_SEED,
            **kwargs)
    return _RESULT_CACHE[key]


@pytest.fixture(scope="session")
def config() -> SimulationConfig:
    return SimulationConfig()


@pytest.fixture(scope="session")
def all_videos() -> Tuple[str, ...]:
    return workload_keys()


@pytest.fixture
def emit(capsys) -> Callable[[str], None]:
    """Print a report table through pytest's capture."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            print("\n" + text)

    return _emit
