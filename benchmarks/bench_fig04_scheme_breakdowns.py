"""Fig. 4 and the Sec. 3.3 take-aways.

(a)/(b): batching a window of frames cuts transition energy ~86 % and
total VD-side energy ~20 %.  (c)/(d): Racing increases transition
energy; Race-to-Sleep suppresses it again and maximizes deep sleep
(~60 % S3 residency vs ~5 % baseline).  Sec. 3.3 also reports the
memory-capacity cost of batching (~5.3x the triple-buffering footprint).
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.config import BASELINE, BATCHING, RACE_TO_SLEEP, RACING
from repro.decoder.power import PowerState
from .conftest import cached_run

_MIX = ("V1", "V5", "V8", "V14")


def _vd_side(result):
    """VD-side energy: execution + slack + sleep + transitions."""
    return result.energy.vd_total


def test_fig04ab_batching_effect(benchmark, emit):
    def run():
        rows = []
        trans_cut = vd_cut = 0.0
        for key in _MIX:
            base = cached_run(key, BASELINE)
            batch = cached_run(key, BATCHING)
            t_cut = 1 - (batch.energy.transition
                         / max(base.energy.transition, 1e-12))
            v_cut = 1 - _vd_side(batch) / _vd_side(base)
            rows.append([key, t_cut, v_cut, batch.transitions,
                         base.transitions])
            trans_cut += t_cut / len(_MIX)
            vd_cut += v_cut / len(_MIX)
        return rows, trans_cut, vd_cut

    rows, trans_cut, vd_cut = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["video", "transition cut", "VD-side cut", "batch trans",
         "base trans"], rows,
        title="Fig. 4a/4b: batching-16 effect (paper: -86% trans, "
              "-20% VD energy)"))
    assert trans_cut > 0.75
    assert vd_cut > 0.05


def test_fig04cd_racing_vs_rts(benchmark, emit):
    def run():
        base = cached_run("V8", BASELINE)
        racing = cached_run("V8", RACING)
        rts = cached_run("V8", RACE_TO_SLEEP)
        return base, racing, rts

    base, racing, rts = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for result in (base, racing, rts):
        rows.append([
            result.scheme_name,
            result.energy.transition * 1e3,
            result.residency[PowerState.S3],
            result.transitions,
        ])
    emit(format_table(
        ["scheme", "transition mJ", "S3 residency", "transitions"], rows,
        title="Fig. 4c/4d: racing raises transitions, RtS removes them"))
    assert racing.energy.transition > base.energy.transition
    assert rts.energy.transition < racing.energy.transition / 5
    assert rts.residency[PowerState.S3] > racing.residency[PowerState.S3]


def test_sec33_rts_takeaways(benchmark, emit, all_videos):
    def run():
        s3_base = s3_rts = frame_cut = 0.0
        capacity = []
        for key in all_videos[:8]:
            base = cached_run(key, BASELINE)
            rts = cached_run(key, RACE_TO_SLEEP)
            s3_base += base.residency[PowerState.S3] / 8
            s3_rts += rts.residency[PowerState.S3] / 8
            frame_cut += (1 - _vd_side(rts) / _vd_side(base)) / 8
            capacity.append(rts.peak_footprint_native_mb
                            / max(base.peak_footprint_native_mb, 1e-9))
        return s3_base, s3_rts, frame_cut, sum(capacity) / len(capacity)

    s3_base, s3_rts, frame_cut, cap_ratio = benchmark.pedantic(
        run, rounds=1, iterations=1)
    emit(format_table(
        ["metric", "measured", "paper"],
        [["baseline S3 residency", s3_base, 0.05],
         ["RtS S3 residency", s3_rts, 0.60],
         ["VD-side frame-energy cut", frame_cut, 0.129],
         ["memory capacity ratio", cap_ratio, 5.3]],
        title="Sec. 3.3: Race-to-Sleep take-aways"))
    assert s3_rts > 0.5
    assert s3_rts > s3_base * 3
    assert cap_ratio > 3.0
