"""Table 1 — the 16 workload videos.

Regenerates the table (key, name, description, frame count) from the
profile registry and characterizes each synthetic stand-in with its
measured content census, which is how DESIGN.md justifies the
substitution.
"""

from __future__ import annotations

from repro.analysis import content_census, format_table
from repro.video import PAPER_WORKLOADS, SyntheticVideo
from .conftest import BENCH_SEED


def test_table1_workloads(benchmark, emit, config):
    def run():
        rows = []
        for profile in PAPER_WORKLOADS:
            stream = SyntheticVideo(config.video, profile, seed=BENCH_SEED,
                                    n_frames=48)
            census = content_census(stream)
            rows.append([profile.key, profile.name, profile.description,
                         profile.n_frames, census.match_fraction])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["key", "name", "description", "#frames", "content match"],
        rows, title="Table 1: workload videos"))
    assert len(rows) == 16
    # Frame counts are the paper's.
    counts = {row[0]: row[3] for row in rows}
    assert counts["V1"] == 6507
    assert counts["V12"] == 10147
    # The test-card and Skyfall profiles are the most self-similar.
    matches = {row[0]: row[4] for row in rows}
    assert matches["V1"] > matches["V3"]
    assert matches["V8"] > matches["V3"]
