# Common developer targets.

.PHONY: install test bench validate experiments examples

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

validate:
	python -m repro validate

experiments:
	python tools/make_experiments.py

examples:
	python examples/quickstart.py
	python examples/streaming_session.py
	python examples/design_space_exploration.py
	python examples/custom_video_profile.py
	python examples/codec_trace_analysis.py
