"""Tests for the VD: power states, timing model, and traffic."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DecoderConfig, PowerStateConfig
from repro.decoder import (
    PowerState,
    PowerTracker,
    VideoDecoder,
    decode_cycles,
    decode_time,
    plan_slack,
    vd_cache_study,
)
from repro.errors import ConfigError
from repro.video.frame import DecodedFrame, FrameType


def make_frame(frame_type=FrameType.P, complexity=1.0, blocks=64,
               block_bytes=48, index=0) -> DecodedFrame:
    return DecodedFrame(
        index=index,
        frame_type=frame_type,
        blocks=np.zeros((blocks, block_bytes), dtype=np.uint8),
        complexity=complexity,
        encoded_bits=1_000_000,
    )


class TestPowerStateConfig:
    def test_breakeven_covers_wake_latency(self):
        config = PowerStateConfig()
        assert config.sleep_breakeven("S1") >= config.s1_wake_latency
        assert config.sleep_breakeven("S3") >= config.s3_wake_latency

    def test_s3_breakeven_above_s1(self):
        config = PowerStateConfig()
        assert config.sleep_breakeven("S3") > config.sleep_breakeven("S1")

    def test_unknown_state(self):
        with pytest.raises(ConfigError):
            PowerStateConfig().sleep_breakeven("S5")


class TestPlanSlack:
    def test_short_slack_stays_idle(self):
        config = PowerStateConfig()
        decision = plan_slack(0.0001, config)
        assert decision.state is PowerState.SHORT_SLACK
        assert decision.idle_time == pytest.approx(0.0001)
        assert decision.transition_energy == 0.0

    def test_medium_slack_uses_s1(self):
        config = PowerStateConfig()
        slack = (config.sleep_breakeven("S1")
                 + config.sleep_breakeven("S3")) / 2
        decision = plan_slack(slack, config)
        assert decision.state is PowerState.S1
        assert decision.sleep_time == pytest.approx(
            slack - config.s1_wake_latency)

    def test_long_slack_uses_s3(self):
        config = PowerStateConfig()
        decision = plan_slack(0.5, config)
        assert decision.state is PowerState.S3
        assert decision.transition_energy == pytest.approx(
            config.s3_transition_energy)

    def test_negative_slack_rejected(self):
        with pytest.raises(ValueError):
            plan_slack(-1.0, PowerStateConfig())

    def test_transition_scale_raises_breakeven(self):
        config = PowerStateConfig()
        slack = config.sleep_breakeven("S3") * 1.1
        cheap = plan_slack(slack, config)
        assert cheap.state is PowerState.S3
        pricey = plan_slack(slack, config, transition_scale=10.0)
        assert pricey.state is not PowerState.S3

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_times_always_sum_to_slack(self, slack):
        decision = plan_slack(slack, PowerStateConfig())
        assert decision.total_time == pytest.approx(slack)

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_sleeping_never_costs_more_than_idling(self, slack):
        """plan_slack decisions must never lose energy vs. pure idling."""
        config = PowerStateConfig()
        decision = plan_slack(slack, config)
        sleep_power = {PowerState.S1: config.s1_power,
                       PowerState.S3: config.s3_power}.get(
                           decision.state, config.p_idle_power)
        spent = (decision.sleep_time * sleep_power
                 + decision.idle_time * config.p_idle_power
                 + decision.transition_energy)
        idle_cost = slack * config.p_idle_power
        assert spent <= idle_cost + 1e-12


class TestPowerTracker:
    def test_execution_accounting(self):
        tracker = PowerTracker(PowerStateConfig())
        tracker.record_execution(0.01, 0.3)
        assert tracker.time_by_state[PowerState.EXECUTION] == pytest.approx(0.01)
        assert tracker.energy_by_state[PowerState.EXECUTION] == pytest.approx(
            0.003)

    def test_slack_accounting_s3(self):
        config = PowerStateConfig()
        tracker = PowerTracker(config)
        tracker.record_slack(plan_slack(0.1, config))
        assert tracker.transitions == 1
        assert tracker.time_by_state[PowerState.S3] > 0
        assert tracker.energy_by_state[PowerState.TRANSITION] == pytest.approx(
            config.s3_transition_energy)

    def test_residency_sums_to_one(self):
        config = PowerStateConfig()
        tracker = PowerTracker(config)
        tracker.record_execution(0.013, 0.3)
        tracker.record_slack(plan_slack(0.003, config))
        total = sum(tracker.residency(s) for s in PowerState)
        assert total == pytest.approx(1.0)


class TestTiming:
    def test_i_frames_slower_than_p(self):
        config = DecoderConfig()
        i_frame = make_frame(FrameType.I)
        p_frame = make_frame(FrameType.P)
        assert decode_cycles(i_frame, config) > decode_cycles(p_frame, config)

    def test_complexity_scales_cycles(self):
        config = DecoderConfig()
        slow = make_frame(complexity=2.0)
        fast = make_frame(complexity=0.5)
        assert decode_cycles(slow, config) > 2 * decode_cycles(fast, config) / 2

    def test_racing_halves_time(self):
        config = DecoderConfig()
        frame = make_frame()
        assert decode_time(frame, config, racing=True) == pytest.approx(
            decode_time(frame, config, racing=False) / 2)

    def test_typical_p_frame_lands_near_13ms(self):
        """The calibrated operating point of DESIGN.md section 5."""
        config = DecoderConfig()
        frame = make_frame(complexity=1.0)
        time_low = decode_time(frame, config, racing=False)
        assert 0.012 < time_low < 0.0145

    def test_resolution_does_not_change_timing(self):
        config = DecoderConfig()
        small = make_frame(blocks=16)
        large = make_frame(blocks=4096)
        assert decode_cycles(small, config) == decode_cycles(large, config)


class TestVideoDecoderTraffic:
    def test_encoded_lines_scale(self, video_config):
        vd = VideoDecoder(DecoderConfig(), video_config)
        frame = make_frame()
        lines = vd.encoded_lines(frame)
        expected = frame.encoded_bytes / video_config.scale_to_native / 64
        assert lines == max(1, round(expected))

    def test_i_frames_have_no_reference_reads(self, video_config):
        vd = VideoDecoder(DecoderConfig(), video_config)
        assert vd.reference_lines(make_frame(FrameType.I)) == 0
        assert vd.reference_lines(make_frame(FrameType.P)) > 0

    def test_read_traffic_within_window(self, video_config, rng):
        vd = VideoDecoder(DecoderConfig(), video_config)
        frame = make_frame(FrameType.P)
        traffic = vd.read_traffic(frame, start=1.0, finish=1.01,
                                  encoded_base=0, reference_base=1 << 20,
                                  rng=rng)
        assert traffic.count > 0
        assert (traffic.times >= 1.0).all()
        assert (traffic.times < 1.01).all()

    def test_reference_reads_hit_reference_region(self, video_config, rng):
        vd = VideoDecoder(DecoderConfig(), video_config)
        frame = make_frame(FrameType.P)
        base = 1 << 20
        traffic = vd.read_traffic(frame, 0.0, 0.01, encoded_base=0,
                                  reference_base=base, rng=rng)
        ref_mask = traffic.addresses >= base
        assert ref_mask.sum() == vd.reference_lines(frame)
        frame_span = video_config.frame_bytes
        assert (traffic.addresses[ref_mask] < base + frame_span).all()


class TestVdCacheStudy:
    def test_compute_improves_with_capacity_writeback_does_not(
            self, video_config):
        results = vd_cache_study(video_config, capacities=[1024, 8192],
                                 frames=3)
        small, large = results
        assert large.compute_miss_rate < small.compute_miss_rate * 0.8
        # The writeback stream has no reuse: capacity cannot help it.
        assert large.writeback_miss_rate > 0.95
        assert small.writeback_miss_rate > 0.95

    def test_results_per_capacity(self, video_config):
        capacities = [1024, 2048, 4096]
        results = vd_cache_study(video_config, capacities, frames=2)
        assert [r.capacity_bytes for r in results] == capacities
